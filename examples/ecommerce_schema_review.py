"""Reviewing an e-commerce schema before deployment (the §8.3 scenario).

A developer designing the bike-shop application pastes the DDL and the first
queries into sqlcheck, compares the two ranking configurations (read-heavy C1
vs. hybrid C2), and applies the highest-impact rewrites.

Run with:  python examples/ecommerce_schema_review.py
"""
from __future__ import annotations

from repro import C1, C2, SQLCheck, SQLCheckOptions

SCHEMA_AND_QUERIES = """
CREATE TABLE customers (
    id INTEGER PRIMARY KEY,
    full_name VARCHAR(120),
    email VARCHAR(120),
    password VARCHAR(60),
    created_at TIMESTAMP
);

CREATE TABLE products (
    id INTEGER PRIMARY KEY,
    name VARCHAR(120),
    price FLOAT,
    category VARCHAR(20) CHECK (category IN ('road', 'mountain', 'city'))
);

CREATE TABLE orders (
    id INTEGER PRIMARY KEY,
    customer_id INTEGER,
    product_ids TEXT,
    total FLOAT,
    placed_at TIMESTAMP
);

SELECT * FROM orders WHERE product_ids LIKE '%17%';
SELECT o.id, c.full_name FROM orders o JOIN customers c ON o.customer_id = c.id WHERE c.email LIKE '%@gmail.com';
SELECT id FROM customers WHERE email = 'a@b.com' AND password = 'hunter2';
INSERT INTO products VALUES (1, 'Roadster', 999.90, 'road');
"""


def review(config, label: str) -> None:
    toolchain = SQLCheck(SQLCheckOptions(ranking=config))
    report = toolchain.check(SCHEMA_AND_QUERIES)
    print(f"== ranking configuration {label} ==")
    for entry in report.detections[:6]:
        print(f"  [{entry.rank}] {entry.detection.display_name:<24} score={entry.score:.3f}")
    print()


def main() -> None:
    review(C1, "C1 (read-performance heavy)")
    review(C2, "C2 (hybrid read/write)")

    print("== fixes for the top findings (C1) ==")
    report = SQLCheck(SQLCheckOptions(ranking=C1)).check(SCHEMA_AND_QUERIES)
    for entry in report.detections[:4]:
        fix = report.fix_for(entry)
        print(f"* {entry.detection.display_name}")
        print(f"  {fix.explanation}")
        for statement in fix.statements[:3]:
            print(f"    SQL> {statement.splitlines()[0]}")
        if fix.rewritten_query:
            print(f"    rewrite -> {fix.rewritten_query}")
        if fix.impacted_queries:
            print(f"    ({len(fix.impacted_queries)} other statement(s) must change too)")
        print()


if __name__ == "__main__":
    main()
