"""Running sqlcheck as a service (the §7 REST interface).

Starts the REST server on an ephemeral port, sends the paper's example
request to ``POST /api/check``, and prints the JSON response — the same
contract IDE integrations would use.

Run with:  python examples/rest_service.py
"""
from __future__ import annotations

import json
import urllib.request

from repro.interfaces.rest import RestServer


def main() -> None:
    with RestServer(port=0) as server:
        print(f"sqlcheck REST service listening on {server.url}")

        request = urllib.request.Request(
            f"{server.url}/api/check",
            data=json.dumps({"query": "INSERT INTO Users VALUES (1, 'foo')", "config": "C1"}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.loads(response.read())
        print("\nPOST /api/check ->")
        print(json.dumps(payload, indent=2)[:1200])

        with urllib.request.urlopen(f"{server.url}/api/antipatterns", timeout=10) as response:
            catalog = json.loads(response.read())
        print(f"\nGET /api/antipatterns -> {len(catalog['anti_patterns'])} supported anti-patterns")


if __name__ == "__main__":
    main()
