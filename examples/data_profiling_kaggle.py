"""Data-only analysis of public datasets (the §8.4 Kaggle experiment).

No queries are available for a downloaded dataset — sqlcheck can still find
anti-patterns by profiling the data itself.  This example builds three of the
synthetic Kaggle stand-ins, runs only the data-analysis rules, and prints the
findings per database.

Run with:  python examples/data_profiling_kaggle.py
"""
from __future__ import annotations

from repro import SQLCheck
from repro.workloads import KAGGLE_DATABASES, build_kaggle_database


def main() -> None:
    chosen = [spec for spec in KAGGLE_DATABASES if spec.name in (
        "The History of Baseball", "Soccer Dataset", "SF Bay Area Bike Share")]
    toolchain = SQLCheck()
    for spec in chosen:
        database = build_kaggle_database(spec)
        report = toolchain.check((), database=database)
        print(f"== {spec.name} ({database.get_table(database.table_names()[0]).row_count} rows sampled) ==")
        if not report.detections:
            print("  no anti-patterns found")
        for entry in report.detections:
            detection = entry.detection
            target = detection.table or ""
            if detection.column:
                target += f".{detection.column}"
            print(f"  [{entry.rank}] {detection.display_name:<24} {target}")
            print(f"      {detection.message}")
        print()


if __name__ == "__main__":
    main()
