"""The GlobaLeaks case study (paper §2.1 and §8.2).

Builds the anti-pattern and the refactored variants of the GlobaLeaks schema
on the in-memory engine, runs sqlcheck on the application's queries *and*
data, and measures how much faster the three tasks run once the multi-valued
attribute anti-pattern is fixed.

Run with:  python examples/globaleaks_case_study.py
"""
from __future__ import annotations

import time

from repro import SQLCheck
from repro.workloads import GlobaLeaksWorkload


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main() -> None:
    workload = GlobaLeaksWorkload(tenants=500)
    ap_db = workload.build_ap_database()
    fixed_db = workload.build_fixed_database()

    # 1. Analyse the application: queries + live database.
    print("== sqlcheck on the GlobaLeaks application (queries + data) ==")
    report = SQLCheck().check(workload.application_queries(), database=ap_db)
    for entry in report.detections[:8]:
        target = entry.detection.table or ""
        if entry.detection.column:
            target += f".{entry.detection.column}"
        print(f"[{entry.rank}] {entry.detection.display_name:<24} {target:<22} score={entry.score:.3f}")
    top_fix = report.fix_for(report.detections[0])
    print("\nhighest-impact fix:")
    print(f"  {top_fix.explanation}")
    for statement in top_fix.statements:
        print(f"  SQL> {statement.splitlines()[0]}")

    # 2. Quantify the impact of the fix (Figure 3).
    print("\n== Task timings with and without the multi-valued attribute AP ==")
    tasks = [
        ("Task #1: tenants of a user", workload.task1_ap("U42"), workload.task1_fixed("U42")),
        ("Task #2: users of a tenant", workload.task2_ap("T17"), workload.task2_fixed("T17")),
        ("Task #3: remove a user", workload.task3_ap("U99"), workload.task3_fixed("U99")),
    ]
    for name, ap_sql, fixed_sql in tasks:
        with_ap = timed(lambda: ap_db.execute(ap_sql))
        without_ap = timed(lambda: fixed_db.execute(fixed_sql))
        print(f"  {name:<30} with AP {with_ap * 1000:7.2f} ms   fixed {without_ap * 1000:7.2f} ms   "
              f"speedup {with_ap / without_ap:5.1f}x")


if __name__ == "__main__":
    main()
