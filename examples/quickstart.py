"""Quickstart: detect, rank, and fix anti-patterns in a few SQL statements.

Run with:  python examples/quickstart.py
"""
from __future__ import annotations

from repro import SQLCheck, find_anti_patterns

QUERIES = """
CREATE TABLE Products (
    id INTEGER PRIMARY KEY,
    name VARCHAR(120),
    price FLOAT,
    category VARCHAR(20) CHECK (category IN ('road', 'mountain', 'city')),
    tag_ids TEXT
);

SELECT * FROM Products WHERE tag_ids LIKE '%7%';
INSERT INTO Products VALUES (1, 'Roadster 3000', 1299.99, 'road', '7,9');
SELECT name FROM Products ORDER BY RAND() LIMIT 1;
"""


def main() -> None:
    # One-liner API (the paper's `find_anti_patterns`): a flat list of detections.
    print("== find_anti_patterns ==")
    for detection in find_anti_patterns("INSERT INTO Users VALUES (1, 'foo')"):
        print(f"  {detection.display_name}: {detection.message}")

    # Full toolchain: detection + impact ranking + suggested fixes.
    print("\n== SQLCheck toolchain ==")
    report = SQLCheck().check(QUERIES)
    print(f"analysed {report.queries_analyzed} statements, "
          f"found {len(report)} anti-patterns\n")
    for entry in report.detections:
        detection = entry.detection
        print(f"[{entry.rank}] {detection.display_name}  (score {entry.score:.3f})")
        print(f"    {detection.message}")
        fix = report.fix_for(entry)
        if fix is not None:
            print(f"    fix: {fix.explanation}")
            for statement in fix.statements[:2]:
                print(f"         {statement.splitlines()[0]}")
            if fix.rewritten_query:
                print(f"         rewrite -> {fix.rewritten_query}")
        print()


if __name__ == "__main__":
    main()
