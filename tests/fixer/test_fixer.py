"""Unit tests for ap-fix (fix rules and the repair engine)."""
from __future__ import annotations

import pytest

from repro.context import build_context
from repro.core import SQLCheck
from repro.engine import Database
from repro.fixer import APFixer, FixKind, QueryRepairEngine
from repro.fixer.fix_rules import FixRule, default_fix_rules
from repro.model import AntiPattern, Detection


def fixes_for(sql: str, database=None):
    """Run the full pipeline and return {anti_pattern: fix}."""
    toolchain = SQLCheck()
    context = toolchain._builder.build(sql, database=database)
    report = toolchain.check_context(context)
    return {fix.detection.anti_pattern: fix for fix in report.fixes}


class TestFixRuleCoverage:
    def test_every_anti_pattern_has_a_fix_rule(self):
        covered = {rule.anti_pattern for rule in default_fix_rules()}
        assert covered == set(AntiPattern)

    def test_unknown_detection_gets_generic_textual_fix(self):
        engine = QueryRepairEngine(rules=[])
        fix = engine.repair(Detection(anti_pattern=AntiPattern.GOD_TABLE, query="q"), build_context())
        assert fix.kind is FixKind.TEXTUAL
        assert "God Table" in fix.explanation

    def test_register_custom_rule(self):
        class CustomFix(FixRule):
            anti_pattern = AntiPattern.GOD_TABLE

            def build(self, detection, context):
                return self.textual(detection, "custom advice")

        engine = QueryRepairEngine(rules=[])
        engine.register(CustomFix())
        fix = engine.repair(Detection(anti_pattern=AntiPattern.GOD_TABLE), build_context())
        assert fix.explanation == "custom advice"


class TestConcreteFixes:
    def test_multi_valued_attribute_creates_intersection_table(self):
        sql = (
            "CREATE TABLE Tenants (Tenant_ID VARCHAR(10) PRIMARY KEY, User_IDs TEXT);"
            "CREATE TABLE Users (User_ID VARCHAR(10) PRIMARY KEY, Name VARCHAR(40));"
            "SELECT * FROM Tenants WHERE User_IDs LIKE '%U1%';"
        )
        fix = fixes_for(sql)[AntiPattern.MULTI_VALUED_ATTRIBUTE]
        assert fix.kind is FixKind.REWRITE
        assert any("CREATE TABLE" in s for s in fix.statements)
        assert any("DROP COLUMN User_IDs" in s for s in fix.statements)
        assert "REFERENCES Users" in " ".join(fix.statements)

    def test_no_foreign_key_fix_adds_constraint_and_index(self):
        sql = (
            "CREATE TABLE Tenant (Tenant_ID INTEGER PRIMARY KEY);"
            "CREATE TABLE Q (Q_ID INTEGER PRIMARY KEY, Tenant_ID INTEGER);"
            "SELECT * FROM Q q JOIN Tenant t ON t.Tenant_ID = q.Tenant_ID;"
        )
        fix = fixes_for(sql)[AntiPattern.NO_FOREIGN_KEY]
        joined = " ".join(fix.statements)
        assert "FOREIGN KEY" in joined
        assert "CREATE INDEX" in joined

    def test_enumerated_types_fix_builds_reference_table(self):
        sql = "CREATE TABLE U (u_id INTEGER PRIMARY KEY, Role VARCHAR(4) CHECK (Role IN ('R1','R2','R3')))"
        fix = fixes_for(sql)[AntiPattern.ENUMERATED_TYPES]
        joined = " ".join(fix.statements)
        assert "CREATE TABLE Role" in joined
        assert "'R1'" in joined and "'R3'" in joined
        assert "DROP COLUMN Role" in joined

    def test_column_wildcard_rewrites_projection(self):
        sql = "CREATE TABLE T (a INTEGER PRIMARY KEY, b VARCHAR(5)); SELECT * FROM T;"
        fix = fixes_for(sql)[AntiPattern.COLUMN_WILDCARD]
        assert fix.rewritten_query is not None
        assert "SELECT a, b" in fix.rewritten_query

    def test_implicit_columns_rewrite_uses_schema(self):
        sql = "CREATE TABLE T (a INTEGER PRIMARY KEY, b VARCHAR(5)); INSERT INTO T VALUES (1, 'x');"
        fix = fixes_for(sql)[AntiPattern.IMPLICIT_COLUMNS]
        assert fix.kind is FixKind.REWRITE
        assert "(a, b)" in fix.rewritten_query

    def test_implicit_columns_without_schema_is_textual(self):
        fix = fixes_for("INSERT INTO Mystery VALUES (1)")[AntiPattern.IMPLICIT_COLUMNS]
        assert fix.kind is FixKind.TEXTUAL

    def test_index_underuse_fix_creates_index(self):
        sql = (
            "CREATE TABLE T (t_id INTEGER PRIMARY KEY, category VARCHAR(20));"
            "SELECT * FROM T WHERE category = 'x';"
        )
        fix = fixes_for(sql)[AntiPattern.INDEX_UNDERUSE]
        assert any(s.startswith("CREATE INDEX") for s in fix.statements)

    def test_index_overuse_fix_drops_index(self):
        sql = (
            "CREATE TABLE T (t_id INTEGER PRIMARY KEY, a INTEGER, b INTEGER);"
            "CREATE INDEX idx_b ON T (b);"
            "SELECT * FROM T WHERE a = 1;"
        )
        fix = fixes_for(sql)[AntiPattern.INDEX_OVERUSE]
        assert any(s.startswith("DROP INDEX") for s in fix.statements)

    def test_rounding_errors_fix_changes_type(self):
        fix = fixes_for("CREATE TABLE T (t_id INT PRIMARY KEY, price FLOAT)")[AntiPattern.ROUNDING_ERRORS]
        assert "NUMERIC" in fix.statements[0]

    def test_concatenate_nulls_fix_wraps_in_coalesce(self):
        fix = fixes_for("SELECT first || last FROM T")[AntiPattern.CONCATENATE_NULLS]
        assert fix.rewritten_query is not None
        assert "COALESCE(first, '')" in fix.rewritten_query

    def test_no_primary_key_fix_uses_unique_column_from_data(self):
        db = Database()
        db.execute("CREATE TABLE NoKey (code VARCHAR(10), label VARCHAR(10))")
        db.insert_rows("NoKey", [{"code": f"C{i}", "label": "x"} for i in range(30)])
        fixes = fixes_for("", database=db)
        fix = fixes[AntiPattern.NO_PRIMARY_KEY]
        assert fix.kind is FixKind.REWRITE
        assert "ADD PRIMARY KEY (code)" in fix.statements[0]

    def test_missing_timezone_fix(self):
        db = Database()
        db.execute("CREATE TABLE L (l_id INTEGER PRIMARY KEY, seen_at TIMESTAMP)")
        db.insert_rows("L", [{"l_id": i, "seen_at": "2020-01-01 10:00:00"} for i in range(10)])
        fix = fixes_for("", database=db)[AntiPattern.MISSING_TIMEZONE]
        assert "WITH TIME ZONE" in fix.statements[0]

    def test_impacted_queries_are_listed(self):
        sql = (
            "CREATE TABLE Tenants (Tenant_ID VARCHAR(10) PRIMARY KEY, User_IDs TEXT);"
            "SELECT * FROM Tenants WHERE User_IDs LIKE '%U1%';"
            "UPDATE Tenants SET User_IDs = 'U9' WHERE Tenant_ID = 'T1';"
        )
        fix = fixes_for(sql)[AntiPattern.MULTI_VALUED_ATTRIBUTE]
        assert any("UPDATE Tenants" in q for q in fix.impacted_queries)

    def test_fix_to_dict(self):
        fix = fixes_for("SELECT * FROM t ORDER BY RAND()")[AntiPattern.ORDERING_BY_RAND]
        payload = fix.to_dict()
        assert payload["anti_pattern"] == "ordering_by_rand"
        assert payload["kind"] in ("rewrite", "textual")


class TestAPFixer:
    def test_fix_accepts_plain_detections(self):
        fixer = APFixer()
        detections = [Detection(anti_pattern=AntiPattern.GOD_TABLE, table="t")]
        fixes = fixer.fix(detections)
        assert len(fixes) == 1

    def test_fix_one(self):
        fix = APFixer().fix_one(Detection(anti_pattern=AntiPattern.PATTERN_MATCHING, column="c"))
        assert fix.kind is FixKind.TEXTUAL
