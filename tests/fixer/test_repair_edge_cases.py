"""Edge cases for the repair engine: empty input, multi-statement scripts,
and fixes whose detections reference columns absent from the catalog."""
from __future__ import annotations

from repro.context import build_context
from repro.core import SQLCheck
from repro.fixer import APFixer, FixKind, QueryRepairEngine
from repro.model import AntiPattern, Detection


class TestEmptyInput:
    def test_empty_string_pipeline(self):
        report = SQLCheck().check("")
        assert len(report) == 0
        assert report.fixes == []
        assert report.queries_analyzed == 0

    def test_whitespace_and_semicolons_only(self):
        report = SQLCheck().check("   ;\n ; \t;")
        assert len(report) == 0
        assert report.fixes == []

    def test_repair_of_detection_with_empty_query(self):
        engine = QueryRepairEngine()
        detection = Detection(anti_pattern=AntiPattern.IMPLICIT_COLUMNS, query="")
        fix = engine.repair(detection, build_context())
        assert fix.kind is FixKind.TEXTUAL
        assert fix.detection is detection
        assert fix.explanation

    def test_fixer_over_empty_detection_list(self):
        assert APFixer().fix([]) == []


class TestMultiStatementInput:
    SQL = (
        "CREATE TABLE users (name VARCHAR(40), email VARCHAR(80));"
        "INSERT INTO users VALUES ('ada', 'ada@example.com');"
        "SELECT * FROM users ORDER BY RANDOM();"
    )

    def test_every_detection_gets_exactly_one_fix(self):
        report = SQLCheck().check(self.SQL)
        assert len(report.fixes) == len(report.detections)
        for entry in report.detections:
            fix = report.fix_for(entry)
            assert fix is not None
            assert fix.detection is entry.detection

    def test_fixes_preserve_rank_order(self):
        report = SQLCheck().check(self.SQL)
        assert [f.detection for f in report.fixes] == [e.detection for e in report.detections]

    def test_insert_rewrite_uses_schema_from_sibling_statement(self):
        report = SQLCheck().check(self.SQL)
        implicit = [
            f for f in report.fixes
            if f.detection.anti_pattern is AntiPattern.IMPLICIT_COLUMNS
        ]
        assert implicit and implicit[0].kind is FixKind.REWRITE
        assert "(name, email)" in implicit[0].rewritten_query


class TestAbsentCatalogColumns:
    """Detections naming tables/columns the catalog has never seen."""

    def test_implicit_columns_without_schema_falls_back_to_textual(self):
        report = SQLCheck().check("INSERT INTO phantom VALUES (1, 2)")
        fixes = [f for f in report.fixes if f.detection.anti_pattern is AntiPattern.IMPLICIT_COLUMNS]
        assert fixes and fixes[0].kind is FixKind.TEXTUAL
        assert fixes[0].rewritten_query is None

    def test_wildcard_fix_without_schema_does_not_invent_columns(self):
        report = SQLCheck().check("SELECT * FROM phantom")
        fixes = [f for f in report.fixes if f.detection.anti_pattern is AntiPattern.COLUMN_WILDCARD]
        assert fixes
        assert fixes[0].rewritten_query is None or "*" not in fixes[0].rewritten_query

    def test_mva_fix_with_unknown_table_and_column(self):
        engine = QueryRepairEngine()
        detection = Detection(
            anti_pattern=AntiPattern.MULTI_VALUED_ATTRIBUTE,
            query="SELECT ghost_key FROM ghosts WHERE tag_ids LIKE '%7%'",
            table="ghosts",
            column="tag_ids",
        )
        fix = engine.repair(detection, build_context())
        assert fix.statements, "schema-level fix should still propose an intersection table"
        assert "ghosts" in fix.statements[0]

    def test_detection_with_no_table_or_column_gets_textual_guidance(self):
        engine = QueryRepairEngine()
        detection = Detection(anti_pattern=AntiPattern.MULTI_VALUED_ATTRIBUTE, query="")
        fix = engine.repair(detection, build_context())
        assert fix.kind is FixKind.TEXTUAL
        assert fix.explanation
