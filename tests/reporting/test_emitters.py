"""Reporting subsystem: report model, Markdown/HTML/SARIF emitters, and the
format plumbing through the CLI and REST surfaces."""
from __future__ import annotations

import json

import pytest

from repro import SQLCheck
from repro.interfaces.cli import run
from repro.interfaces.rest import handle_check_batch_request, handle_check_request
from repro.reporting import (
    build_document,
    build_documents,
    render_batch_report,
    render_html,
    render_markdown,
    render_report,
    to_sarif,
)

SQL = "CREATE TABLE t (a FLOAT);\nSELECT * FROM t WHERE name LIKE '%x';"


@pytest.fixture(scope="module")
def toolchain():
    return SQLCheck()


@pytest.fixture(scope="module")
def report(toolchain):
    return toolchain.check(SQL, source="demo.sql")


@pytest.fixture(scope="module")
def document(toolchain, report):
    return build_document(report, registry=toolchain.registry, source="demo.sql")


# ----------------------------------------------------------------------
# model
# ----------------------------------------------------------------------
def test_document_normalises_findings_with_docs_and_fixes(document, report):
    assert document.source == "demo.sql"
    assert len(document.findings) == len(report.detections)
    for finding, entry in zip(document.findings, report.detections):
        assert finding.rank == entry.rank
        assert finding.detection is entry.detection
        assert finding.doc.is_complete
    assert any(finding.fix is not None for finding in document.findings)


def test_location_label_prefers_statement_then_table(document):
    labels = [finding.location_label for finding in document.findings]
    assert any(label.startswith("statement ") for label in labels)


def test_build_documents_covers_every_batch_corpus(toolchain):
    batch = toolchain.check_many({"a.sql": SQL, "b.sql": "SELECT 1"})
    documents = build_documents(batch, registry=toolchain.registry)
    assert [doc.source for doc in documents] == ["a.sql", "b.sql"]


def test_statement_offsets_recorded_on_detections(report):
    offsets = {
        entry.detection.query_index: (
            entry.detection.statement_offset,
            entry.detection.statement_line,
        )
        for entry in report.detections
        if entry.detection.query_index is not None
    }
    assert offsets[0] == (0, 1)
    index1_offset, index1_line = offsets[1]
    assert index1_line == 2
    assert index1_offset == SQL.index("SELECT")


def test_list_inputs_carry_unknown_positions(toolchain):
    # Elements of a statement list have no known position in any containing
    # file; offsets must be None (not a misleading 0/line 1) on every path.
    report = toolchain.check(["SELECT * FROM a", "SELECT * FROM b"])
    assert report.detections
    for entry in report.detections:
        assert entry.detection.statement_offset is None
        assert entry.detection.statement_line is None
    log = to_sarif(
        build_document(report, registry=toolchain.registry), registry=toolchain.registry
    )
    for result in log["runs"][0]["results"]:
        # SARIF forbids a snippet-only region: when the position is unknown
        # the region is omitted and the location is artifact-only.
        assert "region" not in result["locations"][0]["physicalLocation"]


def test_sarif_region_excludes_leading_comment_and_next_statement(toolchain):
    sql = "-- warning\nSELECT * FROM t;\nSELECT id, name FROM u WHERE id LIKE '%x';"
    report = toolchain.check(sql, source="c.sql")
    log = to_sarif(
        build_document(report, registry=toolchain.registry, source="c.sql"),
        registry=toolchain.registry,
    )
    wildcard = next(
        r for r in log["runs"][0]["results"] if r["ruleId"] == "ColumnWildcardRule"
    )
    region = wildcard["locations"][0]["physicalLocation"]["region"]
    span = sql[region["charOffset"] : region["charOffset"] + region["charLength"]]
    assert span == "SELECT * FROM t;"  # no comment prefix, no bleed into stmt 2
    assert region["startLine"] == 2


def test_sarif_artifact_uri_is_percent_encoded(toolchain):
    report = toolchain.check("SELECT * FROM t", source="queries#50% done.sql")
    log = to_sarif(
        build_document(report, registry=toolchain.registry), registry=toolchain.registry
    )
    uri = log["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
        "artifactLocation"
    ]["uri"]
    assert "#" not in uri and " " not in uri
    from urllib.parse import unquote

    assert unquote(uri) == "queries#50% done.sql"


def test_multiline_statement_emits_end_line(toolchain):
    sql = "CREATE TABLE t (\n  a FLOAT,\n  b FLOAT\n);"
    report = toolchain.check(sql, source="m.sql")
    log = to_sarif(
        build_document(report, registry=toolchain.registry, source="m.sql"),
        registry=toolchain.registry,
    )
    regions = [
        r["locations"][0]["physicalLocation"]["region"]
        for r in log["runs"][0]["results"]
    ]
    assert any(rg.get("startLine") == 1 and rg.get("endLine") == 4 for rg in regions)


def test_cli_multiple_queries_stay_separate_statements():
    code, output = run(
        ["--format", "json", "-q", "SELECT a FROM t WHERE x LIKE '%p'", "-q", "SELECT * FROM u"]
    )
    assert code == 1
    payload = json.loads(output)
    assert payload["queries_analyzed"] == 2
    queries = {d["query"] for d in payload["detections"]}
    assert all("\nSELECT" not in q for q in queries), "parts merged into one statement"


def test_cli_query_ending_in_line_comment_still_terminates():
    # A ';' inside a trailing line comment must not swallow the next part.
    code, output = run(
        ["--format", "json", "-q", "SELECT * FROM a -- legacy;", "-q", "SELECT id FROM b"]
    )
    assert code == 1
    assert json.loads(output)["queries_analyzed"] == 2


def test_cli_multi_input_sarif_has_no_synthetic_anchors(tmp_path):
    a = tmp_path / "a.sql"
    a.write_text("SELECT * FROM t")
    b = tmp_path / "b.sql"
    b.write_text("SELECT * FROM u")
    # Joined (non-batch) multi-file runs have no real artifact to anchor
    # into; regions must be omitted rather than computed on the joined text.
    code, output = run(["--format", "sarif", str(a), str(b)])
    assert code == 1
    log = json.loads(output)
    for result in log["runs"][0]["results"]:
        assert "region" not in result["locations"][0]["physicalLocation"]


def test_statement_length_covers_folded_compound_keywords():
    # The lexer folds "NOT  NULL" into a token whose value is single-spaced;
    # length must measure consumed source, not the normalised value.
    from repro.sqlparser.parser import parse

    sql = "ALTER TABLE t ALTER COLUMN c SET NOT  NULL"
    statement = parse(sql)[0]
    assert statement.length == len(sql)
    two = parse("SELECT 1;\nSELECT 2;")
    assert [s.length for s in two] == [9, 9]
    assert [s.line for s in two] == [1, 2]


def test_cached_templates_keep_positions_across_input_shapes(toolchain):
    # A list-path run clears positions on its own copies only; the same
    # statement text checked later as a script must still see real anchors.
    sql = "SELECT * FROM cache_shape_t"
    toolchain.check([sql, "SELECT 1 FROM dual"])
    report = toolchain.check(sql)
    detection = report.detections[0].detection
    assert (detection.statement_offset, detection.statement_line) == (0, 1)


def test_caller_parsed_statements_keep_their_positions(toolchain):
    from repro.sqlparser import parse

    sql = "SELECT 1;\nSELECT * FROM caller_parsed_t;"
    statements = parse(sql)
    saved = [(s.offset, s.line) for s in statements]
    report = toolchain.check(statements)
    assert [(s.offset, s.line) for s in statements] == saved  # caller objects untouched
    wildcard = [
        e.detection for e in report.detections if e.detection.rule == "ColumnWildcardRule"
    ]
    assert wildcard and wildcard[0].statement_line == 2


def test_extend_continues_statement_numbering():
    from repro.context.builder import ContextBuilder

    builder = ContextBuilder()
    context = builder.build("SELECT a FROM t; SELECT b FROM u")
    builder.extend(context, "SELECT c FROM v")
    assert [a.statement.index for a in context.queries] == [0, 1, 2]


def test_mixed_list_inputs_keep_workload_order():
    from repro.context.builder import ContextBuilder
    from repro.sqlparser import annotate, parse_statement

    builder = ContextBuilder()
    pre_annotated = annotate(parse_statement("SELECT b FROM u"))
    context = builder.build(["SELECT a FROM t", pre_annotated, "SELECT c FROM v"])
    raws = [a.raw for a in context.queries]
    assert raws == ["SELECT a FROM t", "SELECT b FROM u", "SELECT c FROM v"]
    assert [a.statement.index for a in context.queries] == [0, 1, 2]


def test_memo_replay_rebinds_offsets(toolchain):
    # The same statement at a different position must carry its own offsets.
    first = toolchain.check("SELECT * FROM t ORDER BY RAND();")
    second = toolchain.check("SELECT 1;\nSELECT * FROM t ORDER BY RAND();")
    wildcard = [
        e.detection for e in second.detections if e.detection.rule == "ColumnWildcardRule"
    ]
    assert wildcard and wildcard[0].statement_line == 2
    assert wildcard[0].statement_offset > 0
    base = [e.detection for e in first.detections if e.detection.rule == "ColumnWildcardRule"]
    assert base and base[0].statement_line == 1


# ----------------------------------------------------------------------
# emitters
# ----------------------------------------------------------------------
def test_markdown_report_is_explainable(document):
    markdown = render_markdown(document)
    assert "# SQLCheck report — `demo.sql`" in markdown
    assert "| # | Anti-pattern | Rule |" in markdown
    assert "**Why it hurts.**" in markdown
    assert "**How to fix it.**" in markdown
    assert "```sql" in markdown


def test_markdown_fence_survives_backticks_in_sql(toolchain):
    evil = "SELECT * FROM t WHERE note = '\n```\n# Injected heading\n```\n'"
    report = toolchain.check(evil)
    markdown = render_report(report, "markdown", registry=toolchain.registry)
    # The block containing the hostile SQL opens with a 4-backtick fence, so
    # the embedded ``` runs stay inert content inside it.
    assert "````sql" in markdown
    opened = markdown.split("````sql", 1)[1]
    assert "# Injected heading" in opened.split("\n````", 1)[0]


def test_markdown_escapes_sql_derived_prose(toolchain):
    # PatternMatchingRule embeds the predicate's literal value in its
    # message; a hostile value must not become a live Markdown image/link.
    report = toolchain.check("SELECT name FROM t WHERE name LIKE '%![x](https://evil/px)'")
    messages = [e.detection.message for e in report.detections]
    assert any("![x]" in m for m in messages), "vector no longer reaches the message"
    markdown = render_report(report, "markdown", registry=toolchain.registry)
    prose = [
        line for line in markdown.splitlines() if "evil" in line and not line.startswith("SELECT")
    ]
    assert prose and all("![x]" not in line for line in prose)
    assert any("\\!\\[x\\]" in line for line in prose)


def test_markdown_source_name_cannot_break_out_of_code_span(toolchain):
    report = toolchain.check("SELECT * FROM t", source="evil`*injected*`.sql")
    markdown = render_report(
        report, "markdown", registry=toolchain.registry, source="evil`*injected*`.sql"
    )
    header = markdown.splitlines()[0]
    assert "`` evil`*injected*`.sql ``" in header


def test_sarif_carries_stats_in_run_properties(toolchain):
    report = toolchain.check(SQL)
    log = to_sarif(
        build_document(report, registry=toolchain.registry, include_stats=True),
        registry=toolchain.registry,
    )
    stats = log["runs"][0]["properties"]["pipeline_stats"]
    assert list(stats.values())[0]["stages"]
    plain = to_sarif(
        build_document(report, registry=toolchain.registry), registry=toolchain.registry
    )
    # Without --stats the property bag still names the cost model (every
    # report document carries it), but no timings.
    assert "pipeline_stats" not in plain["runs"][0]["properties"]
    assert set(plain["runs"][0]["properties"]["cost_model"].values()) == {"frequency"}


def test_markdown_batch_renders_one_section_per_corpus(toolchain):
    batch = toolchain.check_many({"a.sql": SQL, "b.sql": SQL})
    markdown = render_batch_report(batch, "markdown", registry=toolchain.registry)
    assert "# SQLCheck batch report" in markdown
    assert "## SQLCheck report — `a.sql`" in markdown
    assert "## SQLCheck report — `b.sql`" in markdown


def test_html_report_escapes_and_self_contains(toolchain):
    evil = "SELECT * FROM t WHERE name = '<script>alert(1)</script>'"
    report = toolchain.check(evil, source="evil.sql")
    html_out = render_report(report, "html", registry=toolchain.registry, source="evil.sql")
    assert html_out.startswith("<!DOCTYPE html>")
    assert "<script>alert(1)</script>" not in html_out
    assert "&lt;script&gt;" in html_out
    assert "<style>" in html_out  # no external assets


def test_html_report_includes_stats_when_requested(toolchain):
    report = toolchain.check(SQL)
    html_out = render_report(report, "html", registry=toolchain.registry, include_stats=True)
    assert "Pipeline stats" in html_out
    html_without = render_report(report, "html", registry=toolchain.registry)
    assert "Pipeline stats" not in html_without


def test_html_empty_report(toolchain):
    report = toolchain.check("SELECT order_id FROM orders WHERE order_id = 1")
    html_out = render_report(report, "html", registry=toolchain.registry)
    assert "No anti-patterns detected." in html_out


def test_clean_report_still_renders_requested_stats(toolchain):
    report = toolchain.check("SELECT order_id FROM orders WHERE order_id = 1")
    for fmt in ("markdown", "html"):
        out = render_report(report, fmt, registry=toolchain.registry, include_stats=True)
        assert "Pipeline stats" in out


def test_sarif_round_trips_through_json(report, toolchain):
    rendered = render_report(report, "sarif", registry=toolchain.registry, source="demo.sql")
    log = json.loads(rendered)
    run_obj = log["runs"][0]
    assert run_obj["tool"]["driver"]["name"] == "sqlcheck"
    assert len(run_obj["tool"]["driver"]["rules"]) == len(toolchain.registry)
    assert all(result["message"]["text"] for result in run_obj["results"])


def test_sarif_fix_travels_in_properties(document, toolchain):
    log = to_sarif(document, registry=toolchain.registry)
    fixes = [
        result["properties"].get("fix")
        for result in log["runs"][0]["results"]
        if result["properties"].get("fix")
    ]
    assert fixes and all("explanation" in fix for fix in fixes)


def test_sarif_rewrite_fix_is_a_byte_range_replacement(toolchain):
    """Rewrite-kind fixes with recorded offsets become real SARIF ``fixes``:
    the deleted region must cover exactly the offending statement's span in
    the analysed text, and the inserted content is the rewritten query."""
    sql = (
        "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, label VARCHAR(10));\n"
        "SELECT * FROM tenant WHERE tenant_id = 3;"
    )
    report = toolchain.check(sql, source="app.sql")
    document = build_document(report, registry=toolchain.registry, source="app.sql")
    log = to_sarif(document, registry=toolchain.registry)
    fixes = [r for r in log["runs"][0]["results"] if "fixes" in r]
    assert fixes, "expected at least one mechanically-applicable rewrite"
    for result in fixes:
        change = result["fixes"][0]["artifactChanges"][0]
        replacement = change["replacements"][0]
        region = replacement["deletedRegion"]
        span = sql[region["charOffset"]: region["charOffset"] + region["charLength"]]
        assert span == "SELECT * FROM tenant WHERE tenant_id = 3;"
        assert replacement["insertedContent"]["text"].startswith("SELECT tenant_id")
        assert result["fixes"][0]["description"]["text"]


def test_sarif_textual_fixes_stay_property_bag_only(document, toolchain):
    """Guidance-kind fixes (no rewrite, or no recorded position) must not
    claim to be mechanically applicable."""
    log = to_sarif(document, registry=toolchain.registry)
    for result in log["runs"][0]["results"]:
        fix = result["properties"].get("fix")
        if fix and not fix["rewritten_query"]:
            assert "fixes" not in result


def test_unknown_format_raises(report, toolchain):
    with pytest.raises(ValueError):
        render_report(report, "pdf", registry=toolchain.registry)


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_markdown_format():
    code, output = run(["--format", "markdown", "-q", "SELECT * FROM t"])
    assert code == 1  # detections found
    assert output.startswith("# SQLCheck report")
    assert "**Why it hurts.**" in output


def test_cli_top_truncates_markdown():
    code, full = run(["--format", "markdown", "-q", "SELECT * FROM t WHERE a LIKE '%x'"])
    code, truncated = run(
        ["--format", "markdown", "--top", "1", "-q", "SELECT * FROM t WHERE a LIKE '%x'"]
    )
    assert code == 1
    assert full.count("### ") > truncated.count("### ") == 1
    # the header keeps the true count and flags the truncation
    assert "**2 anti-pattern(s)**" in truncated
    assert "Showing the top 1 by impact." in truncated


def test_sarif_snippet_only_when_byte_identical_to_region(toolchain):
    # Leading comment: raw is longer than the span -> snippet omitted.
    # Folded compound keyword: same length, different text -> omitted too.
    for sql in ("-- lead comment\nSELECT * FROM t;", "SELECT * FROM t GROUP\nBY a;"):
        report = toolchain.check(sql, source="s.sql")
        log = to_sarif(
            build_document(report, registry=toolchain.registry, source="s.sql"),
            registry=toolchain.registry,
        )
        for result in log["runs"][0]["results"]:
            region = result["locations"][0]["physicalLocation"]["region"]
            snippet = region.get("snippet", {}).get("text")
            if snippet is not None:  # snippet must equal the region content
                assert snippet == sql[region["charOffset"] : region["charOffset"] + region["charLength"]]
            else:  # normalised raw: anchor kept, snippet dropped
                assert region["charOffset"] == sql.index("SELECT")


def test_cli_rejects_negative_top():
    code, output = run(["--top", "-1", "-q", "SELECT * FROM t"])
    assert code == 2
    assert "--top" in output


def test_cli_sarif_format_is_valid_json():
    code, output = run(["--format", "sarif", "-q", "SELECT * FROM t"])
    assert code == 1
    log = json.loads(output)
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["results"]


def test_cli_html_format():
    code, output = run(["--format", "html", "-q", "SELECT * FROM t"])
    assert code == 1
    assert output.startswith("<!DOCTYPE html>")


def test_cli_batch_rich_format(tmp_path):
    a = tmp_path / "a.sql"
    a.write_text("SELECT * FROM t;")
    b = tmp_path / "b.sql"
    b.write_text("SELECT * FROM u;")
    code, output = run(["--format", "markdown", "--batch", str(a), str(b)])
    assert code == 1
    assert "# SQLCheck batch report" in output
    code, output = run(["--format", "sarif", "--batch", str(a), str(b)])
    assert code == 1
    log = json.loads(output)
    uris = {artifact["location"]["uri"] for artifact in log["runs"][0]["artifacts"]}
    assert uris == {str(a), str(b)}


def test_cli_single_file_sets_source(tmp_path):
    path = tmp_path / "one.sql"
    path.write_text("SELECT * FROM t;")
    code, output = run(["--format", "sarif", str(path)])
    assert code == 1
    log = json.loads(output)
    location = log["runs"][0]["results"][0]["locations"][0]
    assert location["physicalLocation"]["artifactLocation"]["uri"] == str(path)


# ----------------------------------------------------------------------
# REST plumbing
# ----------------------------------------------------------------------
def test_rest_check_format_sarif():
    status, body = handle_check_request({"query": "SELECT * FROM t", "format": "sarif"})
    assert status == 200
    assert body["version"] == "2.1.0"
    assert body["runs"][0]["results"]


def test_rest_check_format_markdown_envelope():
    status, body = handle_check_request({"query": "SELECT * FROM t", "format": "markdown"})
    assert status == 200
    assert body["format"] == "markdown"
    assert body["content"].startswith("# SQLCheck report")


def test_rest_check_unknown_format_is_400():
    status, body = handle_check_request({"query": "SELECT 1", "format": "pdf"})
    assert status == 400
    assert "format" in body["error"]


def test_rest_check_default_format_unchanged():
    status, body = handle_check_request({"query": "SELECT * FROM t"})
    assert status == 200
    assert "detections" in body  # plain report dict, as before this PR


def test_rest_batch_format_html():
    status, body = handle_check_batch_request(
        {"corpora": {"a": "SELECT * FROM t"}, "format": "html"}
    )
    assert status == 200
    assert body["format"] == "html"
    assert body["content"].startswith("<!DOCTYPE html>")
