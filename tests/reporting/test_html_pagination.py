"""HTML report pagination: large reports chunk, small reports stay static."""
from __future__ import annotations

import re

import pytest

from repro.core.sqlcheck import SQLCheck
from repro.reporting.html import DEFAULT_PAGE_SIZE, render_html
from repro.reporting.model import build_document
from repro.testkit.generator import CorpusGenerator


@pytest.fixture(scope="module")
def toolchain():
    return SQLCheck()


@pytest.fixture(scope="module")
def small_document(toolchain):
    report = toolchain.check(["SELECT * FROM t"])
    return build_document(report, registry=toolchain.registry, source="small.sql")


@pytest.fixture(scope="module")
def large_document(toolchain):
    corpus = CorpusGenerator(7).corpus_sql(300)
    report = toolchain.check(corpus)
    document = build_document(report, registry=toolchain.registry, source="big.sql")
    assert len(document.findings) > 3 * DEFAULT_PAGE_SIZE  # sanity: worth paginating
    return document


class TestSmallReports:
    def test_no_pager_no_script(self, small_document):
        html = render_html(small_document)
        assert 'id="doc0-pager"' not in html
        assert "<script>" not in html
        assert 'class="page"' not in html

    def test_page_size_zero_disables_pagination(self, large_document):
        html = render_html(large_document, page_size=0)
        assert 'id="doc0-pager"' not in html
        assert "<script>" not in html


class TestPaginatedReports:
    def test_findings_chunk_into_pages(self, large_document):
        html = render_html(large_document, page_size=10)
        pages = re.findall(r'id="doc0-page(\d+)"', html)
        expected = -(-len(large_document.findings) // 10)
        assert [int(p) for p in pages] == list(range(1, expected + 1))

    def test_only_first_page_is_visible(self, large_document):
        html = render_html(large_document, page_size=10)
        total = len(re.findall(r'id="doc0-page\d+"', html))
        assert f'id="doc0-page1">' in html  # no display:none on page 1
        assert html.count("display:none") == total - 1
        first = html.index('id="doc0-page1"')
        assert "display:none" not in html[first - 80 : first]

    def test_pager_nav_and_script_are_inline(self, large_document):
        html = render_html(large_document, page_size=10)
        assert 'id="doc0-pager"' in html
        assert "sqlcheckShowPage" in html and "sqlcheckFlipPage" in html
        assert html.count("<script>") == 1
        total = -(-len(large_document.findings) // 10)
        assert f"Page 1 of {total}" in html
        # Self-contained: no external assets anywhere.
        assert "src=" not in html and "href=" not in html

    def test_every_finding_appears_exactly_once(self, large_document):
        html = render_html(large_document, page_size=10)
        for finding in large_document.findings:
            heading = f"<h3>{finding.rank}. "
            assert html.count(heading) == 1

    def test_each_page_has_its_own_summary_table(self, large_document):
        html = render_html(large_document, page_size=10)
        total = len(re.findall(r'id="doc0-page\d+"', html))
        assert html.count("<table>") == total

    def test_batch_documents_paginate_independently(self, large_document, small_document):
        html = render_html([large_document, small_document], page_size=10)
        assert 'id="doc0-pager"' in html
        assert 'id="doc1-pager"' not in html  # small doc stays static
        assert html.count("<script>") == 1
