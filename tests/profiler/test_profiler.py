"""Unit tests for the data profiler."""
from __future__ import annotations

import pytest

from repro.catalog import Column, Table, parse_type
from repro.catalog.types import TypeFamily
from repro.profiler import DataProfiler, Sampler
from repro.profiler.column_profile import profile_column
from repro.profiler.inference import (
    detect_delimited_values,
    detect_derived_pair,
    looks_like_email,
    looks_like_file_path,
    looks_like_plaintext_password_column,
)


class TestSampler:
    def test_small_tables_returned_in_full(self):
        rows = [{"a": i} for i in range(10)]
        assert Sampler(sample_size=100).sample(rows) == rows

    def test_large_tables_are_sampled(self):
        rows = [{"a": i} for i in range(1000)]
        sampled = Sampler(sample_size=50).sample(rows)
        assert len(sampled) == 50

    def test_sampling_is_deterministic(self):
        rows = [{"a": i} for i in range(1000)]
        first = Sampler(sample_size=20, seed=3).sample(rows)
        second = Sampler(sample_size=20, seed=3).sample(rows)
        assert first == second

    def test_sample_column_case_insensitive(self):
        rows = [{"Name": "x"}, {"Name": "y"}]
        assert Sampler().sample_column(rows, "name") == ["x", "y"]

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            Sampler(sample_size=0)


class TestColumnProfile:
    def test_basic_statistics(self):
        profile = profile_column("v", [1, 2, 2, 3, None])
        assert profile.values_sampled == 5
        assert profile.null_count == 1
        assert profile.distinct_count == 3
        assert profile.mean == pytest.approx(2.0)
        assert profile.median == 2
        assert profile.min_value == 1 and profile.max_value == 3
        assert profile.null_fraction == pytest.approx(0.2)

    def test_most_common_value(self):
        profile = profile_column("v", ["a", "a", "a", "b"])
        assert profile.most_common_value == "a"
        assert profile.most_common_fraction == pytest.approx(0.75)

    def test_distinct_ratio_and_constant(self):
        assert profile_column("v", ["x"] * 10).is_constant
        assert profile_column("v", list(range(10))).distinct_ratio == pytest.approx(1.0)

    def test_all_null_column(self):
        profile = profile_column("v", [None, None, None])
        assert profile.is_all_null
        assert profile.distinct_count == 0

    def test_inferred_family(self):
        assert profile_column("v", ["1", "2", "3"]).inferred_family is TypeFamily.INTEGER
        assert profile_column("v", ["a", "b"]).inferred_family is TypeFamily.TEXT

    def test_delimiter_detection(self):
        profile = profile_column("ids", ["U1,U2", "U3,U4,U5", "U6,U7"])
        assert profile.delimiter == ","
        assert profile.looks_delimited

    def test_timezone_fraction(self):
        profile = profile_column("ts", ["2020-01-01 10:00:00+00:00", "2020-01-02 10:00:00+00:00"])
        assert profile.timezone_fraction == pytest.approx(1.0)

    def test_file_path_fraction(self):
        profile = profile_column("p", ["/var/data/a.pdf", "/var/data/b.pdf", "hello"])
        assert profile.file_path_fraction == pytest.approx(2 / 3)

    def test_unhashable_values_do_not_crash(self):
        profile = profile_column("v", [["a"], ["a"], ["b"]])
        assert profile.distinct_count == 2


class TestInference:
    def test_detect_delimited_values_positive(self):
        delimiter, fraction = detect_delimited_values(["a,b", "c,d,e", "f,g"])
        assert delimiter == "," and fraction == 1.0

    def test_detect_delimited_values_rejects_prose(self):
        delimiter, fraction = detect_delimited_values(
            ["this is, a normal sentence", "another one, with a comma"]
        )
        assert fraction == 0.0

    def test_detect_delimited_values_semicolon(self):
        delimiter, _ = detect_delimited_values(["U1;U2", "U3;U4"])
        assert delimiter == ";"

    def test_detect_delimited_empty(self):
        assert detect_delimited_values([]) == (None, 0.0)

    def test_file_path_detection(self):
        assert looks_like_file_path("/srv/uploads/report.pdf")
        assert looks_like_file_path("C:\\files\\photo.jpg")
        assert looks_like_file_path("avatar_2020.png")
        assert not looks_like_file_path("just a sentence")
        assert not looks_like_file_path("https://example.org/page")
        assert looks_like_file_path("https://example.org/images/logo.png")

    def test_email_detection(self):
        assert looks_like_email("alice@example.org")
        assert not looks_like_email("not an email")

    def test_plaintext_password_detection(self):
        assert looks_like_plaintext_password_column("password", ["hunter2", "letmein"])
        assert not looks_like_plaintext_password_column(
            "password", ["5f4dcc3b5aa765d61d8327deb882cf99"] * 3
        )
        assert not looks_like_plaintext_password_column("username", ["hunter2"])

    def test_derived_pair_by_name(self):
        assert detect_derived_pair("age", [30], "birth_date", ["1990-01-01"])
        assert not detect_derived_pair("height", [1.8], "weight", [75])

    def test_derived_pair_by_functional_dependency(self):
        years = [1990 + (i % 5) for i in range(40)]
        ages = [2020 - y for y in years]
        assert detect_derived_pair("x_code", years, "y_code", ages)
        # non-functional relationship is not flagged
        import random

        rng = random.Random(1)
        noise = [rng.randint(0, 100) for _ in range(40)]
        assert not detect_derived_pair("x_code", years, "z_code", noise)


class TestDataProfiler:
    def test_profile_rows_with_definition(self):
        table = Table(name="users")
        table.add_column(Column(name="id", sql_type=parse_type("INTEGER"), is_primary_key=True))
        table.add_column(Column(name="name", sql_type=parse_type("VARCHAR(20)")))
        rows = [{"id": i, "name": f"user{i}"} for i in range(20)]
        profile = DataProfiler().profile_rows("users", rows, definition=table)
        assert profile.row_count == 20
        assert profile.column_count == 2
        assert profile.column("ID").distinct_count == 20
        assert profile.column_names() == ["id", "name"]

    def test_profile_rows_without_definition_discovers_columns(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "c": None}]
        profile = DataProfiler().profile_rows("t", rows)
        assert set(profile.column_names()) == {"a", "b", "c"}

    def test_profile_database(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10))")
        db.insert_rows("t", [{"a": i, "b": "x"} for i in range(15)])
        profiles = DataProfiler().profile_database(db)
        assert "t" in profiles
        assert profiles["t"].row_count == 15
        assert profiles["t"].definition is not None
