"""Unit tests for the anti-pattern model (catalog, detections, reports)."""
from __future__ import annotations

import pytest

from repro.model import (
    AntiPattern,
    APCategory,
    Detection,
    DetectionReport,
    Severity,
    catalog_entry,
    full_catalog,
)


class TestCatalog:
    def test_every_anti_pattern_has_a_catalog_entry(self):
        catalog = full_catalog()
        for anti_pattern in AntiPattern:
            assert anti_pattern in catalog

    def test_table1_has_26_entries_plus_readable_password(self):
        assert len(full_catalog()) == 27

    def test_category_assignment_matches_table1(self):
        assert catalog_entry(AntiPattern.MULTI_VALUED_ATTRIBUTE).category is APCategory.LOGICAL_DESIGN
        assert catalog_entry(AntiPattern.CLONE_TABLE).category is APCategory.PHYSICAL_DESIGN
        assert catalog_entry(AntiPattern.COLUMN_WILDCARD).category is APCategory.QUERY
        assert catalog_entry(AntiPattern.MISSING_TIMEZONE).category is APCategory.DATA

    def test_category_counts(self):
        counts: dict[APCategory, int] = {}
        for entry in full_catalog().values():
            counts[entry.category] = counts.get(entry.category, 0) + 1
        assert counts[APCategory.LOGICAL_DESIGN] == 7
        assert counts[APCategory.PHYSICAL_DESIGN] == 6
        assert counts[APCategory.QUERY] == 8  # 7 in Table 1 + Readable Password
        assert counts[APCategory.DATA] == 6

    def test_impact_profile_matches_table1_rows(self):
        mva = catalog_entry(AntiPattern.MULTI_VALUED_ATTRIBUTE).impact
        assert mva.performance and mva.maintainability and mva.data_integrity and mva.accuracy
        assert mva.data_amplification == -1
        npk = catalog_entry(AntiPattern.NO_PRIMARY_KEY).impact
        assert npk.data_amplification == +1 and not npk.accuracy
        rounding = catalog_entry(AntiPattern.ROUNDING_ERRORS).impact
        assert rounding.accuracy and not rounding.performance

    def test_display_name(self):
        assert AntiPattern.MULTI_VALUED_ATTRIBUTE.display_name == "Multi Valued Attribute"


class TestDetection:
    def make(self, **kwargs) -> Detection:
        defaults = dict(
            anti_pattern=AntiPattern.COLUMN_WILDCARD,
            message="m",
            query="SELECT * FROM t",
            query_index=3,
            table="t",
        )
        defaults.update(kwargs)
        return Detection(**defaults)

    def test_category_and_display_name(self):
        detection = self.make()
        assert detection.category is APCategory.QUERY
        assert detection.display_name == "Column Wildcard"

    def test_key_is_case_insensitive(self):
        a = self.make(table="Users", column="Name")
        b = self.make(table="users", column="name")
        assert a.key() == b.key()

    def test_to_dict_round_trip_fields(self):
        payload = self.make(confidence=0.875).to_dict()
        assert payload["anti_pattern"] == "column_wildcard"
        assert payload["category"] == "query"
        assert payload["confidence"] == 0.875
        assert payload["severity"] == "MEDIUM"

    def test_severity_ordering(self):
        assert Severity.LOW < Severity.HIGH
        assert sorted([Severity.HIGH, Severity.LOW, Severity.MEDIUM]) == [
            Severity.LOW,
            Severity.MEDIUM,
            Severity.HIGH,
        ]


class TestDetectionReport:
    def build_report(self) -> DetectionReport:
        return DetectionReport(
            detections=[
                Detection(anti_pattern=AntiPattern.COLUMN_WILDCARD, query_index=0, confidence=0.9),
                Detection(anti_pattern=AntiPattern.COLUMN_WILDCARD, query_index=0, confidence=0.7),
                Detection(anti_pattern=AntiPattern.NO_PRIMARY_KEY, query_index=1, table="t"),
            ],
            queries_analyzed=2,
            tables_analyzed=1,
        )

    def test_len_and_iter(self):
        report = self.build_report()
        assert len(report) == 3
        assert len(list(report)) == 3

    def test_by_type_and_counts(self):
        report = self.build_report()
        assert report.counts()[AntiPattern.COLUMN_WILDCARD] == 2
        assert report.types_detected() == {AntiPattern.COLUMN_WILDCARD, AntiPattern.NO_PRIMARY_KEY}

    def test_filter(self):
        report = self.build_report()
        assert len(report.filter(AntiPattern.NO_PRIMARY_KEY)) == 1

    def test_deduplicated_keeps_highest_confidence(self):
        report = self.build_report()
        deduplicated = report.deduplicated()
        wildcards = [d for d in deduplicated if d.anti_pattern is AntiPattern.COLUMN_WILDCARD]
        assert len(wildcards) == 1
        assert wildcards[0].confidence == 0.9

    def test_to_dict(self):
        payload = self.build_report().to_dict()
        assert payload["queries_analyzed"] == 2
        assert len(payload["detections"]) == 3
