"""Property-based tests (hypothesis) for core invariants.

These cover the substrate layers whose correctness everything else depends
on: the lexer's losslessness, the statement splitter, SQL value semantics,
the expression evaluator, the profiler, the engine's storage invariants, and
the ranking model's monotonicity.
"""
from __future__ import annotations

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import parse_type
from repro.engine import Database, values as V
from repro.engine.expressions import evaluate
from repro.model import AntiPattern, Detection
from repro.profiler.column_profile import profile_column
from repro.ranking import APMetrics, APRanker, C1
from repro.ranking.config import normalise_amplification, normalise_performance
from repro.sqlparser import parse, split, tokenize

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
identifier = st.text(alphabet=string.ascii_letters + "_", min_size=1, max_size=12).filter(
    lambda s: not s[0].isdigit()
)
literal_text = st.text(
    alphabet=string.ascii_letters + string.digits + " _-,.@", min_size=0, max_size=20
)
sql_fragment = st.text(
    alphabet=string.ascii_letters + string.digits + " _,.()*'=<>%;-\n\t",
    min_size=0,
    max_size=120,
)


class TestLexerProperties:
    @given(sql_fragment)
    @settings(max_examples=200, suppress_health_check=[HealthCheck.too_slow])
    def test_tokenization_is_lossless(self, sql):
        assert "".join(t.value for t in tokenize(sql)) == sql

    @given(sql_fragment)
    @settings(max_examples=100)
    def test_tokenization_never_crashes_and_positions_monotonic(self, sql):
        tokens = tokenize(sql)
        positions = [t.position for t in tokens]
        assert positions == sorted(positions)

    @given(st.lists(identifier, min_size=1, max_size=5))
    def test_select_round_trip(self, columns):
        sql = "SELECT " + ", ".join(columns) + " FROM some_table"
        statements = parse(sql)
        assert len(statements) == 1
        assert statements[0].tree.sql() == sql

    @given(st.lists(literal_text, min_size=1, max_size=4))
    def test_split_ignores_semicolons_inside_strings(self, values):
        literals = ", ".join("'" + v.replace("'", "") + ";'" for v in values)
        sql = f"INSERT INTO t (c) VALUES ({literals}); SELECT 1"
        assert len(split(sql)) == 2


class TestValueProperties:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_compare_is_antisymmetric(self, a, b):
        assert V.compare(a, b) == -(V.compare(b, a) or 0) if a != b else V.compare(a, b) == 0

    @given(st.text(max_size=30))
    def test_equals_is_reflexive_for_non_null(self, value):
        assert V.equals(value, value) is True

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_concat_matches_python_concatenation(self, a, b):
        assert V.concat(a, b) == a + b

    @given(st.text(alphabet=string.ascii_letters + string.digits, max_size=20))
    def test_like_full_wildcard_matches_everything(self, value):
        assert V.like_match(value, "%") is True

    @given(st.text(alphabet=string.ascii_letters, min_size=1, max_size=20))
    def test_like_exact_match(self, value):
        assert V.like_match(value, value) is True

    @given(st.text(alphabet=string.ascii_letters, min_size=1, max_size=30))
    def test_varchar_coercion_respects_length(self, value):
        stored = V.coerce(value, parse_type("VARCHAR(10)"))
        assert len(stored) <= 10
        assert value.startswith(stored)


class TestExpressionProperties:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_arithmetic_matches_python(self, a, b):
        assert evaluate(f"{a} + {b}", {}) == a + b
        assert evaluate(f"{a} - {b}", {}) == a - b
        assert evaluate(f"{a} * {b}", {}) == a * b

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_comparison_matches_python(self, a, b):
        assert evaluate(f"{a} > {b}", {}) == (a > b)
        assert evaluate(f"{a} = {b}", {}) == (a == b)

    @given(st.integers(-100, 100), st.integers(-100, 100), st.integers(-100, 100))
    def test_between_equivalence(self, value, low, high):
        row = {"v": value}
        expected = low <= value <= high
        assert bool(evaluate(f"v BETWEEN {low} AND {high}", row)) == expected

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=8), st.integers(-50, 50))
    def test_in_list_equivalence(self, options, value):
        row = {"v": value}
        expression = "v IN (" + ", ".join(str(o) for o in options) + ")"
        assert bool(evaluate(expression, row)) == (value in options)


class TestProfilerProperties:
    @given(st.lists(st.one_of(st.none(), st.integers(-1000, 1000)), min_size=1, max_size=200))
    def test_profile_counts_are_consistent(self, values):
        profile = profile_column("c", values)
        assert profile.values_sampled == len(values)
        assert profile.null_count + profile.non_null_count == len(values)
        assert 0 <= profile.null_fraction <= 1
        assert profile.distinct_count <= max(1, profile.non_null_count)
        assert 0 <= profile.distinct_ratio <= 1
        assert 0 <= profile.most_common_fraction <= 1

    @given(st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
                    min_size=5, max_size=100))
    def test_most_common_value_is_actually_most_common(self, values):
        profile = profile_column("c", values)
        counts = {v: values.count(v) for v in set(values)}
        assert counts[profile.most_common_value] == max(counts.values())


class TestEngineProperties:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.integers(0, 10**6), st.text(alphabet=string.ascii_letters, max_size=10)),
                    min_size=1, max_size=40, unique_by=lambda t: t[0]))
    def test_insert_then_count_and_lookup(self, rows):
        db = Database()
        db.execute("CREATE TABLE T (k INTEGER PRIMARY KEY, v VARCHAR(20))")
        db.insert_rows("T", [{"k": k, "v": v} for k, v in rows])
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == len(rows)
        key, value = rows[0]
        result = db.execute(f"SELECT v FROM T WHERE k = {key}")
        assert result.rowcount == 1
        assert result.rows[0]["v"] == value[:20]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    def test_sum_matches_python(self, numbers):
        db = Database()
        db.execute("CREATE TABLE N (pos INTEGER PRIMARY KEY, n INTEGER)")
        db.insert_rows("N", [{"pos": i, "n": n} for i, n in enumerate(numbers)])
        assert db.execute("SELECT SUM(n) FROM N").scalar() == pytest.approx(sum(numbers))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 10**4), min_size=2, max_size=40, unique=True))
    def test_index_and_scan_agree(self, keys):
        db = Database()
        db.execute("CREATE TABLE T (k INTEGER PRIMARY KEY, grp INTEGER)")
        db.insert_rows("T", [{"k": k, "grp": k % 5} for k in keys])
        db.execute("CREATE INDEX idx_grp ON T (grp)")
        query = "SELECT k FROM T WHERE grp = 3"
        indexed = {r["k"] for r in db.execute(query, force_index=True).rows}
        scanned = {r["k"] for r in db.execute(query, force_index=False).rows}
        assert indexed == scanned


class TestRankingProperties:
    @given(st.floats(0, 100), st.floats(0, 100))
    def test_normalisation_is_monotone_and_bounded(self, a, b):
        low, high = sorted((a, b))
        assert 0.0 <= normalise_performance(low) <= normalise_performance(high) <= 1.0
        assert 0.0 <= normalise_amplification(low) <= normalise_amplification(high) <= 1.0

    @given(
        st.floats(0, 50), st.floats(0, 50), st.floats(0, 10), st.floats(0, 10),
        st.booleans(), st.booleans(),
    )
    def test_score_is_bounded_by_total_weight(self, rp, wp, m, da, di, a):
        metrics = APMetrics(
            read_performance=rp, write_performance=wp, maintainability=m,
            data_amplification=da, data_integrity=int(di), accuracy=int(a),
        )
        score = APRanker(C1).score_metrics(metrics)
        assert 0.0 <= score <= C1.total_weight() + 1e-9

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_detection_score_monotone_in_confidence(self, c1, c2):
        low, high = sorted((c1, c2))
        ranker = APRanker()
        low_score = ranker.score_detection(
            Detection(anti_pattern=AntiPattern.MULTI_VALUED_ATTRIBUTE, confidence=low)
        )
        high_score = ranker.score_detection(
            Detection(anti_pattern=AntiPattern.MULTI_VALUED_ATTRIBUTE, confidence=high)
        )
        assert low_score <= high_score + 1e-12
