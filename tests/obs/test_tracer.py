"""Tracer semantics, the JSONL export schema, and pipeline span trees."""
from __future__ import annotations

import json
import time

import pytest

from repro.detector import detector as detector_module
from repro.detector import pipeline as pipeline_module
from repro.detector.detector import APDetector, DetectorConfig
from repro.obs import get_tracer, now
from repro.obs.trace import DEFAULT_MAX_SPANS, SCHEMA_VERSION, Tracer
from repro.testkit.generator import CorpusGenerator


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


@pytest.fixture
def process_tracer():
    """The process-wide tracer, enabled for one test and always restored."""
    shared = get_tracer()
    shared.enable(reset=True)
    yield shared
    shared.disable()
    shared.reset()


class TestTracerCore:
    def test_disabled_tracer_is_a_noop(self):
        cold = Tracer(enabled=False)
        with cold.span("run", source="x") as span:
            assert span is None
        assert cold.record("stage", now(), now()) is None
        assert cold.adopt([{"name": "chunk"}]) == []
        assert cold.spans() == []

    def test_nested_spans_form_a_tree(self, tracer):
        with tracer.span("run") as run:
            with tracer.span("stage:parse") as parse:
                pass
            with tracer.span("stage:detect") as detect:
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["stage:parse"].parent_id == run.span_id
        assert spans["stage:detect"].parent_id == run.span_id
        assert spans["run"].parent_id is None
        assert spans["stage:parse"].span_id != spans["stage:detect"].span_id

    def test_record_parents_to_the_open_span(self, tracer):
        t0 = now()
        with tracer.span("run") as run:
            tracer.record("stage:rank", t0, now(), items=3)
        (ranked,) = [s for s in tracer.spans() if s.name == "stage:rank"]
        assert ranked.parent_id == run.span_id
        assert ranked.attributes == {"items": 3}
        assert ranked.duration >= 0

    def test_adopt_maps_worker_payloads_onto_the_timeline(self, tracer):
        with tracer.span("stage:parse") as parse:
            adopted = tracer.adopt([
                {"name": "chunk", "wall_start": time.time(), "duration": 0.25,
                 "attributes": {"statements": 40, "pid": 123}},
            ])
        (chunk,) = adopted
        assert chunk.parent_id == parse.span_id
        assert chunk.duration == pytest.approx(0.25)
        assert chunk.attributes["statements"] == 40

    def test_exception_inside_span_is_annotated_and_propagates(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("run"):
                raise RuntimeError("boom")
        (run,) = tracer.spans()
        assert run.attributes["error"] == "RuntimeError"

    def test_max_spans_bound_counts_drops(self):
        small = Tracer(enabled=True, max_spans=2)
        for index in range(5):
            small.record(f"s{index}", 0.0, 0.0)
        assert len(small.spans()) == 2
        assert small.dropped == 3
        assert DEFAULT_MAX_SPANS >= 100_000

    def test_enable_reset_clears_earlier_trace(self, tracer):
        with tracer.span("old"):
            pass
        tracer.enable(reset=True)
        assert tracer.spans() == []


class TestJsonlExport:
    REQUIRED_KEYS = {"v", "span_id", "parent_id", "name", "start_ms",
                     "duration_ms", "attributes"}

    def _export_lines(self, tracer, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = tracer.export(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        return written, lines

    def test_every_line_has_the_full_schema(self, tracer, tmp_path):
        with tracer.span("run", source="corpus.sql"):
            with tracer.span("stage:parse"):
                pass
        written, lines = self._export_lines(tracer, tmp_path)
        assert written == 2 == len(lines)
        for line in lines:
            assert set(line) == self.REQUIRED_KEYS
            assert line["v"] == SCHEMA_VERSION
            assert line["duration_ms"] >= 0
        ids = {line["span_id"] for line in lines}
        for line in lines:
            assert line["parent_id"] is None or line["parent_id"] in ids

    def test_dropped_spans_leave_a_marker_line(self, tmp_path):
        small = Tracer(enabled=True, max_spans=1)
        small.record("kept", 0.0, 0.0)
        small.record("lost", 0.0, 0.0)
        _, lines = self._export_lines(small, tmp_path)
        assert lines[-1]["name"] == "tracer:dropped"
        assert lines[-1]["attributes"]["dropped_spans"] == 1


class TestPipelineSpanTrees:
    def _span_tree(self, tracer):
        spans = tracer.spans()
        by_id = {s.span_id: s for s in spans}
        return spans, by_id

    def test_serial_detect_batch_nests_stages_and_rules(self, process_tracer):
        corpus = CorpusGenerator(11).corpus_sql(20)
        report, stats = APDetector(DetectorConfig()).detect_batch(corpus, workers=1)
        assert stats.parallel_mode == "serial"
        spans, by_id = self._span_tree(process_tracer)
        names = [s.name for s in spans]
        (batch,) = [s for s in spans if s.name == "detect_batch"]
        assert batch.attributes["statements"] == len(corpus)
        for stage in ("stage:parse", "stage:context", "stage:detect"):
            (span,) = [s for s in spans if s.name == stage]
            assert span.parent_id == batch.span_id
        rule_spans = [s for s in spans if s.name.startswith("rule:")]
        assert rule_spans, names
        (detect_stage,) = [s for s in spans if s.name == "stage:detect"]
        assert all(s.parent_id == detect_stage.span_id for s in rule_spans)
        fired = sum(s.attributes.get("fired", 0) for s in rule_spans)
        assert fired == len(report.detections)

    def test_pool_detect_batch_adopts_worker_chunk_spans(self, process_tracer, monkeypatch):
        for module in (pipeline_module, detector_module):
            monkeypatch.setattr(
                module, "resolve_workers", lambda requested: min(requested, 2)
            )
        corpus = [f"SELECT c{i} FROM t{i} WHERE c{i} = {i}" for i in range(80)]
        _, stats = APDetector(DetectorConfig()).detect_batch(corpus, workers=2)
        assert stats.parallel_mode == "process-pool"
        spans, by_id = self._span_tree(process_tracer)
        (parse_stage,) = [s for s in spans if s.name == "stage:parse"]
        chunks = [s for s in spans if s.name == "chunk"]
        assert len(chunks) == stats.chunks
        assert all(s.parent_id == parse_stage.span_id for s in chunks)
        assert sum(s.attributes["statements"] for s in chunks) == len(corpus)
        assert all("pid" in s.attributes for s in chunks)
