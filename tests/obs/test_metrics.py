"""Metrics registry semantics and the Prometheus text exposition."""
from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    get_metrics,
    render_prometheus,
    set_metrics_enabled,
    swap_registry,
)
from repro.obs import PROMETHEUS_CONTENT_TYPE
from repro.obs.metrics import observe_stage_seconds


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_inc_and_value_by_labels(self, registry):
        registry.rule_fires.inc(rule="select-star")
        registry.rule_fires.inc(2, rule="select-star")
        registry.rule_fires.inc(rule="no-primary-key")
        assert registry.rule_fires.value(rule="select-star") == 3
        assert registry.rule_fires.value(rule="no-primary-key") == 1
        assert registry.rule_fires.total() == 4

    def test_counter_cannot_decrease(self, registry):
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.statements.inc(-1)

    def test_label_schema_is_enforced(self, registry):
        with pytest.raises(ValueError, match="expected labels"):
            registry.rule_fires.inc()  # missing "rule"
        with pytest.raises(ValueError, match="expected labels"):
            registry.rule_fires.inc(rule="x", extra="y")
        with pytest.raises(ValueError, match="expected labels"):
            registry.statements.inc(stage="detect")  # unlabelled counter

    def test_disabled_registry_ignores_mutations(self):
        cold = MetricsRegistry(enabled=False)
        cold.rule_fires.inc(rule="select-star")
        cold.rule_fires.inc_single("select-star")
        cold.annotation_cache_entries.set(10)
        cold.rule_check_seconds.observe(0.001, rule="select-star")
        cold.rule_check_seconds.observe_single(0.001, "select-star")
        assert cold.rule_fires.total() == 0
        assert cold.annotation_cache_entries.value() == 0
        assert cold.rule_check_seconds.count(rule="select-star") == 0

    def test_single_label_fast_paths_share_the_series(self, registry):
        """inc_single/observe_single land in the same series as inc/observe."""
        registry.rule_fires.inc(rule="r")
        registry.rule_fires.inc_single("r", 2)
        assert registry.rule_fires.value(rule="r") == 3
        registry.rule_check_seconds.observe(0.001, rule="r")
        registry.rule_check_seconds.observe_single(0.002, "r")
        assert registry.rule_check_seconds.count(rule="r") == 2
        assert registry.rule_check_seconds.sum(rule="r") == pytest.approx(0.003)


class TestGauge:
    def test_set_inc_dec(self, registry):
        registry.memo_entries.set(5)
        registry.memo_entries.inc(3)
        registry.memo_entries.dec(1)
        assert registry.memo_entries.value() == 7


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self, registry):
        hist = registry.rule_check_seconds
        hist.observe(0.00001, rule="r")  # exactly the first bound
        hist.observe(0.0002, rule="r")
        hist.observe(5.0, rule="r")  # beyond every bound -> +Inf slot
        ((labels, count, total, buckets),) = list(hist.series())
        assert labels == {"rule": "r"}
        assert count == 3
        assert total == pytest.approx(5.00021)
        assert sum(buckets) == 3
        assert buckets[-1] == 1  # the +Inf overflow observation
        assert hist.count(rule="r") == 3
        assert hist.sum(rule="r") == pytest.approx(5.00021)

    def test_needs_at_least_one_bucket(self, registry):
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("sqlcheck_test_empty", "h", buckets=())


class TestRegistry:
    def test_duplicate_registration_is_rejected(self, registry):
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("sqlcheck_statements_total", "dup")

    def test_reset_zeroes_series_but_keeps_declarations(self, registry):
        registry.rule_fires.inc(rule="r")
        registry.reset()
        assert registry.rule_fires.total() == 0
        assert "sqlcheck_rule_fires_total" in registry

    def test_snapshot_contains_only_populated_series(self, registry):
        registry.rule_fires.inc(rule="r")
        registry.rule_check_seconds.observe(0.001, rule="r")
        snap = registry.snapshot()
        assert set(snap) == {"sqlcheck_rule_fires_total", "sqlcheck_rule_check_seconds"}
        assert snap["sqlcheck_rule_fires_total"]["type"] == "counter"
        assert snap["sqlcheck_rule_fires_total"]["values"] == [
            {"labels": {"rule": "r"}, "value": 1.0}
        ]
        assert snap["sqlcheck_rule_check_seconds"]["values"][0]["count"] == 1

    def test_observe_stage_seconds_folds_pipeline_stats(self, registry):
        from repro.detector.pipeline import PipelineStats

        previous = swap_registry(registry)
        try:
            stats = PipelineStats(
                parse_seconds=0.1, context_seconds=0.02, detect_seconds=0.3,
                rank_seconds=0.01, fix_seconds=0.005, statements=7,
            )
            observe_stage_seconds(stats)
        finally:
            swap_registry(previous)
        assert registry.stage_seconds.count(stage="parse") == 1
        assert registry.stage_seconds.sum(stage="detect") == pytest.approx(0.3)
        assert registry.statements.total() == 7


class TestProcessGlobals:
    def test_set_metrics_enabled_round_trips(self):
        before = get_metrics().statements.total()
        previous = set_metrics_enabled(False)
        try:
            assert get_metrics().enabled is False
            get_metrics().statements.inc(5)
            assert get_metrics().statements.total() == before
        finally:
            set_metrics_enabled(previous)

    def test_swap_registry_isolates_measurement_windows(self):
        fresh = MetricsRegistry(enabled=True)
        previous = swap_registry(fresh)
        try:
            get_metrics().statements.inc(3)
            assert fresh.statements.total() == 3
            assert previous.statements is not fresh.statements
        finally:
            assert swap_registry(previous) is fresh


class TestPrometheusExposition:
    def test_empty_registry_still_emits_help_and_type(self, registry):
        text = render_prometheus(registry)
        assert "# HELP sqlcheck_rule_fires_total" in text
        assert "# TYPE sqlcheck_rule_fires_total counter" in text
        assert "# TYPE sqlcheck_rule_check_seconds histogram" in text
        assert "# TYPE sqlcheck_detection_memo_entries gauge" in text

    def test_counter_and_gauge_lines(self, registry):
        registry.rule_fires.inc(3, rule="select-star")
        registry.memo_entries.set(12)
        text = render_prometheus(registry)
        assert 'sqlcheck_rule_fires_total{rule="select-star"} 3' in text
        assert "sqlcheck_detection_memo_entries 12" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self, registry):
        hist = registry.rule_check_seconds
        hist.observe(0.00001, rule="r")
        hist.observe(0.0002, rule="r")
        hist.observe(5.0, rule="r")
        lines = render_prometheus(registry).splitlines()
        buckets = [
            line for line in lines
            if line.startswith("sqlcheck_rule_check_seconds_bucket") and '"r"' in line
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert 'le="+Inf"' in buckets[-1]
        assert counts[-1] == 3
        assert 'sqlcheck_rule_check_seconds_count{rule="r"} 3' in lines
        (sum_line,) = [
            line for line in lines
            if line.startswith('sqlcheck_rule_check_seconds_sum{rule="r"}')
        ]
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(5.00021)

    def test_label_values_are_escaped(self, registry):
        registry.quarantined_errors.inc(stage='de"tect\\x', code="a\nb")
        text = render_prometheus(registry)
        assert 'stage="de\\"tect\\\\x"' in text
        assert 'code="a\\nb"' in text

    def test_content_type_is_prometheus_text(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_exposition_is_machine_parseable(self, registry):
        """Every non-comment line is `name{labels} value` with a float value."""
        registry.rule_fires.inc(rule="r")
        registry.rule_check_seconds.observe(0.001, rule="r")
        registry.quarantined_errors.inc(stage="detect", code="rule-error")
        for line in render_prometheus(registry).splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value_part = line.rsplit(" ", 1)
            assert name_part.startswith("sqlcheck_")
            float(value_part)  # must parse
