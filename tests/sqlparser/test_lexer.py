"""Unit tests for the SQL lexer."""
from __future__ import annotations

import pytest

from repro.sqlparser import Token, TokenType, tokenize
from repro.sqlparser.lexer import Lexer


def types_of(sql: str) -> list[TokenType]:
    return [t.ttype for t in tokenize(sql) if not t.is_whitespace]


def values_of(sql: str) -> list[str]:
    return [t.value for t in tokenize(sql) if not t.is_whitespace]


class TestBasicTokens:
    def test_simple_select_token_types(self):
        types = types_of("SELECT id FROM users")
        assert types == [
            TokenType.DML_KEYWORD,
            TokenType.NAME,
            TokenType.KEYWORD,
            TokenType.NAME,
        ]

    def test_round_trip_preserves_text(self):
        sql = "SELECT  a ,  b FROM t  WHERE x = 'it''s'  -- done"
        assert "".join(t.value for t in tokenize(sql)) == sql

    def test_number_tokens(self):
        tokens = [t for t in tokenize("SELECT 1, 2.5, 1e9, .5") if t.ttype is TokenType.NUMBER]
        assert [t.value for t in tokens] == ["1", "2.5", "1e9", ".5"]

    def test_string_literal_with_escaped_quote(self):
        tokens = [t for t in tokenize("SELECT 'it''s'") if t.ttype is TokenType.STRING]
        assert tokens[0].value == "'it''s'"
        assert tokens[0].unquoted() == "it's"

    def test_unterminated_string_does_not_crash(self):
        tokens = tokenize("SELECT 'oops")
        assert tokens[-1].ttype is TokenType.STRING

    def test_quoted_identifiers(self):
        sql = 'SELECT "First Name", `col`, [col2] FROM t'
        quoted = [t for t in tokenize(sql) if t.ttype is TokenType.QUOTED_NAME]
        assert [t.unquoted() for t in quoted] == ["First Name", "col", "col2"]

    def test_wildcard_token(self):
        tokens = values_of("SELECT * FROM t")
        assert "*" in tokens
        types = types_of("SELECT * FROM t")
        assert TokenType.WILDCARD in types

    def test_comparison_operators(self):
        for op in ("=", "!=", "<>", "<=", ">=", "<", ">"):
            tokens = [t for t in tokenize(f"a {op} b") if t.ttype is TokenType.COMPARISON]
            assert len(tokens) == 1
            assert tokens[0].value == op

    def test_concat_operator(self):
        tokens = [t for t in tokenize("a || b") if t.ttype is TokenType.OPERATOR]
        assert tokens[0].value == "||"

    def test_placeholders(self):
        sql = "SELECT * FROM t WHERE a = ? AND b = %s AND c = :name AND d = $1"
        placeholders = [t.value for t in tokenize(sql) if t.ttype is TokenType.PLACEHOLDER]
        assert placeholders == ["?", "%s", ":name", "$1"]

    def test_unknown_character_does_not_crash(self):
        tokens = tokenize("SELECT 1 §")
        assert tokens[-1].ttype is TokenType.UNKNOWN


class TestComments:
    def test_line_comment(self):
        tokens = tokenize("SELECT 1 -- trailing comment")
        assert tokens[-1].ttype is TokenType.COMMENT

    def test_block_comment(self):
        tokens = tokenize("SELECT /* hi */ 1")
        assert any(t.ttype is TokenType.COMMENT for t in tokens)

    def test_unterminated_block_comment(self):
        tokens = tokenize("SELECT 1 /* oops")
        assert tokens[-1].ttype is TokenType.COMMENT

    def test_hash_comment(self):
        tokens = tokenize("SELECT 1 # mysql comment")
        assert tokens[-1].ttype is TokenType.COMMENT


class TestKeywordClassification:
    def test_dml_keywords(self):
        for kw in ("SELECT", "INSERT", "UPDATE", "DELETE"):
            assert tokenize(kw)[0].ttype is TokenType.DML_KEYWORD

    def test_ddl_keywords(self):
        for kw in ("CREATE", "ALTER", "DROP", "TRUNCATE"):
            assert tokenize(kw)[0].ttype is TokenType.DDL_KEYWORD

    def test_datatype_keywords(self):
        for kw in ("INTEGER", "VARCHAR", "FLOAT", "TIMESTAMP", "BOOLEAN"):
            assert tokenize(kw)[0].ttype is TokenType.DATATYPE

    def test_case_insensitive_keywords(self):
        assert tokenize("select")[0].ttype is TokenType.DML_KEYWORD
        assert tokenize("SeLeCt")[0].ttype is TokenType.DML_KEYWORD

    def test_unknown_word_is_identifier(self):
        assert tokenize("frobnicate")[0].ttype is TokenType.NAME

    def test_normalized_value(self):
        token = tokenize("select")[0]
        assert token.normalized == "SELECT"


class TestCompoundKeywords:
    def test_group_by_folded(self):
        values = values_of("SELECT a FROM t GROUP BY a")
        assert "GROUP BY" in values

    def test_order_by_folded(self):
        values = values_of("SELECT a FROM t ORDER BY a DESC")
        assert "ORDER BY" in values

    def test_primary_key_folded(self):
        values = values_of("CREATE TABLE t (id INT PRIMARY KEY)")
        assert "PRIMARY KEY" in values

    def test_left_outer_join_longest_match(self):
        values = values_of("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert "LEFT OUTER JOIN" in values
        assert "LEFT JOIN" not in values

    def test_not_null_folded(self):
        values = values_of("CREATE TABLE t (a INT NOT NULL)")
        assert "NOT NULL" in values

    def test_compound_preserves_original_case_words(self):
        values = values_of("select a from t group by a")
        assert "group by" in values


class TestTokenHelpers:
    def test_match_with_values(self):
        token = Token(TokenType.KEYWORD, "where")
        assert token.match(TokenType.KEYWORD, "WHERE")
        assert token.match(TokenType.KEYWORD, ("FROM", "WHERE"))
        assert not token.match(TokenType.KEYWORD, "FROM")
        assert not token.match(TokenType.NAME, "where")

    def test_unquoted_bracket(self):
        token = Token(TokenType.QUOTED_NAME, "[My Col]")
        assert token.unquoted() == "My Col"

    def test_lexer_is_reusable(self):
        lexer = Lexer()
        first = lexer.tokenize("SELECT 1")
        second = lexer.tokenize("SELECT 2")
        assert first != second
        assert len(first) == len(second)

    def test_positions_are_monotonic(self):
        tokens = tokenize("SELECT a, b FROM t WHERE x = 1")
        positions = [t.position for t in tokens]
        assert positions == sorted(positions)
        assert positions[0] == 0
