"""Unit tests for the statement annotation layer."""
from __future__ import annotations

import pytest

from repro.sqlparser import ColumnReference, annotate, parse_statement


class TestTables:
    def test_single_table(self):
        a = annotate("SELECT * FROM Users")
        assert [t.name for t in a.tables] == ["Users"]

    def test_table_alias_with_as(self):
        a = annotate("SELECT * FROM Users AS u")
        assert a.tables[0].alias == "u"
        assert a.tables[0].effective_alias == "u"

    def test_table_alias_bare(self):
        a = annotate("SELECT * FROM Users u WHERE u.id = 1")
        assert a.tables[0].alias == "u"

    def test_multiple_tables_comma_join(self):
        a = annotate("SELECT * FROM a, b, c WHERE a.x = b.x")
        assert [t.name for t in a.tables] == ["a", "b", "c"]

    def test_join_tables_collected(self):
        a = annotate("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON c.y = a.y")
        assert [t.name for t in a.all_tables] == ["a", "b", "c"]
        assert a.join_count == 2

    def test_alias_map_resolution(self):
        a = annotate("SELECT * FROM Users u JOIN Orders o ON o.user_id = u.id")
        assert a.resolve_qualifier("u") == "Users"
        assert a.resolve_qualifier("o") == "Orders"
        assert a.resolve_qualifier("unknown") == "unknown"
        assert a.resolve_qualifier(None) is None

    def test_update_target_table(self):
        a = annotate("UPDATE Users SET name = 'x' WHERE id = 1")
        assert [t.name for t in a.tables] == ["Users"]

    def test_insert_target_table(self):
        a = annotate("INSERT INTO Users (id, name) VALUES (1, 'x')")
        assert [t.name for t in a.tables] == ["Users"]

    def test_delete_target_table(self):
        a = annotate("DELETE FROM Users WHERE id = 1")
        assert [t.name for t in a.tables] == ["Users"]

    def test_ddl_target_table(self):
        a = annotate("CREATE TABLE Users (id INT)")
        assert [t.name for t in a.tables] == ["Users"]

    def test_create_index_target_table(self):
        a = annotate("CREATE INDEX idx_name ON Users (name)")
        assert [t.name for t in a.tables] == ["Users"]


class TestSelectClause:
    def test_wildcard_detection(self):
        assert annotate("SELECT * FROM t").has_select_wildcard
        assert annotate("SELECT t.* FROM t").has_select_wildcard
        assert not annotate("SELECT a, b FROM t").has_select_wildcard

    def test_select_items_split(self):
        a = annotate("SELECT a, b AS bee, COUNT(c) FROM t")
        assert len(a.select_items) == 3

    def test_select_columns_qualified(self):
        a = annotate("SELECT u.name, o.total FROM Users u JOIN Orders o ON o.uid = u.id")
        assert ColumnReference("name", "u") in a.select_columns
        assert ColumnReference("total", "o") in a.select_columns

    def test_distinct_flag(self):
        assert annotate("SELECT DISTINCT a FROM t").is_distinct
        assert not annotate("SELECT a FROM t").is_distinct

    def test_count_wildcard_is_not_projection_wildcard(self):
        # COUNT(*) inside a function should not be flagged the same way as SELECT *
        a = annotate("SELECT COUNT(*) FROM t")
        # The wildcard appears inside a parenthesis, still in the select clause;
        # the rule layer distinguishes them, the annotation just records items.
        assert len(a.select_items) == 1


class TestPredicates:
    def test_simple_equality(self):
        a = annotate("SELECT * FROM t WHERE status = 'active'")
        p = a.predicates[0]
        assert p.column.name == "status"
        assert p.operator == "="
        assert p.value == "'active'"

    def test_like_predicate(self):
        a = annotate("SELECT * FROM t WHERE name LIKE '%foo%'")
        assert a.pattern_predicates
        assert a.pattern_predicates[0].value == "'%foo%'"

    def test_join_condition_predicate(self):
        a = annotate("SELECT * FROM a JOIN b ON a.x = b.y")
        join_preds = [p for p in a.predicates if p.clause == "on"]
        assert join_preds and join_preds[0].is_column_comparison

    def test_is_null_predicate(self):
        a = annotate("SELECT * FROM t WHERE deleted_at IS NULL")
        operators = {p.operator for p in a.predicates}
        assert "IS" in operators

    def test_in_predicate(self):
        a = annotate("SELECT * FROM t WHERE id IN (1, 2, 3)")
        operators = {p.operator for p in a.predicates}
        assert "IN" in operators

    def test_multiple_predicates(self):
        a = annotate("SELECT * FROM t WHERE a = 1 AND b > 2 AND c LIKE 'x%'")
        assert len(a.predicates) == 3


class TestOtherClauses:
    def test_group_by_columns(self):
        a = annotate("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
        assert [c.name for c in a.group_by_columns] == ["dept"]

    def test_order_by_rand_detection(self):
        assert annotate("SELECT * FROM t ORDER BY RAND()").uses_random_ordering
        assert annotate("SELECT * FROM t ORDER BY RANDOM()").uses_random_ordering
        assert not annotate("SELECT * FROM t ORDER BY name").uses_random_ordering

    def test_limit_extraction(self):
        assert annotate("SELECT * FROM t LIMIT 25").limit == 25
        assert annotate("SELECT * FROM t").limit is None

    def test_update_assignments(self):
        a = annotate("UPDATE t SET a = 1, b = 'x' WHERE id = 3")
        assert ("a", "1") in a.update_assignments
        assert ("b", "'x'") in a.update_assignments

    def test_insert_with_column_list(self):
        a = annotate("INSERT INTO t (a, b) VALUES (1, 2)")
        assert a.insert_columns == ["a", "b"]

    def test_insert_without_column_list(self):
        a = annotate("INSERT INTO t VALUES (1, 2)")
        assert a.insert_columns is None

    def test_insert_multi_row_values(self):
        a = annotate("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert a.insert_values_rows == 3

    def test_functions_collected(self):
        a = annotate("SELECT COALESCE(a, b), COUNT(*) FROM t")
        assert {"COALESCE", "COUNT"} <= a.functions

    def test_string_literals_collected(self):
        a = annotate("SELECT * FROM t WHERE a = 'x' AND b = 'y,z'")
        assert a.string_literals == ["x", "y,z"]

    def test_concat_operator_flag(self):
        assert annotate("SELECT first || ' ' || last FROM t").uses_concat_operator
        assert not annotate("SELECT first FROM t").uses_concat_operator

    def test_referenced_columns_cover_all_clauses(self):
        a = annotate(
            "SELECT u.name FROM Users u WHERE u.active = true GROUP BY u.name ORDER BY u.name"
        )
        names = {c.name for c in a.referenced_columns()}
        assert {"name", "active"} <= names


class TestAnnotationInputs:
    def test_accepts_parsed_statement(self):
        stmt = parse_statement("SELECT * FROM t")
        assert annotate(stmt).statement_type == "SELECT"

    def test_accepts_raw_string(self):
        assert annotate("SELECT * FROM t").statement_type == "SELECT"

    def test_empty_statement(self):
        a = annotate("")
        assert a.tables == []
        assert a.predicates == []
