"""Unit tests for statement splitting, classification, and grouping."""
from __future__ import annotations

import pytest

from repro.sqlparser import (
    Comparison,
    Function,
    Identifier,
    Parenthesis,
    Where,
    classify_statement,
    parse,
    parse_statement,
    split,
    tokenize,
)


class TestSplitter:
    def test_split_two_statements(self):
        parts = split("SELECT 1; SELECT 2;")
        assert len(parts) == 2
        assert parts[0].startswith("SELECT 1")

    def test_semicolon_inside_string_is_not_a_separator(self):
        parts = split("SELECT 'a;b'; SELECT 2")
        assert len(parts) == 2

    def test_trailing_semicolon_only(self):
        assert split("SELECT 1;") == ["SELECT 1;"]

    def test_empty_input(self):
        assert split("") == []
        assert split(" ;  ; ") == []

    def test_split_preserves_statement_text(self):
        sql = "INSERT INTO t VALUES (1, 'a;b');\nUPDATE t SET x = 2"
        parts = split(sql)
        assert "INSERT INTO t VALUES (1, 'a;b');" == parts[0]
        assert parts[1] == "UPDATE t SET x = 2"


class TestClassification:
    @pytest.mark.parametrize(
        "sql,expected",
        [
            ("SELECT * FROM t", "SELECT"),
            ("select 1", "SELECT"),
            ("INSERT INTO t VALUES (1)", "INSERT"),
            ("UPDATE t SET a = 1", "UPDATE"),
            ("DELETE FROM t WHERE a = 1", "DELETE"),
            ("CREATE TABLE t (a INT)", "CREATE_TABLE"),
            ("CREATE TABLE IF NOT EXISTS t (a INT)", "CREATE_TABLE"),
            ("CREATE INDEX i ON t (a)", "CREATE_INDEX"),
            ("CREATE UNIQUE INDEX i ON t (a)", "CREATE_INDEX"),
            ("CREATE VIEW v AS SELECT 1", "CREATE_VIEW"),
            ("ALTER TABLE t ADD COLUMN b INT", "ALTER_TABLE"),
            ("DROP TABLE t", "DROP"),
            ("TRUNCATE TABLE t", "TRUNCATE"),
            ("WITH cte AS (SELECT 1) SELECT * FROM cte", "SELECT"),
            ("EXPLAIN SELECT 1", "OTHER"),
            ("", "EMPTY"),
            ("-- just a comment", "EMPTY"),
        ],
    )
    def test_statement_types(self, sql, expected):
        assert classify_statement(tokenize(sql)) == expected

    def test_parsed_statement_flags(self):
        assert parse_statement("SELECT 1").is_dml
        assert not parse_statement("SELECT 1").is_ddl
        assert parse_statement("CREATE TABLE t (a INT)").is_ddl
        assert not parse_statement("CREATE TABLE t (a INT)").is_dml


class TestParse:
    def test_parse_returns_one_entry_per_statement(self):
        statements = parse("SELECT 1; UPDATE t SET a = 2;")
        assert [s.statement_type for s in statements] == ["SELECT", "UPDATE"]
        assert [s.index for s in statements] == [0, 1]

    def test_parse_records_source(self):
        statements = parse("SELECT 1", source="app.py")
        assert statements[0].source == "app.py"

    def test_raw_text_is_preserved(self):
        raw = "SELECT   a,b   FROM t"
        assert parse(raw)[0].raw == raw

    def test_meaningful_tokens_skips_whitespace(self):
        stmt = parse_statement("SELECT  a  FROM  t")
        assert [t.value for t in stmt.meaningful_tokens()] == ["SELECT", "a", "FROM", "t"]


class TestGrouping:
    def test_where_group_present(self):
        tree = parse_statement("SELECT * FROM t WHERE a = 1 ORDER BY b").tree
        wheres = list(tree.find_all(Where))
        assert len(wheres) == 1
        assert "ORDER BY" not in wheres[0].sql().upper()

    def test_parenthesis_grouping_nested(self):
        tree = parse_statement("SELECT * FROM t WHERE a IN (SELECT b FROM (SELECT 1) x)").tree
        parens = list(tree.find_all(Parenthesis))
        assert len(parens) == 2

    def test_function_grouping(self):
        tree = parse_statement("SELECT COUNT(id), MAX(price) FROM t").tree
        functions = {f.name for f in tree.find_all(Function)}
        assert {"COUNT", "MAX"} <= functions

    def test_comparison_grouping(self):
        tree = parse_statement("SELECT * FROM a JOIN b ON a.x = b.y").tree
        comparisons = list(tree.find_all(Comparison))
        assert len(comparisons) == 1
        assert comparisons[0].operator == "="

    def test_identifier_alias_via_as(self):
        tree = parse_statement("SELECT * FROM Users AS u").tree
        identifiers = [i for i in tree.find_all(Identifier) if i.name == "Users"]
        assert identifiers and identifiers[0].alias == "u"

    def test_identifier_dotted_parts(self):
        tree = parse_statement("SELECT t.col FROM t").tree
        dotted = [i for i in tree.find_all(Identifier) if i.qualifier == "t"]
        assert dotted and dotted[0].name == "col"

    def test_unbalanced_parentheses_do_not_crash(self):
        tree = parse_statement("SELECT ( a FROM t").tree
        assert tree.sql() == "SELECT ( a FROM t"

    def test_statement_sql_round_trip(self):
        sql = "SELECT a, b FROM t WHERE a = 1 AND b LIKE '%x%'"
        assert parse_statement(sql).tree.sql() == sql
