"""Tests for SQL serialization helpers and dialect descriptors."""
from __future__ import annotations

import pytest

from repro.sqlparser import (
    DIALECTS,
    TokenStream,
    format_sql,
    get_dialect,
    parse_statement,
    quote_identifier,
    quote_literal,
    to_sql,
    tokenize,
)


class TestFormatSql:
    def test_uppercases_keywords(self):
        assert format_sql("select a from t where a = 1") == "SELECT a FROM t WHERE a = 1"

    def test_lowercase_mode(self):
        assert format_sql("SELECT A FROM T", keyword_case="lower") == "select A from T"

    def test_normalises_whitespace(self):
        assert format_sql("select   a ,  b\nfrom t") == "SELECT a, b FROM t"

    def test_strip_comments(self):
        formatted = format_sql("SELECT a -- trailing\nFROM t", strip_comments=True)
        assert "--" not in formatted
        assert formatted == "SELECT a FROM t"

    def test_function_calls_keep_tight_parentheses(self):
        # function names are identifiers, so their case is preserved
        assert format_sql("select count( * ) from t") == "SELECT count(*) FROM t"

    def test_to_sql_round_trip(self):
        statement = parse_statement("SELECT a, b FROM t WHERE a = 1")
        assert to_sql(statement.tree) == "SELECT a, b FROM t WHERE a = 1"


class TestQuoting:
    def test_plain_identifier_not_quoted(self):
        assert quote_identifier("users") == "users"

    def test_identifier_with_space_is_quoted(self):
        assert quote_identifier("my table") == '"my table"'

    def test_identifier_quoting_respects_dialect(self):
        assert quote_identifier("my table", get_dialect("sqlserver")) == "[my table]"
        assert quote_identifier("my table", get_dialect("mysql")) == "`my table`"

    def test_literal_quoting(self):
        assert quote_literal(None) == "NULL"
        assert quote_literal(True) == "TRUE"
        assert quote_literal(7) == "7"
        assert quote_literal("it's") == "'it''s'"


class TestDialects:
    def test_known_dialects_present(self):
        assert {"generic", "postgresql", "mysql", "sqlite", "sqlserver"} <= set(DIALECTS)

    def test_lookup_is_case_insensitive_and_falls_back(self):
        assert get_dialect("MySQL").name == "mysql"
        assert get_dialect("no-such-dbms").name == "generic"
        assert get_dialect(None).name == "generic"

    def test_dialect_facts(self):
        assert get_dialect("mysql").random_function == "RAND()"
        assert get_dialect("postgresql").supports_enum_type
        assert not get_dialect("sqlite").supports_enum_type


class TestTokenStream:
    def test_meaningful_and_navigation(self):
        stream = TokenStream(tokenize("SELECT  a FROM t"))
        meaningful = stream.meaningful()
        assert [t.value for t in meaningful] == ["SELECT", "a", "FROM", "t"]
        index, token = stream.next_meaningful(1)
        assert token.value == "a"
        index, token = stream.prev_meaningful(len(stream) - 1)
        assert token.value == "t"

    def test_find_keyword(self):
        stream = TokenStream(tokenize("SELECT a FROM t WHERE a = 1"))
        index, token = stream.find_keyword("WHERE")
        assert token.value == "WHERE"
        missing = stream.find_keyword("HAVING")
        assert missing == (None, None)

    def test_len_and_getitem(self):
        stream = TokenStream(tokenize("SELECT 1"))
        assert len(stream) == 3
        assert stream[0].value == "SELECT"
