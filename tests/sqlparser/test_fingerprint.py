"""Fingerprint canonicalization and the annotation cache."""
from repro.sqlparser import AnnotationCache, canonicalize, fingerprint, parse


class TestCanonicalize:
    def test_keywords_and_identifiers_casefolded(self):
        assert canonicalize("select id from Users") == "SELECT ID FROM USERS"

    def test_literals_normalized_to_placeholders(self):
        canonical = canonicalize("SELECT * FROM t WHERE a = 42 AND b = 'x'")
        assert canonical == "SELECT * FROM T WHERE A = ? AND B = ?"

    def test_whitespace_and_comments_collapsed(self):
        a = canonicalize("SELECT  a\n FROM t -- trailing comment")
        b = canonicalize("SELECT a FROM t")
        assert a == b

    def test_bind_placeholders_normalized(self):
        assert canonicalize("SELECT a FROM t WHERE id = %s") == canonicalize(
            "SELECT a FROM t WHERE id = 7"
        )

    def test_accepts_token_lists(self):
        statement = parse("SELECT a FROM t WHERE id = 1")[0]
        assert canonicalize(statement.tokens) == "SELECT A FROM T WHERE ID = ?"


class TestFingerprint:
    def test_literal_only_duplicates_share_fingerprint(self):
        assert fingerprint("SELECT * FROM orders WHERE id = 1") == fingerprint(
            "select * from ORDERS   where id = 99"
        )

    def test_different_statements_differ(self):
        assert fingerprint("SELECT a FROM t") != fingerprint("SELECT b FROM t")

    def test_stable_across_calls(self):
        sql = "UPDATE t SET a = 'x' WHERE id = 3"
        assert fingerprint(sql) == fingerprint(sql)

    def test_cached_on_parsed_statement(self):
        statement = parse("SELECT a FROM t WHERE id = 1")[0]
        assert statement.fingerprint == fingerprint(statement.raw)
        assert statement.fingerprint is statement.fingerprint  # cached


class TestAnnotationCache:
    def test_miss_then_hit(self):
        cache = AnnotationCache(maxsize=4)
        assert cache.get("SELECT 1") is None
        cache.put("SELECT 1", "value")
        assert cache.get("SELECT 1") == "value"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_fingerprint_collision_requires_exact_text(self):
        # Same template, different literals: shared bucket, distinct entries.
        cache = AnnotationCache(maxsize=4)
        a = "SELECT t FROM x WHERE t LIKE 'INV-2020%'"
        b = "SELECT t FROM x WHERE t LIKE '%offer%'"
        assert fingerprint(a) == fingerprint(b)
        cache.put(a, "prefix-like")
        assert cache.get(b) is None
        cache.put(b, "wildcard-like")
        assert cache.get(a) == "prefix-like"
        assert cache.get(b) == "wildcard-like"

    def test_lru_eviction(self):
        cache = AnnotationCache(maxsize=2)
        cache.put("SELECT a FROM t1", 1)
        cache.put("SELECT b FROM t2", 2)
        cache.get("SELECT a FROM t1")  # touch: t1 becomes most recent
        cache.put("SELECT c FROM t3", 3)
        assert cache.get("SELECT b FROM t2") is None  # evicted
        assert cache.get("SELECT a FROM t1") == 1
        assert cache.stats.evictions == 1

    def test_put_overwrites_same_text(self):
        cache = AnnotationCache(maxsize=4)
        cache.put("SELECT 1", "old")
        cache.put("SELECT 1", "new")
        assert cache.get("SELECT 1") == "new"
        assert len(cache) == 1

    def test_clear(self):
        cache = AnnotationCache(maxsize=4)
        cache.put("SELECT 1", "value")
        cache.clear()
        assert cache.get("SELECT 1") is None
