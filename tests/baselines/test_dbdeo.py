"""Unit tests for the dbdeo baseline detector."""
from __future__ import annotations

from repro.baselines import DBDeo
from repro.baselines.dbdeo import DBDEO_ANTI_PATTERNS
from repro.model import AntiPattern


class TestDBDeo:
    def test_supports_exactly_11_anti_pattern_types(self):
        assert len(DBDEO_ANTI_PATTERNS) == 11

    def test_no_primary_key(self):
        assert AntiPattern.NO_PRIMARY_KEY in DBDeo().detect_types("CREATE TABLE t (a INT)")
        assert AntiPattern.NO_PRIMARY_KEY not in DBDeo().detect_types(
            "CREATE TABLE t (a INT PRIMARY KEY)"
        )

    def test_pattern_matching_includes_prefix_like_false_positive(self):
        # dbdeo's regex flags every LIKE, even the index-friendly prefix form —
        # this is one of the false-positive classes sqlcheck eliminates.
        assert AntiPattern.PATTERN_MATCHING in DBDeo().detect_types(
            "SELECT a FROM t WHERE a LIKE 'abc%'"
        )

    def test_rounding_errors_keyword_false_positive(self):
        # a column merely named like a type keyword still triggers dbdeo
        assert AntiPattern.ROUNDING_ERRORS in DBDeo().detect_types(
            "SELECT float_precision FROM calibration"
        )

    def test_enumerated_types(self):
        assert AntiPattern.ENUMERATED_TYPES in DBDeo().detect_types(
            "CREATE TABLE t (s ENUM('a','b'))"
        )

    def test_clone_table(self):
        assert AntiPattern.CLONE_TABLE in DBDeo().detect_types(
            "CREATE TABLE logs_2020 (id INT PRIMARY KEY)"
        )

    def test_god_table_comma_heuristic_false_positive(self):
        # dbdeo's comma-count heuristic also fires on wide multi-row INSERTs
        wide_insert = "INSERT INTO t (a,b,c) VALUES " + ", ".join(f"({i},{i},{i})" for i in range(10))
        create = "CREATE TABLE t (" + ", ".join(f"c{i} INT" for i in range(12)) + ")"
        assert AntiPattern.GOD_TABLE in DBDeo().detect_types(create)
        assert AntiPattern.GOD_TABLE not in DBDeo().detect_types(wide_insert)  # no CREATE keyword
        assert AntiPattern.GOD_TABLE in DBDeo().detect_types("CREATE TABLE t AS " + wide_insert)

    def test_adjacency_list(self):
        assert AntiPattern.ADJACENCY_LIST in DBDeo().detect_types(
            "CREATE TABLE emp (id INT, manager_id INT)"
        )

    def test_counts_and_detections(self):
        detector = DBDeo()
        sql = "CREATE TABLE a (x FLOAT); CREATE TABLE b (y FLOAT);"
        counts = detector.counts(sql)
        assert counts[AntiPattern.ROUNDING_ERRORS] == 2
        detections = detector.detect(sql)
        assert all(d.query for d in detections)

    def test_accepts_list_of_statements(self):
        types = DBDeo().detect_types(["CREATE TABLE t (a INT)", "SELECT a FROM t WHERE a LIKE '%x%'"])
        assert AntiPattern.NO_PRIMARY_KEY in types
        assert AntiPattern.PATTERN_MATCHING in types

    def test_detects_fewer_types_than_sqlcheck(self):
        """dbdeo misses whole anti-pattern families (wildcards, implicit columns…)."""
        sql = "SELECT * FROM t; INSERT INTO t VALUES (1); SELECT a FROM t ORDER BY RAND();"
        types = DBDeo().detect_types(sql)
        assert AntiPattern.COLUMN_WILDCARD not in types
        assert AntiPattern.IMPLICIT_COLUMNS not in types
        assert AntiPattern.ORDERING_BY_RAND not in types
