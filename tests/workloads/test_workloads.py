"""Tests for the workload / dataset generators."""
from __future__ import annotations

import pytest

from repro.detector import APDetector
from repro.model import AntiPattern
from repro.workloads import (
    DJANGO_APPLICATIONS,
    KAGGLE_DATABASES,
    GitHubCorpusGenerator,
    GlobaLeaksWorkload,
    UserStudySimulator,
    build_application_workload,
    build_kaggle_database,
)
from repro.workloads.django_apps import reported_anti_patterns


class TestGlobaLeaksWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return GlobaLeaksWorkload(tenants=50)

    def test_ap_database_contents(self, workload):
        db = workload.build_ap_database()
        assert db.get_table("tenants").row_count == 50
        assert db.get_table("users").row_count == 200
        sample = next(iter(db.get_table("tenants").rows.values()))
        assert "," in sample["User_IDs"]

    def test_fixed_database_contents(self, workload):
        db = workload.build_fixed_database()
        assert db.get_table("hosting").row_count == 200
        assert db.get_table("role").row_count == 3
        assert db.get_table("hosting").index_on("User_ID") is not None

    def test_task_results_are_equivalent(self, workload):
        """The AP and AP-free designs must answer the tasks identically."""
        ap = workload.build_ap_database()
        fixed = workload.build_fixed_database()
        ap_tenants = {r["Tenant_ID"] for r in ap.execute(workload.task1_ap("U7")).rows}
        fixed_tenants = {r["Tenant_ID"] for r in fixed.execute(workload.task1_fixed("U7")).rows}
        assert ap_tenants == fixed_tenants and ap_tenants
        ap_users = {r["User_ID"] for r in ap.execute(workload.task2_ap("T3")).rows}
        fixed_users = {r["User_ID"] for r in fixed.execute(workload.task2_fixed("T3")).rows}
        assert ap_users == fixed_users and len(ap_users) == 4

    def test_application_queries_contain_known_aps(self, workload):
        report = APDetector().detect(workload.application_queries())
        types = report.types_detected()
        assert AntiPattern.MULTI_VALUED_ATTRIBUTE in types
        assert AntiPattern.ENUMERATED_TYPES in types
        assert AntiPattern.NO_FOREIGN_KEY in types


class TestGitHubCorpus:
    def test_deterministic_generation(self):
        a = GitHubCorpusGenerator(repos=5, seed=1).generate()
        b = GitHubCorpusGenerator(repos=5, seed=1).generate()
        assert a.all_sql() == b.all_sql()

    def test_corpus_structure(self):
        corpus = GitHubCorpusGenerator(repos=8).generate()
        assert len(corpus.repos()) == 8
        assert len(corpus) > 8 * 4
        assert all(s.sql for s in corpus)

    def test_labels_cover_many_anti_patterns(self):
        corpus = GitHubCorpusGenerator(repos=40).generate()
        labelled = set(corpus.label_counts())
        assert len(labelled) >= 12

    def test_clean_trap_statements_exist(self):
        corpus = GitHubCorpusGenerator(repos=40).generate()
        clean = [s for s in corpus if s.is_clean]
        assert clean
        assert any("LIKE 'INV-2020%'" in s.sql for s in clean)

    def test_statements_for_repo(self):
        corpus = GitHubCorpusGenerator(repos=3).generate()
        repo = corpus.repos()[0]
        assert corpus.sql_for(repo) == [s.sql for s in corpus.statements_for(repo)]

    def test_statements_labeled(self):
        corpus = GitHubCorpusGenerator(repos=30).generate()
        for statement in corpus.statements_labeled(AntiPattern.ROUNDING_ERRORS):
            assert "FLOAT" in statement.sql.upper()


class TestDjangoApplications:
    def test_table7_has_15_applications(self):
        assert len(DJANGO_APPLICATIONS) == 15
        assert sum(app.detected_aps for app in DJANGO_APPLICATIONS) == 123
        assert sum(len(app.reported_aps) for app in DJANGO_APPLICATIONS) == 32

    def test_reported_anti_patterns_resolve(self):
        for app in DJANGO_APPLICATIONS:
            assert all(isinstance(ap, AntiPattern) for ap in reported_anti_patterns(app))

    def test_workload_exhibits_reported_aps(self):
        from repro.workloads.django_apps import build_application_database

        detector = APDetector()
        for app in DJANGO_APPLICATIONS[:5]:
            workload = build_application_workload(app)
            database = build_application_database(app, rows=80)
            detected = detector.detect(workload, database=database).types_detected()
            missing = reported_anti_patterns(app) - detected
            assert not missing, f"{app.name}: missing {missing}"


class TestKaggleDatabases:
    def test_table6_has_31_databases(self):
        assert len(KAGGLE_DATABASES) == 31

    def test_build_database_contains_expected_columns(self):
        spec = KAGGLE_DATABASES[0]
        db = build_kaggle_database(spec, rows=60)
        table = db.get_table(db.table_names()[0])
        assert table.row_count == 60

    def test_detected_types_cover_spec(self):
        detector = APDetector()
        for spec in KAGGLE_DATABASES[:6]:
            db = build_kaggle_database(spec)
            detected = detector.detect((), database=db).types_detected()
            missing = set(spec.anti_patterns) - detected
            assert not missing, f"{spec.name}: missing {missing}"

    def test_empty_spec_detects_nothing_major(self):
        clean_spec = next(s for s in KAGGLE_DATABASES if not s.anti_patterns)
        db = build_kaggle_database(clean_spec)
        detected = APDetector().detect((), database=db).types_detected()
        assert AntiPattern.NO_PRIMARY_KEY not in detected


class TestUserStudy:
    def test_simulation_shape(self):
        result = UserStudySimulator(participants=6, rounds=1, seed=3).run()
        assert len(result.participants) == 6
        assert result.total_statements >= 6 * len_features()
        assert result.total_detections > 0
        assert 0.0 <= result.acceptance_rate <= 1.0
        assert result.acceptance_rate <= result.acceptance_rate_with_ambiguous

    def test_distributions(self):
        result = UserStudySimulator(participants=4, rounds=1, seed=9).run()
        mean, median = result.statements_distribution()
        assert mean >= median * 0.5
        d_mean, d_median = result.detections_distribution()
        assert d_mean >= 0


def len_features() -> int:
    from repro.workloads.userstudy import FEATURES

    return len(FEATURES)
