"""Integration tests for the SQLCheck toolchain facade."""
from __future__ import annotations

import json

import pytest

from repro import (
    C2,
    AntiPattern,
    Database,
    DetectorConfig,
    SQLCheck,
    SQLCheckOptions,
    find_anti_patterns,
)


GLOBALEAKS_SQL = """
CREATE TABLE Users (User_ID VARCHAR(10) PRIMARY KEY, Name VARCHAR(40), Role VARCHAR(8) CHECK (Role IN ('R1','R2','R3')));
CREATE TABLE Tenants (Tenant_ID VARCHAR(10) PRIMARY KEY, Zone_ID VARCHAR(10), Active BOOLEAN, User_IDs TEXT);
SELECT * FROM Tenants WHERE User_IDs LIKE '%U1%';
INSERT INTO Tenants VALUES ('T1', 'Z1', TRUE, 'U1,U2');
"""


class TestSQLCheck:
    def test_end_to_end_report(self):
        report = SQLCheck().check(GLOBALEAKS_SQL)
        assert len(report) > 0
        assert report.queries_analyzed == 4
        anti_patterns = set(report.anti_patterns())
        assert AntiPattern.MULTI_VALUED_ATTRIBUTE in anti_patterns
        assert AntiPattern.ENUMERATED_TYPES in anti_patterns
        assert AntiPattern.IMPLICIT_COLUMNS in anti_patterns

    def test_detections_are_ranked(self):
        report = SQLCheck().check(GLOBALEAKS_SQL)
        scores = [entry.score for entry in report.detections]
        assert scores == sorted(scores, reverse=True)
        assert [entry.rank for entry in report.detections] == list(range(1, len(report) + 1))

    def test_every_detection_has_a_fix(self):
        report = SQLCheck().check(GLOBALEAKS_SQL)
        assert len(report.fixes) == len(report.detections)
        assert all(report.fix_for(entry) is not None for entry in report.detections)

    def test_fixes_can_be_disabled(self):
        report = SQLCheck(SQLCheckOptions(suggest_fixes=False)).check(GLOBALEAKS_SQL)
        assert report.fixes == []

    def test_ranking_configuration_is_used(self):
        report_c2 = SQLCheck(SQLCheckOptions(ranking=C2)).check(GLOBALEAKS_SQL)
        assert report_c2.detections

    def test_check_with_database(self):
        db = Database()
        db.execute("CREATE TABLE Tenants (Tenant_ID VARCHAR(10) PRIMARY KEY, User_IDs TEXT)")
        db.insert_rows("Tenants", [{"Tenant_ID": f"T{i}", "User_IDs": "U1,U2"} for i in range(20)])
        report = SQLCheck().check((), database=db)
        assert AntiPattern.MULTI_VALUED_ATTRIBUTE in set(report.anti_patterns())
        assert report.tables_analyzed == 1

    def test_counts(self):
        report = SQLCheck().check("SELECT * FROM a; SELECT * FROM b;")
        assert report.counts()[AntiPattern.COLUMN_WILDCARD] == 2

    def test_to_json_and_export(self, tmp_path):
        report = SQLCheck().check("SELECT * FROM t")
        payload = json.loads(report.to_json())
        assert payload["queries_analyzed"] == 1
        target = tmp_path / "report.json"
        report.export(str(target))
        assert json.loads(target.read_text())["detections"]

    def test_detect_only(self):
        report = SQLCheck().detect("SELECT * FROM t")
        assert AntiPattern.COLUMN_WILDCARD in report.types_detected()

    def test_detector_options_propagate(self):
        options = SQLCheckOptions(detector=DetectorConfig(enable_inter_query=False))
        sql = (
            "CREATE TABLE A (a_id INTEGER PRIMARY KEY);"
            "CREATE TABLE B (b_id INTEGER PRIMARY KEY, a_id INTEGER);"
            "SELECT * FROM B b JOIN A a ON a.a_id = b.a_id;"
        )
        without_context = SQLCheck(options).check(sql)
        with_context = SQLCheck().check(sql)
        assert AntiPattern.NO_FOREIGN_KEY not in set(without_context.anti_patterns())
        assert AntiPattern.NO_FOREIGN_KEY in set(with_context.anti_patterns())


class TestFindAntiPatterns:
    def test_paper_example(self):
        results = find_anti_patterns("INSERT INTO Users VALUES (1, 'foo')")
        assert [d.anti_pattern for d in results] == [AntiPattern.IMPLICIT_COLUMNS]

    def test_clean_query_returns_empty(self):
        assert find_anti_patterns("SELECT name FROM users WHERE user_id = 1") == []

    def test_accepts_list(self):
        results = find_anti_patterns(["SELECT * FROM a", "SELECT * FROM b"])
        assert len(results) == 2
