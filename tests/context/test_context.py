"""Unit tests for the application context and context builder."""
from __future__ import annotations

from repro.context import ContextBuilder, build_context
from repro.engine import Database

DDL = """
CREATE TABLE Users (User_ID VARCHAR(10) PRIMARY KEY, Name VARCHAR(40), Role VARCHAR(10));
CREATE TABLE Orders (Order_ID INTEGER PRIMARY KEY, User_ID VARCHAR(10), Total NUMERIC(10,2));
CREATE INDEX idx_orders_user ON Orders (User_ID);
"""

QUERIES = DDL + """
SELECT u.Name, o.Total FROM Orders o JOIN Users u ON o.User_ID = u.User_ID WHERE o.Total > 10;
SELECT Role, COUNT(*) FROM Users GROUP BY Role;
UPDATE Users SET Role = 'admin' WHERE User_ID = 'U1';
INSERT INTO Orders (Order_ID, User_ID, Total) VALUES (1, 'U1', 5.0);
"""


class TestContextBuilder:
    def test_schema_built_from_ddl(self):
        context = build_context(QUERIES)
        assert context.schema.has_table("Users")
        assert context.schema.has_table("Orders")
        assert context.indexes_for("Orders")[0].name == "idx_orders_user"

    def test_queries_are_annotated_in_order(self):
        context = build_context(QUERIES)
        assert context.query_count == 7
        assert [q.statement.index for q in context.queries] == list(range(7))

    def test_schema_from_database_wins(self):
        db = Database()
        db.execute("CREATE TABLE FromDb (a INTEGER PRIMARY KEY)")
        context = build_context("SELECT * FROM FromDb", database=db)
        assert context.schema.has_table("FromDb")
        assert context.has_data is True or context.profiles == {}

    def test_profiles_built_from_database(self):
        db = Database()
        db.execute("CREATE TABLE T (a INTEGER PRIMARY KEY, b VARCHAR(5))")
        db.insert_rows("T", [{"a": i, "b": "x"} for i in range(10)])
        context = build_context((), database=db)
        assert context.profile("T").row_count == 10
        assert context.column_profile("T", "b").is_constant

    def test_extend_adds_queries_and_schema(self):
        builder = ContextBuilder()
        context = builder.build("SELECT 1")
        builder.extend(context, "CREATE TABLE Added (x INTEGER PRIMARY KEY)")
        assert context.schema.has_table("Added")
        assert context.query_count == 2

    def test_refresh_data(self):
        db = Database()
        db.execute("CREATE TABLE T (a INTEGER PRIMARY KEY)")
        builder = ContextBuilder()
        context = builder.build((), database=db)
        db.insert_rows("T", [{"a": 1}])
        builder.refresh_data(context)
        assert context.profile("T").row_count == 1

    def test_accepts_list_of_strings(self):
        context = build_context(["SELECT 1", "SELECT 2"])
        assert context.query_count == 2

    def test_dialect_lookup(self):
        context = build_context("SELECT 1", dialect="mysql")
        assert context.dialect.name == "mysql"
        default = build_context("SELECT 1")
        assert default.dialect.name == "generic"


class TestApplicationContextQueries:
    def test_queries_referencing_table(self):
        context = build_context(QUERIES)
        referencing = context.queries_referencing("Orders")
        assert len(referencing) == 4  # create, index, join select, insert

    def test_queries_referencing_column(self):
        context = build_context(QUERIES)
        referencing = context.queries_referencing_column("Users", "Role")
        assert len(referencing) == 2  # group-by select and update

    def test_queries_of_type(self):
        context = build_context(QUERIES)
        assert len(context.queries_of_type("SELECT")) == 2
        assert len(context.queries_of_type("UPDATE", "INSERT")) == 2

    def test_join_pairs_and_columns(self):
        context = build_context(QUERIES)
        assert ("Orders", "Users") in context.join_pairs()
        columns = context.join_columns_between("Orders", "Users")
        assert ("User_ID", "User_ID") in columns

    def test_column_lookup_helpers(self):
        context = build_context(QUERIES)
        assert context.column("Users", "role").name == "Role"
        assert context.column("Users", "missing") is None
        assert context.column("Ghost", "x") is None

    def test_column_usage_statistics(self):
        context = build_context(QUERIES)
        usage = context.column_usage()
        total_usage = usage[("orders", "total")]
        assert total_usage.where_count >= 1
        join_usage = usage[("orders", "user_id")]
        assert join_usage.join_count >= 1
        role_usage = usage[("users", "role")]
        assert role_usage.group_by_count >= 1
        assert role_usage.update_count >= 1
        assert role_usage.read_lookups >= 1
        assert role_usage.writes >= 1
