"""Cache correctness and the corpus-scale batch pipeline.

The acceptance bar for the caching layer: cached detection results must be
byte-identical to cold-path results on duplicate-heavy corpora, and any
registry mutation must invalidate both the dispatch index and the detection
memo.
"""
from repro import (
    APDetector,
    AntiPattern,
    DetectorConfig,
    SQLCheck,
    SQLCheckOptions,
)
from repro.rules.query_rules import ColumnWildcardRule
from repro.rules.registry import default_registry
from repro.rules.thresholds import Thresholds
from repro.workloads.github_corpus import GitHubCorpusGenerator, with_duplicates


def _duplicate_heavy_sql(repos: int = 12, fraction: float = 0.5) -> list[str]:
    corpus = with_duplicates(GitHubCorpusGenerator(repos=repos).generate(), fraction=fraction)
    return corpus.all_sql()


def _report_payload(report):
    return [d.to_dict() for d in report.detections]


class TestCacheCorrectness:
    def test_cached_results_identical_to_cold_path(self):
        sql = _duplicate_heavy_sql()
        cold = APDetector(DetectorConfig(enable_cache=False)).detect(sql)
        cached = APDetector(DetectorConfig(enable_cache=True)).detect(sql)
        assert _report_payload(cold) == _report_payload(cached)

    def test_warm_rerun_identical_and_fully_memoized(self):
        sql = _duplicate_heavy_sql()
        detector = APDetector(DetectorConfig(enable_cache=True))
        first = detector.detect(sql)
        warm = detector.detect(sql)
        assert _report_payload(first) == _report_payload(warm)
        info = detector.memo_info
        assert info["hits"] > 0
        # Second pass re-analyses nothing: every statement replays the memo.
        assert info["hits"] >= len(sql)

    def test_fingerprint_collision_does_not_leak_results(self):
        # Prefix LIKE (index-friendly, clean) and wildcard LIKE (anti-pattern)
        # differ only in literal content, so they share a fingerprint; the
        # cache must still keep their results apart.
        clean = "SELECT title FROM t WHERE title LIKE 'INV-2020%'"
        dirty = "SELECT title FROM t WHERE title LIKE '%special offer%'"
        detector = APDetector(DetectorConfig(enable_cache=True))
        assert not detector.detect([clean, clean]).filter(AntiPattern.PATTERN_MATCHING)
        assert detector.detect([dirty, dirty]).filter(AntiPattern.PATTERN_MATCHING)
        assert not detector.detect([clean]).filter(AntiPattern.PATTERN_MATCHING)

    def test_duplicates_keep_their_own_indexes_and_source(self):
        sql = ["SELECT * FROM orders", "SELECT * FROM orders"]
        detector = APDetector(DetectorConfig(enable_cache=True))
        report = detector.detect(sql, source="app_a")
        indexes = sorted(d.query_index for d in report)
        assert indexes == [0, 1]
        report_b = detector.detect(sql, source="app_b")
        assert {d.source for d in report_b} == {"app_b"}

    def test_full_toolchain_cached_equals_cold(self):
        sql = _duplicate_heavy_sql(repos=8)
        cold = SQLCheck(SQLCheckOptions(detector=DetectorConfig(enable_cache=False))).check(sql)
        cached = SQLCheck(SQLCheckOptions(detector=DetectorConfig(enable_cache=True))).check(sql)
        cold_payload = cold.to_dict()
        cached_payload = cached.to_dict()
        cold_payload.pop("stats")
        cached_payload.pop("stats")
        assert cold_payload == cached_payload


class TestRegistryInvalidation:
    def test_dispatch_index_tracks_mutations(self):
        registry = default_registry()
        before = registry.rules_for_statement("SELECT")
        version = registry.version
        registry.unregister("ColumnWildcardRule")
        assert registry.version > version
        after = registry.rules_for_statement("SELECT")
        assert len(after) == len(before) - 1
        assert all(rule.name != "ColumnWildcardRule" for rule in after)
        registry.register(ColumnWildcardRule())
        assert len(registry.rules_for_statement("SELECT")) == len(before)

    def test_unregister_invalidates_detection_memo(self):
        sql = ["SELECT * FROM t", "SELECT * FROM t"]
        registry = default_registry()
        detector = APDetector(DetectorConfig(enable_cache=True), registry=registry)
        assert detector.detect(sql).filter(AntiPattern.COLUMN_WILDCARD)
        registry.unregister("ColumnWildcardRule")
        assert not detector.detect(sql).filter(AntiPattern.COLUMN_WILDCARD)

    def test_disable_anti_pattern_invalidates_detection_memo(self):
        sql = ["SELECT * FROM t ORDER BY RAND()"]
        registry = default_registry()
        detector = APDetector(DetectorConfig(enable_cache=True), registry=registry)
        assert detector.detect(sql).filter(AntiPattern.ORDERING_BY_RAND)
        registry.disable_anti_pattern(AntiPattern.ORDERING_BY_RAND)
        assert not detector.detect(sql).filter(AntiPattern.ORDERING_BY_RAND)

    def test_register_invalidates_detection_memo(self):
        sql = ["SELECT * FROM t"]
        registry = default_registry()
        registry.unregister("ColumnWildcardRule")
        detector = APDetector(DetectorConfig(enable_cache=True), registry=registry)
        assert not detector.detect(sql).filter(AntiPattern.COLUMN_WILDCARD)
        registry.register(ColumnWildcardRule())
        assert detector.detect(sql).filter(AntiPattern.COLUMN_WILDCARD)

    def test_threshold_change_scopes_memo(self):
        joins = " ".join(f"JOIN t{i} ON t{i}.k = t{i-1}.k" for i in range(1, 7))
        sql = [f"SELECT t0.v FROM t0 {joins}"]
        detector = APDetector(
            DetectorConfig(enable_cache=True, thresholds=Thresholds(too_many_joins=5))
        )
        assert detector.detect(sql).filter(AntiPattern.TOO_MANY_JOINS)
        detector.config.thresholds = Thresholds(too_many_joins=50)
        assert not detector.detect(sql).filter(AntiPattern.TOO_MANY_JOINS)


class TestBatchPipeline:
    def test_detect_batch_matches_detect(self):
        sql = _duplicate_heavy_sql(repos=6)
        baseline = APDetector(DetectorConfig(enable_cache=False)).detect(sql)
        report, stats = APDetector(DetectorConfig()).detect_batch(sql, workers=4)
        assert _report_payload(baseline) == _report_payload(report)
        assert stats.statements == len(sql)
        assert stats.parse_seconds > 0
        assert stats.detect_seconds > 0

    def test_check_many_matches_individual_checks(self):
        corpus = GitHubCorpusGenerator(repos=5).generate()
        corpora = corpus.corpora()
        toolchain = SQLCheck(SQLCheckOptions(detector=DetectorConfig(enable_cache=False)))
        batch = toolchain.check_many(corpora, workers=2)
        assert set(batch.reports) == set(corpora)
        for source, queries in corpora.items():
            direct = SQLCheck(
                SQLCheckOptions(detector=DetectorConfig(enable_cache=False))
            ).check(queries, source=source)
            batch_payload = batch.reports[source].to_dict()
            direct_payload = direct.to_dict()
            batch_payload.pop("stats")
            direct_payload.pop("stats")
            assert batch_payload == direct_payload

    def test_stream_yields_detections(self):
        detections = list(APDetector(DetectorConfig()).stream(["SELECT * FROM t"]))
        assert any(d.anti_pattern is AntiPattern.COLUMN_WILDCARD for d in detections)

    def test_batch_report_counts_and_stats(self):
        corpus = GitHubCorpusGenerator(repos=4).generate()
        batch = SQLCheck().check_many(corpus.corpora())
        assert len(batch) == sum(len(r) for r in batch.reports.values())
        assert batch.stats.corpora == 4
        payload = batch.to_dict()
        assert set(payload) == {"corpora", "stats"}
        assert payload["stats"]["statements"] == len(corpus)


class TestReportHelpers:
    def test_counts_is_counter(self):
        report = SQLCheck().check(["SELECT * FROM a", "SELECT * FROM b"])
        counts = report.counts()
        assert counts[AntiPattern.COLUMN_WILDCARD] == 2
        assert counts.most_common(1)[0][0] is AntiPattern.COLUMN_WILDCARD

    def test_fix_for_uses_identity_index(self):
        report = SQLCheck().check(["SELECT * FROM a", "SELECT * FROM b ORDER BY RAND()"])
        for entry in report.detections:
            fix = report.fix_for(entry)
            if fix is not None:
                assert fix.detection is entry.detection

    def test_to_dict_includes_stats(self):
        report = SQLCheck().check(["SELECT * FROM a"])
        payload = report.to_dict()
        assert payload["stats"] is not None
        assert set(payload["stats"]["stages"]) == {"parse", "context", "detect", "rank", "fix"}
        assert payload["stats"]["statements"] == 1
