"""The persistent detection memo: warm restarts, sharing, and corruption.

The SQLite-backed store (:mod:`repro.detector.persist`) must be a pure
optimisation: byte-identical detections whether the file is fresh, warm
from a previous *process*, stale (written under a different rule
registry), corrupt, or unwritable.  Every degraded path invalidates back
to a clean cold run — counted, never crashed.
"""
from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.detector.detector import APDetector, DetectorConfig
from repro.detector.persist import (
    REASON_CORRUPT_FILE,
    REASON_REGISTRY,
    PersistentMemo,
)
from repro.testkit.oracles import detection_bytes

CORPUS = [
    "CREATE TABLE users (id INTEGER PRIMARY KEY, tags VARCHAR(200))",
    "SELECT * FROM users",
    "SELECT * FROM users WHERE tags LIKE '%admin%'",
    "SELECT * FROM users",
]

REPO_ROOT = Path(__file__).resolve().parents[2]


def _detector(path) -> APDetector:
    return APDetector(DetectorConfig(persistent_memo_path=str(path)))


class TestWarmRestart:
    def test_fresh_instance_replays_byte_identically(self, tmp_path):
        memo = tmp_path / "memo.sqlite"
        cold_detector = _detector(memo)
        cold_report, cold_stats = cold_detector.detect_batch(CORPUS)
        cold_detector.close()
        assert cold_stats.parallel_mode != "persistent-replay"

        warm_detector = _detector(memo)
        warm_report, warm_stats = warm_detector.detect_batch(CORPUS)
        warm_detector.close()
        assert detection_bytes(warm_report) == detection_bytes(cold_report)
        assert warm_stats.parallel_mode == "persistent-replay"
        assert warm_stats.memo_hits == warm_stats.statements

    def test_persistence_matches_the_memoryless_baseline(self, tmp_path):
        baseline = APDetector(DetectorConfig()).detect(CORPUS)
        detector = _detector(tmp_path / "memo.sqlite")
        report = detector.detect(CORPUS)
        detector.close()
        assert detection_bytes(report) == detection_bytes(baseline)

    def test_statement_memo_survives_a_changed_corpus(self, tmp_path):
        """A *different* corpus cannot ride the whole-corpus replay, but
        per-statement entries for unchanged statements still hit."""
        memo = tmp_path / "memo.sqlite"
        first = _detector(memo)
        first.detect_batch(CORPUS)
        first.close()

        extended = CORPUS + ["SELECT id FROM users WHERE id = 7"]
        second = _detector(memo)
        report, stats = second.detect_batch(extended)
        reference = APDetector(DetectorConfig()).detect(extended)
        second.close()
        assert stats.parallel_mode != "persistent-replay"
        assert detection_bytes(report) == detection_bytes(reference)

    def test_memo_info_reports_the_persistent_layer(self, tmp_path):
        detector = _detector(tmp_path / "memo.sqlite")
        detector.detect_batch(CORPUS)
        info = detector.memo_info
        detector.close()
        persistent = info["persistent"]
        assert persistent["path"].endswith("memo.sqlite")
        assert persistent["memo_rows"] > 0
        assert persistent["corpus_rows"] >= 1


class TestCrossProcessPersistence:
    """The store's real contract: warm state survives *process* restarts."""

    SCRIPT = """
import json, sys
from repro.detector.detector import APDetector, DetectorConfig
from repro.testkit.oracles import detection_bytes

corpus = json.loads(sys.argv[2])
detector = APDetector(DetectorConfig(persistent_memo_path=sys.argv[1]))
report, stats = detector.detect_batch(corpus)
detector.close()
print(json.dumps({
    "bytes": detection_bytes(report).decode(),
    "mode": stats.parallel_mode,
}))
"""

    def _run_once(self, memo_path: str) -> dict:
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT, memo_path, json.dumps(CORPUS)],
            capture_output=True, text=True, env=env, timeout=120, check=True,
        )
        return json.loads(result.stdout)

    def test_second_process_replays_the_first_processs_run(self, tmp_path):
        memo = str(tmp_path / "memo.sqlite")
        first = self._run_once(memo)
        second = self._run_once(memo)
        assert first["mode"] != "persistent-replay"
        assert second["mode"] == "persistent-replay"
        assert second["bytes"] == first["bytes"]

    def test_cli_processes_share_the_memo_cache(self, tmp_path):
        memo = str(tmp_path / "memo.sqlite")
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        command = [
            sys.executable, "-m", "repro.interfaces.cli",
            "--memo-cache", memo, "--format", "json",
            "-q", "SELECT * FROM users",
        ]
        outputs = []
        for _ in range(2):
            result = subprocess.run(
                command, capture_output=True, text=True, env=env, timeout=120,
            )
            assert result.returncode == 1, result.stderr  # findings present
            outputs.append(json.loads(result.stdout)["detections"])
        assert outputs[0] == outputs[1]
        assert os.path.exists(memo)


class TestCorruptAndStaleFiles:
    def test_corrupt_file_invalidates_back_to_cold(self, tmp_path):
        memo = tmp_path / "memo.sqlite"
        warmup = _detector(memo)
        cold = detection_bytes(warmup.detect(CORPUS))
        warmup.close()

        memo.write_bytes(b"this is definitely not a sqlite database")
        detector = _detector(memo)
        report = detector.detect(CORPUS)
        invalidations = detector.persistent.invalidations
        assert detection_bytes(report) == cold
        assert invalidations >= 1
        # The rebuilt store is live again: a fresh instance replays warm.
        detector2 = _detector(memo)
        detector2.detect(CORPUS)
        hits = detector2.persistent.hits
        detector.close()
        detector2.close()
        assert hits > 0

    def test_truncated_file_never_crashes(self, tmp_path):
        memo = tmp_path / "memo.sqlite"
        warmup = _detector(memo)
        cold = detection_bytes(warmup.detect(CORPUS))
        warmup.close()

        blob = memo.read_bytes()
        memo.write_bytes(blob[: len(blob) // 3])
        detector = _detector(memo)
        assert detection_bytes(detector.detect(CORPUS)) == cold
        detector.close()

    def test_registry_change_purges_stale_entries(self, tmp_path):
        path = str(tmp_path / "memo.sqlite")
        old = PersistentMemo(path, registry_digest=b"old-registry")
        old.put_corpus("k1", {"queries_analyzed": 1, "tables_analyzed": 0,
                              "detections": []})
        old.flush()
        old.close()

        new = PersistentMemo(path, registry_digest=b"new-registry")
        assert new.get_corpus("k1") is None
        assert new.invalidations >= 1
        new.close()
        assert REASON_REGISTRY == "registry-change"  # wire-format contract

    def test_corrupt_entry_is_a_counted_miss(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "memo.sqlite")
        store = PersistentMemo(path, registry_digest=b"r1")
        store.put_corpus("k1", {"queries_analyzed": 1, "tables_analyzed": 0,
                                "detections": []})
        store.flush()
        store.close()
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE corpus SET payload = ?", (b"\x80garbage-pickle",)
            )
            connection.commit()

        reopened = PersistentMemo(path, registry_digest=b"r1")
        assert reopened.get_corpus("k1") is None
        assert reopened.invalidations >= 1
        reopened.close()

    def test_unopenable_path_disables_the_store(self, tmp_path):
        detector = APDetector(
            DetectorConfig(
                persistent_memo_path=str(tmp_path / "no" / "such" / "dir" / "m.db")
            )
        )
        report = detector.detect(CORPUS)
        reference = APDetector(DetectorConfig()).detect(CORPUS)
        detector.close()
        assert detection_bytes(report) == detection_bytes(reference)


class TestConfigScoping:
    def test_different_thresholds_never_share_entries(self, tmp_path):
        from repro.rules.thresholds import Thresholds

        memo = tmp_path / "memo.sqlite"
        default_detector = _detector(memo)
        default_detector.detect_batch(CORPUS)
        default_detector.close()

        strict = DetectorConfig(
            persistent_memo_path=str(memo),
            thresholds=Thresholds(god_table_columns=1),
        )
        strict_detector = APDetector(strict)
        report, stats = strict_detector.detect_batch(CORPUS)
        reference = APDetector(
            dataclasses.replace(strict, persistent_memo_path=None)
        ).detect(CORPUS)
        strict_detector.close()
        assert stats.parallel_mode != "persistent-replay"
        assert detection_bytes(report) == detection_bytes(reference)
