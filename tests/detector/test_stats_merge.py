"""``PipelineStats.merge``: corpus counting and mode-label integrity.

Regression tests for a merge that dropped ``corpora`` (every batch
reported ``corpora: 1`` no matter how many corpora were merged in) and
silently kept the left side's ``parallel_mode``/``stage_semantics`` when
the merged runs took different paths.
"""
from __future__ import annotations

from repro.core.sqlcheck import SQLCheck
from repro.detector.pipeline import PipelineStats, merged_label


class TestMergedLabel:
    def test_identical_labels_stay_plain(self):
        assert merged_label("serial", "serial") == "serial"

    def test_differing_labels_become_mixed(self):
        assert merged_label("process-pool", "serial") == "mixed(process-pool, serial)"

    def test_mixed_labels_unwrap_instead_of_nesting(self):
        first = merged_label("process-pool", "serial")
        again = merged_label(first, "serial")
        assert again == "mixed(process-pool, serial)"
        widened = merged_label(first, "serial-fallback")
        assert widened == "mixed(process-pool, serial, serial-fallback)"
        assert "mixed(mixed" not in merged_label(first, first)


class TestStatsMerge:
    def test_corpora_accumulate(self):
        left = PipelineStats(statements=10)
        right = PipelineStats(statements=5)
        third = PipelineStats(statements=1)
        left.merge(right).merge(third)
        assert left.corpora == 3
        assert left.statements == 16

    def test_merged_corpora_sum_not_count(self):
        # A right side that is itself a merge of two corpora carries both.
        right = PipelineStats().merge(PipelineStats())
        assert right.corpora == 2
        left = PipelineStats()
        left.merge(right)
        assert left.corpora == 3

    def test_mode_mismatch_is_surfaced(self):
        left = PipelineStats(parallel_mode="process-pool")
        left.merge(PipelineStats(parallel_mode="serial"))
        assert left.parallel_mode == "mixed(process-pool, serial)"

    def test_semantics_mismatch_is_surfaced(self):
        left = PipelineStats(stage_semantics="cpu-aggregate")
        left.merge(PipelineStats(stage_semantics="wall-clock"))
        assert left.stage_semantics == "mixed(cpu-aggregate, wall-clock)"

    def test_matching_labels_do_not_degrade(self):
        left = PipelineStats(parallel_mode="serial")
        left.merge(PipelineStats(parallel_mode="serial"))
        assert left.parallel_mode == "serial"
        assert left.stage_semantics == "wall-clock"

    def test_merge_still_accumulates_timings_and_errors(self):
        left = PipelineStats(parse_seconds=0.1, detect_seconds=0.2, errors=["a"])
        right = PipelineStats(parse_seconds=0.3, detect_seconds=0.1, errors=["b"])
        left.merge(right)
        assert left.parse_seconds == 0.4
        assert left.detect_seconds == 0.30000000000000004
        assert left.errors == ["a", "b"]
        assert left.degraded


class TestCheckManyIntegrity:
    def test_batch_stats_count_every_corpus(self):
        toolchain = SQLCheck()
        batch = toolchain.check_many({
            "a.sql": ["SELECT * FROM t"],
            "b.sql": ["SELECT id FROM u WHERE name LIKE '%x%'"],
            "c.sql": ["CREATE TABLE v (x INTEGER)"],
        })
        assert batch.stats.corpora == 3
        assert batch.stats.statements == 3
        # The per-corpus serial runs must not corrupt the batch's own labels.
        assert "mixed" not in batch.stats.parallel_mode
        assert "mixed" not in batch.stats.stage_semantics
        payload = batch.stats.to_dict()
        assert payload["corpora"] == 3
