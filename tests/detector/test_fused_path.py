"""PR 7 regression locks: fused matcher, quarantine/memo parity, sharded fan-out.

Four contracts pinned here:

* the trigger-token pre-filter really skips rules whose atoms are absent
  (and the ``fused=False`` reference path really does not);
* ``APDetector.stream`` honours ``DetectorConfig.quarantine`` exactly like
  ``detect`` — same detections, same structured error records;
* with ``enable_inter_query=False`` the detection memo is workload-scoped
  no more: identical statements replay across *different* workloads, while
  inter-query configurations stay workload-bound;
* a poisoned statement in the process-pool fan-out fails only its own
  chunk — the run stays on the pool, the bad statement is quarantined with
  its corpus position, and every other statement keeps its pool result.
"""
from __future__ import annotations

import pytest

from repro.detector import APDetector, DetectorConfig
from repro.detector import detector as detector_module
from repro.detector import pipeline as pipeline_module
from repro.errors import CODE_PARSE_ERROR, CODE_RULE_ERROR
from repro.model.antipatterns import AntiPattern
from repro.rules import RuleRegistry, default_registry
from repro.rules.base import QueryRule
from repro.testkit import ChaosError, CrashingRule, detection_bytes

POISON = "poison_tbl"


class CountingRule(QueryRule):
    """Fires never, counts how often the matcher actually invoked it."""

    anti_pattern = AntiPattern.COLUMN_WILDCARD
    statement_types = ("SELECT",)
    trigger_tokens = ("MAGICTOKEN",)

    def __init__(self):
        super().__init__()
        self.calls = 0

    def check(self, annotation, context):
        self.calls += 1
        return []


def _counting_registry():
    registry = RuleRegistry(list(default_registry()))
    counting = CountingRule()
    registry.register(counting)
    return registry, counting


def _poison_annotate(monkeypatch, module):
    """Make ``module.annotate`` raise on statements mentioning ``POISON``."""
    real = module.annotate

    def chaos(statement):
        if POISON in statement.raw:
            raise ChaosError("chaos: annotate failed")
        return real(statement)

    monkeypatch.setattr(module, "annotate", chaos)


class TestTriggerPreFilter:
    def test_rule_is_skipped_when_trigger_atoms_are_absent(self):
        registry, counting = _counting_registry()
        detector = APDetector(DetectorConfig(enable_cache=False), registry=registry)
        detector.detect(["SELECT a FROM t", "SELECT b FROM u WHERE b = 1"])
        assert counting.calls == 0
        detector.detect(["SELECT magictoken FROM t"])
        assert counting.calls == 1

    def test_reference_path_runs_the_rule_regardless(self):
        registry, counting = _counting_registry()
        detector = APDetector(
            DetectorConfig(enable_cache=False, fused=False), registry=registry
        )
        detector.detect(["SELECT a FROM t", "SELECT b FROM u WHERE b = 1"])
        assert counting.calls == 2

    def test_fused_selection_preserves_registration_order(self):
        registry = default_registry()
        full = registry.rules_for_statement("SELECT")
        fused = registry.fused_rules_for(
            "SELECT", "SELECT NAME FROM T WHERE NAME LIKE '%X%'"
        )
        positions = [full.index(rule) for rule in fused]
        assert positions == sorted(positions)
        assert set(fused) <= set(full)
        # A rule with an absent trigger atom is filtered out...
        assert all(rule.name != "OrderingByRandRule" for rule in fused)
        # ...while a rule whose atom is present survives.
        assert any(rule.name == "PatternMatchingRule" for rule in fused)

    def test_registry_mutation_recompiles_the_automaton(self):
        registry = default_registry()
        before = registry.fused_rules_for("SELECT", "SELECT * FROM T")
        assert any(rule.name == "ColumnWildcardRule" for rule in before)
        registry.unregister("ColumnWildcardRule")
        after = registry.fused_rules_for("SELECT", "SELECT * FROM T")
        assert all(rule.name != "ColumnWildcardRule" for rule in after)


class TestStreamQuarantineParity:
    WORKLOAD = [
        "SELECT * FROM orders",
        f"SELECT x FROM {POISON}",
        "SELECT name FROM users WHERE name LIKE '%smith%'",
    ]

    def test_stream_detections_and_errors_match_detect(self, monkeypatch):
        from repro.context import builder as builder_module

        _poison_annotate(monkeypatch, builder_module)
        config = DetectorConfig(enable_cache=False, deduplicate=False)
        report = APDetector(config).detect(self.WORKLOAD)
        assert any(e.code == CODE_PARSE_ERROR for e in report.errors)

        errors = []
        streamed = list(APDetector(config).stream(self.WORKLOAD, errors=errors))
        assert [d.to_dict() for d in streamed] == [
            d.to_dict() for d in report.detections
        ]
        assert [e.to_dict() for e in errors] == [e.to_dict() for e in report.errors]

    def test_stream_collects_rule_errors(self):
        crashing = CrashingRule()
        registry = RuleRegistry(list(default_registry()))
        registry.register(crashing)
        errors = []
        detections = list(
            APDetector(DetectorConfig(enable_cache=False), registry=registry).stream(
                ["SELECT * FROM t"], errors=errors
            )
        )
        assert detections  # the other rules kept running
        assert [
            e for e in errors if e.code == CODE_RULE_ERROR and e.rule == crashing.name
        ]

    def test_stream_quarantine_off_restores_fail_fast(self, monkeypatch):
        from repro.context import builder as builder_module

        _poison_annotate(monkeypatch, builder_module)
        config = DetectorConfig(enable_cache=False, quarantine=False)
        with pytest.raises(ChaosError):
            list(APDetector(config).stream(self.WORKLOAD))


class TestMemoScope:
    def test_memo_replays_across_workloads_when_intra_only(self):
        config = DetectorConfig(enable_inter_query=False)
        detector = APDetector(config)
        detector.detect(["SELECT * FROM a", "SELECT id FROM b"])
        assert detector.memo_info["hits"] == 0
        second = detector.detect(["SELECT * FROM a", "SELECT name FROM c"])
        assert detector.memo_info["hits"] >= 1
        # The replayed results are byte-identical to a cold run.
        cold = APDetector(
            DetectorConfig(enable_inter_query=False, enable_cache=False)
        ).detect(["SELECT * FROM a", "SELECT name FROM c"])
        assert detection_bytes(second) == detection_bytes(cold)

    def test_inter_query_memo_stays_workload_scoped(self):
        detector = APDetector(DetectorConfig())
        detector.detect(["SELECT * FROM a", "CREATE TABLE a (id INT PRIMARY KEY)"])
        hits = detector.memo_info["hits"]
        # A different workload can change contextual verdicts: no replay.
        detector.detect(["SELECT * FROM a", "CREATE TABLE b (id INT PRIMARY KEY)"])
        assert detector.memo_info["hits"] == hits


class TestShardedFanOut:
    def test_poisoned_chunk_recovers_without_abandoning_the_pool(self, monkeypatch):
        from repro.context import builder as builder_module

        # Let the pool run on a single-CPU container (the detector and the
        # pipeline each import resolve_workers directly), and poison one
        # statement in both the worker parser and the serial fallback.
        for module in (pipeline_module, detector_module):
            monkeypatch.setattr(
                module, "resolve_workers", lambda requested: min(requested, 2)
            )
        _poison_annotate(monkeypatch, pipeline_module)
        _poison_annotate(monkeypatch, builder_module)

        corpus = [f"SELECT c{i} FROM t{i} WHERE c{i} = {i}" for i in range(80)]
        poison_position = 37
        corpus[poison_position] = f"SELECT x FROM {POISON}"

        report, stats = APDetector(DetectorConfig(enable_cache=False)).detect_batch(
            corpus, workers=2
        )
        assert stats.parallel_mode == "process-pool:chunks-recovered=1"
        assert stats.workers == 2
        (error,) = report.errors
        assert error.code == CODE_PARSE_ERROR
        assert error.statement_index == poison_position
        assert report.queries_analyzed == len(corpus) - 1
        # The degraded pool run matches the serial quarantined run exactly.
        serial = APDetector(DetectorConfig(enable_cache=False)).detect(corpus)
        assert detection_bytes(report) == detection_bytes(serial)

    def test_duplicates_shard_together_and_keep_their_indexes(self, monkeypatch):
        for module in (pipeline_module, detector_module):
            monkeypatch.setattr(
                module, "resolve_workers", lambda requested: min(requested, 2)
            )
        base = [f"SELECT c{i} FROM t{i}" for i in range(64)]
        corpus = base + ["SELECT * FROM orders"] * 8
        report, stats = APDetector(DetectorConfig(enable_cache=False)).detect_batch(
            corpus, workers=2
        )
        assert stats.parallel_mode == "process-pool"
        wildcard_indexes = sorted(
            d.query_index
            for d in report.detections
            if d.anti_pattern is AntiPattern.COLUMN_WILDCARD
            and d.query == "SELECT * FROM orders"
        )
        assert wildcard_indexes == list(range(64, 72))
        serial = APDetector(DetectorConfig(enable_cache=False)).detect(corpus)
        assert detection_bytes(report) == detection_bytes(serial)
