"""Detector quarantine: rule and parse failures degrade, never abort.

The fault-isolation contract at the detector layer: a rule that raises is
recorded as a structured :class:`~repro.errors.PipelineError` and skipped,
every other rule and statement still runs, and the surviving detections
are byte-identical to a run without the broken rule.  ``quarantine=False``
restores the pre-isolation fail-fast behavior.
"""
from __future__ import annotations

import dataclasses

import pytest

from repro.detector import APDetector, DetectorConfig
from repro.errors import CODE_PARSE_ERROR, CODE_RULE_ERROR
from repro.rules import RuleRegistry, default_registry
from repro.testkit import ChaosError, CrashingRule, FlakyRule

WORKLOAD = [
    "SELECT * FROM orders",
    "SELECT name FROM users WHERE name LIKE '%smith%'",
    "SELECT id FROM orders WHERE status = 'open'",
]


def _chaos_registry(rule):
    registry = RuleRegistry(list(default_registry()))
    registry.register(rule)
    return registry


def _detection_dicts(report):
    return [d.to_dict() for d in report.detections]


class TestRuleQuarantine:
    def test_crashing_rule_is_quarantined_and_detections_survive(self):
        config = DetectorConfig(enable_cache=False)
        baseline = APDetector(config).detect(WORKLOAD)
        crashing = CrashingRule()
        report = APDetector(config, registry=_chaos_registry(crashing)).detect(WORKLOAD)
        assert crashing.calls == len(WORKLOAD)
        assert _detection_dicts(report) == _detection_dicts(baseline)
        rule_errors = [e for e in report.errors if e.code == CODE_RULE_ERROR]
        assert len(rule_errors) == len(WORKLOAD)
        for error in rule_errors:
            assert error.stage == "detect"
            assert error.rule == crashing.name
            assert error.exception == "ChaosError"
            assert error.statement_fingerprint
            assert error.statement_index is not None

    def test_flaky_rule_only_quarantines_planned_statements(self):
        config = DetectorConfig(enable_cache=False)
        flaky = FlakyRule(fail_indexes=[1])
        report = APDetector(config, registry=_chaos_registry(flaky)).detect(WORKLOAD)
        assert flaky.crashes == 1
        (error,) = [e for e in report.errors if e.code == CODE_RULE_ERROR]
        assert error.statement_index == 1

    def test_quarantine_off_restores_fail_fast(self):
        config = DetectorConfig(enable_cache=False, quarantine=False)
        detector = APDetector(config, registry=_chaos_registry(CrashingRule()))
        with pytest.raises(ChaosError):
            detector.detect(WORKLOAD)

    def test_report_degrades_only_when_errors_exist(self):
        config = DetectorConfig(enable_cache=False)
        clean = APDetector(config).detect(WORKLOAD)
        assert clean.errors == []
        assert "errors" not in clean.to_dict()  # clean output byte-stable
        broken = APDetector(config, registry=_chaos_registry(CrashingRule())).detect(
            WORKLOAD
        )
        payload = broken.to_dict()
        assert payload["degraded"] is True
        assert payload["errors"] == [e.to_dict() for e in broken.errors]


class TestMemoInteraction:
    def test_quarantined_statements_are_never_memoized(self):
        # Same statement twice: a quarantined analysis must re-run (and
        # re-record its error) on the second occurrence, not replay a memo
        # entry that could not reproduce the error record.
        config = DetectorConfig()
        crashing = CrashingRule()
        detector = APDetector(config, registry=_chaos_registry(crashing))
        workload = ["SELECT * FROM orders", "SELECT * FROM orders"]
        report = detector.detect(workload)
        assert crashing.calls == 2
        assert len([e for e in report.errors if e.code == CODE_RULE_ERROR]) == 2
        assert detector.memo_info["entries"] == 0

    def test_clean_statements_still_memoize_alongside_a_flaky_rule(self):
        config = DetectorConfig()
        flaky = FlakyRule(fail_indexes=[0])
        detector = APDetector(config, registry=_chaos_registry(flaky))
        # Statement 0 is quarantined; the distinct statement 1 memoizes and
        # its duplicate at index 2 replays from the memo.
        workload = [
            "SELECT * FROM orders",
            "SELECT id FROM users",
            "SELECT id FROM users",
        ]
        report = detector.detect(workload)
        assert len(report.errors) == 1
        assert detector.memo_info["entries"] >= 1
        assert detector.memo_info["hits"] >= 1


class TestParseQuarantine:
    def test_parse_failure_is_quarantined(self, monkeypatch):
        # The real parser is deliberately lenient, so inject the failure at
        # the annotate seam: one statement's annotation blows up, the rest
        # of the workload must analyse normally.
        from repro.context import builder as builder_module

        real_annotate = builder_module.annotate

        def chaos_annotate(statement):
            if "users" in statement.raw:
                raise ChaosError("chaos: annotate failed")
            return real_annotate(statement)

        monkeypatch.setattr(builder_module, "annotate", chaos_annotate)
        config = DetectorConfig(enable_cache=False)
        report = APDetector(config).detect(WORKLOAD)
        (error,) = report.errors
        assert error.stage == "parse"
        assert error.code == CODE_PARSE_ERROR
        assert error.exception == "ChaosError"
        # The failed statement is dropped; the other two still analysed.
        assert report.queries_analyzed == len(WORKLOAD) - 1

    def test_parse_failure_raises_without_quarantine(self, monkeypatch):
        from repro.context import builder as builder_module

        def chaos_annotate(statement):
            raise ChaosError("chaos: annotate failed")

        monkeypatch.setattr(builder_module, "annotate", chaos_annotate)
        config = DetectorConfig(enable_cache=False, quarantine=False)
        with pytest.raises(ChaosError):
            APDetector(config).detect(WORKLOAD)


class TestStatsCarryErrors:
    def test_detect_batch_quarantines_and_reports_on_stats(self):
        config = DetectorConfig(enable_cache=False)
        crashing = CrashingRule()
        detector = APDetector(config, registry=_chaos_registry(crashing))
        report, stats = detector.detect_batch(WORKLOAD, workers=1)
        assert len(report.errors) == len(WORKLOAD)
        assert stats.errors == report.errors
        assert stats.to_dict()["degraded"] is True
