"""Differential oracles for the workload cost-model layer (PR 5).

Acceptance contract: the pluggable cost models are pure *re-weighting* —
``duration`` (and ``hybrid``) with uniform durations is byte-identical to
``frequency``; a logless run is byte-identical to the seed ranking; and
only genuinely skewed durations may move a finding.  The checks run at
three levels: the ranker (the reusable testkit oracle), the toolchain
(``SQLCheck`` report bytes), and the live scanner (durations parsed from a
real log format).
"""
from __future__ import annotations

import json

import pytest

from repro.core.sqlcheck import SQLCheck, SQLCheckOptions
from repro.ingest import WorkloadLog, iter_log_records
from repro.ranking import APRanker, DurationCostModel, HybridCostModel, resolve_cost_model
from repro.testkit import CorpusGenerator, check_cost_model_equivalence, ranking_bytes


def test_cost_model_equivalence_oracle_on_fuzzed_corpus():
    failures = check_cost_model_equivalence(seed=2020, statements=80)
    assert failures == [], [str(f) for f in failures]


def test_cost_model_equivalence_oracle_across_seeds():
    for seed in (7, 99):
        failures = check_cost_model_equivalence(seed=seed, statements=30)
        assert failures == [], [str(f) for f in failures]


def test_logless_toolchain_report_is_byte_identical_across_models():
    """End to end: the same corpus, no workload facts — every model's
    detections (ranks, scores, weights included) serialise identically."""
    corpus = CorpusGenerator(5).corpus_sql(40)
    baseline = None
    for model in (None, "frequency", "duration", "hybrid"):
        report = SQLCheck(SQLCheckOptions(cost_model=model)).check(corpus)
        payload = json.dumps(report.to_dict()["detections"], sort_keys=True)
        if baseline is None:
            baseline = payload
        else:
            assert payload == baseline, f"model {model} moved a logless ranking"


def test_skewed_durations_reorder_where_frequency_cannot():
    """The non-degenerate case: equal frequencies, 100× duration skew."""
    ranker = APRanker()
    corpus = [
        "SELECT * FROM sensors",
        "SELECT label FROM sensors WHERE notes LIKE '%hot%'",
    ]
    report = SQLCheck().detector.detect(corpus)
    frequencies = {0: 16, 1: 16}
    skewed = {0: 1.0, 1: 100.0}
    by_frequency = ranking_bytes(
        ranker.rank(report, frequencies=frequencies, cost_model="frequency")
    )
    with_durations = ranking_bytes(
        ranker.rank(
            report, frequencies=frequencies, durations=skewed, cost_model="duration"
        )
    )
    assert by_frequency != with_durations
    # And the weight moves in the right direction: the slow statement's
    # findings carry a strictly larger weight than the fast one's.
    ranked = ranker.rank(
        report, frequencies=frequencies, durations=skewed, cost_model="duration"
    )
    weights = {entry.detection.query_index: entry.workload_weight for entry in ranked}
    assert weights[1] > weights[0]


def test_duration_weights_are_unit_free():
    """Logging in seconds instead of milliseconds cannot move a ranking:
    the median normalisation cancels any global scale factor."""
    model = DurationCostModel()
    frequencies = {0: 4, 1: 9, 2: 2}
    in_ms = {0: 3.0, 1: 250.0, 2: 40.0}
    in_seconds = {index: value / 1000.0 for index, value in in_ms.items()}
    assert model.weights(frequencies, in_ms) == pytest.approx(
        model.weights(frequencies, in_seconds)
    )


def test_hybrid_interpolates_between_the_pure_models():
    frequencies = {0: 8}
    durations = {0: 90.0, 1: 10.0}
    low = resolve_cost_model("frequency").weights(frequencies, durations)
    high = resolve_cost_model("duration").weights(frequencies, durations)
    mid = HybridCostModel(0.5).weights(frequencies, durations)
    assert min(low[0], high[0]) <= mid[0] <= max(low[0], high[0])
    assert HybridCostModel(0.0).weights(frequencies, durations)[0] == low[0]
    assert HybridCostModel(1.0).weights(frequencies, durations)[0] == high[0]


def test_durations_flow_from_a_real_log_into_the_ranking():
    """Scanner level: a postgres stderr log with ``log_min_duration``
    timings re-weights the scan under the duration model — and the same
    scan under ``frequency`` ignores the timings entirely."""
    from repro.ingest import LiveScanner

    lines = []
    for _ in range(4):
        lines.append(
            "2026-07-01 12:00:00 UTC [9] LOG:  duration: 2500.000 ms  "
            "statement: SELECT label FROM sensors WHERE notes LIKE '%hot%'\n"
        )
    for _ in range(4):
        lines.append(
            "2026-07-01 12:00:01 UTC [9] LOG:  duration: 0.100 ms  "
            "statement: SELECT * FROM sensors\n"
        )
    log = WorkloadLog.from_records(iter_log_records(lines, "postgres"))
    slow = LiveScanner(
        options=SQLCheckOptions(cost_model="duration")
    ).scan(None, log)
    weights = {
        entry.detection.anti_pattern.value: entry.workload_weight for entry in slow
    }
    assert weights["pattern_matching"] > weights["column_wildcard"]
    flat = LiveScanner(options=SQLCheckOptions(cost_model="frequency")).scan(None, log)
    flat_weights = {
        entry.detection.anti_pattern.value: entry.workload_weight for entry in flat
    }
    assert flat_weights["pattern_matching"] == flat_weights["column_wildcard"]
