"""Fixtures for the conformance suite."""
from __future__ import annotations

from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(scope="session")
def golden_dir() -> Path:
    return GOLDEN_DIR
