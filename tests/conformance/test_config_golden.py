"""Golden snapshots under non-default detector configurations.

The per-rule golden corpus (``test_golden_corpus.py``) locks every rule's
verdict under the *default* :class:`DetectorConfig`; these snapshots lock
the same examples under the configurations the paper ablates — intra-query
only (no whole-workload context, §8.1) and tightened thresholds (§4.2) —
so a change to how a config knob is honoured shows up as golden drift, not
as a silent behavior shift.  Stored under ``golden/configs/<name>/``;
regenerate with ``pytest tests/conformance --update-golden``.
"""
from __future__ import annotations

import pytest

from repro.detector.detector import DetectorConfig
from repro.rules.thresholds import Thresholds
from repro.testkit import diff_golden, golden_entries, load_golden, write_golden

#: Non-default configurations worth locking.  ``strict_thresholds``
#: tightens exactly the knobs the rule examples exercise, so several
#: verdicts genuinely differ from the default corpus.
CONFIGS: "dict[str, DetectorConfig]" = {
    "intra_only": DetectorConfig(enable_inter_query=False),
    "strict_thresholds": DetectorConfig(
        thresholds=Thresholds(
            god_table_columns=5,
            too_many_joins=3,
            enum_max_distinct=4,
            index_overuse_max_indexes=1,
            data_in_metadata_min_columns=2,
        )
    ),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_config_golden_matches(name, update_golden, golden_dir):
    config_dir = golden_dir / "configs" / name
    current = golden_entries(config=CONFIGS[name])
    if update_golden:
        write_golden(config_dir, current)
        return
    stored = load_golden(config_dir)
    assert stored, (
        f"no golden corpus for config {name!r} in {config_dir}; generate it "
        "with `pytest tests/conformance --update-golden`"
    )
    mismatches = diff_golden(current, stored)
    assert not mismatches, "\n".join(mismatches)


def test_config_goldens_actually_differ_from_default(golden_dir):
    """Sanity: each non-default config changes at least one stored verdict —
    otherwise the snapshot adds no coverage over the default corpus."""
    default = {
        (e["rule"], e["example"]): e["detections"] for e in load_golden(golden_dir)
    }
    for name in CONFIGS:
        stored = load_golden(golden_dir / "configs" / name)
        assert stored, f"missing stored golden for config {name!r}"
        changed = [
            key
            for key in default
            if default[key] != {
                (e["rule"], e["example"]): e["detections"] for e in stored
            }.get(key)
        ]
        assert changed, f"config {name!r} produced verdicts identical to the default"


def test_intra_only_drops_inter_query_detections(golden_dir):
    """The locked intra-only corpus carries no inter_query detections."""
    stored = load_golden(golden_dir / "configs" / "intra_only")
    modes = {
        detection["detection_mode"]
        for entry in stored
        for detection in entry["detections"]
    }
    assert stored and "inter_query" not in modes
