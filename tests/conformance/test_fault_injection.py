"""Fault-injection testkit conformance: chaos wrappers and the oracle.

The chaos module has one job — make every promised failure mode happen on
demand, deterministically.  These tests pin the wrappers' contracts (the
invariants :func:`check_fault_isolation` builds on) and then run the
oracle itself: on this codebase it must report zero failures, which is
the differential guarantee "a degraded run's detections on the clean
subset are identical to a clean run's".
"""
from __future__ import annotations

import sqlite3

import pytest

from repro.ingest import ConnectorError, RetryPolicy, connect
from repro.testkit import (
    BrokenConnector,
    ChaosError,
    CrashingRule,
    FaultPlan,
    FlakyConnector,
    FlakyRule,
    check_fault_isolation,
    corrupt_log_lines,
)

FAST = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0)


@pytest.fixture()
def sqlite_db(tmp_path):
    path = tmp_path / "chaos.db"
    with sqlite3.connect(path) as db:
        db.execute("CREATE TABLE orders (order_id INTEGER PRIMARY KEY, status TEXT)")
        db.executemany(
            "INSERT INTO orders (status) VALUES (?)",
            [("paid" if n % 2 else "open",) for n in range(10)],
        )
    return path


class TestFaultPlan:
    def test_same_plan_same_picks(self):
        assert FaultPlan(7).pick(100, 5) == FaultPlan(7).pick(100, 5)

    def test_different_seeds_differ(self):
        picks = {FaultPlan(seed).pick(1000, 10) for seed in range(5)}
        assert len(picks) > 1

    def test_count_is_clamped_to_population(self):
        assert FaultPlan().pick(3, 99) == frozenset(range(3))
        assert FaultPlan().pick(3, 0) == frozenset()


class TestCorruptLogLines:
    LINES = ["SELECT 1;\n", "SELECT 2;\n", "SELECT 3;\n"]

    def test_originals_are_preserved_in_order(self):
        corrupted, injected = corrupt_log_lines(self.LINES, faults=2)
        assert injected == 2
        assert [l for l in corrupted if l in self.LINES] == self.LINES

    def test_only_junk_is_inserted(self):
        corrupted, injected = corrupt_log_lines(self.LINES, faults=2)
        junk = [l for l in corrupted if l not in self.LINES]
        assert len(junk) == injected
        # Every injected line is recognisable binary junk (NUL or U+FFFD),
        # which is what the degraded readers' filter keys on.
        assert all("\x00" in l or "�" in l for l in junk)

    def test_deterministic_under_a_plan(self):
        plan = FaultPlan(seed=42)
        assert corrupt_log_lines(self.LINES, plan=plan) == corrupt_log_lines(
            self.LINES, plan=FaultPlan(seed=42)
        )


class TestChaosRules:
    def test_crashing_rule_always_raises_and_counts(self):
        rule = CrashingRule()
        with pytest.raises(ChaosError):
            rule.check(object(), object())
        assert rule.calls == 1

    def test_flaky_rule_respects_its_plan(self):
        class _Stmt:
            index = 3

        class _Ann:
            statement = _Stmt()

        rule = FlakyRule(fail_indexes=[3])
        with pytest.raises(ChaosError):
            rule.check(_Ann(), object())
        _Stmt.index = 4
        assert rule.check(_Ann(), object()) == []
        assert rule.crashes == 1


class TestChaosConnectors:
    def test_flaky_connector_recovers_through_retries(self, sqlite_db):
        with connect(sqlite_db) as inner:
            flaky = FlakyConnector(inner, failures=2)
            flaky.retry_policy = FAST
            rows = flaky.fetch_rows("orders")
            assert len(rows) == 10
            assert flaky.attempts == 3

    def test_broken_connector_fails_rows_but_introspects(self, sqlite_db):
        with connect(sqlite_db) as inner:
            broken = BrokenConnector(inner)
            broken.retry_policy = FAST
            assert broken.introspect_schema().table_count == 1
            with pytest.raises(ConnectorError):
                broken.fetch_rows("orders")

    def test_wrappers_keep_provenance(self, sqlite_db):
        with connect(sqlite_db) as inner:
            assert FlakyConnector(inner).name == f"chaos:{inner.name}"


class TestFaultIsolationOracle:
    def test_oracle_passes_on_this_codebase(self):
        failures = check_fault_isolation(statements=24)
        assert failures == [], [str(f) for f in failures]

    def test_selftest_runs_the_fault_isolation_oracle(self):
        # The oracle is wired into `sqlcheck selftest` (step 7); a selftest
        # that skipped it would silently drop the whole robustness contract.
        import inspect

        from repro.testkit import selftest as selftest_module

        assert "check_fault_isolation" in inspect.getsource(
            selftest_module.run_selftest
        )
