"""Fused matcher ≡ pre-fusion reference, byte for byte (PR 7 tentpole).

The fused cold path — compiled trigger-token pre-filter plus per-run
workload-fact caches — must be pure optimisation.  The oracle compares the
fused detector against the ``fused=False`` reference (plain dispatch,
facts recomputed per rule call, exactly the pre-fusion detector) over the
fuzzed corpus and every registered rule's conformance examples, under the
default, intra-only, cache-off, and strict-thresholds configurations, and
through ``detect_batch``.  Any divergence is matcher drift.
"""
from __future__ import annotations

from repro.testkit import check_fused_equivalence


def test_fused_byte_identical_to_reference_on_golden_and_fuzzed():
    failures = check_fused_equivalence(statements=120)
    assert not failures, "\n".join(str(f) for f in failures)
