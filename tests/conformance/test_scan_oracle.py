"""Differential oracle: live-source scanning ≡ the offline pipeline.

PR 4's acceptance contract: ``sqlcheck scan`` against a SQLite file and a
sample PostgreSQL csvlog produces detections byte-identical to the
equivalent offline inputs (the same DDL applied to the in-repo engine, the
same rows, the same statements), with the ranker's weights taken from the
log's *real* execution frequencies — and the same workload parsed from
every supported log dialect normalizes to the same
:class:`~repro.ingest.workload_log.WorkloadLog`.
"""
from __future__ import annotations

import json
import sqlite3

import pytest

from repro.core.sqlcheck import SQLCheck, SQLCheckOptions
from repro.detector.detector import DetectorConfig
from repro.ingest import (
    WorkloadLog,
    assign_frequencies,
    iter_log_records,
    read_workload_log,
)
from repro.interfaces.cli import run as cli_run
from repro.engine.database import Database
from repro.testkit import check_scan_equivalence

DDL = [
    "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, label VARCHAR(40) NOT NULL)",
    "CREATE TABLE questionnaire (q_id INTEGER PRIMARY KEY, tenant_id INTEGER, "
    "name VARCHAR(30))",
    "CREATE TABLE readings (reading_id INTEGER PRIMARY KEY, amount FLOAT, "
    "note VARCHAR(20))",
]

ROWS = {
    "tenant": [{"tenant_id": i, "label": f"t{i}"} for i in range(30)],
    "questionnaire": [
        {"q_id": i, "tenant_id": i % 30, "name": f"q{i}"} for i in range(80)
    ],
    "readings": [
        {"reading_id": i, "amount": i / 3.0, "note": f"n{i}"} for i in range(25)
    ],
}

#: (statement, execution count) — the canonical workload all log dialects
#: below encode.  Duplicated counts are what the frequency weights feed on.
WORKLOAD = [
    ("SELECT * FROM tenant", 40),
    ("SELECT q.name FROM questionnaire q JOIN tenant t ON t.tenant_id = q.tenant_id", 7),
    ("SELECT name FROM questionnaire WHERE name LIKE '%x'", 3),
    ("SELECT label FROM tenant ORDER BY RANDOM() LIMIT 1", 1),
]


def _write_csvlog(path) -> None:
    rows = []
    n = 0
    for statement, count in WORKLOAD:
        for _ in range(count):
            n += 1
            message = f"statement: {statement}".replace('"', '""')
            rows.append(
                f'2026-07-01 12:00:{n % 60:02d}.000 UTC,"app","appdb",77,'
                f'"10.0.0.9:5000",abc,{n},"SELECT",2026-07-01 11:00:00 UTC,'
                f'9/9,0,LOG,00000,"{message}",,,,,,,,,"psql","client backend",,0'
            )
    path.write_text("\n".join(rows) + "\n", encoding="utf-8")


def _write_stderr_log(path) -> None:
    lines = [
        f"2026-07-01 12:00:00 UTC [77] LOG:  statement: {statement}"
        for statement, count in WORKLOAD
        for _ in range(count)
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _write_mysql_log(path) -> None:
    lines = [
        "/usr/sbin/mysqld, Version: 8.0.34. started with:",
        "Time                 Id Command    Argument",
    ]
    for statement, count in WORKLOAD:
        lines.extend(
            f"2026-07-01T12:00:00.000000Z\t   77 Query\t{statement}"
            for _ in range(count)
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _write_plain_sql(path) -> None:
    lines = [
        f"{statement};" for statement, count in WORKLOAD for _ in range(count)
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _offline_detections(workload: WorkloadLog, source: str) -> list[dict]:
    """The equivalent offline run: engine DB + statements + frequencies."""
    engine = Database()
    for statement in DDL:
        engine.execute(statement)
    for table, rows in ROWS.items():
        engine.insert_rows(table, [dict(r) for r in rows])
    toolchain = SQLCheck(
        SQLCheckOptions(detector=DetectorConfig(dialect="sqlite"))
    )
    context = toolchain._builder.build(
        workload.statements(), database=engine, source=source
    )
    assign_frequencies(context, workload)
    report = toolchain.check_context(context)
    return report.to_dict()["detections"]


@pytest.fixture
def sqlite_path(tmp_path):
    path = tmp_path / "app.db"
    connection = sqlite3.connect(str(path))
    for statement in DDL:
        connection.execute(statement)
    for table, rows in ROWS.items():
        for row in rows:
            connection.execute(
                f"INSERT INTO {table} ({', '.join(row)}) "
                f"VALUES ({', '.join('?' for _ in row)})",
                tuple(row.values()),
            )
    connection.commit()
    connection.close()
    return path


def test_cli_scan_is_byte_identical_to_offline_pipeline(tmp_path, sqlite_path):
    """The acceptance contract, end to end through the real CLI."""
    csvlog = tmp_path / "postgres.csv"
    _write_csvlog(csvlog)
    code, output = cli_run([
        "scan", "--db", str(sqlite_path), "--log", str(csvlog),
        "--log-format", "postgres-csv", "--format", "json",
    ])
    assert code == 1  # anti-patterns found
    live = json.loads(output)["detections"]
    workload = read_workload_log(csvlog, "postgres-csv", source=str(sqlite_path))
    offline = _offline_detections(workload, str(sqlite_path))
    assert json.dumps(live, sort_keys=True) == json.dumps(offline, sort_keys=True)


def test_frequency_weights_come_from_the_log(tmp_path, sqlite_path):
    """The hot wildcard (40 runs) must outrank everything; re-ranking the
    same detections without frequencies must order differently."""
    csvlog = tmp_path / "postgres.csv"
    _write_csvlog(csvlog)
    _, output = cli_run([
        "scan", "--db", str(sqlite_path), "--log", str(csvlog),
        "--log-format", "postgres-csv", "--format", "json",
    ])
    detections = json.loads(output)["detections"]
    assert detections[0]["anti_pattern"] == "column_wildcard"
    flat = _offline_detections(
        WorkloadLog.from_statements(s for s, _ in WORKLOAD), str(sqlite_path)
    )
    assert flat[0]["anti_pattern"] != "column_wildcard"


def test_all_log_dialects_normalize_to_the_same_workload(tmp_path):
    """≥3 log formats parse the same workload into identical logs —
    format equivalence makes the csvlog oracle above cover them all."""
    writers = {
        "postgres-csv": _write_csvlog,
        "postgres": _write_stderr_log,
        "mysql": _write_mysql_log,
        "sql": _write_plain_sql,
    }
    folded = {}
    for fmt, writer in writers.items():
        path = tmp_path / f"workload.{fmt}"
        writer(path)
        with open(path, "r", encoding="utf-8") as handle:
            log = WorkloadLog.from_records(iter_log_records(handle, fmt))
        folded[fmt] = [(e.statement, e.frequency) for e in log.entries()]
    expected = [(s, c) for s, c in WORKLOAD]
    for fmt, entries in folded.items():
        assert entries == expected, f"{fmt} normalised differently"


def test_testkit_scan_equivalence_oracle(tmp_path):
    """The reusable oracle itself (testkit surface of the same contract)."""
    workload = WorkloadLog.from_statements(
        [s for s, c in WORKLOAD for _ in range(c)]
    )
    failures = check_scan_equivalence(
        DDL, ROWS, workload,
        db_path=tmp_path / "oracle.db",
        options=SQLCheckOptions(detector=DetectorConfig(dialect="sqlite")),
    )
    assert failures == [], [str(f) for f in failures]


# ----------------------------------------------------------------------
# pg_stat_statements as the workload source (PR 5)
# ----------------------------------------------------------------------
def _write_pg_stat_csv(path) -> None:
    """The canonical workload as a pg_stat_statements export: one
    pre-aggregated row per statement (calls + total/mean times)."""
    lines = ["query,calls,total_exec_time,mean_exec_time"]
    for n, (statement, count) in enumerate(WORKLOAD):
        mean = 4.0 + n  # distinct but boring timings
        quoted = statement.replace('"', '""')
        lines.append(f'"{quoted}",{count},{mean * count},{mean}')
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def test_pg_stat_csv_normalizes_to_the_same_frequencies(tmp_path):
    """A pg_stat export folds to the same (statement, frequency) entries as
    the line-per-execution dialects — durations ride along on top."""
    path = tmp_path / "pg_stat.csv"
    _write_pg_stat_csv(path)
    log = read_workload_log(path)  # format auto-detected from the header
    assert log.log_format == "pg_stat_statements"
    assert [(e.statement, e.frequency) for e in log.entries()] == list(WORKLOAD)
    assert all(e.mean_duration_ms is not None for e in log.entries())


def test_scan_equivalence_holds_with_a_pg_stat_source(tmp_path):
    """Acceptance: ``check_scan_equivalence`` holds when the workload comes
    from pg_stat_statements and the duration cost model consumes its
    timings on both sides."""
    path = tmp_path / "pg_stat.csv"
    _write_pg_stat_csv(path)
    workload = read_workload_log(path)
    for cost_model in ("frequency", "duration", "hybrid"):
        failures = check_scan_equivalence(
            DDL, ROWS, workload,
            db_path=tmp_path / f"oracle_{cost_model}.db",
            options=SQLCheckOptions(
                detector=DetectorConfig(dialect="sqlite"), cost_model=cost_model
            ),
        )
        assert failures == [], [str(f) for f in failures]


def test_cli_scan_pg_stat_log_weights_by_duration(tmp_path, sqlite_path):
    """End to end: the pg_stat workload through the real CLI under the
    duration model — weights follow calls × mean time, not calls alone."""
    path = tmp_path / "pg_stat.csv"
    _write_pg_stat_csv(path)
    code, output = cli_run([
        "scan", "--db", str(sqlite_path), "--log", str(path),
        "--cost-model", "duration", "--format", "json",
    ])
    assert code == 1
    payload = json.loads(output)
    assert payload["cost_model"] == "duration"
    weighted = [
        d for d in payload["detections"] if d["query_index"] is not None
    ]
    assert any(d["workload_weight"] != 1.0 for d in weighted)
