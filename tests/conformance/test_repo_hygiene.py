"""Repository hygiene: no build artifacts tracked in git.

Compiled bytecode is machine- and version-specific noise: it bloats diffs,
goes stale the moment its source changes, and (worst) can shadow a deleted
module at import time.  The seed repo shipped 72 tracked ``.pyc`` files;
this test keeps them from ever coming back.
"""
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Artifact patterns that must never be tracked.
FORBIDDEN_SUFFIXES = (".pyc", ".pyo")
FORBIDDEN_PARTS = ("__pycache__",)


def _tracked_files():
    try:
        output = subprocess.run(
            ["git", "ls-files", "-z"],
            cwd=REPO_ROOT,
            capture_output=True,
            check=True,
            timeout=30,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        pytest.skip("not a git checkout (or git unavailable)")
    return [name.decode() for name in output.split(b"\0") if name]


def test_no_bytecode_files_tracked():
    offenders = [
        name
        for name in _tracked_files()
        if name.endswith(FORBIDDEN_SUFFIXES)
        or any(part in Path(name).parts for part in FORBIDDEN_PARTS)
    ]
    assert offenders == [], (
        f"{len(offenders)} build artifact(s) tracked in git "
        f"(e.g. {offenders[:5]}); git rm --cached them — .gitignore already "
        "excludes the patterns"
    )


def test_gitignore_excludes_bytecode():
    gitignore = REPO_ROOT / ".gitignore"
    assert gitignore.is_file(), ".gitignore is missing from the repo root"
    patterns = gitignore.read_text(encoding="utf-8")
    assert "__pycache__/" in patterns
    assert "*.py[cod]" in patterns
