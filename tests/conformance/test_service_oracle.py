"""The service-equivalence oracle: clean pass + tamper detection."""
from __future__ import annotations

import pytest

from repro.detector import persist
from repro.testkit import check_service_equivalence


def test_service_oracle_passes_on_the_real_pipeline():
    assert check_service_equivalence(statements=20) == []


def test_service_oracle_passes_on_a_planted_corpus():
    corpus = [
        "CREATE TABLE t (id INTEGER, name VARCHAR(10))",
        "SELECT * FROM t",
        "SELECT * FROM t",  # duplicate: exercises both memo layers
    ]
    assert check_service_equivalence(corpus) == []


def test_oracle_catches_a_store_that_serves_stale_corpora(monkeypatch):
    """A persistent store replaying the wrong detections must fail."""
    original = persist.PersistentMemo.get_corpus

    def stale(self, key):
        payload = original(self, key)
        if payload is not None:
            payload = dict(payload, detections=[])  # "forgets" every finding
        return payload

    monkeypatch.setattr(persist.PersistentMemo, "get_corpus", stale)
    failures = check_service_equivalence(statements=15)
    assert failures, "the oracle must catch a store serving stale bytes"
    assert any("warm restart" in f.subject for f in failures)


def test_oracle_rejects_a_vacuous_warm_run(monkeypatch):
    """If the warm restart silently re-detects instead of replaying, the
    ≥5× speedup claim rests on nothing — the oracle must flag it."""
    monkeypatch.setattr(
        persist.PersistentMemo, "get_corpus", lambda self, key: None
    )
    failures = check_service_equivalence(statements=15)
    assert any("vacuous" in f.reason for f in failures)
