"""Documentation conformance: RuleDoc completeness, reference sync, SARIF
required properties, and dead links.

This is the CI gate that keeps the explainable-reports subsystem honest:

* every registered rule declares a *complete* :class:`RuleDoc` (the
  planted/control contract's documentation twin);
* the committed rule reference (``docs/rules/``) is byte-identical to what
  ``sqlcheck docs`` would generate — docs can never rot silently;
* the SARIF emitter satisfies the SARIF 2.1.0 required-property set for
  every finding the golden corpus produces;
* no Markdown file under ``docs/`` (or the README) links to a missing
  relative target.
"""
from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.reporting import GENERATED_MARKER, check_reference, to_sarif
from repro.reporting.model import build_document
from repro.reporting.reference import reference_pages, rule_page_name
from repro.rules.base import RuleDoc
from repro.rules.registry import default_registry

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"
RULES_DOCS_DIR = DOCS_DIR / "rules"

#: Markdown inline links — [text](target); external and anchor links are
#: filtered by the checker, not the pattern.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


# ----------------------------------------------------------------------
# RuleDoc completeness
# ----------------------------------------------------------------------
def test_every_registered_rule_declares_a_complete_ruledoc():
    for rule in default_registry():
        assert isinstance(rule.doc, RuleDoc), f"{rule.name} declares no RuleDoc"
        missing = rule.doc.missing_fields()
        assert not missing, f"{rule.name}'s RuleDoc is missing {', '.join(missing)}"


def test_documentation_falls_back_to_the_catalog():
    rule = next(iter(default_registry()))
    declared = rule.documentation()
    assert declared is rule.doc
    try:
        rule_cls = type(rule)
        saved, rule_cls.doc = rule_cls.doc, None
        synthesised = rule.documentation()
        assert synthesised.title and synthesised.problem and synthesised.fix
    finally:
        rule_cls.doc = saved


def test_ruledoc_help_markdown_contains_all_sections():
    for rule in default_registry():
        markdown = rule.doc.help_markdown()
        assert rule.doc.title in markdown
        assert "Why it hurts" in markdown
        assert "Fix" in markdown


# ----------------------------------------------------------------------
# Generated reference sync (sqlcheck docs --check in CI)
# ----------------------------------------------------------------------
def test_rule_reference_is_in_sync_with_the_rules():
    problems = check_reference(RULES_DOCS_DIR, default_registry())
    assert not problems, (
        "docs/rules is out of sync; regenerate with "
        "`PYTHONPATH=src python -m repro.interfaces.cli docs`:\n" + "\n".join(problems)
    )


def test_reference_has_one_page_per_rule_with_both_example_kinds():
    registry = default_registry()
    pages = reference_pages(registry)
    assert len(pages) == len(registry) + 1  # + index
    for rule in registry:
        page = pages[rule_page_name(rule)]
        assert page.startswith(GENERATED_MARKER)
        assert "### Anti-pattern (detected)" in page, rule.name
        assert "### Clean counterpart (not detected)" in page, rule.name
        # planted/control SQL is embedded verbatim
        for example in rule.examples():
            assert example.sql in page, f"{rule.name}: example SQL missing from its page"


def test_docs_check_cli_passes_and_reports_drift(tmp_path):
    from repro.interfaces.cli import run

    code, output = run(["docs", "--check", "--out", str(RULES_DOCS_DIR)])
    assert code == 0, output
    # empty dir → every page is reported missing and the exit code is 1
    code, output = run(["docs", "--check", "--out", str(tmp_path)])
    assert code == 1
    assert "missing" in output
    # writing then checking round-trips
    code, _ = run(["docs", "--out", str(tmp_path)])
    assert code == 0
    code, output = run(["docs", "--check", "--out", str(tmp_path)])
    assert code == 0, output


# ----------------------------------------------------------------------
# SARIF 2.1.0 required-property validation over the golden corpus
# ----------------------------------------------------------------------
def _assert_valid_sarif(log: dict, registry) -> int:
    """Check the SARIF 2.1.0 required-property set; returns the result count."""
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    assert isinstance(log["runs"], list) and log["runs"]
    counted = 0
    for run in log["runs"]:
        driver = run["tool"]["driver"]
        assert driver["name"]
        rule_ids = [descriptor["id"] for descriptor in driver["rules"]]
        assert len(rule_ids) == len(set(rule_ids)), "duplicate rule ids in driver.rules"
        for descriptor in driver["rules"]:
            assert descriptor["id"]
            assert descriptor["shortDescription"]["text"]
            assert descriptor["fullDescription"]["text"]
            assert descriptor["help"]["text"]
            assert descriptor["defaultConfiguration"]["level"] in ("note", "warning", "error")
        for result in run["results"]:
            counted += 1
            assert result["ruleId"] in rule_ids
            assert result["message"]["text"]
            assert result["level"] in ("note", "warning", "error")
            if "ruleIndex" in result:
                assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            for location in result.get("locations", ()):
                physical = location["physicalLocation"]
                assert physical["artifactLocation"]["uri"]
                region = physical.get("region")
                if region is not None and "startLine" in region:
                    assert region["startLine"] >= 1
                if region is not None and "charOffset" in region:
                    assert region["charOffset"] >= 0
    return counted


def test_sarif_output_is_valid_for_every_golden_corpus_finding():
    """Acceptance: `--format sarif` validates against the SARIF 2.1.0
    required-property set for every conformance golden corpus finding."""
    from repro import SQLCheck
    from repro.testkit.conformance import _build_database

    toolchain = SQLCheck()
    total_findings = 0
    documents = []
    for rule in toolchain.registry:
        for index, example in enumerate(rule.examples()):
            database = _build_database(example) if example.needs_database else None
            report = toolchain.check(
                list(example.statements),
                database=database,
                source=f"{rule.name}[{index}]",
            )
            documents.append(
                build_document(
                    report, registry=toolchain.registry, source=f"{rule.name}[{index}]"
                )
            )
            total_findings += len(report)
    log = to_sarif(documents, registry=toolchain.registry)
    counted = _assert_valid_sarif(log, toolchain.registry)
    assert counted == sum(len(doc) for doc in documents)
    assert total_findings > 0 and counted > 0


def test_sarif_statement_findings_carry_regions():
    from repro import SQLCheck

    toolchain = SQLCheck()
    report = toolchain.check(
        "CREATE TABLE t (a FLOAT);\nSELECT * FROM t ORDER BY RAND();", source="x.sql"
    )
    document = build_document(report, registry=toolchain.registry, source="x.sql")
    log = to_sarif(document, registry=toolchain.registry)
    results = log["runs"][0]["results"]
    assert results
    regions = [
        result["locations"][0]["physicalLocation"].get("region")
        for result in results
        if result["locations"][0]["physicalLocation"].get("region")
    ]
    assert regions, "no statement-anchored SARIF regions emitted"
    assert any(region.get("startLine") == 2 for region in regions), (
        "second-line statement did not map to startLine 2"
    )


# ----------------------------------------------------------------------
# Dead-link check over docs/ (and the README)
# ----------------------------------------------------------------------
def _relative_link_targets(path: Path):
    for match in _LINK_RE.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize(
    "markdown_file",
    sorted(DOCS_DIR.rglob("*.md")) + [REPO_ROOT / "README.md"],
    ids=lambda p: str(p.relative_to(REPO_ROOT)),
)
def test_no_dead_relative_links(markdown_file: Path):
    assert markdown_file.is_file()
    for target in _relative_link_targets(markdown_file):
        resolved = (markdown_file.parent / target).resolve()
        assert resolved.exists(), f"{markdown_file}: dead link -> {target}"
