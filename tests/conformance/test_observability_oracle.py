"""The observability-transparency oracle: clean pass + tamper detection."""
from __future__ import annotations

import pytest

from repro.obs import get_metrics, get_tracer
from repro.rules.base import QueryRule
from repro.testkit import check_observability_transparency


@pytest.fixture(autouse=True)
def _pristine_obs_state():
    """The oracle promises to restore process-wide observability state."""
    metrics_enabled = get_metrics().enabled
    tracer_enabled = get_tracer().enabled
    yield
    assert get_metrics().enabled is metrics_enabled
    assert get_tracer().enabled is tracer_enabled


def test_transparency_oracle_passes_on_the_real_pipeline():
    assert check_observability_transparency(statements=30) == []


def test_transparency_oracle_passes_on_a_planted_corpus():
    corpus = [
        "CREATE TABLE t (id INTEGER, name VARCHAR(10))",
        "SELECT * FROM t",
        "SELECT * FROM t",  # duplicate: exercises the memo under metrics
    ]
    assert check_observability_transparency(corpus) == []


def test_oracle_catches_instrumentation_that_changes_results(monkeypatch):
    """A observed_check that drops findings when metrics are on must fail."""
    original = QueryRule.observed_check

    def tampered(self, annotation, context):
        found = original(self, annotation, context)
        if get_metrics().enabled:
            return []  # instrumentation "optimising away" real detections
        return found

    monkeypatch.setattr(QueryRule, "observed_check", tampered)
    failures = check_observability_transparency(statements=20)
    assert failures, "the oracle must catch instrumentation that changes results"
    assert any("metrics-on" in f.subject for f in failures)


def test_oracle_rejects_vacuous_instrumented_runs(monkeypatch):
    """If rule timings silently stop being recorded, the pass is vacuous."""
    from repro.obs.metrics import Histogram

    monkeypatch.setattr(Histogram, "observe", lambda self, value, **labels: None)
    monkeypatch.setattr(
        Histogram, "observe_single", lambda self, value, label_value: None
    )
    failures = check_observability_transparency(statements=20)
    assert any("vacuous" in f.reason for f in failures)


def test_oracle_is_selftest_step_nine():
    """run_selftest wires the oracle in; a tampered pipeline fails selftest."""
    import inspect

    from repro.testkit.selftest import run_selftest

    assert "check_observability_transparency" in inspect.getsource(run_selftest)
