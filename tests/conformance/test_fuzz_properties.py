"""Property-based SQL fuzzing over the generator and the cached pipeline.

Hypothesis drives the seeds; the grammar guarantees interesting structure
while the properties assert the substrate invariants: everything generated
parses, labels are sound in isolation, and the cache/memo machinery is
invisible in results regardless of corpus composition.
"""
from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.detector.detector import APDetector, DetectorConfig
from repro.sqlparser import parse
from repro.testkit import CorpusGenerator, detection_bytes

seeds = st.integers(min_value=0, max_value=2**32 - 1)

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=seeds)
@relaxed
def test_every_generated_statement_parses(seed):
    for group in CorpusGenerator(seed).corpus(40):
        for sql in group.sql:
            statements = parse(sql)
            assert len(statements) == 1, f"unparseable generated SQL: {sql!r}"
            assert statements[0].statement_type != "OTHER" or sql.upper().startswith("CREATE")


@given(seed=seeds)
@relaxed
def test_generator_is_a_pure_function_of_its_seed(seed):
    a = CorpusGenerator(seed).corpus(25)
    b = CorpusGenerator(seed).corpus(25)
    assert a == b


@given(seed=seeds)
@relaxed
def test_planted_labels_are_sound_in_isolation(seed):
    generator = CorpusGenerator(seed)
    detector = APDetector(DetectorConfig())
    group = generator.planted_statement()
    detected = detector.detect(list(group.sql)).types_detected()
    for anti_pattern in group.planted:
        assert anti_pattern in detected


@given(seed=seeds)
@relaxed
def test_cache_never_changes_results(seed):
    """Cold vs. cached detection is byte-identical on arbitrary fuzzed corpora."""
    corpus = CorpusGenerator(seed).corpus_sql(30)
    cold = detection_bytes(APDetector(DetectorConfig(enable_cache=False)).detect(corpus))
    warm_detector = APDetector(DetectorConfig(enable_cache=True))
    first = detection_bytes(warm_detector.detect(corpus))
    replay = detection_bytes(warm_detector.detect(corpus))
    assert first == cold
    assert replay == cold


@given(seed=seeds, fraction=st.floats(min_value=0.0, max_value=1.0))
@relaxed
def test_planted_fraction_bounds_are_respected(seed, fraction):
    groups = CorpusGenerator(seed).corpus(30, planted_fraction=fraction)
    assert len(groups) == 30
    if fraction == 0.0:
        assert all(g.is_clean for g in groups)
    if fraction == 1.0:
        assert not any(g.is_clean for g in groups)
