"""Exception hygiene: broad catches only where the design allows them.

``except Exception`` is how a fault-isolation boundary is built — and how
real bugs get silently swallowed everywhere else.  This test walks the
``src/`` AST and fails on any broad catch (``except Exception`` /
``except BaseException`` / bare ``except:``) outside the allowlisted
boundary sites, so every new one is a deliberate, reviewed decision.

The allowlist names (module, function) pairs, not line numbers — the
sites survive refactors, and moving a broad catch to a *new* function
still demands a conscious allowlist edit.
"""
import ast
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: (module path relative to src/repro, enclosing function) pairs where a
#: broad catch is a designed fault-isolation boundary:
#:
#: * quarantine sites — per-statement/per-rule/per-stage error capture that
#:   converts failures into structured PipelineError records;
#: * last-resort answer paths — a server thread or oracle that must report
#:   a failure rather than die silently;
#: * graceful fallbacks — a process pool that degrades to the serial path.
ALLOWED_BROAD_CATCHES = {
    # context builder: per-statement parse/annotate quarantine + profiling
    ("context/builder.py", "build"),
    ("context/builder.py", "_annotate_queries"),
    ("context/builder.py", "parse_element"),  # closure inside _annotate_queries
    # detector: per-rule and per-data-rule quarantine
    ("detector/detector.py", "_iter_detections"),
    ("detector/detector.py", "_detect_statement"),
    # batch pipeline: process-pool unavailability degrades to serial
    ("detector/pipeline.py", "parallel_annotate"),
    # core: rank/fix quarantine and the batch pool fallback
    ("core/sqlcheck.py", "check_context"),
    ("core/sqlcheck.py", "check_many"),
    # REST: a handler bug must produce a JSON 500, not a dead socket
    ("interfaces/rest.py", "do_POST"),
    # persistent memo: a cache (de)serialisation failure of any kind must
    # degrade to a miss/invalidation, never crash the detection run
    ("detector/persist.py", "_loads"),
    ("detector/persist.py", "_dumps"),
    # oracles report failures, they never raise out of the suite
    ("testkit/oracles.py", "check_fixer_round_trip"),
}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except:
        return True
    names = []
    node = handler.type
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in nodes:
        if isinstance(item, ast.Name):
            names.append(item.id)
        elif isinstance(item, ast.Attribute):
            names.append(item.attr)
    return any(name in ("Exception", "BaseException") for name in names)


def _broad_catches(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    # Map every node to its enclosing function name.
    parents = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and _is_broad(node):
            scope = node
            function = "<module>"
            while scope in parents:
                scope = parents[scope]
                if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    function = scope.name
                    break
            yield function, node.lineno


def test_broad_catches_are_allowlisted():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        module = path.relative_to(SRC_ROOT).as_posix()
        for function, lineno in _broad_catches(path):
            if (module, function) not in ALLOWED_BROAD_CATCHES:
                offenders.append(f"{module}:{lineno} in {function}()")
    assert offenders == [], (
        "broad exception catch outside the allowlisted fault-isolation "
        f"boundaries: {offenders}; catch the specific exception, or add the "
        "site to ALLOWED_BROAD_CATCHES with a justification comment"
    )


def test_allowlist_entries_still_exist():
    """Every allowlisted site must still contain a broad catch — stale
    entries hide future regressions behind a pre-approved name."""
    live = set()
    for path in sorted(SRC_ROOT.rglob("*.py")):
        module = path.relative_to(SRC_ROOT).as_posix()
        for function, _ in _broad_catches(path):
            live.add((module, function))
    stale = ALLOWED_BROAD_CATCHES - live
    assert stale == set(), f"allowlist entries no longer match any broad catch: {sorted(stale)}"
