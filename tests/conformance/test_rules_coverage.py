"""Coverage floor over ``repro.rules`` (dependency-free tracer).

Running the conformance examples plus a fuzzed corpus must execute at
least 70% of the runtime-callable lines in the rules package — the floor
that keeps new rules from landing without conformance examples.
"""
from __future__ import annotations

from repro.detector.detector import APDetector, DetectorConfig
from repro.rules import base, data_rules, logical_design, physical_design, query_rules, registry
from repro.testkit import CorpusGenerator, run_rule_examples
from repro.testkit.coverage import measure

RULE_MODULES = (base, data_rules, logical_design, physical_design, query_rules, registry)
COVERAGE_FLOOR = 70.0


def _exercise_rules():
    failures, _ = run_rule_examples()
    assert not failures
    APDetector(DetectorConfig()).detect(CorpusGenerator(11).corpus_sql(150))


def test_rules_package_coverage_floor():
    result = measure(_exercise_rules, RULE_MODULES)
    assert result.percent >= COVERAGE_FLOOR, (
        f"rules coverage {result.percent:.1f}% fell below the {COVERAGE_FLOOR:.0f}% floor; "
        f"uncovered lines: { {k.rsplit('/', 1)[-1]: v[:12] for k, v in result.uncovered().items()} }"
    )


def test_tracer_reports_sane_line_sets():
    result = measure(_exercise_rules, RULE_MODULES)
    counts = result.counts()
    assert len(counts) == len(RULE_MODULES)
    for path, (hit, total) in counts.items():
        assert 0 <= hit <= total, path
        assert total > 0, f"no executable lines found in {path}"
