"""Differential oracles over the full detect→rank→fix pipeline.

Acceptance: the cold/warm-cache/batch oracle passes byte-identical on a
seeded ≥1k-statement fuzzed corpus; PipelineStats totals equal the sum of
the stage times; dbdeo agrees on the shared planted subset; fixer rewrites
round-trip; and a registry whose rule mutated its dispatch metadata raises
instead of serving stale results.
"""
from __future__ import annotations

import pytest

from repro.core.sqlcheck import SQLCheck
from repro.detector.detector import APDetector, DetectorConfig
from repro.rules import RegistryIntegrityError, default_registry
from repro.testkit import (
    CorpusGenerator,
    check_cold_warm_batch,
    check_dbdeo_agreement,
    check_fixer_round_trip,
    check_stats_accounting,
    detection_bytes,
)

SEED = 2020


@pytest.fixture(scope="module")
def fuzzed_corpus() -> "list[str]":
    corpus = CorpusGenerator(SEED).corpus_sql(1000)
    assert len(corpus) >= 1000
    return corpus


class TestGeneratorInvariants:
    def test_seeded_reproducibility(self):
        assert CorpusGenerator(7).corpus_sql(120) == CorpusGenerator(7).corpus_sql(120)
        assert CorpusGenerator(7).corpus_sql(120) != CorpusGenerator(8).corpus_sql(120)

    def test_planted_statements_detect_in_isolation(self):
        generator = CorpusGenerator(SEED)
        detector = APDetector(DetectorConfig())
        for anti_pattern in generator.plantable_anti_patterns():
            group = generator.planted_statement(anti_pattern)
            detected = detector.detect(list(group.sql)).types_detected()
            assert anti_pattern in detected, f"{anti_pattern} planting went undetected: {group.text}"

    def test_clean_statements_are_clean_in_isolation(self):
        generator = CorpusGenerator(SEED)
        detector = APDetector(DetectorConfig())
        for _ in range(40):
            group = generator.clean_statement()
            report = detector.detect(list(group.sql))
            assert not report.detections, f"clean control fired: {group.text} -> {report.detections}"


class TestColdWarmBatchEquivalence:
    def test_byte_identical_on_1k_fuzzed_corpus(self, fuzzed_corpus):
        failures = check_cold_warm_batch(fuzzed_corpus)
        assert not failures, "\n".join(str(f) for f in failures)

    def test_detection_bytes_orders_and_round_trips(self):
        corpus = CorpusGenerator(3).corpus_sql(50)
        a = detection_bytes(APDetector(DetectorConfig(enable_cache=False)).detect(corpus))
        b = detection_bytes(APDetector(DetectorConfig(enable_cache=False)).detect(corpus))
        assert a == b


class TestStatsAccounting:
    """Satellite: totals ≡ sum of stages, including the serial fallback."""

    def test_detect_batch_totals_equal_stage_sum(self, fuzzed_corpus):
        for workers in (1, 4):
            _, stats = APDetector(DetectorConfig()).detect_batch(fuzzed_corpus, workers=workers)
            failures = check_stats_accounting(stats, subject=f"detect_batch(workers={workers})")
            assert not failures, "\n".join(str(f) for f in failures)

    def test_serial_fallback_is_exercised_or_pool_runs(self, fuzzed_corpus):
        _, stats = APDetector(DetectorConfig()).detect_batch(fuzzed_corpus, workers=4)
        assert stats.parallel_mode.startswith(("serial", "process-pool"))
        assert stats.statements == len(fuzzed_corpus)

    def test_check_pipeline_totals_equal_stage_sum(self):
        corpus = CorpusGenerator(5).corpus_sql(120)
        report = SQLCheck().check(corpus)
        failures = check_stats_accounting(report.stats, subject="check")
        assert not failures, "\n".join(str(f) for f in failures)

    def test_check_many_serial_merge_keeps_wall_clock_semantics(self):
        corpora = {"a": CorpusGenerator(5).corpus_sql(30), "b": CorpusGenerator(6).corpus_sql(30)}
        batch = SQLCheck().check_many(corpora, workers=1)
        assert batch.stats.stage_semantics == "wall-clock"
        assert batch.stats.total_seconds >= 0
        # merged stage times never exceed the measured wall-clock total
        assert batch.stats.stage_seconds_sum() <= batch.stats.total_seconds * 1.05 + 0.005


class TestDbdeoAgreement:
    def test_shared_subset_agreement(self):
        failures, agreement = check_dbdeo_agreement(seed=SEED)
        assert not failures, "\n".join(str(f) for f in failures)
        assert agreement, "no shared anti-patterns were planted"


class TestFixerRoundTrip:
    def test_rewrites_reparse_and_silence_the_anti_pattern(self):
        failures, rewrites = check_fixer_round_trip(seed=SEED)
        assert not failures, "\n".join(str(f) for f in failures)
        assert rewrites > 0, "no rewrites were produced to check"


class TestRegistryIntegrity:
    """Satellite: statement_types mutation raises instead of stale dispatch."""

    def test_mutation_after_registration_raises_on_dispatch(self):
        registry = default_registry()
        rule = registry.get("ColumnWildcardRule")
        registry.rules_for_statement("SELECT")  # build the index
        rule.statement_types = ("SELECT", "UPDATE")  # in-place drift
        with pytest.raises(RegistryIntegrityError, match="ColumnWildcardRule"):
            registry.rules_for_statement("UPDATE")

    def test_mutation_raises_even_for_already_warmed_statement_types(self):
        """Dispatch-cache *hits* must not serve stale results either."""
        registry = default_registry()
        rule = registry.get("ColumnWildcardRule")
        registry.rules_for_statement("SELECT")
        registry.rules_for_statement("UPDATE")  # warm both entries
        rule.statement_types = ("SELECT", "UPDATE")
        with pytest.raises(RegistryIntegrityError, match="ColumnWildcardRule"):
            registry.rules_for_statement("UPDATE")

    def test_value_equal_rebinding_is_not_drift(self):
        registry = default_registry()
        rule = registry.get("ColumnWildcardRule")
        rule.statement_types = tuple(list(rule.statement_types))  # new object, same value
        assert rule in registry.rules_for_statement("SELECT")
        # fast path restored: snapshot now points at the new object
        assert registry._dispatch_is_fresh()

    def test_mutation_raises_from_the_detector_run(self):
        registry = default_registry()
        registry.get("ColumnWildcardRule").statement_types = ("SELECT", "UPDATE")
        detector = APDetector(DetectorConfig(), registry=registry)
        with pytest.raises(RegistryIntegrityError):
            detector.detect("SELECT * FROM t")

    def test_reregistration_clears_the_error(self):
        registry = default_registry()
        rule = registry.get("ColumnWildcardRule")
        rule.statement_types = ("SELECT", "UPDATE")
        registry.unregister(rule.name)
        registry.register(rule)  # snapshot refreshed at registration time
        registry.check_integrity()
        assert rule in registry.rules_for_statement("UPDATE")

    def test_unmutated_registry_passes(self):
        registry = default_registry()
        registry.check_integrity()
        assert registry.rules_for_statement("SELECT")
