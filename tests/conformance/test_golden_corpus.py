"""Golden anti-pattern corpus: every rule's planted/control contract.

The golden files under ``tests/conformance/golden/`` lock each rule's
verdict on its declared examples; regenerate intentionally with

    pytest tests/conformance --update-golden
"""
from __future__ import annotations

from repro.rules import default_registry
from repro.testkit import diff_golden, golden_entries, load_golden, run_rule_examples, write_golden


def test_every_rule_declares_examples():
    """Acceptance: ≥1 planted-positive and ≥1 clean-control per rule."""
    for rule in default_registry():
        examples = rule.examples()
        assert any(e.is_positive for e in examples), f"{rule.name} has no planted positive"
        assert any(not e.is_positive for e in examples), f"{rule.name} has no clean control"


def test_positives_fire_and_controls_stay_silent():
    failures, examples_run = run_rule_examples()
    assert examples_run >= 2 * len(default_registry())
    assert not failures, "\n".join(str(f) for f in failures)


def test_golden_corpus_matches(update_golden, golden_dir):
    current = golden_entries()
    if update_golden:
        write_golden(golden_dir, current)
        return
    stored = load_golden(golden_dir)
    assert stored, (
        f"no golden corpus found in {golden_dir}; generate it with "
        "`pytest tests/conformance --update-golden`"
    )
    mismatches = diff_golden(current, stored)
    assert not mismatches, "\n".join(mismatches)


def test_stored_golden_covers_every_registered_rule(golden_dir):
    """The stored files themselves satisfy the per-rule coverage floor."""
    stored = load_golden(golden_dir)
    by_rule: dict[str, set[str]] = {}
    for entry in stored:
        by_rule.setdefault(entry["rule"], set()).add(entry["kind"])
    for rule in default_registry():
        kinds = by_rule.get(rule.name, set())
        assert "positive" in kinds, f"{rule.name} has no stored planted-positive golden case"
        assert "control" in kinds, f"{rule.name} has no stored clean-control golden case"


def test_golden_entries_are_deterministic():
    assert golden_entries() == golden_entries()


def test_write_golden_prunes_only_its_own_stale_files(tmp_path):
    import json

    foreign = tmp_path / "results.jsonl"
    foreign.write_text('{"not": "a golden file"}\n')
    stale = tmp_path / "old_rules.jsonl"
    stale.write_text(json.dumps({"rule": "Gone", "kind": "positive", "detections": [],
                                 "category": "old_rules", "example": 0, "statements": []}) + "\n")
    entry = {"category": "query_rules", "rule": "X", "example": 0, "kind": "positive",
             "statements": ["SELECT 1"], "has_data": False, "note": "", "detections": []}
    write_golden(tmp_path, [entry])
    assert foreign.exists(), "unrelated .jsonl files must never be deleted"
    assert not stale.exists(), "stale golden categories should be pruned"
    assert (tmp_path / "query_rules.jsonl").exists()


def test_update_golden_refuses_unresolvable_directory(monkeypatch):
    import pytest

    from repro.testkit import selftest as selftest_module

    monkeypatch.setattr(
        selftest_module, "DEFAULT_GOLDEN_DIR",
        selftest_module.DEFAULT_GOLDEN_DIR / "does" / "not" / "exist",
    )
    with pytest.raises(ValueError, match="golden"):
        selftest_module.run_selftest(["SELECT 1"], update_golden=True, statements=1)
