"""Generator planting recipes for context-dependent rules.

NO_FOREIGN_KEY is the paper's canonical *inter-query* detection (Example
3): the recipe must plant both tables' DDL and the uncovered JOIN in one
group so the label stays sound in isolation — the invariant every
fuzzed corpus relies on.  The golden lock below freezes the canonical
seed's output so recipe drift is a deliberate act, not an accident.
"""
from __future__ import annotations

from repro.detector.detector import APDetector, DetectorConfig
from repro.model.antipatterns import AntiPattern
from repro.testkit import CorpusGenerator

#: Golden: the canonical seed's NO_FOREIGN_KEY planting, locked verbatim.
GOLDEN_SEED = 2020
GOLDEN_NO_FOREIGN_KEY_SQL = (
    "CREATE TABLE events_1x (events_1x_key INTEGER PRIMARY KEY, "
    "label VARCHAR(40) NOT NULL)",
    "CREATE TABLE reviews_2x (reviews_2x_key INTEGER PRIMARY KEY, "
    "events_1x_key INTEGER, quantity INTEGER)",
    "SELECT c.quantity FROM reviews_2x c "
    "JOIN events_1x p ON p.events_1x_key = c.events_1x_key",
)


def test_no_foreign_key_is_plantable():
    generator = CorpusGenerator(GOLDEN_SEED)
    assert AntiPattern.NO_FOREIGN_KEY in generator.plantable_anti_patterns()


def test_no_foreign_key_golden_planting():
    group = CorpusGenerator(GOLDEN_SEED).planted_statement(AntiPattern.NO_FOREIGN_KEY)
    assert group.planted == (AntiPattern.NO_FOREIGN_KEY,)
    assert group.sql == GOLDEN_NO_FOREIGN_KEY_SQL


def test_no_foreign_key_label_is_sound_in_isolation():
    """The planted group, analysed alone, fires the inter-query rule —
    and adding the constraint (the control shape) silences it."""
    detector = APDetector(DetectorConfig())
    for seed in range(8):
        group = CorpusGenerator(seed).planted_statement(AntiPattern.NO_FOREIGN_KEY)
        detected = detector.detect(list(group.sql)).types_detected()
        assert AntiPattern.NO_FOREIGN_KEY in detected, (seed, group.sql)


def test_no_foreign_key_needs_inter_query_context():
    """Sanity: with inter-query analysis disabled the planting must be
    invisible — proving the recipe exercises the contextual path."""
    group = CorpusGenerator(GOLDEN_SEED).planted_statement(AntiPattern.NO_FOREIGN_KEY)
    intra_only = APDetector(DetectorConfig(enable_inter_query=False))
    detected = intra_only.detect(list(group.sql)).types_detected()
    assert AntiPattern.NO_FOREIGN_KEY not in detected


def test_fixed_planting_is_silenced():
    """Declaring the FK on the recipe's join columns removes the finding."""
    group = CorpusGenerator(GOLDEN_SEED).planted_statement(AntiPattern.NO_FOREIGN_KEY)
    parent_ddl, child_ddl, join = group.sql
    fixed_child = child_ddl.replace(
        "events_1x_key INTEGER,",
        "events_1x_key INTEGER REFERENCES events_1x(events_1x_key),",
    )
    assert fixed_child != child_ddl
    detected = APDetector(DetectorConfig()).detect(
        [parent_ddl, fixed_child, join]
    ).types_detected()
    assert AntiPattern.NO_FOREIGN_KEY not in detected
