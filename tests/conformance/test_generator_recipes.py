"""Generator planting recipes for context-dependent rules.

NO_FOREIGN_KEY is the paper's canonical *inter-query* detection (Example
3): the recipe must plant both tables' DDL and the uncovered JOIN in one
group so the label stays sound in isolation — the invariant every
fuzzed corpus relies on.  The golden lock below freezes the canonical
seed's output so recipe drift is a deliberate act, not an accident.

The same treatment covers the remaining context-dependent recipes:
INDEX_OVERUSE / INDEX_UNDERUSE (inter-query, judged against the whole
workload) and the data-rule scenarios with generated rows (ENUMERATED_TYPES
and EXTERNAL_DATA_STORAGE via profiling).  Each is locked in
``golden/generator_recipes.jsonl`` as a planted-positive *and* a derived
clean control; regenerate with ``pytest tests/conformance
--update-golden``.
"""
from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.detector.detector import APDetector, DetectorConfig
from repro.engine.database import Database
from repro.model.antipatterns import AntiPattern
from repro.testkit import CorpusGenerator, GeneratedStatement

#: Golden: the canonical seed's NO_FOREIGN_KEY planting, locked verbatim.
GOLDEN_SEED = 2020
GOLDEN_NO_FOREIGN_KEY_SQL = (
    "CREATE TABLE events_1x (events_1x_key INTEGER PRIMARY KEY, "
    "label VARCHAR(40) NOT NULL)",
    "CREATE TABLE reviews_2x (reviews_2x_key INTEGER PRIMARY KEY, "
    "events_1x_key INTEGER, quantity INTEGER)",
    "SELECT c.quantity FROM reviews_2x c "
    "JOIN events_1x p ON p.events_1x_key = c.events_1x_key",
)


def test_no_foreign_key_is_plantable():
    generator = CorpusGenerator(GOLDEN_SEED)
    assert AntiPattern.NO_FOREIGN_KEY in generator.plantable_anti_patterns()


def test_no_foreign_key_golden_planting():
    group = CorpusGenerator(GOLDEN_SEED).planted_statement(AntiPattern.NO_FOREIGN_KEY)
    assert group.planted == (AntiPattern.NO_FOREIGN_KEY,)
    assert group.sql == GOLDEN_NO_FOREIGN_KEY_SQL


def test_no_foreign_key_label_is_sound_in_isolation():
    """The planted group, analysed alone, fires the inter-query rule —
    and adding the constraint (the control shape) silences it."""
    detector = APDetector(DetectorConfig())
    for seed in range(8):
        group = CorpusGenerator(seed).planted_statement(AntiPattern.NO_FOREIGN_KEY)
        detected = detector.detect(list(group.sql)).types_detected()
        assert AntiPattern.NO_FOREIGN_KEY in detected, (seed, group.sql)


def test_no_foreign_key_needs_inter_query_context():
    """Sanity: with inter-query analysis disabled the planting must be
    invisible — proving the recipe exercises the contextual path."""
    group = CorpusGenerator(GOLDEN_SEED).planted_statement(AntiPattern.NO_FOREIGN_KEY)
    intra_only = APDetector(DetectorConfig(enable_inter_query=False))
    detected = intra_only.detect(list(group.sql)).types_detected()
    assert AntiPattern.NO_FOREIGN_KEY not in detected


def test_fixed_planting_is_silenced():
    """Declaring the FK on the recipe's join columns removes the finding."""
    group = CorpusGenerator(GOLDEN_SEED).planted_statement(AntiPattern.NO_FOREIGN_KEY)
    parent_ddl, child_ddl, join = group.sql
    fixed_child = child_ddl.replace(
        "events_1x_key INTEGER,",
        "events_1x_key INTEGER REFERENCES events_1x(events_1x_key),",
    )
    assert fixed_child != child_ddl
    detected = APDetector(DetectorConfig()).detect(
        [parent_ddl, fixed_child, join]
    ).types_detected()
    assert AntiPattern.NO_FOREIGN_KEY not in detected


# ----------------------------------------------------------------------
# context-dependent recipes: INDEX_OVERUSE / INDEX_UNDERUSE + data rules
# ----------------------------------------------------------------------
RECIPES_GOLDEN_PATH = Path(__file__).parent / "golden" / "generator_recipes.jsonl"

#: Inter-query index recipes (SQL only) and data recipes (DDL + rows).
INDEX_RECIPES = (AntiPattern.INDEX_OVERUSE, AntiPattern.INDEX_UNDERUSE)
DATA_RECIPES = (AntiPattern.ENUMERATED_TYPES, AntiPattern.EXTERNAL_DATA_STORAGE)


def _detected_types(group: GeneratedStatement) -> "list[str]":
    """Full-detector anti-pattern types for a group (with its rows loaded)."""
    database = None
    if group.needs_database:
        database = Database()
        for statement in group.sql:
            database.execute(statement)
        for table, rows in group.rows:
            database.insert_rows(table, [dict(row) for row in rows])
    report = APDetector(DetectorConfig()).detect(list(group.sql), database=database)
    return sorted(ap.value for ap in report.types_detected())


def _control_for(anti_pattern: AntiPattern, group: GeneratedStatement) -> GeneratedStatement:
    """The mechanically fixed counterpart a recipe's rule must stay silent on."""
    if anti_pattern is AntiPattern.INDEX_OVERUSE:
        # Filter on the indexed column: the index is used, not overuse.
        ddl, index, select = group.sql
        table = ddl.split()[2]
        fixed = f"SELECT label FROM {table} WHERE region = 'alpha'"
        return GeneratedStatement(sql=(ddl, index, fixed))
    if anti_pattern is AntiPattern.INDEX_UNDERUSE:
        # Index the predicate column: the lookup is covered.
        ddl, select = group.sql
        table = ddl.split()[2]
        index = f"CREATE INDEX idx_{table}_region_fix ON {table} (region)"
        return GeneratedStatement(sql=(ddl, index, select))
    if anti_pattern is AntiPattern.ENUMERATED_TYPES:
        # Unique values per row: no implicit enum domain.
        (table, rows), = group.rows
        pk = next(key for key in rows[0] if key != "status")
        fresh = tuple({pk: row[pk], "status": f"status_{row[pk]:04d}"} for row in rows)
        return GeneratedStatement(sql=group.sql, rows=((table, fresh),))
    if anti_pattern is AntiPattern.EXTERNAL_DATA_STORAGE:
        # Prose captions, not file paths.
        (table, rows), = group.rows
        pk = next(key for key in rows[0] if key != "location")
        fresh = tuple(
            {pk: row[pk], "location": f"warehouse shelf number {row[pk]}"} for row in rows
        )
        return GeneratedStatement(sql=group.sql, rows=((table, fresh),))
    raise AssertionError(f"no control construction for {anti_pattern}")


def _recipe_entries() -> "list[dict]":
    """Recompute the canonical-seed golden entries for every new recipe."""
    entries: "list[dict]" = []
    for anti_pattern in INDEX_RECIPES + DATA_RECIPES:
        generator = CorpusGenerator(GOLDEN_SEED)
        if anti_pattern in INDEX_RECIPES:
            group = generator.planted_statement(anti_pattern)
        else:
            group = generator.planted_data_statement(anti_pattern)
        control = _control_for(anti_pattern, group)
        entries.append({
            "recipe": anti_pattern.value,
            "seed": GOLDEN_SEED,
            "sql": list(group.sql),
            "rows": {table: list(rows) for table, rows in group.rows},
            "detected": _detected_types(group),
            "control_sql": list(control.sql),
            "control_rows": {table: list(rows) for table, rows in control.rows},
            "control_detected": _detected_types(control),
        })
    return entries


@pytest.mark.parametrize("anti_pattern", INDEX_RECIPES)
def test_index_recipes_are_sound_in_isolation(anti_pattern):
    """Planted groups fire across seeds; they need inter-query context."""
    detector = APDetector(DetectorConfig())
    intra_only = APDetector(DetectorConfig(enable_inter_query=False))
    for seed in range(8):
        group = CorpusGenerator(seed).planted_statement(anti_pattern)
        assert group.planted == (anti_pattern,)
        detected = detector.detect(list(group.sql)).types_detected()
        assert anti_pattern in detected, (seed, group.sql)
        without_context = intra_only.detect(list(group.sql)).types_detected()
        assert anti_pattern not in without_context, (seed, group.sql)


@pytest.mark.parametrize("anti_pattern", DATA_RECIPES)
def test_data_recipes_are_sound_in_isolation(anti_pattern):
    """Data plantings fire only through data analysis of the generated rows."""
    for seed in range(8):
        group = CorpusGenerator(seed).planted_data_statement(anti_pattern)
        assert group.planted == (anti_pattern,)
        assert group.needs_database
        assert anti_pattern.value in _detected_types(group), (seed, group.sql)
        # Without the rows (DDL alone) the data rule has nothing to profile.
        ddl_only = APDetector(DetectorConfig()).detect(list(group.sql)).types_detected()
        assert anti_pattern not in ddl_only, (seed, group.sql)


@pytest.mark.parametrize("anti_pattern", INDEX_RECIPES + DATA_RECIPES)
def test_recipe_controls_stay_silent(anti_pattern):
    """The derived clean control silences the planted anti-pattern."""
    generator = CorpusGenerator(GOLDEN_SEED)
    if anti_pattern in INDEX_RECIPES:
        group = generator.planted_statement(anti_pattern)
    else:
        group = generator.planted_data_statement(anti_pattern)
    control = _control_for(anti_pattern, group)
    assert anti_pattern.value not in _detected_types(control)


def test_recipes_golden_lock(update_golden):
    """Planted-positive + clean-control verdicts locked per recipe."""
    current = _recipe_entries()
    if update_golden:
        with open(RECIPES_GOLDEN_PATH, "w", encoding="utf-8") as handle:
            for entry in current:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return
    assert RECIPES_GOLDEN_PATH.exists(), (
        f"no recipe golden at {RECIPES_GOLDEN_PATH}; generate it with "
        "`pytest tests/conformance --update-golden`"
    )
    with open(RECIPES_GOLDEN_PATH, "r", encoding="utf-8") as handle:
        stored = [json.loads(line) for line in handle if line.strip()]
    current_canonical = json.loads(json.dumps(current, sort_keys=True))
    assert current_canonical == stored, (
        "generator recipe drift (rerun with --update-golden if intentional)"
    )


def test_recipes_golden_has_positive_and_control_per_recipe():
    """The stored lock itself covers both sides of every recipe."""
    with open(RECIPES_GOLDEN_PATH, "r", encoding="utf-8") as handle:
        stored = {entry["recipe"]: entry for entry in map(json.loads, handle)}
    for anti_pattern in INDEX_RECIPES + DATA_RECIPES:
        entry = stored[anti_pattern.value]
        assert anti_pattern.value in entry["detected"]
        assert anti_pattern.value not in entry["control_detected"]
