"""Timing hygiene: one sanctioned clock for all pipeline timing.

``repro.obs.now`` is the single monotonic clock behind spans, stage
timings, and ``PipelineStats`` — stage spans and stats must come from the
*same* timestamps or the accounting oracle and the trace can disagree.
This test walks the ``src/`` AST and fails on any raw
``time.perf_counter()`` call (or ``from time import perf_counter``)
outside the sanctioned sites, so new timing code is forced through
``obs`` where it stays swappable and trace-consistent.

Sanctioned sites:

* everything under ``obs/`` — the clock's home;
* ``detector/pipeline.py::_annotate_shard`` — the process-pool worker,
  which cannot share the parent's tracer epoch and must measure chunk
  durations locally (anchored by wall time for ``Tracer.adopt``).
"""
import ast
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: (module path relative to src/repro, enclosing function) pairs allowed
#: to call time.perf_counter() directly.  Everything under obs/ is exempt
#: wholesale — see the module docstring.
ALLOWED_PERF_COUNTER_SITES = {
    ("detector/pipeline.py", "_annotate_shard"),
}


def _is_exempt_module(module: str) -> bool:
    return module.startswith("obs/")


def _perf_counter_uses(path: Path):
    """Yield (enclosing function, lineno) for every raw perf_counter use."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    parents = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent

    def enclosing_function(node) -> str:
        scope = node
        while scope in parents:
            scope = parents[scope]
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return scope.name
        return "<module>"

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time" and any(
                alias.name == "perf_counter" for alias in node.names
            ):
                yield enclosing_function(node), node.lineno
        elif isinstance(node, ast.Attribute) and node.attr == "perf_counter":
            yield enclosing_function(node), node.lineno


def test_raw_perf_counter_only_at_sanctioned_sites():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        module = path.relative_to(SRC_ROOT).as_posix()
        if _is_exempt_module(module):
            continue
        for function, lineno in _perf_counter_uses(path):
            if (module, function) not in ALLOWED_PERF_COUNTER_SITES:
                offenders.append(f"{module}:{lineno} in {function}()")
    assert offenders == [], (
        "raw time.perf_counter() outside repro.obs: use `from repro.obs "
        f"import now` instead (offenders: {offenders}); only the process-"
        "pool worker in detector/pipeline.py may read the clock directly"
    )


def test_sanctioned_sites_still_use_the_clock():
    """Every allowlisted site must still contain a raw perf_counter use —
    stale entries hide future regressions behind a pre-approved name."""
    live = set()
    for path in sorted(SRC_ROOT.rglob("*.py")):
        module = path.relative_to(SRC_ROOT).as_posix()
        if _is_exempt_module(module):
            continue
        for function, _ in _perf_counter_uses(path):
            live.add((module, function))
    stale = ALLOWED_PERF_COUNTER_SITES - live
    assert stale == set(), (
        f"allowlist entries no longer match any perf_counter use: {sorted(stale)}"
    )


def test_obs_package_defines_the_sanctioned_clock():
    """The exemption exists because obs owns the clock; hold that true."""
    import time

    from repro import obs

    assert obs.now is time.perf_counter
