"""``GET /metrics`` and the ``metrics`` block on stats payloads."""
from __future__ import annotations

import json
import urllib.request

import pytest

from repro.interfaces.rest import RestServer, ToolchainPool, handle_check_request
from repro.obs import MetricsRegistry, get_metrics, set_metrics_enabled, swap_registry

REQUIRED_FAMILIES = (
    "sqlcheck_annotation_cache_lookups_total",
    "sqlcheck_detection_memo_lookups_total",
    "sqlcheck_prefilter_rules_total",
    "sqlcheck_rule_fires_total",
    "sqlcheck_rule_check_seconds",
    "sqlcheck_stage_seconds",
    "sqlcheck_quarantined_errors_total",
    "sqlcheck_connector_retries_total",
    "sqlcheck_connector_breaker_trips_total",
    "sqlcheck_ingest_lines_total",
)


@pytest.fixture
def fresh_registry():
    """Swap in an isolated registry so other tests' traffic can't leak in."""
    registry = MetricsRegistry(enabled=True)
    previous = swap_registry(registry)
    yield registry
    swap_registry(previous)


class TestMetricsEndpoint:
    def test_get_metrics_serves_valid_prometheus_text(self, fresh_registry):
        # Drive some real traffic through the pipeline first (a fresh pool:
        # the assertions below need a cold run, and the shared default pool
        # may already hold this workload's memoized detections).
        status, _body = handle_check_request(
            {"query": "SELECT * FROM t; SELECT * FROM t", "stats": True},
            pool=ToolchainPool(),
        )
        assert status == 200
        with RestServer() as server:
            with urllib.request.urlopen(server.url + "/metrics") as response:
                text = response.read().decode("utf-8")
                content_type = response.headers["Content-Type"]
        assert response.status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        for family in REQUIRED_FAMILIES:
            assert f"# HELP {family}" in text
            assert f"# TYPE {family}" in text
        # Exposition validity: every sample line parses as name/value.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value_part = line.rsplit(" ", 1)
            assert name_part.startswith("sqlcheck_")
            float(value_part)
        # The traffic above must be visible: rules fired, memo was consulted.
        assert 'sqlcheck_rule_fires_total{rule="' in text
        assert 'sqlcheck_detection_memo_lookups_total{result="' in text

    def test_api_metrics_alias(self, fresh_registry):
        with RestServer() as server:
            with urllib.request.urlopen(server.url + "/api/metrics") as response:
                assert response.status == 200
                assert "sqlcheck_" in response.read().decode("utf-8")

    def test_unknown_get_path_is_still_404(self, fresh_registry):
        with RestServer() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/metricsx")
            assert excinfo.value.code == 404


class TestStatsMetricsBlock:
    def test_rest_stats_payload_carries_metrics(self, fresh_registry):
        # A fresh pool: rule fires only happen on a cold (unmemoized) run.
        status, body = handle_check_request(
            {"query": "SELECT * FROM t", "stats": True}, pool=ToolchainPool()
        )
        assert status == 200
        metrics = body["stats"]["metrics"]
        assert "sqlcheck_rule_fires_total" in metrics
        json.dumps(metrics)  # must be JSON-serialisable as-is

    def test_stats_payload_is_byte_stable_when_metrics_disabled(self, fresh_registry):
        previous = set_metrics_enabled(False)
        try:
            status, body = handle_check_request(
                {"query": "SELECT * FROM t", "stats": True}
            )
        finally:
            set_metrics_enabled(previous)
        assert status == 200
        assert "metrics" not in body["stats"]

    def test_cli_stats_payload_carries_metrics(self, fresh_registry):
        from repro.interfaces.cli import run

        code, output = run(["--format", "json", "--stats", "-q", "SELECT * FROM t"])
        assert code in (0, 1)  # 1 = findings present
        payload = json.loads(output)
        assert "metrics" in payload["stats"]
        assert "sqlcheck_rule_fires_total" in payload["stats"]["metrics"]
