"""Degraded-mode surfaces: CLI --max-errors/--strict and the REST envelope.

The user-facing halves of fault isolation: `sqlcheck scan` degrades (and
says so) instead of crashing on corrupt logs, and the REST API returns a
machine-readable error envelope — ``{"error": message, "code": taxonomy}``
— plus ``degraded: true`` partial-result flags.
"""
from __future__ import annotations

import json

import pytest

from repro.interfaces.cli import run
from repro.interfaces.rest import handle_scan_request

#: One binary-junk log line (NULs survive errors="replace" decoding).
JUNK = "\x00\x1fbinary junk\x00\n"


@pytest.fixture()
def corrupt_log(tmp_path):
    path = tmp_path / "app.sql"
    path.write_bytes((JUNK + "SELECT * FROM t;\n" + JUNK).encode())
    return path


class TestCLIDegradedScan:
    def test_degraded_scan_reports_and_continues(self, corrupt_log):
        code, output = run(["scan", "--log", str(corrupt_log)])
        assert code == 1  # the clean statement's findings still came out
        assert "[degraded: 2 pipeline error(s) quarantined]" in output
        assert "pipeline errors (quarantined; other results are complete):" in output
        assert "[ingest/log-malformed]" in output

    def test_clean_scan_output_is_unchanged(self, tmp_path):
        path = tmp_path / "app.sql"
        path.write_text("SELECT * FROM t;\n")
        code, output = run(["scan", "--log", str(path)])
        assert code == 1
        assert "degraded" not in output
        assert "pipeline errors" not in output

    def test_json_output_carries_structured_errors(self, corrupt_log):
        code, output = run(["scan", "--log", str(corrupt_log), "--format", "json"])
        payload = json.loads(output)
        assert payload["degraded"] is True
        assert [e["code"] for e in payload["errors"]] == ["log-malformed"] * 2
        assert all(e["stage"] == "ingest" for e in payload["errors"])

    def test_max_errors_budget_aborts_with_exit_2(self, corrupt_log):
        code, output = run(["scan", "--log", str(corrupt_log), "--max-errors", "1"])
        assert code == 2
        assert "budget exhausted" in output
        assert "re-run without --max-errors" in output

    def test_max_errors_within_budget_degrades(self, corrupt_log):
        code, output = run(["scan", "--log", str(corrupt_log), "--max-errors", "2"])
        assert code == 1
        assert "[degraded:" in output

    def test_negative_max_errors_is_rejected(self, corrupt_log):
        code, output = run(["scan", "--log", str(corrupt_log), "--max-errors", "-1"])
        assert code == 2
        assert "non-negative" in output

    def test_strict_fails_fast_with_exit_2(self, corrupt_log):
        code, output = run(["scan", "--log", str(corrupt_log), "--strict"])
        assert code == 2
        assert output.startswith("error:")
        assert "binary junk" in output


class TestRestErrorEnvelope:
    def test_validation_errors_carry_the_bad_request_code(self):
        status, body = handle_scan_request({})
        assert status == 400
        assert body["code"] == "bad-request"
        assert isinstance(body["error"], str)

    def test_undetectable_log_text_names_its_code(self):
        status, body = handle_scan_request({"log_text": "   \n  \n"})
        assert status == 400
        assert body["code"] == "log-undetectable"
        assert "--log-format" in body["error"]

    def test_budget_exhaustion_names_its_code(self):
        status, body = handle_scan_request(
            {"log_text": JUNK + "SELECT 1;\n", "log_format": "sql", "max_errors": 0}
        )
        assert status == 400
        assert body["code"] == "log-budget-exhausted"

    def test_strict_mode_is_a_400_not_a_500(self):
        status, body = handle_scan_request(
            {"log_text": JUNK + "SELECT 1;\n", "log_format": "sql", "strict": True}
        )
        assert status == 400
        assert body["code"] == "log-malformed"
        assert "binary junk" in body["error"]

    def test_invalid_max_errors_is_rejected(self):
        for bad in ("lots", -1):
            status, body = handle_scan_request(
                {"log_text": "SELECT 1;\n", "log_format": "sql", "max_errors": bad}
            )
            assert status == 400
            assert body["code"] == "bad-request"

    def test_unreachable_db_names_source_unavailable(self, tmp_path):
        status, body = handle_scan_request({"db": str(tmp_path / "nope.db")})
        assert status == 400
        assert body["code"] == "source-unavailable"


class TestRestPartialResults:
    def test_degraded_scan_flags_the_workload(self):
        status, body = handle_scan_request(
            {"log_text": JUNK + "SELECT * FROM t;\n", "log_format": "sql"}
        )
        assert status == 200
        assert body["workload"]["degraded"] is True
        assert body["workload"]["lines_skipped"] == 1
        # The clean statement was still analysed.
        assert body["workload"]["distinct_statements"] == 1
        assert body["degraded"] is True
        assert [e["code"] for e in body["errors"]] == ["log-malformed"]

    def test_clean_scan_keeps_the_historical_shape(self):
        status, body = handle_scan_request(
            {"log_text": "SELECT * FROM t;\n", "log_format": "sql"}
        )
        assert status == 200
        assert "degraded" not in body["workload"]
        assert "lines_skipped" not in body["workload"]
