"""Tests for the CLI, interactive shell, and REST interfaces."""
from __future__ import annotations

import io
import json
import urllib.request

import pytest

from repro.interfaces.cli import build_parser, render, run
from repro.interfaces.rest import RestServer, catalog_response, handle_check_request
from repro.interfaces.shell import SQLCheckShell


class TestCLI:
    def test_query_argument(self):
        code, output = run(["--query", "SELECT * FROM t"])
        assert code == 1  # anti-patterns found
        assert "Column Wildcard" in output

    def test_clean_query_exits_zero(self):
        code, output = run(["--query", "SELECT a FROM t WHERE a = 1"])
        assert code == 0
        assert "0 anti-pattern" in output

    def test_json_output(self):
        code, output = run(["--query", "SELECT * FROM t", "--format", "json"])
        payload = json.loads(output)
        assert payload["detections"][0]["anti_pattern"] == "column_wildcard"

    def test_file_input(self, tmp_path):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text("SELECT * FROM t; INSERT INTO t VALUES (1);")
        code, output = run([str(sql_file)])
        assert "Implicit Columns" in output

    def test_stdin_input(self):
        code, output = run([], stdin="SELECT * FROM t")
        assert code == 1

    def test_no_input_is_an_error(self):
        code, output = run([], stdin="")
        assert code == 2

    def test_top_limits_output(self):
        _, output = run(["--query", "SELECT * FROM a; SELECT * FROM b;", "--top", "1"])
        assert output.count("Column Wildcard") == 1

    def test_no_fixes_flag(self):
        _, output = run(["--query", "SELECT * FROM t", "--no-fixes"])
        assert "fix   :" not in output

    def test_config_flag_accepted(self):
        for config in ("C1", "C2"):
            code, _ = run(["--query", "SELECT * FROM t", "--config", config])
            assert code == 1

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.config == "C1"
        assert args.format == "text"


class TestShell:
    def run_shell(self, commands: str) -> str:
        out = io.StringIO()
        shell = SQLCheckShell(stdin=io.StringIO(commands), stdout=out)
        shell.cmdloop()
        return out.getvalue()

    def test_analyses_sql_statement(self):
        output = self.run_shell("SELECT * FROM t\nquit\n")
        assert "Column Wildcard" in output

    def test_clean_statement(self):
        output = self.run_shell("SELECT a FROM t WHERE a = 1\nquit\n")
        assert "no anti-patterns detected" in output

    def test_schema_command_provides_context(self):
        commands = (
            "schema CREATE TABLE A (a_id INTEGER PRIMARY KEY)\n"
            "schema CREATE TABLE B (b_id INTEGER PRIMARY KEY, a_id INTEGER)\n"
            "SELECT b.b_id FROM B b JOIN A a ON a.a_id = b.a_id\n"
            "quit\n"
        )
        output = self.run_shell(commands)
        assert "No Foreign Key" in output

    def test_history_and_reset(self):
        output = self.run_shell("SELECT * FROM t\nhistory\nreset\nhistory\nquit\n")
        assert "SELECT * FROM t" in output
        assert "context cleared" in output


class TestRestLogic:
    def test_check_request_success(self):
        status, body = handle_check_request({"query": "SELECT * FROM t"})
        assert status == 200
        assert body["detections"][0]["anti_pattern"] == "column_wildcard"

    def test_check_request_missing_query(self):
        status, body = handle_check_request({})
        assert status == 400
        assert "error" in body

    def test_check_request_with_config(self):
        status, body = handle_check_request({"query": "SELECT * FROM t", "config": "C2"})
        assert status == 200

    def test_catalog_response_lists_all_anti_patterns(self):
        body = catalog_response()
        assert len(body["anti_patterns"]) == 27


class TestRestServer:
    def test_end_to_end_http(self):
        with RestServer(port=0) as server:
            url = server.url
            with urllib.request.urlopen(f"{url}/api/health", timeout=5) as response:
                assert json.loads(response.read())["status"] == "ok"
            request = urllib.request.Request(
                f"{url}/api/check",
                data=json.dumps({"query": "INSERT INTO Users VALUES (1,'foo')"}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=5) as response:
                payload = json.loads(response.read())
            assert payload["detections"][0]["anti_pattern"] == "implicit_columns"
            with urllib.request.urlopen(f"{url}/api/antipatterns", timeout=5) as response:
                catalog = json.loads(response.read())
            assert len(catalog["anti_patterns"]) == 27

    def test_unknown_route_is_404(self):
        with RestServer(port=0) as server:
            try:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:  # pragma: no cover
                raise AssertionError("expected a 404")

    def test_invalid_json_is_400(self):
        with RestServer(port=0) as server:
            request = urllib.request.Request(
                f"{server.url}/api/check", data=b"not json", method="POST"
            )
            try:
                urllib.request.urlopen(request, timeout=5)
            except urllib.error.HTTPError as error:
                assert error.code == 400
            else:  # pragma: no cover
                raise AssertionError("expected a 400")
