"""Tests for the CLI, interactive shell, and REST interfaces."""
from __future__ import annotations

import io
import json
import sqlite3
import urllib.request
from pathlib import Path

import pytest

from repro.interfaces.cli import build_parser, render, run
from repro.interfaces.rest import (
    RestServer,
    catalog_response,
    handle_check_request,
    handle_scan_request,
    handle_selftest_request,
    rules_response,
)
from repro.interfaces.shell import SQLCheckShell


class TestCLI:
    def test_query_argument(self):
        code, output = run(["--query", "SELECT * FROM t"])
        assert code == 1  # anti-patterns found
        assert "Column Wildcard" in output

    def test_clean_query_exits_zero(self):
        code, output = run(["--query", "SELECT a FROM t WHERE a = 1"])
        assert code == 0
        assert "0 anti-pattern" in output

    def test_json_output(self):
        code, output = run(["--query", "SELECT * FROM t", "--format", "json"])
        payload = json.loads(output)
        assert payload["detections"][0]["anti_pattern"] == "column_wildcard"

    def test_file_input(self, tmp_path):
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text("SELECT * FROM t; INSERT INTO t VALUES (1);")
        code, output = run([str(sql_file)])
        assert "Implicit Columns" in output

    def test_stdin_input(self):
        code, output = run([], stdin="SELECT * FROM t")
        assert code == 1

    def test_no_input_is_an_error(self):
        code, output = run([], stdin="")
        assert code == 2

    def test_top_limits_output(self):
        _, output = run(["--query", "SELECT * FROM a; SELECT * FROM b;", "--top", "1"])
        assert output.count("Column Wildcard") == 1

    def test_no_fixes_flag(self):
        _, output = run(["--query", "SELECT * FROM t", "--no-fixes"])
        assert "fix   :" not in output

    def test_config_flag_accepted(self):
        for config in ("C1", "C2"):
            code, _ = run(["--query", "SELECT * FROM t", "--config", config])
            assert code == 1

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.config == "C1"
        assert args.format == "text"


@pytest.fixture
def scan_fixtures(tmp_path):
    """A SQLite database plus a plain-SQL query log for scan tests."""
    db_path = tmp_path / "app.db"
    connection = sqlite3.connect(str(db_path))
    connection.execute(
        "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, label VARCHAR(20))"
    )
    connection.executemany(
        "INSERT INTO tenant VALUES (?, ?)", [(i, f"t{i}") for i in range(10)]
    )
    connection.commit()
    connection.close()
    log_path = tmp_path / "queries.sql"
    log_path.write_text("SELECT * FROM tenant;\n" * 4, encoding="utf-8")
    return db_path, log_path


class TestCLIScan:
    def test_scan_db_and_log(self, scan_fixtures):
        db_path, log_path = scan_fixtures
        code, output = run(["scan", "--db", str(db_path), "--log", str(log_path)])
        assert code == 1
        assert "Column Wildcard" in output

    def test_scan_json_carries_frequency_weighted_scores(self, scan_fixtures):
        db_path, log_path = scan_fixtures
        code, output = run([
            "scan", "--db", str(db_path), "--log", str(log_path),
            "--format", "json",
        ])
        payload = json.loads(output)
        wildcard = next(
            d for d in payload["detections"] if d["anti_pattern"] == "column_wildcard"
        )
        # 4 logged executions → weight 1 + log2(4) = 3×
        assert wildcard["score"] > 0.5

    def test_scan_log_only(self, scan_fixtures):
        _, log_path = scan_fixtures
        code, output = run(["scan", "--log", str(log_path), "--format", "json"])
        assert code == 1
        assert json.loads(output)["queries_analyzed"] == 1

    def test_scan_requires_an_input(self):
        code, output = run(["scan"])
        assert code == 2
        assert "--db" in output

    def test_scan_unsupported_engine_mentions_logs(self):
        code, output = run(["scan", "--db", "postgres://host/db"])
        assert code == 2
        assert "--log" in output

    def test_scan_missing_db_file(self, tmp_path):
        code, output = run(["scan", "--db", str(tmp_path / "missing.db")])
        assert code == 2
        assert "not found" in output

    def test_scan_non_sqlite_file_is_a_clean_error(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("hello, not a database", encoding="utf-8")
        code, output = run(["scan", "--db", str(path)])
        assert code == 2
        assert output.startswith("error:") and "catalog" in output

    def test_scan_missing_log_does_not_leak_the_connection(self, scan_fixtures, monkeypatch):
        """A failure after the connector opens must still close it."""
        import repro.ingest.connectors as connectors_module

        closed = []
        original_close = connectors_module.SQLiteConnector.close
        monkeypatch.setattr(
            connectors_module.SQLiteConnector, "close",
            lambda self: (closed.append(True), original_close(self))[1],
        )
        db_path, _ = scan_fixtures
        code, output = run(["scan", "--db", str(db_path), "--log", "/nope/missing.log"])
        assert code == 2 and "error:" in output
        assert closed, "connector was not closed on the error path"

    def test_scan_stats_flag(self, scan_fixtures):
        db_path, log_path = scan_fixtures
        _, output = run(["scan", "--db", str(db_path), "--log", str(log_path), "--stats"])
        assert "pipeline stats:" in output

    def test_scan_sarif_format(self, scan_fixtures):
        db_path, log_path = scan_fixtures
        _, output = run([
            "scan", "--db", str(db_path), "--log", str(log_path), "--format", "sarif",
        ])
        log = json.loads(output)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]


class TestShell:
    def run_shell(self, commands: str) -> str:
        out = io.StringIO()
        shell = SQLCheckShell(stdin=io.StringIO(commands), stdout=out)
        shell.cmdloop()
        return out.getvalue()

    def test_analyses_sql_statement(self):
        output = self.run_shell("SELECT * FROM t\nquit\n")
        assert "Column Wildcard" in output

    def test_clean_statement(self):
        output = self.run_shell("SELECT a FROM t WHERE a = 1\nquit\n")
        assert "no anti-patterns detected" in output

    def test_schema_command_provides_context(self):
        commands = (
            "schema CREATE TABLE A (a_id INTEGER PRIMARY KEY)\n"
            "schema CREATE TABLE B (b_id INTEGER PRIMARY KEY, a_id INTEGER)\n"
            "SELECT b.b_id FROM B b JOIN A a ON a.a_id = b.a_id\n"
            "quit\n"
        )
        output = self.run_shell(commands)
        assert "No Foreign Key" in output

    def test_history_and_reset(self):
        output = self.run_shell("SELECT * FROM t\nhistory\nreset\nhistory\nquit\n")
        assert "SELECT * FROM t" in output
        assert "context cleared" in output


class TestRestLogic:
    def test_check_request_success(self):
        status, body = handle_check_request({"query": "SELECT * FROM t"})
        assert status == 200
        assert body["detections"][0]["anti_pattern"] == "column_wildcard"

    def test_check_request_missing_query(self):
        status, body = handle_check_request({})
        assert status == 400
        assert "error" in body

    def test_check_request_with_config(self):
        status, body = handle_check_request({"query": "SELECT * FROM t", "config": "C2"})
        assert status == 200

    def test_catalog_response_lists_all_anti_patterns(self):
        body = catalog_response()
        assert len(body["anti_patterns"]) == 27

    def test_rules_response_serves_the_ruledoc_catalog(self):
        body = rules_response()
        assert len(body["rules"]) == 33
        for rule in body["rules"]:
            assert rule["kind"] in ("query", "data")
            doc = rule["doc"]
            for field in ("title", "problem", "why_it_hurts", "fix", "paper_section"):
                assert doc[field], f"{rule['name']} missing doc field {field}"
        json.dumps(body)  # must be JSON-serialisable as-is

    def test_scan_request_db_and_log(self, scan_fixtures):
        db_path, log_path = scan_fixtures
        status, body = handle_scan_request({
            "db": str(db_path),
            "log_text": log_path.read_text(encoding="utf-8"),
            "log_format": "sql",
        })
        assert status == 200
        assert body["workload"] == {
            "distinct_statements": 1, "total_statements": 4,
            "total_duration_ms": 0.0, "log_format": "sql",
        }
        assert body["detections"][0]["anti_pattern"] == "column_wildcard"

    def test_scan_request_needs_db_or_log(self):
        status, body = handle_scan_request({})
        assert status == 400 and "error" in body

    def test_scan_request_rejects_unknown_log_format(self, scan_fixtures):
        db_path, _ = scan_fixtures
        status, body = handle_scan_request(
            {"db": str(db_path), "log_text": "SELECT 1;", "log_format": "syslog"}
        )
        assert status == 400 and "log format" in body["error"]

    def test_scan_request_unsupported_engine_is_400(self):
        status, body = handle_scan_request({"db": "mysql://host/db"})
        assert status == 400 and "driver" in body["error"]

    def test_scan_request_non_sqlite_file_is_400(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("hello, not a database", encoding="utf-8")
        status, body = handle_scan_request({"db": str(path)})
        assert status == 400 and "catalog" in body["error"]

    def test_scan_request_autodetects_log_format(self, scan_fixtures):
        """Without log_format the content is sniffed (as the CLI does) —
        a postgres stderr log must not be folded as plain SQL."""
        db_path, _ = scan_fixtures
        stderr_log = (
            "2026-07-01 12:00:00 UTC [9] LOG:  statement: SELECT * FROM tenant\n" * 3
        )
        status, body = handle_scan_request({"db": str(db_path), "log_text": stderr_log})
        assert status == 200
        assert body["workload"] == {
            "distinct_statements": 1, "total_statements": 3,
            "total_duration_ms": 0.0, "log_format": "postgres",
        }
        assert body["detections"][0]["anti_pattern"] == "column_wildcard"

    def test_scan_request_rich_format(self, scan_fixtures):
        db_path, log_path = scan_fixtures
        status, body = handle_scan_request({
            "db": str(db_path),
            "log_text": log_path.read_text(encoding="utf-8"),
            "format": "sarif",
        })
        assert status == 200
        assert body["version"] == "2.1.0"


class TestRestServer:
    def test_end_to_end_http(self):
        with RestServer(port=0) as server:
            url = server.url
            with urllib.request.urlopen(f"{url}/api/health", timeout=5) as response:
                assert json.loads(response.read())["status"] == "ok"
            request = urllib.request.Request(
                f"{url}/api/check",
                data=json.dumps({"query": "INSERT INTO Users VALUES (1,'foo')"}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=5) as response:
                payload = json.loads(response.read())
            assert payload["detections"][0]["anti_pattern"] == "implicit_columns"
            with urllib.request.urlopen(f"{url}/api/antipatterns", timeout=5) as response:
                catalog = json.loads(response.read())
            assert len(catalog["anti_patterns"]) == 27
            with urllib.request.urlopen(f"{url}/api/rules", timeout=5) as response:
                rules = json.loads(response.read())
            assert len(rules["rules"]) == 33
            assert all(rule["doc"]["title"] for rule in rules["rules"])

    def test_unknown_route_is_404(self):
        with RestServer(port=0) as server:
            try:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:  # pragma: no cover
                raise AssertionError("expected a 404")

    def test_invalid_json_is_400(self):
        with RestServer(port=0) as server:
            request = urllib.request.Request(
                f"{server.url}/api/check", data=b"not json", method="POST"
            )
            try:
                urllib.request.urlopen(request, timeout=5)
            except urllib.error.HTTPError as error:
                assert error.code == 400
            else:  # pragma: no cover
                raise AssertionError("expected a 400")


@pytest.fixture
def pg_stat_db(tmp_path):
    """A SQLite database holding app tables plus a pg_stat snapshot table."""
    db_path = tmp_path / "snap.db"
    connection = sqlite3.connect(str(db_path))
    connection.execute(
        "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, label VARCHAR(20))"
    )
    connection.executemany(
        "INSERT INTO tenant VALUES (?, ?)", [(i, f"t{i}") for i in range(10)]
    )
    connection.execute(
        "CREATE TABLE pg_stat_statements "
        "(query TEXT, calls INTEGER, total_exec_time REAL, mean_exec_time REAL)"
    )
    connection.execute(
        "INSERT INTO pg_stat_statements VALUES "
        "('SELECT * FROM tenant', 32, 6400.0, 200.0)"
    )
    connection.commit()
    connection.close()
    return db_path


class TestCLICostModel:
    def test_cost_model_flag_accepted(self, scan_fixtures):
        db_path, log_path = scan_fixtures
        for model in ("frequency", "duration", "hybrid"):
            code, output = run([
                "scan", "--db", str(db_path), "--log", str(log_path),
                "--cost-model", model, "--format", "json",
            ])
            assert code == 1
            assert json.loads(output)["cost_model"] == model

    def test_pg_stat_table_feeds_the_workload(self, pg_stat_db):
        code, output = run([
            "scan", "--db", str(pg_stat_db), "--pg-stat", "--format", "json",
        ])
        assert code == 1
        payload = json.loads(output)
        wildcard = next(
            d for d in payload["detections"] if d["anti_pattern"] == "column_wildcard"
        )
        assert wildcard["workload_weight"] == pytest.approx(6.0)  # 1 + log2(32)
        # The snapshot table itself must not be analysed as app schema.
        assert all(d["table"] != "pg_stat_statements" for d in payload["detections"])

    def test_pg_stat_without_db_is_an_error(self):
        code, output = run(["scan", "--pg-stat", "--log", "/nope.sql"])
        assert code == 2
        assert "--db" in output

    def test_pg_stat_missing_table_is_a_clean_error(self, scan_fixtures):
        db_path, _ = scan_fixtures
        code, output = run(["scan", "--db", str(db_path), "--pg-stat"])
        assert code == 2
        assert output.startswith("error:")

    def test_negative_sample_is_an_error(self, scan_fixtures):
        db_path, _ = scan_fixtures
        code, output = run(["scan", "--db", str(db_path), "--sample", "-1"])
        assert code == 2

    def test_sample_flag_scans_cleanly(self, scan_fixtures):
        db_path, log_path = scan_fixtures
        code, output = run([
            "scan", "--db", str(db_path), "--log", str(log_path),
            "--sample", "3", "--format", "json",
        ])
        assert code == 1
        assert json.loads(output)["tables_analyzed"] >= 1

    def test_markdown_report_names_the_cost_model(self, pg_stat_db):
        _, output = run([
            "scan", "--db", str(pg_stat_db), "--pg-stat",
            "--cost-model", "duration", "--format", "markdown",
        ])
        assert "cost model: `duration`" in output
        assert "workload weight" in output


class TestRestCostModelAndUpload:
    def _db_bytes(self, pg_stat_db) -> str:
        import base64

        return base64.b64encode(pg_stat_db.read_bytes()).decode()

    def test_scan_rejects_unknown_cost_model(self, scan_fixtures):
        db_path, _ = scan_fixtures
        status, body = handle_scan_request(
            {"db": str(db_path), "cost_model": "latency"}
        )
        assert status == 400 and "cost model" in body["error"]

    def test_scan_rejects_db_and_upload_together(self, pg_stat_db):
        status, body = handle_scan_request(
            {"db": str(pg_stat_db), "db_base64": self._db_bytes(pg_stat_db)}
        )
        assert status == 400 and "mutually exclusive" in body["error"]

    def test_scan_rejects_bad_base64(self):
        status, body = handle_scan_request({"db_base64": "@@not-base64@@"})
        assert status == 400 and "base64" in body["error"]

    def test_scan_rejects_bad_sample(self, pg_stat_db):
        status, body = handle_scan_request(
            {"db": str(pg_stat_db), "sample": "many"}
        )
        assert status == 400 and "sample" in body["error"]

    def test_uploaded_database_is_scanned_and_cleaned_up(self, pg_stat_db):
        import glob
        import tempfile

        status, body = handle_scan_request({
            "db_base64": self._db_bytes(pg_stat_db),
            "pg_stat": True,
            "cost_model": "duration",
        })
        assert status == 200
        assert body["cost_model"] == "duration"
        assert body["workload"]["total_statements"] == 32
        wildcard = next(
            d for d in body["detections"] if d["anti_pattern"] == "column_wildcard"
        )
        assert wildcard["workload_weight"] > 1.0
        leftovers = glob.glob(
            str(Path(tempfile.gettempdir()) / "sqlcheck-upload-*.db")
        )
        assert leftovers == []

    def test_upload_with_garbage_content_is_400(self):
        import base64

        status, body = handle_scan_request(
            {"db_base64": base64.b64encode(b"definitely not sqlite").decode()}
        )
        assert status == 400 and "error" in body


class TestRestSelftest:
    def test_selftest_endpoint_returns_verdict_and_oracles(self):
        status, body = handle_selftest_request({"statements": 8, "workers": 1})
        assert status == 200
        assert body["ok"] is True
        assert body["examples_run"] > 0
        assert body["oracle_failures"] == []
        assert body["conformance_failures"] == []
        assert "dbdeo_agreement" in body

    def test_selftest_validates_integers(self):
        status, body = handle_selftest_request({"statements": "lots"})
        assert status == 400
        status, body = handle_selftest_request({"statements": 0})
        assert status == 400
        status, body = handle_selftest_request({"statements": 10, "workers": 0})
        assert status == 400

    def test_selftest_over_http(self):
        request_body = json.dumps({"statements": 5, "workers": 1}).encode()
        with RestServer(port=0) as server:
            request = urllib.request.Request(
                f"{server.url}/api/selftest",
                data=request_body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                payload = json.loads(response.read())
        assert payload["ok"] is True


class TestRestScanBounds:
    def test_pg_stat_false_means_disabled(self, scan_fixtures):
        db_path, log_path = scan_fixtures
        status, body = handle_scan_request({
            "db": str(db_path),
            "log_text": log_path.read_text(encoding="utf-8"),
            "log_format": "sql",
            "pg_stat": False,
        })
        assert status == 200

    def test_oversized_upload_rejected_before_decoding(self, monkeypatch):
        import base64 as base64_module

        import repro.interfaces.rest as rest_module

        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("decoded an oversized upload")

        monkeypatch.setattr(base64_module, "b64decode", boom)
        too_big = "A" * ((rest_module.MAX_UPLOAD_BYTES * 4) // 3 + 8)
        status, body = handle_scan_request({"db_base64": too_big})
        assert status == 400 and "exceeds" in body["error"]

    def test_oversized_request_body_is_413(self):
        import urllib.error

        with RestServer(port=0) as server:
            request = urllib.request.Request(
                f"{server.url}/api/scan", data=b"{}", method="POST",
                headers={"Content-Length": str(10**9)},
            )
            try:
                urllib.request.urlopen(request, timeout=5)
            except (urllib.error.HTTPError, urllib.error.URLError, ConnectionError) as error:
                assert getattr(error, "code", 413) == 413
            else:  # pragma: no cover
                raise AssertionError("expected a 413")
