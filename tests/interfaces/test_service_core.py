"""The long-lived service core: keep-alive, drain, health, and transport
hardening (malformed framing, positive-only ``sample``).

Everything here runs against a live :class:`~repro.interfaces.rest.RestServer`
or the raw handler functions — no mocked sockets, so the HTTP/1.1 framing
(exact Content-Length, Connection: close on unrecoverable requests) is
exercised as a real client would see it.
"""
from __future__ import annotations

import http.client
import json
import socket
import sqlite3
import threading
import urllib.error
import urllib.request

import pytest

from repro.interfaces.cli import run
from repro.interfaces.rest import RestServer, ToolchainPool, handle_scan_request

CHECK_BODY = json.dumps({"query": "SELECT * FROM t"}).encode()


@pytest.fixture
def server():
    with RestServer() as live:
        yield live


@pytest.fixture
def scan_db(tmp_path):
    path = tmp_path / "app.db"
    connection = sqlite3.connect(path)
    connection.execute("CREATE TABLE t (id INTEGER, tags VARCHAR(100))")
    connection.commit()
    connection.close()
    return str(path)


def _post(connection: http.client.HTTPConnection, path: str, body: bytes):
    connection.request(
        "POST", path, body, headers={"Content-Type": "application/json"}
    )
    response = connection.getresponse()
    return response, json.loads(response.read())


# ----------------------------------------------------------------------
# keep-alive
# ----------------------------------------------------------------------
class TestKeepAlive:
    def test_many_requests_ride_one_connection(self, server):
        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            payloads = []
            for _ in range(3):
                response, payload = _post(connection, "/api/check", CHECK_BODY)
                assert response.status == 200
                assert response.version == 11
                # An exact Content-Length (not chunked/close-delimited) is
                # what makes the reuse possible at all.
                assert response.headers["Content-Length"] is not None
                assert (response.headers.get("Connection") or "").lower() != "close"
                payloads.append(payload["detections"])
            assert payloads[0] == payloads[1] == payloads[2]
        finally:
            connection.close()

    def test_concurrent_keepalive_clients_get_identical_answers(self, server):
        host, port = server.address
        results: "list[list]" = []
        errors: "list[BaseException]" = []
        lock = threading.Lock()

        def client() -> None:
            connection = http.client.HTTPConnection(host, port, timeout=60)
            try:
                for _ in range(4):
                    response, payload = _post(connection, "/api/check", CHECK_BODY)
                    assert response.status == 200
                    with lock:
                        results.append(payload["detections"])
            except BaseException as error:  # surfaced in the main thread
                with lock:
                    errors.append(error)
            finally:
                connection.close()

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(results) == 16
        assert all(payload == results[0] for payload in results)

    def test_restarted_server_with_memo_answers_identically(self, tmp_path):
        memo = str(tmp_path / "memo.sqlite")
        answers = []
        for _ in range(2):  # two server *lifetimes* over one memo file
            with RestServer(memo_path=memo) as live:
                request = urllib.request.Request(
                    live.url + "/api/check", data=CHECK_BODY,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as response:
                    answers.append(json.loads(response.read())["detections"])
        assert answers[0] == answers[1]


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_draining_refuses_posts_but_serves_health(self, server):
        server._server.draining = True
        try:
            request = urllib.request.Request(
                server.url + "/api/check", data=CHECK_BODY,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 503
            refusal = json.loads(excinfo.value.read())
            assert refusal["code"] == "internal"
            assert "draining" in refusal["error"]
            # Liveness stays observable: an orchestrator watches the drain
            # complete through /api/health.
            with urllib.request.urlopen(server.url + "/api/health") as response:
                health = json.loads(response.read())
            assert health["status"] == "draining"
            assert health["draining"] is True
        finally:
            server._server.draining = False

    def test_drain_waits_for_in_flight_requests(self, server):
        release = threading.Event()
        entered = threading.Event()

        def slow_request() -> None:
            assert server._server.begin_request(refuse_when_draining=True)
            entered.set()
            release.wait(30)
            server._server.end_request()

        worker = threading.Thread(target=slow_request)
        worker.start()
        assert entered.wait(10)
        assert server._server.drain(0.2) is False  # still in flight
        release.set()
        assert server._server.drain(10) is True
        worker.join(timeout=10)
        server._server.draining = False  # let the fixture stop() re-drain


# ----------------------------------------------------------------------
# health
# ----------------------------------------------------------------------
class TestHealth:
    def test_health_reports_the_service_core(self, server):
        request = urllib.request.Request(
            server.url + "/api/check", data=CHECK_BODY,
            headers={"Content-Type": "application/json"},
        )
        urllib.request.urlopen(request).read()
        with urllib.request.urlopen(server.url + "/api/health") as response:
            health = json.loads(response.read())
        assert health["status"] == "ok"
        assert health["protocol"] == "HTTP/1.1"
        assert health["in_flight"] >= 0
        pool = health["toolchains"]
        assert pool["size"] >= 1
        (toolchain,) = [
            item for item in pool["toolchains"] if item["key"].startswith("check")
        ]
        assert "detection_memo" in toolchain
        assert toolchain["detection_memo"]["entries"] >= 0

    def test_health_reports_persistent_occupancy(self, tmp_path):
        memo = str(tmp_path / "memo.sqlite")
        with RestServer(memo_path=memo) as live:
            request = urllib.request.Request(
                live.url + "/api/check", data=CHECK_BODY,
                headers={"Content-Type": "application/json"},
            )
            urllib.request.urlopen(request).read()
            with urllib.request.urlopen(live.url + "/api/health") as response:
                health = json.loads(response.read())
        assert health["toolchains"]["memo_path"] == memo
        (toolchain,) = health["toolchains"]["toolchains"]
        persistent = toolchain["detection_memo"]["persistent"]
        assert persistent["enabled"] is True
        assert persistent["path"] == memo


# ----------------------------------------------------------------------
# transport hardening: Content-Length framing
# ----------------------------------------------------------------------
def _raw_post(server, content_length_header: "str | None") -> "tuple[int, dict, str]":
    """Send a hand-framed POST and return (status, json body, raw headers)."""
    host, port = server.address
    lines = [
        "POST /api/check HTTP/1.1",
        f"Host: {host}:{port}",
        "Content-Type: application/json",
    ]
    if content_length_header is not None:
        lines.append(f"Content-Length: {content_length_header}")
    request = ("\r\n".join(lines) + "\r\n\r\n").encode()
    with socket.create_connection((host, port), timeout=15) as sock:
        sock.sendall(request)
        sock.settimeout(15)
        data = b""
        while True:  # the server closes unrecoverable connections → EOF
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body), head.decode("latin-1")


class TestContentLengthHardening:
    @pytest.mark.parametrize("bad", ["banana", "12abc", "1e3", ""])
    def test_non_numeric_content_length_is_a_json_400(self, server, bad):
        status, body, headers = _raw_post(server, bad)
        assert status == 400
        assert body["code"] == "bad-request"
        assert "Content-Length" in body["error"]
        # The body boundary is unknowable, so the connection must close.
        assert "connection: close" in headers.lower()

    def test_negative_content_length_is_a_json_400(self, server):
        status, body, _headers = _raw_post(server, "-5")
        assert status == 400
        assert "Content-Length" in body["error"]

    def test_server_survives_malformed_framing(self, server):
        """The hardened path must not take the service down with it."""
        _raw_post(server, "banana")
        with urllib.request.urlopen(server.url + "/api/health") as response:
            assert json.loads(response.read())["status"] == "ok"

    def test_oversized_content_length_is_a_413(self, server):
        status, body, _headers = _raw_post(server, str(10**9))
        assert status == 413
        assert "exceeds" in body["error"]


# ----------------------------------------------------------------------
# transport hardening: positive-only sample
# ----------------------------------------------------------------------
class TestSampleValidation:
    def test_rest_rejects_sample_zero(self, scan_db):
        status, body = handle_scan_request(
            {"db": scan_db, "sample": 0}, pool=ToolchainPool()
        )
        assert status == 400
        assert "positive" in body["error"]

    def test_rest_rejects_negative_sample(self, scan_db):
        status, body = handle_scan_request(
            {"db": scan_db, "sample": -3}, pool=ToolchainPool()
        )
        assert status == 400
        assert "positive" in body["error"]

    def test_rest_accepts_positive_sample(self, scan_db):
        status, _body = handle_scan_request(
            {"db": scan_db, "sample": 1}, pool=ToolchainPool()
        )
        assert status == 200

    def test_cli_rejects_sample_zero(self, scan_db):
        code, output = run(["scan", "--db", scan_db, "--sample", "0"])
        assert code == 2
        assert "positive row count" in output

    def test_cli_omitted_sample_still_means_no_limit(self, scan_db):
        code, _output = run(["scan", "--db", scan_db, "--format", "json"])
        assert code in (0, 1)


# ----------------------------------------------------------------------
# workload provenance in every format
# ----------------------------------------------------------------------
#: csvlog rows as produced by PostgreSQL (message is 0-based field 13).
def _csvlog_row(sql: str) -> str:
    return (
        '2026-07-01 12:00:00.000 UTC,"app","appdb",1234,"10.0.0.5:44444",5ef,1,'
        '"SELECT",2026-07-01 11:59:59 UTC,10/100,0,LOG,00000,'
        f'"statement: {sql}",,,,,,,,,"psql","client backend",,0\n'
    )


DEGRADED_LOG = (
    _csvlog_row("SELECT * FROM t")
    + "not,a,valid,csvlog,row\n"
    + _csvlog_row("SELECT id, tags FROM t WHERE tags LIKE '%x%'")
)


class TestWorkloadProvenance:
    def _scan(self, fmt: str) -> dict:
        status, body = handle_scan_request(
            {
                "log_text": DEGRADED_LOG,
                "log_format": "postgres-csv",
                "format": fmt,
            },
            pool=ToolchainPool(),
        )
        assert status == 200
        return body

    def test_json_scan_carries_the_degraded_workload_block(self):
        body = self._scan("json")
        workload = body["workload"]
        assert workload["degraded"] is True
        assert workload["lines_skipped"] == 1
        assert workload["distinct_statements"] == 2

    def test_markdown_scan_surfaces_degraded_ingestion(self):
        content = self._scan("markdown")["content"]
        assert "Workload: 2 distinct / 2 total statement(s)" in content
        assert "Degraded ingestion:" in content
        assert "1 malformed line(s) skipped" in content

    def test_html_scan_surfaces_degraded_ingestion(self):
        content = self._scan("html")["content"]
        assert "Degraded ingestion:" in content
        assert "<code>postgres-csv</code>" in content

    def test_sarif_scan_carries_workload_properties(self):
        body = self._scan("sarif")
        (workload,) = body["runs"][0]["properties"]["workload"].values()
        assert workload["degraded"] is True
        assert workload["lines_skipped"] == 1

    def test_clean_scan_has_no_degraded_fields(self):
        status, body = handle_scan_request(
            {
                "log_text": _csvlog_row("SELECT * FROM t"),
                "log_format": "postgres-csv",
            },
            pool=ToolchainPool(),
        )
        assert status == 200
        assert "degraded" not in body["workload"]
        assert "lines_skipped" not in body["workload"]

    def test_cli_markdown_scan_surfaces_degraded_ingestion(self, tmp_path):
        log = tmp_path / "pg.csv"
        log.write_text(DEGRADED_LOG, encoding="utf-8")
        code, output = run(
            ["scan", "--log", str(log), "--log-format", "postgres-csv",
             "--format", "markdown"]
        )
        assert code in (0, 1)
        assert "Degraded ingestion:" in output

    def test_cli_json_scan_carries_the_workload_block(self, tmp_path):
        log = tmp_path / "pg.csv"
        log.write_text(DEGRADED_LOG, encoding="utf-8")
        code, output = run(
            ["scan", "--log", str(log), "--log-format", "postgres-csv",
             "--format", "json"]
        )
        assert code in (0, 1)
        payload = json.loads(output)
        assert payload["workload"]["degraded"] is True
