"""Unit tests for the SQL type system."""
from __future__ import annotations

import pytest

from repro.catalog import SQLType, TypeFamily, infer_type_from_value, parse_type, value_has_timezone


class TestParseType:
    @pytest.mark.parametrize(
        "text,name,family",
        [
            ("INTEGER", "INTEGER", TypeFamily.INTEGER),
            ("int", "INT", TypeFamily.INTEGER),
            ("BIGINT", "BIGINT", TypeFamily.INTEGER),
            ("SERIAL", "SERIAL", TypeFamily.INTEGER),
            ("FLOAT", "FLOAT", TypeFamily.APPROXIMATE_NUMERIC),
            ("REAL", "REAL", TypeFamily.APPROXIMATE_NUMERIC),
            ("DOUBLE PRECISION", "DOUBLE", TypeFamily.APPROXIMATE_NUMERIC),
            ("DECIMAL(10,2)", "DECIMAL", TypeFamily.EXACT_NUMERIC),
            ("NUMERIC", "NUMERIC", TypeFamily.EXACT_NUMERIC),
            ("VARCHAR(30)", "VARCHAR", TypeFamily.TEXT),
            ("TEXT", "TEXT", TypeFamily.TEXT),
            ("BOOLEAN", "BOOLEAN", TypeFamily.BOOLEAN),
            ("DATE", "DATE", TypeFamily.DATE),
            ("TIMESTAMP", "TIMESTAMP", TypeFamily.DATETIME),
            ("TIMESTAMPTZ", "TIMESTAMPTZ", TypeFamily.DATETIME),
            ("UUID", "UUID", TypeFamily.UUID),
            ("JSONB", "JSONB", TypeFamily.JSON),
            ("ENUM('a','b')", "ENUM", TypeFamily.ENUM),
            ("FROBNICATOR", "FROBNICATOR", TypeFamily.OTHER),
        ],
    )
    def test_families(self, text, name, family):
        parsed = parse_type(text)
        assert parsed.name == name
        assert parsed.family is family

    def test_length_and_scale(self):
        assert parse_type("VARCHAR(30)").length == 30
        parsed = parse_type("DECIMAL(12, 4)")
        assert parsed.length == 12 and parsed.scale == 4

    def test_enum_values(self):
        parsed = parse_type("ENUM('new', 'paid', 'void')")
        assert parsed.enum_values == ("new", "paid", "void")
        assert parsed.is_enum

    def test_timezone_flags(self):
        assert parse_type("TIMESTAMP WITH TIME ZONE").with_timezone
        assert parse_type("TIMESTAMPTZ").with_timezone
        assert not parse_type("TIMESTAMP").with_timezone
        assert not parse_type("TIMESTAMP WITHOUT TIME ZONE").with_timezone

    def test_predicates(self):
        assert parse_type("FLOAT").is_approximate
        assert parse_type("FLOAT").is_numeric
        assert parse_type("VARCHAR(5)").is_textual
        assert parse_type("DATE").is_temporal
        assert not parse_type("TEXT").is_numeric

    def test_empty_and_raw(self):
        assert parse_type("").name == "UNKNOWN"
        assert str(parse_type("varchar(10)")) == "varchar(10)"


class TestInference:
    @pytest.mark.parametrize(
        "value,family",
        [
            (5, TypeFamily.INTEGER),
            ("42", TypeFamily.INTEGER),
            (3.5, TypeFamily.APPROXIMATE_NUMERIC),
            ("3.14", TypeFamily.APPROXIMATE_NUMERIC),
            (True, TypeFamily.BOOLEAN),
            ("true", TypeFamily.BOOLEAN),
            ("2020-05-01", TypeFamily.DATE),
            ("2020-05-01 10:30:00", TypeFamily.DATETIME),
            ("12:45:00", TypeFamily.TIME),
            ("d9b2d63d-a233-4123-847a-7090c0bf66aa", TypeFamily.UUID),
            ("hello world", TypeFamily.TEXT),
            (None, TypeFamily.OTHER),
        ],
    )
    def test_infer(self, value, family):
        assert infer_type_from_value(value) is family

    def test_timezone_detection(self):
        assert value_has_timezone("2020-05-01 10:30:00+02:00")
        assert value_has_timezone("2020-05-01T10:30:00Z")
        assert not value_has_timezone("2020-05-01 10:30:00")
        assert not value_has_timezone("not a date +02:00")
