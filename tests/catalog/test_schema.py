"""Unit tests for the schema catalog model."""
from __future__ import annotations

from repro.catalog import Column, ForeignKey, Index, Schema, Table, UniqueConstraint, parse_type


def make_table() -> Table:
    table = Table(name="Orders")
    table.add_column(Column(name="Order_ID", sql_type=parse_type("INTEGER"), is_primary_key=True, nullable=False))
    table.add_column(Column(name="Customer_ID", sql_type=parse_type("INTEGER")))
    table.add_column(Column(name="Total", sql_type=parse_type("NUMERIC(10,2)")))
    table.primary_key = ("Order_ID",)
    return table


class TestTable:
    def test_column_access_is_case_insensitive(self):
        table = make_table()
        assert table.get_column("customer_id").name == "Customer_ID"
        assert table.has_column("TOTAL")
        assert table.get_column("missing") is None

    def test_column_names_and_count(self):
        table = make_table()
        assert table.column_names == ["Order_ID", "Customer_ID", "Total"]
        assert table.column_count == 3

    def test_drop_column(self):
        table = make_table()
        table.drop_column("total")
        assert not table.has_column("Total")

    def test_primary_key_facts(self):
        table = make_table()
        assert table.has_primary_key
        assert table.primary_key_columns == ("Order_ID",)
        empty = Table(name="Nothing")
        assert not empty.has_primary_key

    def test_primary_key_from_column_flag(self):
        table = Table(name="T")
        table.add_column(Column(name="code", is_primary_key=True))
        assert table.has_primary_key
        assert table.primary_key_columns == ("code",)

    def test_foreign_keys_include_inline_references(self):
        table = make_table()
        table.get_column("Customer_ID").references = ForeignKey(
            columns=("Customer_ID",), referenced_table="Customers"
        )
        assert table.has_foreign_keys
        assert len(table.all_foreign_keys()) == 1

    def test_indexed_column_sets_and_lookup(self):
        table = make_table()
        table.add_index(Index(name="idx_customer", table="Orders", columns=("Customer_ID",)))
        assert table.column_is_indexed("customer_id")
        assert table.column_is_indexed("ORDER_ID")  # via the primary key
        assert not table.column_is_indexed("Total")

    def test_unique_constraint_counts_as_index(self):
        table = make_table()
        table.uniques.append(UniqueConstraint(columns=("Total",)))
        assert table.column_is_indexed("total")

    def test_index_covers(self):
        index = Index(name="i", table="t", columns=("a", "b", "c"))
        assert index.covers(["a"])
        assert index.covers(["a", "b"])
        assert index.covers(["b", "a"])
        assert not index.covers(["d"])
        assert index.is_multi_column

    def test_column_domain_constraint(self):
        column = Column(name="state", check_values=("a", "b"))
        assert column.has_domain_constraint
        assert not Column(name="free").has_domain_constraint
        assert Column(name="role", sql_type=parse_type("ENUM('x')")).has_domain_constraint
        assert Column(name="score", has_check=True).has_domain_constraint


class TestSchema:
    def test_add_get_drop(self):
        schema = Schema()
        schema.add_table(make_table())
        assert schema.has_table("orders")
        assert schema.get_table("ORDERS").name == "Orders"
        assert schema.table_count == 1
        schema.drop_table("orders")
        assert not schema.has_table("orders")

    def test_foreign_keys_to(self):
        schema = Schema()
        orders = make_table()
        orders.foreign_keys.append(ForeignKey(columns=("Customer_ID",), referenced_table="Customers"))
        schema.add_table(orders)
        customers = Table(name="Customers")
        schema.add_table(customers)
        referencing = schema.foreign_keys_to("customers")
        assert len(referencing) == 1
        assert referencing[0][0] == "Orders"

    def test_resolve_column_with_hints(self):
        schema = Schema()
        a = Table(name="A")
        a.add_column(Column(name="name"))
        b = Table(name="B")
        b.add_column(Column(name="name"))
        schema.add_table(a)
        schema.add_table(b)
        resolved = schema.resolve_column("name", hint_tables=["B"])
        assert resolved[0].name == "B"
        assert schema.resolve_column("missing") is None

    def test_all_indexes(self):
        schema = Schema()
        table = make_table()
        table.add_index(Index(name="idx1", table="Orders", columns=("Total",)))
        schema.add_table(table)
        assert [i.name for i in schema.all_indexes()] == ["idx1"]
