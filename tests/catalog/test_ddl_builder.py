"""Unit tests for the DDL interpreter."""
from __future__ import annotations

import pytest

from repro.catalog import DDLBuilder, build_schema


class TestCreateTable:
    def test_columns_and_types(self):
        schema = build_schema(
            "CREATE TABLE items (item_id INTEGER PRIMARY KEY, name VARCHAR(80) NOT NULL, "
            "price DECIMAL(10,2) DEFAULT 0, active BOOLEAN)"
        )
        table = schema.get_table("items")
        assert table.column_names == ["item_id", "name", "price", "active"]
        assert table.get_column("name").sql_type.name == "VARCHAR"
        assert table.get_column("name").sql_type.length == 80
        assert not table.get_column("name").nullable
        assert table.get_column("price").default == "0"
        assert table.get_column("item_id").is_primary_key
        assert table.primary_key_columns == ("item_id",)

    def test_if_not_exists_and_quoting(self):
        schema = build_schema('CREATE TABLE IF NOT EXISTS "My Table" (a INT)')
        assert schema.has_table("My Table")

    def test_table_level_primary_key(self):
        schema = build_schema("CREATE TABLE link (a INT, b INT, PRIMARY KEY (a, b))")
        assert schema.get_table("link").primary_key_columns == ("a", "b")

    def test_table_level_foreign_key(self):
        schema = build_schema(
            "CREATE TABLE child (id INT PRIMARY KEY, parent_id INT, "
            "FOREIGN KEY (parent_id) REFERENCES parent(id) ON DELETE CASCADE)"
        )
        fks = schema.get_table("child").all_foreign_keys()
        assert len(fks) == 1
        assert fks[0].referenced_table == "parent"
        assert fks[0].referenced_columns == ("id",)
        assert fks[0].on_delete == "CASCADE"

    def test_inline_references(self):
        schema = build_schema(
            "CREATE TABLE h (u VARCHAR(10) REFERENCES Users(User_ID), t VARCHAR(10) REFERENCES Tenants(Tenant_ID))"
        )
        fks = schema.get_table("h").all_foreign_keys()
        assert {fk.referenced_table for fk in fks} == {"Users", "Tenants"}

    def test_inline_check_in(self):
        schema = build_schema("CREATE TABLE u (role VARCHAR(4) CHECK (role IN ('a', 'b')))")
        column = schema.get_table("u").get_column("role")
        assert column.check_values == ("a", "b")
        assert column.has_check

    def test_unique_and_auto_increment(self):
        schema = build_schema("CREATE TABLE t (id SERIAL PRIMARY KEY, email VARCHAR(50) UNIQUE)")
        table = schema.get_table("t")
        assert table.get_column("id").is_auto_increment
        assert table.get_column("email").is_unique

    def test_enum_column(self):
        schema = build_schema("CREATE TABLE t (state ENUM('new','old'))")
        assert schema.get_table("t").get_column("state").sql_type.enum_values == ("new", "old")

    def test_unique_table_constraint_creates_index(self):
        schema = build_schema("CREATE TABLE t (a INT, b INT, UNIQUE (a, b))")
        table = schema.get_table("t")
        assert table.uniques and table.uniques[0].columns == ("a", "b")
        assert len(table.indexes) == 1


class TestCreateIndex:
    def test_basic_index(self):
        schema = build_schema(
            "CREATE TABLE t (a INT, b INT); CREATE INDEX idx_ab ON t (a, b);"
        )
        table = schema.get_table("t")
        assert "idx_ab" in table.indexes
        assert table.indexes["idx_ab"].columns == ("a", "b")
        assert not table.indexes["idx_ab"].unique

    def test_unique_index(self):
        schema = build_schema("CREATE UNIQUE INDEX ux ON t (email)")
        assert schema.get_table("t").indexes["ux"].unique

    def test_index_on_unknown_table_creates_placeholder(self):
        schema = build_schema("CREATE INDEX i ON ghosts (a)")
        assert schema.has_table("ghosts")


class TestAlterTable:
    def test_add_column(self):
        schema = build_schema(
            "CREATE TABLE t (a INT); ALTER TABLE t ADD COLUMN b VARCHAR(10) DEFAULT 'x';"
        )
        column = schema.get_table("t").get_column("b")
        assert column is not None and column.sql_type.name == "VARCHAR"

    def test_drop_column(self):
        schema = build_schema("CREATE TABLE t (a INT, b INT); ALTER TABLE t DROP COLUMN b;")
        assert not schema.get_table("t").has_column("b")

    def test_add_check_constraint(self):
        schema = build_schema(
            "CREATE TABLE u (Role VARCHAR(4)); "
            "ALTER TABLE u ADD CONSTRAINT role_chk CHECK (Role IN ('R1', 'R2'));"
        )
        table = schema.get_table("u")
        assert table.checks and table.checks[0].in_values == ("R1", "R2")
        assert table.get_column("Role").check_values == ("R1", "R2")

    def test_drop_constraint(self):
        schema = build_schema(
            "CREATE TABLE u (Role VARCHAR(4)); "
            "ALTER TABLE u ADD CONSTRAINT role_chk CHECK (Role IN ('R1')); "
            "ALTER TABLE u DROP CONSTRAINT IF EXISTS role_chk;"
        )
        assert schema.get_table("u").checks == []

    def test_add_foreign_key(self):
        schema = build_schema(
            "CREATE TABLE q (id INT PRIMARY KEY, tenant_id INT); "
            "ALTER TABLE q ADD CONSTRAINT fk FOREIGN KEY (tenant_id) REFERENCES tenants(tenant_id);"
        )
        fks = schema.get_table("q").all_foreign_keys()
        assert fks and fks[0].referenced_table == "tenants"

    def test_add_primary_key(self):
        schema = build_schema(
            "CREATE TABLE t (a INT); ALTER TABLE t ADD CONSTRAINT pk PRIMARY KEY (a);"
        )
        assert schema.get_table("t").primary_key_columns == ("a",)

    def test_alter_unknown_table_creates_placeholder(self):
        schema = build_schema("ALTER TABLE mystery ADD COLUMN a INT")
        assert schema.has_table("mystery")


class TestDrop:
    def test_drop_table(self):
        schema = build_schema("CREATE TABLE t (a INT); DROP TABLE t;")
        assert not schema.has_table("t")

    def test_drop_index(self):
        schema = build_schema(
            "CREATE TABLE t (a INT); CREATE INDEX i ON t (a); DROP INDEX i;"
        )
        assert "i" not in schema.get_table("t").indexes

    def test_non_ddl_statements_are_ignored(self):
        builder = DDLBuilder()
        builder.build("SELECT * FROM t; INSERT INTO t VALUES (1);")
        assert builder.schema.table_count == 0
