"""Unit tests for ap-rank (metrics, model, configurations)."""
from __future__ import annotations

import pytest

from repro.model import AntiPattern, Detection
from repro.ranking import APMetrics, APRanker, C1, C2, MetricEstimator, RankingConfig, default_metrics
from repro.ranking.config import normalise_amplification, normalise_indicator, normalise_performance


class TestNormalisation:
    def test_performance_normalisation_figure6(self):
        assert normalise_performance(1.5) == pytest.approx(0.3)
        assert normalise_performance(10.0) == 1.0
        assert normalise_performance(0.0) == 0.0
        assert normalise_performance(-3.0) == 0.0

    def test_amplification_normalisation(self):
        assert normalise_amplification(1.0) == pytest.approx(0.125)
        assert normalise_amplification(10.0) == 1.0

    def test_indicator(self):
        assert normalise_indicator(1) == 1.0
        assert normalise_indicator(0) == 0.0


class TestExample6:
    """Reproduce the paper's Example 6 / Figure 7 exactly."""

    METRICS = {
        AntiPattern.INDEX_UNDERUSE: APMetrics(read_performance=1.5),
        AntiPattern.ENUMERATED_TYPES: APMetrics(
            write_performance=10.0, maintainability=2.0, data_amplification=1.0
        ),
    }

    def test_c1_prefers_index_underuse(self):
        ranker = APRanker(C1, self.METRICS)
        assert ranker.score_anti_pattern(AntiPattern.INDEX_UNDERUSE) == pytest.approx(0.21)
        assert ranker.score_anti_pattern(AntiPattern.ENUMERATED_TYPES) == pytest.approx(0.175)

    def test_c2_prefers_enumerated_types(self):
        ranker = APRanker(C2, self.METRICS)
        index_underuse = ranker.score_anti_pattern(AntiPattern.INDEX_UNDERUSE)
        enumerated = ranker.score_anti_pattern(AntiPattern.ENUMERATED_TYPES)
        assert index_underuse == pytest.approx(0.12)
        assert enumerated > index_underuse
        assert enumerated == pytest.approx(0.445, abs=0.03)


class TestRanker:
    def make_detections(self):
        return [
            Detection(anti_pattern=AntiPattern.GENERIC_PRIMARY_KEY, query_index=0),
            Detection(anti_pattern=AntiPattern.MULTI_VALUED_ATTRIBUTE, query_index=1),
            Detection(anti_pattern=AntiPattern.COLUMN_WILDCARD, query_index=1),
        ]

    def test_rank_orders_by_score_descending(self):
        ranked = APRanker().rank(self.make_detections())
        scores = [entry.score for entry in ranked]
        assert scores == sorted(scores, reverse=True)
        assert [entry.rank for entry in ranked] == [1, 2, 3]
        assert ranked[0].anti_pattern is AntiPattern.MULTI_VALUED_ATTRIBUTE

    def test_scores_are_written_back_to_detections(self):
        detections = self.make_detections()
        APRanker().rank(detections)
        assert all(d.score is not None for d in detections)

    def test_confidence_scales_score(self):
        low = Detection(anti_pattern=AntiPattern.COLUMN_WILDCARD, confidence=0.5)
        high = Detection(anti_pattern=AntiPattern.COLUMN_WILDCARD, confidence=1.0)
        ranker = APRanker()
        assert ranker.score_detection(low) == pytest.approx(ranker.score_detection(high) / 2)

    def test_top(self):
        assert len(APRanker().top(self.make_detections(), n=2)) == 2

    def test_rank_queries_by_score_and_count(self):
        detections = self.make_detections()
        by_score = APRanker(C1).rank_queries(detections)
        assert by_score[0][0] == 1  # query 1 has the MVA + wildcard
        count_config = RankingConfig(name="count", inter_query_mode="count")
        by_count = APRanker(count_config).rank_queries(detections)
        assert by_count[0][0] == 1
        assert by_count[0][1] == 2.0

    def test_every_catalog_entry_has_default_metrics(self):
        metrics = default_metrics()
        for anti_pattern in AntiPattern:
            assert anti_pattern in metrics

    def test_custom_weights_change_ordering(self):
        detections = [
            Detection(anti_pattern=AntiPattern.ROUNDING_ERRORS),     # accuracy only
            Detection(anti_pattern=AntiPattern.ORDERING_BY_RAND),    # read performance
        ]
        read_heavy = APRanker(C1).rank(detections)
        accuracy_heavy = APRanker(
            RankingConfig(name="acc", w_read_performance=0.0, w_accuracy=0.9)
        ).rank(detections)
        assert read_heavy[0].anti_pattern is AntiPattern.ORDERING_BY_RAND
        assert accuracy_heavy[0].anti_pattern is AntiPattern.ROUNDING_ERRORS


class TestMetricEstimator:
    def test_records_and_applies_speedups(self):
        estimator = MetricEstimator()
        speedup = estimator.record_measurement(
            AntiPattern.MULTI_VALUED_ATTRIBUTE, kind="select", with_ap=0.762, without_ap=0.003
        )
        assert speedup == pytest.approx(254, rel=0.01)
        estimator.record_measurement(
            AntiPattern.MULTI_VALUED_ATTRIBUTE, kind="join", with_ap=0.772, without_ap=0.004
        )
        estimator.record_measurement(
            AntiPattern.ENUMERATED_TYPES, kind="update", with_ap=1314.0, without_ap=0.003
        )
        table = estimator.apply()
        assert table[AntiPattern.MULTI_VALUED_ATTRIBUTE].read_performance > 100
        assert table[AntiPattern.ENUMERATED_TYPES].write_performance > 1000

    def test_zero_baseline_is_safe(self):
        estimator = MetricEstimator()
        assert estimator.record_measurement(
            AntiPattern.INDEX_OVERUSE, kind="update", with_ap=1.0, without_ap=0.0
        ) == 1.0

    def test_observed(self):
        estimator = MetricEstimator()
        estimator.record_measurement(AntiPattern.INDEX_OVERUSE, kind="update", with_ap=2.0, without_ap=1.0)
        assert estimator.observed(AntiPattern.INDEX_OVERUSE)["write"] == [2.0]
        assert estimator.observed(AntiPattern.INDEX_OVERUSE)["read"] == []


class TestTieBreakingDeterminism:
    """Same corpus, two runs, identical ordering — ties between detections
    with equal scores must break deterministically, including when the
    second run is served from the detection memo (PR 1's replay path)."""

    def _corpus(self) -> list[str]:
        # Duplicated statements produce score ties both within and across
        # anti-pattern types.
        base = [
            "SELECT * FROM orders WHERE order_id = 1",
            "SELECT * FROM tickets WHERE ticket_id = 2",
            "SELECT title FROM articles ORDER BY RANDOM()",
            "SELECT name FROM users WHERE name LIKE '%son'",
            "INSERT INTO users VALUES (1, 'a')",
        ]
        return base * 3

    @staticmethod
    def _ordering(report):
        return [
            (e.rank, e.detection.anti_pattern, e.detection.query_index,
             round(e.score, 9), e.detection.rule)
            for e in report.detections
        ]

    def test_same_toolchain_memo_replay_preserves_ordering(self):
        from repro.core import SQLCheck

        toolchain = SQLCheck()
        first = self._ordering(toolchain.check(self._corpus()))
        replay = self._ordering(toolchain.check(self._corpus()))
        assert toolchain.detector.memo_info["hits"] > 0, "second run should replay the memo"
        assert first == replay

    def test_fresh_toolchains_agree(self):
        from repro.core import SQLCheck

        first = self._ordering(SQLCheck().check(self._corpus()))
        second = self._ordering(SQLCheck().check(self._corpus()))
        assert first == second

    def test_rank_is_stable_for_tied_scores(self):
        detections = [
            Detection(anti_pattern=AntiPattern.COLUMN_WILDCARD, query=f"q{i}", query_index=i)
            for i in range(6)
        ]
        ranked_twice = [APRanker(C1).rank(list(detections)) for _ in range(2)]
        orders = [[(r.rank, r.detection.query_index) for r in ranked] for ranked in ranked_twice]
        assert orders[0] == orders[1]
        # stable sort: tied detections keep their input (statement) order
        assert [idx for _, idx in orders[0]] == sorted(idx for _, idx in orders[0])
