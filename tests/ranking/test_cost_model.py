"""Unit tests for the workload cost models (ranking/cost_model.py)."""
from __future__ import annotations

import math

import pytest

from repro.ranking.cost_model import (
    COST_MODEL_NAMES,
    DurationCostModel,
    FrequencyCostModel,
    HybridCostModel,
    WorkloadCostModel,
    frequency_weight,
    resolve_cost_model,
)


class TestFrequencyModel:
    def test_matches_the_seed_weight_function(self):
        model = FrequencyCostModel()
        frequencies = {0: 1, 1: 2, 2: 4096, 3: 0}
        weights = model.weights(frequencies, {})
        for index, count in frequencies.items():
            assert weights[index] == frequency_weight(count)

    def test_ignores_durations_entirely(self):
        model = FrequencyCostModel()
        assert model.weights({0: 8}, {0: 1e9}) == model.weights({0: 8}, {})

    def test_unknown_and_single_executions_weigh_one(self):
        assert frequency_weight(None) == 1.0
        assert frequency_weight(1) == 1.0
        assert frequency_weight(0) == 1.0


class TestDurationModel:
    def test_uniform_durations_reduce_to_frequency_exactly(self):
        model = DurationCostModel()
        frequencies = {0: 3, 1: 17, 2: 1}
        uniform = {0: 0.1, 1: 0.1, 2: 0.1}  # 0.1 is inexact in binary
        expected = FrequencyCostModel().weights(frequencies, {})
        weights = model.weights(frequencies, uniform)
        for index in frequencies:
            assert weights[index] == expected.get(index, 1.0)

    def test_total_time_semantics(self):
        """f·(d̄/d̂): 8 executions at twice the median weigh like 16 at it."""
        model = DurationCostModel()
        weights = model.weights({0: 8, 1: 1}, {0: 20.0, 1: 10.0})
        # median of (20, 10) is 15 → 8 · 20/15 executions-equivalent.
        assert weights[0] == pytest.approx(1 + math.log2(8 * 20 / 15))

    def test_statement_without_timing_falls_back_to_frequency(self):
        model = DurationCostModel()
        weights = model.weights({0: 8, 1: 8}, {1: 50.0})
        assert weights[0] == frequency_weight(8)

    def test_duration_only_statement_gets_weighted(self):
        """A statement run once but far slower than the median still gains
        weight — frequency alone would leave it at 1.0."""
        model = DurationCostModel()
        weights = model.weights({}, {0: 400.0, 1: 1.0, 2: 4.0})
        assert weights[0] > 1.0
        assert weights[1] == 1.0  # below the median, clamped at 1.0

    def test_no_durations_at_all_equals_frequency(self):
        model = DurationCostModel()
        assert model.weights({0: 8}, {}) == FrequencyCostModel().weights({0: 8}, {})

    def test_reference_duration_is_the_median(self):
        assert DurationCostModel.reference_duration({0: 1.0, 1: 5.0, 2: 100.0}) == 5.0
        assert DurationCostModel.reference_duration({}) is None
        assert DurationCostModel.reference_duration({0: 0.0}) is None


class TestHybridModel:
    def test_share_bounds_are_validated(self):
        with pytest.raises(ValueError):
            HybridCostModel(1.5)
        with pytest.raises(ValueError):
            HybridCostModel(-0.1)

    def test_extremes_match_the_pure_models(self):
        frequencies, durations = {0: 8, 1: 2}, {0: 90.0, 1: 10.0}
        assert HybridCostModel(0.0).weights(frequencies, durations) == (
            FrequencyCostModel().weights(frequencies, durations)
        )
        assert HybridCostModel(1.0).weights(frequencies, durations) == (
            DurationCostModel().weights(frequencies, durations)
        )

    def test_describe_carries_the_share(self):
        assert HybridCostModel(0.25).describe() == {
            "name": "hybrid",
            "duration_share": 0.25,
        }


class TestResolve:
    def test_names_resolve_to_their_models(self):
        for name in COST_MODEL_NAMES:
            model = resolve_cost_model(name)
            assert isinstance(model, WorkloadCostModel)
            assert model.name == name

    def test_none_is_the_frequency_default(self):
        assert resolve_cost_model(None).name == "frequency"

    def test_instances_pass_through(self):
        instance = HybridCostModel(0.75)
        assert resolve_cost_model(instance) is instance

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            resolve_cost_model("latency")
