"""Unit tests for SQL value semantics."""
from __future__ import annotations

import pytest

from repro.catalog import parse_type
from repro.engine import values as V


class TestNullHandling:
    def test_is_null(self):
        assert V.is_null(None)
        assert V.is_null(V.NULL)
        assert not V.is_null(0)
        assert not V.is_null("")

    def test_null_is_singleton_and_falsy(self):
        assert V.SQLNull() is V.NULL
        assert not V.NULL

    def test_comparisons_with_null_are_unknown(self):
        assert V.compare(None, 1) is None
        assert V.equals(None, None) is None
        assert V.like_match(None, "%x%") is None

    def test_concat_propagates_null(self):
        assert V.concat("a", None, "b") is None
        assert V.concat("a", "b") == "ab"


class TestCoercion:
    def test_integer(self):
        assert V.coerce("42", parse_type("INTEGER")) == 42

    def test_float_finite_precision(self):
        stored = V.coerce(0.1 + 0.2, parse_type("FLOAT"))
        assert stored == pytest.approx(0.3, abs=1e-6)

    def test_decimal_scale(self):
        assert V.coerce(10.005, parse_type("DECIMAL(10,2)")) == pytest.approx(10.0, abs=0.01)

    def test_boolean_from_strings(self):
        assert V.coerce("true", parse_type("BOOLEAN")) is True
        assert V.coerce("f", parse_type("BOOLEAN")) is False

    def test_varchar_truncates_to_length(self):
        assert V.coerce("abcdefgh", parse_type("VARCHAR(3)")) == "abc"

    def test_invalid_coercion_keeps_value(self):
        assert V.coerce("not a number", parse_type("INTEGER")) == "not a number"

    def test_null_passthrough(self):
        assert V.coerce(None, parse_type("INTEGER")) is None


class TestComparison:
    def test_numeric_comparison(self):
        assert V.compare(1, 2) == -1
        assert V.compare(3, 2) == 1
        assert V.compare(2, 2) == 0

    def test_numeric_string_alignment(self):
        assert V.equals("5", 5) is True
        assert V.compare("10", 9) == 1

    def test_boolean_alignment(self):
        assert V.equals(True, "true") is True
        assert V.equals(False, 0) is True

    def test_incomparable_types_fall_back_to_text(self):
        assert V.compare("abc", 5) in (-1, 1)

    def test_string_comparison(self):
        assert V.compare("apple", "banana") == -1


class TestPatternMatching:
    def test_like_percent(self):
        assert V.like_match("hello world", "%world") is True
        assert V.like_match("hello world", "hello%") is True
        assert V.like_match("hello", "%xyz%") is False

    def test_like_underscore(self):
        assert V.like_match("cat", "c_t") is True
        assert V.like_match("cart", "c_t") is False

    def test_like_escapes_regex_metacharacters(self):
        assert V.like_match("a.b", "a.b") is True
        assert V.like_match("axb", "a.b") is False

    def test_ilike(self):
        assert V.like_match("HELLO", "hello", case_insensitive=True) is True

    def test_regexp_word_boundaries(self):
        assert V.regexp_match("U1,U2", "[[:<:]]U1[[:>:]]") is True
        assert V.regexp_match("U11,U2", "[[:<:]]U1[[:>:]]") is False

    def test_regexp_invalid_pattern(self):
        assert V.regexp_match("abc", "[unclosed") is False

    def test_sql_repr(self):
        assert V.sql_repr(None) == "NULL"
        assert V.sql_repr(True) == "true"
        assert V.sql_repr(7) == "7"
