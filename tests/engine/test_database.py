"""Integration tests for the in-memory relational engine."""
from __future__ import annotations

import pytest

from repro.engine import Database, EngineError, IntegrityError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE Users (User_ID VARCHAR(10) PRIMARY KEY, Name VARCHAR(30), Role VARCHAR(10), Age INTEGER)"
    )
    database.execute(
        "CREATE TABLE Orders (Order_ID INTEGER PRIMARY KEY, User_ID VARCHAR(10) REFERENCES Users(User_ID), "
        "Total NUMERIC(10,2), Status VARCHAR(10))"
    )
    database.execute(
        "INSERT INTO Users VALUES ('U1','Alice','admin',34), ('U2','Bob','member',28), ('U3','Cara','member',41)"
    )
    database.execute(
        "INSERT INTO Orders (Order_ID, User_ID, Total, Status) VALUES "
        "(1,'U1',10.50,'paid'), (2,'U1',20.00,'open'), (3,'U2',5.25,'paid')"
    )
    return database


class TestDDL:
    def test_create_table_registers_schema_and_storage(self, db):
        assert db.get_table("users") is not None
        assert db.schema.get_table("Users").primary_key_columns == ("User_ID",)

    def test_primary_key_index_is_materialised(self, db):
        assert db.get_table("users").index_on("User_ID") is not None

    def test_create_index_backfills_existing_rows(self, db):
        db.execute("CREATE INDEX idx_orders_status ON Orders (Status)")
        index = db.get_table("orders").index_on("Status")
        assert index is not None and len(index) == 3

    def test_drop_table(self, db):
        db.execute("DROP TABLE Orders")
        assert db.get_table("orders") is None

    def test_drop_index(self, db):
        db.execute("CREATE INDEX idx_u_role ON Users (Role)")
        db.execute("DROP INDEX idx_u_role")
        assert db.get_table("users").index_on("Role") is None

    def test_alter_table_drop_column_removes_data(self, db):
        db.execute("ALTER TABLE Users DROP COLUMN Age")
        rows = db.execute("SELECT * FROM Users").rows
        assert all("Age" not in {k.split(".")[-1] for k in row} or row.get("Age") is None for row in rows)

    def test_alter_table_add_check_validates_existing_rows(self, db):
        with pytest.raises(IntegrityError):
            db.execute("ALTER TABLE Users ADD CONSTRAINT role_chk CHECK (Role IN ('admin'))")

    def test_truncate(self, db):
        db.execute("TRUNCATE TABLE Orders")
        assert db.execute("SELECT COUNT(*) FROM Orders").scalar() == 0

    def test_unsupported_statement_raises(self, db):
        with pytest.raises(EngineError):
            db.execute("GRANT ALL ON Users TO alice")


class TestInsert:
    def test_multi_row_insert(self, db):
        result = db.execute("INSERT INTO Users VALUES ('U4','Dan','member',22), ('U5','Eve','member',30)")
        assert result.rowcount == 2
        assert db.get_table("users").row_count == 5

    def test_insert_with_column_list_fills_missing_with_null(self, db):
        db.execute("INSERT INTO Users (User_ID, Name) VALUES ('U6','Finn')")
        row = db.execute("SELECT * FROM Users WHERE User_ID = 'U6'").rows[0]
        assert row["Role"] is None

    def test_insert_coerces_types(self, db):
        db.execute("INSERT INTO Orders (Order_ID, User_ID, Total, Status) VALUES (9,'U3','15.5','open')")
        row = db.execute("SELECT Total FROM Orders WHERE Order_ID = 9").rows[0]
        assert row["Total"] == pytest.approx(15.5)

    def test_primary_key_violation(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO Users VALUES ('U1','Dup','member',10)")

    def test_foreign_key_violation(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO Orders (Order_ID, User_ID, Total, Status) VALUES (10,'U99',1.0,'open')")

    def test_not_null_violation(self, db):
        db.execute("CREATE TABLE Strict (a INTEGER NOT NULL)")
        with pytest.raises(IntegrityError):
            db.insert_rows("Strict", [{"a": None}])

    def test_check_constraint_enforced(self):
        database = Database()
        database.execute("CREATE TABLE T (Role VARCHAR(5) CHECK (Role IN ('R1','R2')))")
        database.execute("INSERT INTO T (Role) VALUES ('R1')")
        with pytest.raises(IntegrityError):
            database.execute("INSERT INTO T (Role) VALUES ('R9')")


class TestSelect:
    def test_simple_filter(self, db):
        result = db.execute("SELECT Name FROM Users WHERE Role = 'member'")
        assert sorted(r["Name"] for r in result.rows) == ["Bob", "Cara"]

    def test_projection_with_alias(self, db):
        result = db.execute("SELECT Name AS who FROM Users WHERE User_ID = 'U1'")
        assert result.rows[0]["who"] == "Alice"

    def test_join_with_index(self, db):
        result = db.execute(
            "SELECT u.Name, o.Total FROM Orders o JOIN Users u ON o.User_ID = u.User_ID WHERE o.Status = 'paid'"
        )
        assert result.rowcount == 2

    def test_left_join_keeps_unmatched_rows(self, db):
        result = db.execute(
            "SELECT u.Name, o.Order_ID FROM Users u LEFT JOIN Orders o ON o.User_ID = u.User_ID"
        )
        names = [row.get("Name") or row.get("u.Name") for row in result.rows]
        assert "Cara" in names  # Cara has no orders but must appear

    def test_aggregates(self, db):
        assert db.execute("SELECT COUNT(*) FROM Orders").scalar() == 3
        assert db.execute("SELECT SUM(Total) FROM Orders").scalar() == pytest.approx(35.75)
        assert db.execute("SELECT MIN(Age) FROM Users").scalar() == 28
        assert db.execute("SELECT MAX(Age) FROM Users").scalar() == 41
        assert db.execute("SELECT AVG(Age) FROM Users").scalar() == pytest.approx(34.33, abs=0.01)

    def test_group_by(self, db):
        result = db.execute("SELECT Status, COUNT(*) AS n FROM Orders GROUP BY Status")
        by_status = {row["Status"]: row["n"] for row in result.rows}
        assert by_status == {"paid": 2, "open": 1}

    def test_order_by_and_limit(self, db):
        result = db.execute("SELECT Name FROM Users ORDER BY Age DESC LIMIT 2")
        assert [r["Name"] for r in result.rows] == ["Cara", "Alice"]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT Role FROM Users")
        assert result.rowcount == 2

    def test_like_predicate(self, db):
        result = db.execute("SELECT Name FROM Users WHERE Name LIKE 'A%'")
        assert result.rowcount == 1

    def test_in_predicate(self, db):
        result = db.execute("SELECT * FROM Users WHERE User_ID IN ('U1', 'U3')")
        assert result.rowcount == 2

    def test_unknown_table_raises(self, db):
        with pytest.raises(Exception):
            db.execute("SELECT * FROM Ghosts")

    def test_cost_and_plan_reported(self, db):
        result = db.execute("SELECT * FROM Users WHERE User_ID = 'U1'")
        assert result.cost > 0
        assert "scan" in result.plan or "index" in result.plan

    def test_force_index_toggle(self, db):
        db.execute("CREATE INDEX idx_users_role ON Users (Role)")
        indexed = db.execute("SELECT * FROM Users WHERE Role = 'member'", force_index=True)
        scanned = db.execute("SELECT * FROM Users WHERE Role = 'member'", force_index=False)
        assert indexed.rowcount == scanned.rowcount == 2
        assert "index_scan" in indexed.plan
        assert "seq_scan" in scanned.plan


class TestUpdateDelete:
    def test_update_with_predicate(self, db):
        result = db.execute("UPDATE Users SET Role = 'owner' WHERE User_ID = 'U1'")
        assert result.rowcount == 1
        assert db.execute("SELECT Role FROM Users WHERE User_ID = 'U1'").scalar() == "owner"

    def test_update_all_rows(self, db):
        assert db.execute("UPDATE Orders SET Status = 'done'").rowcount == 3

    def test_update_maintains_indexes(self, db):
        db.execute("CREATE INDEX idx_orders_status ON Orders (Status)")
        db.execute("UPDATE Orders SET Status = 'done' WHERE Order_ID = 1")
        result = db.execute("SELECT * FROM Orders WHERE Status = 'done'", force_index=True)
        assert result.rowcount == 1

    def test_update_expression_uses_old_value(self, db):
        db.execute("UPDATE Orders SET Total = Total + 1 WHERE Order_ID = 3")
        assert db.execute("SELECT Total FROM Orders WHERE Order_ID = 3").scalar() == pytest.approx(6.25)

    def test_update_replace_function(self, db):
        db.execute("CREATE TABLE T (v TEXT)")
        db.execute("INSERT INTO T (v) VALUES ('a,b,c')")
        db.execute("UPDATE T SET v = REPLACE(v, ',b', '')")
        assert db.execute("SELECT v FROM T").scalar() == "a,c"

    def test_delete_with_predicate(self, db):
        assert db.execute("DELETE FROM Orders WHERE Status = 'paid'").rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM Orders").scalar() == 1

    def test_delete_all(self, db):
        db.execute("DELETE FROM Orders")
        assert db.get_table("orders").row_count == 0


class TestCostModel:
    def test_more_indexes_make_writes_more_expensive(self):
        database = Database()
        database.execute("CREATE TABLE T (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, c INTEGER)")
        database.insert_rows("T", [{"id": i, "a": i, "b": i, "c": i} for i in range(200)])
        baseline = database.execute("UPDATE T SET a = a + 1 WHERE id = 5").cost
        for column in ("a", "b", "c"):
            database.execute(f"CREATE INDEX idx_{column} ON T ({column})")
        with_indexes = database.execute("UPDATE T SET a = a + 1 WHERE id = 5").cost
        assert with_indexes > baseline

    def test_index_scan_cheaper_than_seq_scan_for_selective_predicate(self):
        database = Database()
        database.execute("CREATE TABLE T (id INTEGER PRIMARY KEY, v VARCHAR(10))")
        database.insert_rows("T", [{"id": i, "v": f"v{i}"} for i in range(500)])
        database.execute("CREATE INDEX idx_v ON T (v)")
        indexed = database.execute("SELECT * FROM T WHERE v = 'v250'", force_index=True).cost
        scanned = database.execute("SELECT * FROM T WHERE v = 'v250'", force_index=False).cost
        assert indexed < scanned

    def test_index_scan_more_expensive_on_low_cardinality_column(self):
        database = Database()
        database.execute("CREATE TABLE T (id INTEGER PRIMARY KEY, flag VARCHAR(3))")
        database.insert_rows("T", [{"id": i, "flag": "on" if i % 2 else "off"} for i in range(400)])
        database.execute("CREATE INDEX idx_flag ON T (flag)")
        indexed = database.execute("SELECT * FROM T WHERE flag = 'on'", force_index=True).cost
        scanned = database.execute("SELECT * FROM T WHERE flag = 'on'", force_index=False).cost
        assert indexed > scanned
