"""Unit tests for the storage layer (tables and secondary indexes)."""
from __future__ import annotations

import pytest

from repro.catalog import Column, Index, Table, parse_type
from repro.engine import Database, IntegrityError, SecondaryIndex
from repro.engine.storage import StoredTable


def make_stored_table() -> StoredTable:
    definition = Table(name="Items")
    definition.add_column(Column(name="Item_ID", sql_type=parse_type("INTEGER"), is_primary_key=True, nullable=False))
    definition.add_column(Column(name="Name", sql_type=parse_type("VARCHAR(20)")))
    definition.add_column(Column(name="Qty", sql_type=parse_type("INTEGER"), default="1"))
    definition.primary_key = ("Item_ID",)
    return StoredTable(definition=definition)


class TestStoredTable:
    def test_insert_applies_defaults_and_coercion(self):
        table = make_stored_table()
        row_id = table.insert({"Item_ID": "5", "Name": "Widget"})
        stored = table.rows[row_id]
        assert stored["Item_ID"] == 5
        assert stored["Qty"] == 1

    def test_insert_is_case_insensitive_on_column_names(self):
        table = make_stored_table()
        row_id = table.insert({"item_id": 1, "NAME": "x"})
        assert table.rows[row_id]["Name"] == "x"

    def test_duplicate_primary_key_rejected(self):
        table = make_stored_table()
        table.insert({"Item_ID": 1})
        with pytest.raises(IntegrityError):
            table.insert({"Item_ID": 1})

    def test_null_primary_key_rejected(self):
        table = make_stored_table()
        with pytest.raises(IntegrityError):
            table.insert({"Name": "x"})

    def test_update_and_delete_maintain_indexes(self):
        table = make_stored_table()
        index = table.create_index(Index(name="idx_name", table="Items", columns=("Name",)))
        a = table.insert({"Item_ID": 1, "Name": "alpha"})
        b = table.insert({"Item_ID": 2, "Name": "beta"})
        assert index.lookup(("alpha",)) == {a}
        table.update_row(a, {"Name": "gamma"})
        assert index.lookup(("alpha",)) == set()
        assert index.lookup(("gamma",)) == {a}
        table.delete_row(b)
        assert index.lookup(("beta",)) == set()
        assert table.row_count == 1

    def test_validate_all_rows_counts(self):
        table = make_stored_table()
        table.insert({"Item_ID": 1})
        table.insert({"Item_ID": 2})
        assert table.validate_all_rows() == 2

    def test_scan_and_all_rows(self):
        table = make_stored_table()
        table.insert({"Item_ID": 1})
        assert len(list(table.scan())) == 1
        assert len(table.all_rows()) == 1


class TestSecondaryIndex:
    def make_index(self, unique: bool = False) -> SecondaryIndex:
        return SecondaryIndex(Index(name="i", table="t", columns=("a", "b"), unique=unique))

    def test_multi_column_lookup(self):
        index = self.make_index()
        index.add(1, {"a": 1, "b": "x"})
        index.add(2, {"a": 1, "b": "y"})
        assert index.lookup((1, "x")) == {1}
        assert index.lookup_leading(1) == {1, 2}
        assert len(index) == 2

    def test_unique_violation(self):
        index = self.make_index(unique=True)
        index.add(1, {"a": 1, "b": "x"})
        with pytest.raises(IntegrityError):
            index.add(2, {"a": 1, "b": "x"})

    def test_remove_cleans_empty_buckets(self):
        index = self.make_index()
        index.add(1, {"a": 1, "b": "x"})
        index.remove(1, {"a": 1, "b": "x"})
        assert index.lookup((1, "x")) == set()
        assert len(index) == 0

    def test_float_and_int_keys_normalise(self):
        index = SecondaryIndex(Index(name="i", table="t", columns=("a",)))
        index.add(1, {"a": 5.0})
        assert index.lookup((5,)) == {1}


class TestForeignKeysAcrossTables:
    def test_fk_lookup_uses_referenced_pk_index(self):
        db = Database()
        db.execute("CREATE TABLE Parent (p_id INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE Child (c_id INTEGER PRIMARY KEY, p_id INTEGER REFERENCES Parent(p_id))")
        db.insert_rows("Parent", [{"p_id": i} for i in range(10)])
        db.insert_rows("Child", [{"c_id": i, "p_id": i % 10} for i in range(20)])
        with pytest.raises(IntegrityError):
            db.insert_rows("Child", [{"c_id": 99, "p_id": 42}])

    def test_null_foreign_key_is_allowed(self):
        db = Database()
        db.execute("CREATE TABLE Parent (p_id INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE Child (c_id INTEGER PRIMARY KEY, p_id INTEGER REFERENCES Parent(p_id))")
        db.insert_rows("Child", [{"c_id": 1, "p_id": None}])
        assert db.get_table("child").row_count == 1
