"""Unit tests for the expression parser/evaluator."""
from __future__ import annotations

import pytest

from repro.engine.expressions import ExpressionError, evaluate, parse_expression


ROW = {
    "id": 7,
    "name": "Widget",
    "price": 10.0,
    "qty": 3,
    "tag": None,
    "u.User_ID": "U1",
    "t.User_IDs": "U1,U2",
}


class TestLiteralsAndColumns:
    def test_numeric_literals(self):
        assert evaluate("1 + 2", {}) == 3
        assert evaluate("2 * 3.5", {}) == 7.0

    def test_string_literal(self):
        assert evaluate("'it''s'", {}) == "it's"

    def test_boolean_and_null_literals(self):
        assert evaluate("TRUE", {}) is True
        assert evaluate("NULL", {}) is None

    def test_column_lookup(self):
        assert evaluate("price", ROW) == 10.0

    def test_qualified_column_lookup(self):
        assert evaluate("u.User_ID", ROW) == "U1"

    def test_case_insensitive_column_lookup(self):
        assert evaluate("PRICE", ROW) == 10.0

    def test_unknown_column_raises(self):
        with pytest.raises(ExpressionError):
            evaluate("missing_column", ROW)

    def test_columns_reported(self):
        expression = parse_expression("price * qty > 10 AND name = 'Widget'")
        assert {"price", "qty", "name"} <= expression.columns()


class TestOperators:
    def test_comparisons(self):
        assert evaluate("price > 5", ROW) is True
        assert evaluate("price <= 5", ROW) is False
        assert evaluate("name = 'Widget'", ROW) is True
        assert evaluate("name != 'Widget'", ROW) is False

    def test_arithmetic_precedence(self):
        assert evaluate("1 + 2 * 3", {}) == 7
        assert evaluate("(1 + 2) * 3", {}) == 9

    def test_division_by_zero_is_null(self):
        assert evaluate("1 / 0", {}) is None

    def test_unary_minus(self):
        assert evaluate("-price", ROW) == -10.0

    def test_concat_operator(self):
        assert evaluate("name || '!'", ROW) == "Widget!"
        assert evaluate("tag || 'x'", ROW) is None

    def test_null_comparison_is_unknown(self):
        assert evaluate("tag = 'x'", ROW) is None


class TestPredicates:
    def test_and_or_not(self):
        assert evaluate("price > 5 AND qty = 3", ROW) is True
        assert evaluate("price > 50 OR qty = 3", ROW) is True
        assert evaluate("NOT price > 50", ROW) is True

    def test_three_valued_and(self):
        assert evaluate("tag = 'x' AND price > 5", ROW) is None
        assert evaluate("tag = 'x' AND price > 50", ROW) is False

    def test_like(self):
        assert evaluate("name LIKE 'Wid%'", ROW) is True
        assert evaluate("name NOT LIKE '%zzz%'", ROW) is True
        assert evaluate("name ILIKE 'widget'", ROW) is True

    def test_regexp_with_concatenated_pattern(self):
        assert evaluate("t.User_IDs REGEXP '[[:<:]]' || u.User_ID || '[[:>:]]'", ROW) is True

    def test_in_list(self):
        assert evaluate("qty IN (1, 2, 3)", ROW) is True
        assert evaluate("qty NOT IN (1, 2)", ROW) is True
        assert evaluate("tag IN ('a')", ROW) is None

    def test_between(self):
        assert evaluate("price BETWEEN 5 AND 15", ROW) is True
        assert evaluate("price NOT BETWEEN 5 AND 15", ROW) is False

    def test_is_null(self):
        assert evaluate("tag IS NULL", ROW) is True
        assert evaluate("tag IS NOT NULL", ROW) is False
        assert evaluate("price IS NULL", ROW) is False

    def test_is_true(self):
        assert evaluate("TRUE IS TRUE", {}) is True


class TestFunctions:
    def test_replace(self):
        assert evaluate("REPLACE('a,b,c', ',b', '')", {}) == "a,c"

    def test_coalesce(self):
        assert evaluate("COALESCE(tag, 'fallback')", ROW) == "fallback"
        assert evaluate("COALESCE(name, 'fallback')", ROW) == "Widget"

    def test_concat_function(self):
        assert evaluate("CONCAT(name, '-', qty)", ROW) == "Widget-3"
        assert evaluate("CONCAT(tag, 'x')", ROW) is None

    def test_string_functions(self):
        assert evaluate("LOWER(name)", ROW) == "widget"
        assert evaluate("UPPER('ab')", {}) == "AB"
        assert evaluate("LENGTH(name)", ROW) == 6
        assert evaluate("SUBSTR(name, 1, 3)", ROW) == "Wid"

    def test_numeric_functions(self):
        assert evaluate("ABS(-3)", {}) == 3
        assert evaluate("ROUND(3.456, 2)", {}) == pytest.approx(3.46)

    def test_unknown_function_raises(self):
        with pytest.raises(ExpressionError):
            evaluate("FROBNICATE(1)", {})


class TestParserErrors:
    def test_unbalanced_parenthesis(self):
        with pytest.raises(ExpressionError):
            parse_expression("(1 + 2")

    def test_empty_expression(self):
        with pytest.raises(ExpressionError):
            parse_expression("")

    def test_between_without_and(self):
        with pytest.raises(ExpressionError):
            parse_expression("a BETWEEN 1 OR 2")
