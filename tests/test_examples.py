"""Smoke tests: every example script must run end-to-end."""
from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the repository must ship at least three runnable examples"
    assert (EXAMPLES_DIR / "quickstart.py") in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something useful"
