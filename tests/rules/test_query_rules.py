"""Unit tests for query and logical/physical design rules (intra-query)."""
from __future__ import annotations

import pytest

from repro.detector import APDetector, DetectorConfig
from repro.model import AntiPattern


def detect_types(sql: str, **config) -> set[AntiPattern]:
    detector = APDetector(DetectorConfig(**config))
    return detector.detect(sql).types_detected()


def detect(sql: str, **config):
    return APDetector(DetectorConfig(**config)).detect(sql)


class TestColumnWildcard:
    def test_select_star_detected(self):
        assert AntiPattern.COLUMN_WILDCARD in detect_types("SELECT * FROM t")

    def test_qualified_star_detected(self):
        assert AntiPattern.COLUMN_WILDCARD in detect_types("SELECT t.* FROM t")

    def test_count_star_not_detected(self):
        assert AntiPattern.COLUMN_WILDCARD not in detect_types("SELECT COUNT(*) FROM t")

    def test_explicit_columns_not_detected(self):
        assert AntiPattern.COLUMN_WILDCARD not in detect_types("SELECT a, b FROM t")


class TestImplicitColumns:
    def test_insert_without_columns(self):
        assert AntiPattern.IMPLICIT_COLUMNS in detect_types("INSERT INTO t VALUES (1, 'x')")

    def test_insert_with_columns_ok(self):
        assert AntiPattern.IMPLICIT_COLUMNS not in detect_types("INSERT INTO t (a, b) VALUES (1, 'x')")


class TestOrderingByRand:
    def test_rand_detected(self):
        assert AntiPattern.ORDERING_BY_RAND in detect_types("SELECT a FROM t ORDER BY RAND()")

    def test_random_detected(self):
        assert AntiPattern.ORDERING_BY_RAND in detect_types("SELECT a FROM t ORDER BY RANDOM() LIMIT 1")

    def test_regular_order_not_detected(self):
        assert AntiPattern.ORDERING_BY_RAND not in detect_types("SELECT a FROM t ORDER BY a DESC")


class TestPatternMatching:
    def test_leading_wildcard_detected(self):
        assert AntiPattern.PATTERN_MATCHING in detect_types("SELECT a FROM t WHERE a LIKE '%x%'")

    def test_regexp_detected(self):
        assert AntiPattern.PATTERN_MATCHING in detect_types("SELECT a FROM t WHERE a REGEXP 'x.*y'")

    def test_prefix_like_is_not_an_anti_pattern(self):
        assert AntiPattern.PATTERN_MATCHING not in detect_types("SELECT a FROM t WHERE a LIKE 'abc%'")


class TestDistinctAndJoin:
    def test_distinct_with_join(self):
        sql = "SELECT DISTINCT a.x FROM a JOIN b ON a.id = b.id"
        assert AntiPattern.DISTINCT_AND_JOIN in detect_types(sql)

    def test_distinct_without_join_ok(self):
        assert AntiPattern.DISTINCT_AND_JOIN not in detect_types("SELECT DISTINCT x FROM a")


class TestTooManyJoins:
    def test_many_joins_detected(self):
        joins = " ".join(f"JOIN t{i} ON t{i}.k = t{i-1}.k" for i in range(1, 7))
        assert AntiPattern.TOO_MANY_JOINS in detect_types(f"SELECT * FROM t0 {joins}")

    def test_few_joins_ok(self):
        sql = "SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON c.k = b.k"
        assert AntiPattern.TOO_MANY_JOINS not in detect_types(sql)

    def test_threshold_is_configurable(self):
        from repro.rules import Thresholds

        sql = "SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON c.k = b.k"
        types = detect_types(sql, thresholds=Thresholds(too_many_joins=2))
        assert AntiPattern.TOO_MANY_JOINS in types


class TestConcatenateNulls:
    def test_concat_detected(self):
        assert AntiPattern.CONCATENATE_NULLS in detect_types("SELECT first || ' ' || last FROM t")

    def test_no_concat_ok(self):
        assert AntiPattern.CONCATENATE_NULLS not in detect_types("SELECT first FROM t")

    def test_not_null_schema_suppresses(self):
        sql = (
            "CREATE TABLE t (first VARCHAR(10) NOT NULL, last VARCHAR(10) NOT NULL);"
            "SELECT first || last FROM t;"
        )
        assert AntiPattern.CONCATENATE_NULLS not in detect_types(sql)


class TestReadablePassword:
    def test_literal_password_comparison(self):
        assert AntiPattern.READABLE_PASSWORD in detect_types(
            "SELECT id FROM users WHERE password = 'hunter2'"
        )

    def test_hashed_literal_not_detected(self):
        assert AntiPattern.READABLE_PASSWORD not in detect_types(
            "SELECT id FROM users WHERE password = '5f4dcc3b5aa765d61d8327deb882cf99'"
        )

    def test_plain_schema_column(self):
        assert AntiPattern.READABLE_PASSWORD in detect_types(
            "CREATE TABLE users (id INT PRIMARY KEY, password VARCHAR(50))"
        )


class TestSchemaRules:
    def test_no_primary_key(self):
        assert AntiPattern.NO_PRIMARY_KEY in detect_types("CREATE TABLE t (a INT, b INT)")
        assert AntiPattern.NO_PRIMARY_KEY not in detect_types("CREATE TABLE t (a INT PRIMARY KEY)")

    def test_no_primary_key_fixed_by_later_alter(self):
        sql = "CREATE TABLE t (a INT); ALTER TABLE t ADD CONSTRAINT pk PRIMARY KEY (a);"
        assert AntiPattern.NO_PRIMARY_KEY not in detect_types(sql)

    def test_generic_primary_key(self):
        assert AntiPattern.GENERIC_PRIMARY_KEY in detect_types(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(10))"
        )
        assert AntiPattern.GENERIC_PRIMARY_KEY not in detect_types(
            "CREATE TABLE t (order_id INTEGER PRIMARY KEY, name VARCHAR(10))"
        )

    def test_god_table(self):
        columns = ", ".join(f"c{i} INT" for i in range(15))
        assert AntiPattern.GOD_TABLE in detect_types(f"CREATE TABLE t (id INT PRIMARY KEY, {columns})")
        assert AntiPattern.GOD_TABLE not in detect_types("CREATE TABLE t (a INT, b INT, c INT)")

    def test_rounding_errors(self):
        assert AntiPattern.ROUNDING_ERRORS in detect_types("CREATE TABLE t (price FLOAT)")
        assert AntiPattern.ROUNDING_ERRORS not in detect_types("CREATE TABLE t (price NUMERIC(10,2))")

    def test_enumerated_types_enum(self):
        assert AntiPattern.ENUMERATED_TYPES in detect_types("CREATE TABLE t (state ENUM('a','b'))")

    def test_enumerated_types_check_in(self):
        assert AntiPattern.ENUMERATED_TYPES in detect_types(
            "ALTER TABLE u ADD CONSTRAINT c CHECK (Role IN ('R1','R2'))"
        )

    def test_adjacency_list_self_reference(self):
        assert AntiPattern.ADJACENCY_LIST in detect_types(
            "CREATE TABLE emp (id INT PRIMARY KEY, manager_id INT REFERENCES emp(id))"
        )

    def test_data_in_metadata_numbered_columns(self):
        assert AntiPattern.DATA_IN_METADATA in detect_types(
            "CREATE TABLE t (id INT PRIMARY KEY, tag1 VARCHAR(5), tag2 VARCHAR(5), tag3 VARCHAR(5))"
        )

    def test_data_in_metadata_year_table(self):
        assert AntiPattern.DATA_IN_METADATA in detect_types(
            "CREATE TABLE sales_2019 (sale_id INT PRIMARY KEY)"
        )

    def test_clone_table_requires_context_siblings(self):
        sql = (
            "CREATE TABLE log_1 (entry_id INT PRIMARY KEY);"
            "CREATE TABLE log_2 (entry_id INT PRIMARY KEY);"
        )
        assert AntiPattern.CLONE_TABLE in detect_types(sql)
        # a single numbered table is not enough once context is available
        assert AntiPattern.CLONE_TABLE not in detect_types("CREATE TABLE log_1 (entry_id INT PRIMARY KEY)")

    def test_external_data_storage(self):
        assert AntiPattern.EXTERNAL_DATA_STORAGE in detect_types(
            "CREATE TABLE docs (doc_id INT PRIMARY KEY, file_path VARCHAR(255))"
        )

    def test_multi_valued_attribute_query(self):
        assert AntiPattern.MULTI_VALUED_ATTRIBUTE in detect_types(
            "SELECT * FROM t WHERE user_ids LIKE '%U1%'"
        )

    def test_multi_valued_attribute_ddl(self):
        assert AntiPattern.MULTI_VALUED_ATTRIBUTE in detect_types(
            "CREATE TABLE t (t_id INT PRIMARY KEY, member_ids TEXT)"
        )
