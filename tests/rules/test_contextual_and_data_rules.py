"""Tests for inter-query (contextual) rules and data-analysis rules."""
from __future__ import annotations

import pytest

from repro.detector import APDetector, DetectorConfig
from repro.engine import Database
from repro.model import AntiPattern
from repro.rules import Thresholds, default_registry


def detect(sql="", database=None, **config):
    return APDetector(DetectorConfig(**config)).detect(sql, database=database)


def detect_types(sql="", database=None, **config):
    return detect(sql, database=database, **config).types_detected()


class TestNoForeignKeyInterQuery:
    SQL = (
        "CREATE TABLE Tenant (Tenant_ID INTEGER PRIMARY KEY, Zone VARCHAR(10));"
        "CREATE TABLE Questionnaire (Q_ID INTEGER PRIMARY KEY, Tenant_ID INTEGER, Name VARCHAR(30));"
        "SELECT q.Name FROM Questionnaire q JOIN Tenant t ON t.Tenant_ID = q.Tenant_ID;"
    )

    def test_detected_with_inter_query_analysis(self):
        assert AntiPattern.NO_FOREIGN_KEY in detect_types(self.SQL)

    def test_not_detected_without_inter_query_analysis(self):
        assert AntiPattern.NO_FOREIGN_KEY not in detect_types(self.SQL, enable_inter_query=False)

    def test_not_detected_when_fk_exists(self):
        sql = self.SQL.replace(
            "Tenant_ID INTEGER, Name",
            "Tenant_ID INTEGER REFERENCES Tenant(Tenant_ID), Name",
        )
        assert AntiPattern.NO_FOREIGN_KEY not in detect_types(sql)


class TestIndexRulesInterQuery:
    def test_index_underuse_detected(self):
        sql = (
            "CREATE TABLE T (t_id INTEGER PRIMARY KEY, category VARCHAR(20), price NUMERIC(10,2));"
            "SELECT * FROM T WHERE category = 'books';"
        )
        assert AntiPattern.INDEX_UNDERUSE in detect_types(sql)

    def test_index_underuse_not_reported_when_index_exists(self):
        sql = (
            "CREATE TABLE T (t_id INTEGER PRIMARY KEY, category VARCHAR(20));"
            "CREATE INDEX idx_cat ON T (category);"
            "SELECT * FROM T WHERE category = 'books';"
        )
        assert AntiPattern.INDEX_UNDERUSE not in detect_types(sql)

    def test_index_underuse_suppressed_by_low_cardinality_data(self):
        """The Figure 8c false positive: data analysis drops the missing-index
        report when the filtered column has too few distinct values."""
        db = Database()
        db.execute("CREATE TABLE T (t_id INTEGER PRIMARY KEY, flag VARCHAR(3))")
        db.insert_rows("T", [{"t_id": i, "flag": "on" if i % 2 else "off"} for i in range(100)])
        query = "SELECT * FROM T WHERE flag = 'on'"
        with_data = detect_types(query, database=db)
        without_data = detect_types(query, database=db, enable_data=False)
        assert AntiPattern.INDEX_UNDERUSE not in with_data
        assert AntiPattern.INDEX_UNDERUSE in without_data

    def test_index_overuse_unused_index(self):
        sql = (
            "CREATE TABLE T (t_id INTEGER PRIMARY KEY, a INTEGER, b INTEGER);"
            "CREATE INDEX idx_b ON T (b);"
            "SELECT * FROM T WHERE a = 1;"
        )
        assert AntiPattern.INDEX_OVERUSE in detect_types(sql)

    def test_index_overuse_redundant_single_column_index(self):
        sql = (
            "CREATE TABLE T (t_id INTEGER PRIMARY KEY, zone VARCHAR(5), active BOOLEAN);"
            "CREATE INDEX idx_zone_active ON T (zone, active);"
            "CREATE INDEX idx_zone ON T (zone);"
            "SELECT t_id FROM T WHERE zone = 'Z1';"
        )
        assert AntiPattern.INDEX_OVERUSE in detect_types(sql)

    def test_index_overuse_needs_context(self):
        sql = "CREATE INDEX idx_b ON T (b)"
        assert AntiPattern.INDEX_OVERUSE not in detect_types(sql, enable_inter_query=False)


class TestMultiValuedAttributeData:
    def test_data_rule_confirms(self):
        db = Database()
        db.execute("CREATE TABLE Tenants (Tenant_ID VARCHAR(8) PRIMARY KEY, User_IDs TEXT)")
        db.insert_rows(
            "Tenants",
            [{"Tenant_ID": f"T{i}", "User_IDs": f"U{i},U{i+1},U{i+2}"} for i in range(20)],
        )
        report = detect(database=db)
        mva = report.filter(AntiPattern.MULTI_VALUED_ATTRIBUTE)
        assert mva and mva[0].column == "User_IDs"
        assert mva[0].detection_mode == "data"

    def test_data_refutes_query_level_suspicion(self):
        """A LIKE '%…%' query against a column whose data is NOT a list is a
        false positive that data analysis removes (§4.1 limitation)."""
        db = Database()
        db.execute("CREATE TABLE Places (place_id INTEGER PRIMARY KEY, address VARCHAR(100))")
        db.insert_rows(
            "Places",
            [{"place_id": i, "address": f"{i} Main Street, Springfield"} for i in range(20)],
        )
        query = "SELECT * FROM Places WHERE address LIKE '%U1%'"
        with_data = detect(query, database=db).filter(AntiPattern.MULTI_VALUED_ATTRIBUTE)
        without_data = detect(query, enable_data=False).filter(AntiPattern.MULTI_VALUED_ATTRIBUTE)
        assert not with_data
        # without the data the suspicion may remain (lower precision)
        assert isinstance(without_data, list)


class TestDataRules:
    def build_db(self) -> Database:
        db = Database()
        db.execute(
            "CREATE TABLE readings ("
            " reading_key INTEGER PRIMARY KEY,"
            " recorded_at TIMESTAMP,"
            " year_text TEXT,"
            " locale VARCHAR(10),"
            " organisation VARCHAR(80),"
            " rating INTEGER,"
            " birth_date DATE,"
            " age INTEGER)"
        )
        rows = []
        orgs = ["Global Widgets Incorporated", "Acme Corporation"]
        for i in range(120):
            year = 1960 + i % 40
            rows.append(
                {
                    "reading_key": i,
                    "recorded_at": f"2020-03-{1 + i % 27:02d} 10:00:00",
                    "year_text": str(2000 + i % 10),
                    "locale": "en-us",
                    "organisation": orgs[0] if i % 3 else orgs[1],
                    "rating": 1 + i % 5,
                    "birth_date": f"{year}-01-01",
                    "age": 2020 - year,
                }
            )
        db.insert_rows("readings", rows)
        return db

    def test_missing_timezone(self):
        report = detect(database=self.build_db())
        hits = report.filter(AntiPattern.MISSING_TIMEZONE)
        assert any(d.column == "recorded_at" for d in hits)

    def test_incorrect_data_type(self):
        report = detect(database=self.build_db())
        hits = report.filter(AntiPattern.INCORRECT_DATA_TYPE)
        assert any(d.column == "year_text" for d in hits)

    def test_redundant_column(self):
        report = detect(database=self.build_db())
        hits = report.filter(AntiPattern.REDUNDANT_COLUMN)
        assert any(d.column == "locale" for d in hits)

    def test_denormalized_table(self):
        report = detect(database=self.build_db())
        hits = report.filter(AntiPattern.DENORMALIZED_TABLE)
        assert any(d.column == "organisation" for d in hits)

    def test_information_duplication(self):
        report = detect(database=self.build_db())
        hits = report.filter(AntiPattern.INFORMATION_DUPLICATION)
        assert any({d.column, d.metadata.get("other_column")} & {"age", "birth_date"} for d in hits)

    def test_no_domain_constraint(self):
        report = detect(database=self.build_db())
        hits = report.filter(AntiPattern.NO_DOMAIN_CONSTRAINT)
        assert any(d.column == "rating" for d in hits)

    def test_enumerated_types_data_rule(self):
        db = Database()
        db.execute("CREATE TABLE U (u_id INTEGER PRIMARY KEY, role VARCHAR(4))")
        db.insert_rows("U", [{"u_id": i, "role": f"R{1 + i % 3}"} for i in range(200)])
        report = detect(database=db)
        hits = report.filter(AntiPattern.ENUMERATED_TYPES)
        assert any(d.column == "role" for d in hits)

    def test_data_rules_disabled(self):
        report = detect(database=self.build_db(), enable_data=False)
        assert not report.filter(AntiPattern.MISSING_TIMEZONE)


class TestDetectorConfig:
    def test_confidence_threshold_filters(self):
        sql = "SELECT * FROM t WHERE notes LIKE '%a b c%'"
        strict = detect(sql, confidence_threshold=0.95)
        lax = detect(sql, confidence_threshold=0.1)
        assert len(lax) >= len(strict)

    def test_deduplication(self):
        sql = "SELECT * FROM t WHERE tag_ids LIKE '%1%' AND tag_ids LIKE '%2%'"
        deduplicated = detect(sql)
        raw = detect(sql, deduplicate=False)
        assert len(raw) >= len(deduplicated)

    def test_registry_coverage(self):
        registry = default_registry()
        covered = registry.anti_patterns_covered()
        assert len(covered) == 27  # every catalog entry has at least one rule

    def test_registry_disable(self):
        registry = default_registry()
        registry.disable_anti_pattern(AntiPattern.COLUMN_WILDCARD)
        detector = APDetector(registry=registry)
        assert AntiPattern.COLUMN_WILDCARD not in detector.detect("SELECT * FROM t").types_detected()

    def test_rules_for_statement(self):
        registry = default_registry()
        select_rules = registry.rules_for_statement("SELECT")
        create_rules = registry.rules_for_statement("CREATE_TABLE")
        assert select_rules and create_rules
        assert {r.name for r in select_rules} != {r.name for r in create_rules}

    def test_report_counts_tables_analyzed(self):
        db = Database()
        db.execute("CREATE TABLE A (x INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE B (y INTEGER PRIMARY KEY)")
        report = detect(database=db)
        assert report.tables_analyzed == 2
