"""Connector round-trip: live introspection ≡ the offline ContextBuilder path.

The live-source promise is that connecting to a database is *the same
computation* as handing sqlcheck the equivalent offline inputs.  These
tests pin the two halves: (1) introspecting an ``engine.Database`` built
from DDL yields a catalog and data profiles identical to the offline
``ContextBuilder`` path over that database; (2) a SQLite file created from
the same DDL introspects to the identical catalog, because the connector
replays ``sqlite_master``'s stored DDL through the same ``DDLBuilder``.
"""
from __future__ import annotations

import sqlite3

import pytest

from repro.context.builder import ContextBuilder
from repro.engine.database import Database
from repro.ingest import EngineConnector, SQLiteConnector
from repro.profiler.profiler import DataProfiler

DDL = [
    "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, label VARCHAR(40) NOT NULL)",
    "CREATE TABLE questionnaire (q_id INTEGER PRIMARY KEY, "
    "tenant_id INTEGER REFERENCES tenant(tenant_id), name VARCHAR(30))",
    "CREATE INDEX idx_q_name ON questionnaire(name)",
]

TENANT_ROWS = [{"tenant_id": i, "label": f"t{i}"} for i in range(25)]
QUESTIONNAIRE_ROWS = [
    {"q_id": i, "tenant_id": i % 25, "name": f"q{i}"} for i in range(60)
]

QUERIES = [
    "SELECT * FROM tenant",
    "SELECT q.name FROM questionnaire q JOIN tenant t ON t.tenant_id = q.tenant_id",
]


@pytest.fixture
def engine_db() -> Database:
    database = Database()
    for statement in DDL:
        database.execute(statement)
    database.insert_rows("tenant", [dict(r) for r in TENANT_ROWS])
    database.insert_rows("questionnaire", [dict(r) for r in QUESTIONNAIRE_ROWS])
    return database


@pytest.fixture
def sqlite_db(tmp_path):
    path = tmp_path / "app.db"
    connection = sqlite3.connect(str(path))
    for statement in DDL:
        connection.execute(statement)
    connection.executemany(
        "INSERT INTO tenant VALUES (?, ?)",
        [(r["tenant_id"], r["label"]) for r in TENANT_ROWS],
    )
    connection.executemany(
        "INSERT INTO questionnaire VALUES (?, ?, ?)",
        [(r["q_id"], r["tenant_id"], r["name"]) for r in QUESTIONNAIRE_ROWS],
    )
    connection.commit()
    connection.close()
    return path


def test_engine_connector_matches_offline_context(engine_db):
    offline = ContextBuilder().build(QUERIES, database=engine_db, source="app")
    connector = EngineConnector(engine_db)
    live_schema = connector.schema()
    live_profiles = connector.profiles(DataProfiler())

    assert live_schema is offline.schema  # the engine's catalog is shared
    assert sorted(live_profiles) == sorted(offline.profiles)
    for name, live in live_profiles.items():
        expected = offline.profiles[name]
        assert live.row_count == expected.row_count
        assert live.sampled_rows == expected.sampled_rows
        assert live.definition == expected.definition
        assert live.columns == expected.columns


def test_sqlite_connector_matches_offline_ddl_catalog(sqlite_db):
    offline = ContextBuilder().build(DDL + QUERIES, source="app")
    with SQLiteConnector(sqlite_db) as connector:
        live = connector.schema()
        assert sorted(live.tables) == sorted(offline.schema.tables)
        for key, live_table in live.tables.items():
            assert live_table == offline.schema.tables[key]


def test_sqlite_profiles_match_engine_profiles(sqlite_db, engine_db):
    """Same DDL + rows → identical data profiles from either connector."""
    profiler = DataProfiler()
    with SQLiteConnector(sqlite_db) as sqlite_connector:
        sqlite_profiles = sqlite_connector.profiles(profiler)
    engine_profiles = EngineConnector(engine_db).profiles(profiler)
    assert sorted(sqlite_profiles) == sorted(engine_profiles)
    for name, live in sqlite_profiles.items():
        expected = engine_profiles[name]
        assert live.row_count == expected.row_count
        assert live.columns == expected.columns
