"""Connector tests: URL resolution, SQLite/engine introspection, row access."""
from __future__ import annotations

import sqlite3

import pytest

from repro.engine.database import Database
from repro.ingest import (
    ConnectorError,
    EngineConnector,
    SQLiteConnector,
    connect,
)

DDL = [
    "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, label VARCHAR(40) NOT NULL)",
    "CREATE TABLE questionnaire (q_id INTEGER PRIMARY KEY, "
    "tenant_id INTEGER REFERENCES tenant(tenant_id), name VARCHAR(30))",
    "CREATE INDEX idx_q_name ON questionnaire(name)",
]

TENANT_ROWS = [{"tenant_id": i, "label": f"t{i}"} for i in range(12)]


@pytest.fixture
def sqlite_path(tmp_path):
    path = tmp_path / "app.db"
    connection = sqlite3.connect(str(path))
    for statement in DDL:
        connection.execute(statement)
    connection.executemany(
        "INSERT INTO tenant VALUES (?, ?)",
        [(row["tenant_id"], row["label"]) for row in TENANT_ROWS],
    )
    connection.commit()
    connection.close()
    return path


class TestConnect:
    def test_sqlite_url_and_bare_path(self, sqlite_path):
        for target in (f"sqlite:///{sqlite_path}", str(sqlite_path), sqlite_path):
            connector = connect(target)
            assert isinstance(connector, SQLiteConnector)
            assert connector.schema().has_table("tenant")
            connector.close()

    def test_open_sqlite_connection(self, sqlite_path):
        connection = sqlite3.connect(str(sqlite_path))
        connector = connect(connection)
        assert isinstance(connector, SQLiteConnector)
        assert connector.schema().has_table("questionnaire")
        connection.close()

    def test_engine_database(self):
        database = Database()
        for statement in DDL:
            database.execute(statement)
        connector = connect(database)
        assert isinstance(connector, EngineConnector)
        assert connector.schema() is database.schema

    def test_server_engines_point_at_log_ingestion(self):
        for url in (
            "postgres://h/db",
            "postgresql://h/db",
            "mysql://h/db",
            # SQLAlchemy/Django-style driver-qualified URLs
            "postgresql+psycopg2://h/db",
            "mysql+pymysql://h/db",
        ):
            with pytest.raises(ConnectorError, match="--log"):
                connect(url)

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(ConnectorError):
            connect(str(tmp_path / "nope.db"))

    def test_directory_path_raises_connector_error(self, tmp_path):
        directory = tmp_path / "data.db"
        directory.mkdir()
        with pytest.raises(ConnectorError, match="open"):
            connect(str(directory))

    def test_existing_non_sqlite_file_raises_connector_error(self, tmp_path):
        """Any existing path resolves to the SQLite connector, so a
        non-database file must fail as a ConnectorError (which the CLI and
        REST surfaces report cleanly), never a raw sqlite3 traceback."""
        path = tmp_path / "README.md"
        path.write_text("# not a database\n", encoding="utf-8")
        connector = connect(str(path))
        with pytest.raises(ConnectorError, match="catalog"):
            connector.schema()
        connector.close()

    def test_memory_url_is_rejected(self):
        with pytest.raises(ConnectorError, match="sqlite3.Connection"):
            connect("sqlite::memory:")


class TestSQLiteIntrospection:
    def test_catalog_matches_stored_ddl(self, sqlite_path):
        with connect(sqlite_path) as connector:
            schema = connector.schema()
            assert sorted(t.lower() for t in schema.table_names) == [
                "questionnaire", "tenant",
            ]
            tenant = schema.get_table("tenant")
            assert tenant.primary_key_columns == ("tenant_id",)
            questionnaire = schema.get_table("questionnaire")
            assert questionnaire.has_foreign_keys
            assert "idx_q_name" in questionnaire.indexes

    def test_rows_and_profiles(self, sqlite_path):
        with connect(sqlite_path) as connector:
            rows = connector.table_rows("tenant")
            assert rows == TENANT_ROWS
            profiles = connector.profiles()
            assert profiles["tenant"].row_count == len(TENANT_ROWS)
            assert profiles["questionnaire"].row_count == 0

    def test_schema_is_cached_until_refresh(self, sqlite_path):
        with connect(sqlite_path) as connector:
            first = connector.schema()
            assert connector.schema() is first
            assert connector.refresh() is not first

    def test_get_table_serves_data_rules(self, sqlite_path):
        with connect(sqlite_path) as connector:
            stored = connector.get_table("tenant")
            assert stored.all_rows() == TENANT_ROWS
            assert stored.row_count == len(TENANT_ROWS)
            assert connector.get_table("nope") is None

    def test_rows_are_fetched_once_per_scan(self, sqlite_path):
        """Profiling and the data rules share one fetch per table: the
        per-connector table cache must make ``table_rows`` run at most once
        per table, and ``refresh()`` must invalidate it."""
        with connect(sqlite_path) as connector:
            calls: "list[str]" = []
            fetch = connector.table_rows
            connector.table_rows = lambda name: (calls.append(name.lower()), fetch(name))[1]
            connector.profiles()
            connector.get_table("tenant").all_rows()
            connector.get_table("tenant").all_rows()
            assert sorted(calls) == ["questionnaire", "tenant"]
            assert connector.get_table("tenant") is connector.get_table("tenant")
            connector.refresh()
            connector.get_table("tenant").all_rows()
            assert sorted(calls) == ["questionnaire", "tenant", "tenant"]

    def test_pragma_fallback_for_unparsed_ddl(self, tmp_path, monkeypatch):
        path = tmp_path / "weird.db"
        connection = sqlite3.connect(str(path))
        connection.execute("CREATE TABLE plain (pk_col INTEGER PRIMARY KEY, note TEXT)")
        connection.close()
        connector = SQLiteConnector(path)
        # Pretend the stored DDL was unusable: the PRAGMA path must still
        # recover the table shape.
        monkeypatch.setattr(
            connector, "master_entries", lambda: [("table", "plain", None)]
        )
        schema = connector.schema()
        table = schema.get_table("plain")
        assert table is not None
        assert [c.lower() for c in table.column_names] == ["pk_col", "note"]
        assert table.primary_key_columns == ("pk_col",)
        connector.close()
