"""Connector tests: URL resolution, SQLite/engine introspection, row access."""
from __future__ import annotations

import sqlite3

import pytest

from repro.engine.database import Database
from repro.ingest import (
    ConnectorError,
    EngineConnector,
    SQLiteConnector,
    connect,
)

DDL = [
    "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, label VARCHAR(40) NOT NULL)",
    "CREATE TABLE questionnaire (q_id INTEGER PRIMARY KEY, "
    "tenant_id INTEGER REFERENCES tenant(tenant_id), name VARCHAR(30))",
    "CREATE INDEX idx_q_name ON questionnaire(name)",
]

TENANT_ROWS = [{"tenant_id": i, "label": f"t{i}"} for i in range(12)]


@pytest.fixture
def sqlite_path(tmp_path):
    path = tmp_path / "app.db"
    connection = sqlite3.connect(str(path))
    for statement in DDL:
        connection.execute(statement)
    connection.executemany(
        "INSERT INTO tenant VALUES (?, ?)",
        [(row["tenant_id"], row["label"]) for row in TENANT_ROWS],
    )
    connection.commit()
    connection.close()
    return path


class TestConnect:
    def test_sqlite_url_and_bare_path(self, sqlite_path):
        for target in (f"sqlite:///{sqlite_path}", str(sqlite_path), sqlite_path):
            connector = connect(target)
            assert isinstance(connector, SQLiteConnector)
            assert connector.schema().has_table("tenant")
            connector.close()

    def test_open_sqlite_connection(self, sqlite_path):
        connection = sqlite3.connect(str(sqlite_path))
        connector = connect(connection)
        assert isinstance(connector, SQLiteConnector)
        assert connector.schema().has_table("questionnaire")
        connection.close()

    def test_engine_database(self):
        database = Database()
        for statement in DDL:
            database.execute(statement)
        connector = connect(database)
        assert isinstance(connector, EngineConnector)
        assert connector.schema() is database.schema

    def test_server_engines_point_at_log_ingestion(self):
        for url in (
            "postgres://h/db",
            "postgresql://h/db",
            "mysql://h/db",
            # SQLAlchemy/Django-style driver-qualified URLs
            "postgresql+psycopg2://h/db",
            "mysql+pymysql://h/db",
        ):
            with pytest.raises(ConnectorError, match="--log"):
                connect(url)

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(ConnectorError):
            connect(str(tmp_path / "nope.db"))

    def test_directory_path_raises_connector_error(self, tmp_path):
        directory = tmp_path / "data.db"
        directory.mkdir()
        with pytest.raises(ConnectorError, match="open"):
            connect(str(directory))

    def test_existing_non_sqlite_file_raises_connector_error(self, tmp_path):
        """Any existing path resolves to the SQLite connector, so a
        non-database file must fail as a ConnectorError (which the CLI and
        REST surfaces report cleanly), never a raw sqlite3 traceback."""
        path = tmp_path / "README.md"
        path.write_text("# not a database\n", encoding="utf-8")
        connector = connect(str(path))
        with pytest.raises(ConnectorError, match="catalog"):
            connector.schema()
        connector.close()

    def test_memory_url_is_rejected(self):
        with pytest.raises(ConnectorError, match="sqlite3.Connection"):
            connect("sqlite::memory:")


class TestSQLiteIntrospection:
    def test_catalog_matches_stored_ddl(self, sqlite_path):
        with connect(sqlite_path) as connector:
            schema = connector.schema()
            assert sorted(t.lower() for t in schema.table_names) == [
                "questionnaire", "tenant",
            ]
            tenant = schema.get_table("tenant")
            assert tenant.primary_key_columns == ("tenant_id",)
            questionnaire = schema.get_table("questionnaire")
            assert questionnaire.has_foreign_keys
            assert "idx_q_name" in questionnaire.indexes

    def test_rows_and_profiles(self, sqlite_path):
        with connect(sqlite_path) as connector:
            rows = connector.table_rows("tenant")
            assert rows == TENANT_ROWS
            profiles = connector.profiles()
            assert profiles["tenant"].row_count == len(TENANT_ROWS)
            assert profiles["questionnaire"].row_count == 0

    def test_schema_is_cached_until_refresh(self, sqlite_path):
        with connect(sqlite_path) as connector:
            first = connector.schema()
            assert connector.schema() is first
            assert connector.refresh() is not first

    def test_get_table_serves_data_rules(self, sqlite_path):
        with connect(sqlite_path) as connector:
            stored = connector.get_table("tenant")
            assert stored.all_rows() == TENANT_ROWS
            assert stored.row_count == len(TENANT_ROWS)
            assert connector.get_table("nope") is None

    def test_rows_are_fetched_once_per_scan(self, sqlite_path):
        """Profiling and the data rules share one fetch per table: the
        per-connector table cache must make ``table_rows`` run at most once
        per table, and ``refresh()`` must invalidate it."""
        with connect(sqlite_path) as connector:
            calls: "list[str]" = []
            fetch = connector.table_rows
            connector.table_rows = lambda name: (calls.append(name.lower()), fetch(name))[1]
            connector.profiles()
            connector.get_table("tenant").all_rows()
            connector.get_table("tenant").all_rows()
            assert sorted(calls) == ["questionnaire", "tenant"]
            assert connector.get_table("tenant") is connector.get_table("tenant")
            connector.refresh()
            connector.get_table("tenant").all_rows()
            assert sorted(calls) == ["questionnaire", "tenant", "tenant"]

    def test_pragma_fallback_for_unparsed_ddl(self, tmp_path, monkeypatch):
        path = tmp_path / "weird.db"
        connection = sqlite3.connect(str(path))
        connection.execute("CREATE TABLE plain (pk_col INTEGER PRIMARY KEY, note TEXT)")
        connection.close()
        connector = SQLiteConnector(path)
        # Pretend the stored DDL was unusable: the PRAGMA path must still
        # recover the table shape.
        monkeypatch.setattr(
            connector, "master_entries", lambda: [("table", "plain", None)]
        )
        schema = connector.schema()
        table = schema.get_table("plain")
        assert table is not None
        assert [c.lower() for c in table.column_names] == ["pk_col", "note"]
        assert table.primary_key_columns == ("pk_col",)
        connector.close()


class TestSamplingPushDown:
    def test_sqlite_limit_is_pushed_into_the_query(self, sqlite_path):
        with SQLiteConnector(sqlite_path) as connector:
            sample = connector.table_rows("tenant", limit=5)
            assert len(sample) == 5
            # Sampled rows are real rows.
            ids = {row["tenant_id"] for row in sample}
            assert ids <= {row["tenant_id"] for row in TENANT_ROWS}
            assert connector.table_row_count("tenant") == len(TENANT_ROWS)

    def test_sqlite_count_does_not_fetch_rows(self, sqlite_path):
        with SQLiteConnector(sqlite_path) as connector:
            assert connector.table_row_count("questionnaire") == 0
            with pytest.raises(ConnectorError):
                connector.table_row_count("missing")

    def test_profiles_sample_large_tables_only(self, sqlite_path):
        with SQLiteConnector(sqlite_path) as connector:
            profiles = connector.profiles(sample_limit=5)
            # tenant (12 rows) is sampled down; the profile sees ≤ 5 rows.
            assert profiles["tenant"].row_count <= 5
            # The full-row cache must not have been populated with a sample.
            assert connector.get_table("tenant").row_count == len(TENANT_ROWS)

    def test_profiles_without_limit_fetch_everything(self, sqlite_path):
        with SQLiteConnector(sqlite_path) as connector:
            profiles = connector.profiles()
            assert profiles["tenant"].row_count == len(TENANT_ROWS)

    def test_profiles_exclude_telemetry_tables(self, sqlite_path):
        with SQLiteConnector(sqlite_path) as connector:
            profiles = connector.profiles(exclude=("Tenant",))
            assert "tenant" not in profiles
            assert "questionnaire" in profiles

    def test_engine_connector_limit_truncates(self):
        database = Database()
        database.execute(DDL[0])
        database.insert_rows("tenant", [dict(row) for row in TENANT_ROWS])
        connector = EngineConnector(database)
        assert len(connector.table_rows("tenant", limit=4)) == 4
        assert connector.table_row_count("tenant") == len(TENANT_ROWS)

    def test_scan_with_sample_limit_matches_schema_findings(self, sqlite_path):
        """Sampling changes profiling inputs, never the schema analysis: a
        scan with a tiny sample still reports the same schema-level
        findings as the full fetch."""
        from repro.ingest import LiveScanner

        full = LiveScanner().scan(str(sqlite_path), ["SELECT * FROM tenant"])
        sampled = LiveScanner().scan(
            str(sqlite_path), ["SELECT * FROM tenant"], sample_limit=3
        )
        schema_aps = lambda report: sorted(
            e.detection.anti_pattern.value
            for e in report
            if e.detection.detection_mode != "data"
        )
        assert schema_aps(full) == schema_aps(sampled)

    def test_scan_sample_limit_caps_data_rule_row_fetches(self, sqlite_path):
        """The cap must hold for every fetch in the scan: rows pulled later
        by data rules through get_table() stay sampled too."""
        from repro.ingest import LiveScanner, SQLiteConnector

        with SQLiteConnector(sqlite_path) as connector:
            LiveScanner().scan(connector, ["SELECT * FROM tenant"], sample_limit=4)
            assert connector.sample_limit == 4
            assert connector.get_table("tenant").row_count <= 4
