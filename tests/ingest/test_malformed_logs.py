"""Malformed-input regressions for every log-reader format.

Degraded ingestion promises skip-and-count: a corrupt line is recorded on
the :class:`~repro.errors.ErrorBudget` and skipped, and every *clean* line
still parses exactly as it would without the corruption.  These tests pin
that contract per format — truncated final lines, bad CSV rows,
interleaved binary junk, mid-file headers — plus the budget-exhaustion and
strict fail-fast edges, and structured "undetectable" errors from
:func:`detect_log_format`.
"""
from __future__ import annotations

import csv

import pytest

from repro.errors import (
    CODE_LOG_MALFORMED,
    CODE_LOG_UNDETECTABLE,
    ErrorBudget,
    ErrorBudgetExceeded,
)
from repro.ingest import (
    LOG_FORMATS,
    LogDetectionError,
    LogFormatError,
    detect_log_format,
    iter_log_records,
    read_workload_log,
)

# One well-formed csvlog row per statement (message is 0-based field 13).
def _csvlog_row(sql: str) -> str:
    return (
        '2026-07-01 12:00:00.000 UTC,"app","appdb",1234,"10.0.0.5:44444",5ef,1,'
        '"SELECT",2026-07-01 11:59:59 UTC,10/100,0,LOG,00000,'
        f'"statement: {sql}",,,,,,,,,"psql","client backend",,0\n'
    )


#: A non-binary line the csv module rejects outright: an embedded carriage
#: return in an unquoted field ("new-line character seen in unquoted field").
BAD_CSV_LINE = "corrupt,row\rwith,embedded,return\n"

#: Binary junk as it arrives after errors="replace" decoding.
JUNK_LINE = "\x00\x00\x1fbinary frame ��\n"


def _records(fmt: str, text, budget: "ErrorBudget | None" = None):
    # str → split on line ends; a list is passed through verbatim, which is
    # how a line containing a bare '\r' (not a line boundary to the log
    # transport, fatal to the csv module) reaches the reader intact.
    lines = text.splitlines(True) if isinstance(text, str) else list(text)
    return list(iter_log_records(lines, fmt, budget))


def _statements(fmt: str, text, budget: "ErrorBudget | None" = None):
    return [record.statement for record in _records(fmt, text, budget)]


# ----------------------------------------------------------------------
# postgres-csv
# ----------------------------------------------------------------------
class TestPostgresCsvMalformed:
    CLEAN = _csvlog_row("SELECT * FROM tenant") + _csvlog_row(
        "SELECT name FROM questionnaire"
    )

    def test_bad_csv_row_is_skipped_and_counted(self):
        text = [
            _csvlog_row("SELECT * FROM tenant"),
            BAD_CSV_LINE,
            _csvlog_row("SELECT name FROM questionnaire"),
        ]
        budget = ErrorBudget()
        assert _statements("postgres-csv", text, budget) == _statements(
            "postgres-csv", self.CLEAN
        )
        assert len(budget) == 1
        (error,) = budget
        assert error.stage == "ingest"
        assert error.code == CODE_LOG_MALFORMED
        assert error.exception == "Error"  # csv.Error
        assert "bad CSV row" in error.message
        assert error.line is not None

    def test_bad_csv_row_still_raises_without_budget(self):
        text = [BAD_CSV_LINE, _csvlog_row("SELECT * FROM tenant")]
        with pytest.raises(csv.Error):
            _records("postgres-csv", text)

    def test_truncated_final_line_is_counted_not_silently_dropped(self):
        # A row cut mid-write has too few fields to carry a message.
        text = self.CLEAN + '2026-07-01 12:00:03.000 UTC,"app","appd\n'
        budget = ErrorBudget()
        assert _statements("postgres-csv", text, budget) == _statements(
            "postgres-csv", self.CLEAN
        )
        assert len(budget) == 1
        assert "field(s)" in budget.errors[0].message

    def test_binary_junk_lines_are_cleaned_before_the_csv_reader(self):
        text = JUNK_LINE + self.CLEAN + JUNK_LINE
        budget = ErrorBudget()
        assert _statements("postgres-csv", text, budget) == _statements(
            "postgres-csv", self.CLEAN
        )
        assert [error.line for error in budget] == [1, 4]
        assert all("binary junk" in error.message for error in budget)


# ----------------------------------------------------------------------
# postgres stderr
# ----------------------------------------------------------------------
class TestPostgresStderrMalformed:
    CLEAN = (
        "2026-07-01 12:00:00 UTC [99] LOG:  statement: SELECT * FROM tenant\n"
        "2026-07-01 12:00:01 UTC [99] LOG:  statement: SELECT q.name FROM questionnaire q\n"
        "\tJOIN tenant t ON t.tenant_id = q.tenant_id\n"
    )

    def test_junk_between_entries_is_skipped_and_counted(self):
        lines = self.CLEAN.splitlines(True)
        text = lines[0] + JUNK_LINE + lines[1] + lines[2]
        budget = ErrorBudget()
        assert _statements("postgres", text, budget) == _statements(
            "postgres", self.CLEAN
        )
        assert len(budget) == 1
        assert budget.errors[0].code == CODE_LOG_MALFORMED

    def test_junk_inside_a_multiline_statement_only_drops_the_junk(self):
        lines = self.CLEAN.splitlines(True)
        text = lines[0] + lines[1] + JUNK_LINE + lines[2]
        budget = ErrorBudget()
        assert _statements("postgres", text, budget) == _statements(
            "postgres", self.CLEAN
        )
        assert len(budget) == 1


# ----------------------------------------------------------------------
# pg_stat_statements CSV export
# ----------------------------------------------------------------------
class TestPgStatMalformed:
    HEADER = "query,calls,total_exec_time\n"
    CLEAN = (
        HEADER
        + '"SELECT * FROM tenant",10,12.5\n'
        + '"SELECT name FROM questionnaire",3,4.0\n'
    )

    def test_bad_row_is_skipped_and_counted(self):
        text = [
            self.HEADER,
            '"SELECT * FROM tenant",10,12.5\n',
            BAD_CSV_LINE,
            '"SELECT name FROM questionnaire",3,4.0\n',
        ]
        budget = ErrorBudget()
        records = _records("pg_stat_statements", text, budget)
        assert [r.statement for r in records] == [
            "SELECT * FROM tenant",
            "SELECT name FROM questionnaire",
        ]
        assert [r.count for r in records] == [10, 3]
        assert len(budget) == 1
        assert "bad CSV row" in budget.errors[0].message

    def test_wrong_header_stays_fail_fast_even_with_budget(self):
        # A missing query/calls header is a format-level mistake, not one
        # bad line — no budget can absorb it.
        text = "a,b,c\n1,2,3\n"
        with pytest.raises(LogFormatError, match="header"):
            _records("pg_stat_statements", text, ErrorBudget())

    def test_junk_lines_are_cleaned_and_counted(self):
        lines = self.CLEAN.splitlines(True)
        text = lines[0] + JUNK_LINE + lines[1] + lines[2]
        budget = ErrorBudget()
        assert _statements("pg_stat_statements", text, budget) == _statements(
            "pg_stat_statements", self.CLEAN
        )
        assert len(budget) == 1


# ----------------------------------------------------------------------
# mysql general log
# ----------------------------------------------------------------------
class TestMysqlMalformed:
    BANNER = (
        "/usr/sbin/mysqld, Version: 8.0.34 (MySQL Community Server - GPL). started with:\n"
        "Tcp port: 3306  Unix socket: /var/run/mysqld/mysqld.sock\n"
        "Time                 Id Command    Argument\n"
    )
    CLEAN = (
        BANNER
        + "2026-07-01T12:00:00.234567Z\t   42 Query\tSELECT * FROM tenant\n"
        + "2026-07-01T12:00:01.000000Z\t   42 Query\tSELECT q.name FROM questionnaire q\n"
        + "JOIN tenant t ON t.tenant_id = q.tenant_id\n"
    )

    def test_junk_lines_are_skipped_and_counted(self):
        lines = self.CLEAN.splitlines(True)
        text = "".join(lines[:4]) + JUNK_LINE + "".join(lines[4:])
        budget = ErrorBudget()
        assert _statements("mysql", text, budget) == _statements("mysql", self.CLEAN)
        assert len(budget) == 1

    def test_mid_file_header_banner_from_log_rotation(self):
        # Rotation re-emits the three-line banner mid-file; no statements
        # may be lost or invented around it.
        text = self.CLEAN + "\n" + self.BANNER + (
            "2026-07-01T13:00:00.000000Z\t   43 Query\tSELECT 1\n"
        )
        budget = ErrorBudget()
        # The skipped banner may leave a trailing blank continuation line on
        # the statement before it; the statement *text* must be intact.
        degraded = [s.rstrip() for s in _statements("mysql", text, budget)]
        clean = [s.rstrip() for s in _statements("mysql", self.CLEAN)]
        assert degraded == clean + ["SELECT 1"]
        assert len(budget) == 0  # a banner is noise, not an error


# ----------------------------------------------------------------------
# sqlite trace
# ----------------------------------------------------------------------
class TestSqliteTraceMalformed:
    CLEAN = (
        "SELECT * FROM tenant;\n"
        "TRACE: INSERT INTO tenant VALUES (1, 'a')\n"
        "SELECT name FROM questionnaire WHERE name LIKE '%x'\n"
    )

    def test_junk_lines_are_skipped_and_counted(self):
        lines = self.CLEAN.splitlines(True)
        text = lines[0] + JUNK_LINE + lines[1] + JUNK_LINE + lines[2]
        budget = ErrorBudget()
        assert _statements("sqlite-trace", text, budget) == _statements(
            "sqlite-trace", self.CLEAN
        )
        assert len(budget) == 2
        assert [error.line for error in budget] == [2, 4]


# ----------------------------------------------------------------------
# plain SQL
# ----------------------------------------------------------------------
class TestPlainSqlMalformed:
    CLEAN = (
        "SELECT * FROM tenant;\n"
        "SELECT q.name\nFROM questionnaire q\nWHERE q.name LIKE '%x';\n"
    )

    def test_junk_inside_a_multiline_statement_is_dropped_cleanly(self):
        # Junk lands *between* the lines of a multi-line statement; removing
        # it must restore the statement exactly.
        lines = self.CLEAN.splitlines(True)
        text = lines[0] + lines[1] + JUNK_LINE + "".join(lines[2:])
        budget = ErrorBudget()
        assert _statements("sql", text, budget) == _statements("sql", self.CLEAN)
        assert len(budget) == 1

    def test_truncated_final_statement_is_still_yielded(self):
        # A dump cut mid-write loses the final ';' but not the text.
        text = self.CLEAN + "SELECT * FROM tena"
        budget = ErrorBudget()
        statements = _statements("sql", text, budget)
        assert statements[-1] == "SELECT * FROM tena"
        assert len(budget) == 0


# ----------------------------------------------------------------------
# budget exhaustion and strict mode (shared semantics)
# ----------------------------------------------------------------------
class TestBudgetSemantics:
    TEXT = (
        JUNK_LINE
        + "SELECT * FROM tenant;\n"
        + JUNK_LINE
        + JUNK_LINE
        + "SELECT name FROM questionnaire;\n"
    )

    def test_unlimited_budget_records_everything(self):
        budget = ErrorBudget()
        assert _statements("sql", self.TEXT, budget) == [
            "SELECT * FROM tenant;",
            "SELECT name FROM questionnaire;",
        ]
        assert len(budget) == 3

    def test_budget_exhausts_on_error_n_plus_one(self):
        budget = ErrorBudget(max_errors=2)
        with pytest.raises(ErrorBudgetExceeded) as excinfo:
            _statements("sql", self.TEXT, budget)
        # The exception carries everything recorded up to exhaustion.
        assert len(excinfo.value.budget.errors) == 3
        assert excinfo.value.cause_error is budget.errors[-1]
        assert "--max-errors" in str(excinfo.value)

    def test_zero_budget_aborts_on_the_first_error(self):
        with pytest.raises(ErrorBudgetExceeded):
            _statements("sql", self.TEXT, ErrorBudget(max_errors=0))

    def test_strict_mode_reraises_the_first_failure(self):
        with pytest.raises(ValueError, match="binary junk"):
            _statements("sql", self.TEXT, ErrorBudget(strict=True))

    def test_strict_mode_reraises_the_original_csv_error(self):
        text = [BAD_CSV_LINE, _csvlog_row("SELECT 1")]
        with pytest.raises(csv.Error):
            _statements("postgres-csv", text, ErrorBudget(strict=True))


# ----------------------------------------------------------------------
# read_workload_log end-to-end (file → WorkloadLog.errors)
# ----------------------------------------------------------------------
class TestReadWorkloadLogDegraded:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_bytes(text.encode("utf-8", errors="replace"))
        return path

    def test_errors_land_on_the_workload_log(self, tmp_path):
        path = self._write(
            tmp_path, "app.sql", JUNK_LINE + "SELECT * FROM tenant;\n"
        )
        log = read_workload_log(path)
        # WorkloadLog normalizes the trailing ';' away.
        assert log.statements() == ["SELECT * FROM tenant"]
        assert len(log.errors) == 1
        assert log.errors[0].code == CODE_LOG_MALFORMED

    def test_max_errors_aborts_the_read(self, tmp_path):
        path = self._write(
            tmp_path, "app.sql", JUNK_LINE + JUNK_LINE + "SELECT 1;\n"
        )
        with pytest.raises(ErrorBudgetExceeded):
            read_workload_log(path, max_errors=1)

    def test_strict_restores_fail_fast(self, tmp_path):
        path = self._write(tmp_path, "app.sql", JUNK_LINE + "SELECT 1;\n")
        with pytest.raises(ValueError):
            read_workload_log(path, strict=True)

    def test_clean_file_has_no_errors(self, tmp_path):
        path = self._write(tmp_path, "app.sql", "SELECT * FROM tenant;\n")
        log = read_workload_log(path)
        assert log.errors == []


# ----------------------------------------------------------------------
# detect_log_format: undetectable inputs raise structured errors
# ----------------------------------------------------------------------
class TestDetectUndetectable:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "mystery.log"
        path.write_text("")
        with pytest.raises(LogDetectionError, match="empty or"):
            detect_log_format(path)

    def test_whitespace_only_file(self, tmp_path):
        path = tmp_path / "mystery.log"
        path.write_text("  \n\t\n   \n")
        with pytest.raises(LogDetectionError) as excinfo:
            detect_log_format(path)
        assert excinfo.value.code == CODE_LOG_UNDETECTABLE
        assert excinfo.value.probed == LOG_FORMATS

    def test_binary_file(self, tmp_path):
        path = tmp_path / "mystery.log"
        path.write_bytes(b"\x00\x01\x02\xff\xfe junk\n" * 20)
        with pytest.raises(LogDetectionError, match="binary"):
            detect_log_format(path)
        # The error lists every probed format for the "tried these" surface.
        try:
            detect_log_format(path)
        except LogDetectionError as error:
            assert all(fmt in str(error) for fmt in LOG_FORMATS)

    def test_detection_error_is_a_log_format_error(self, tmp_path):
        # Callers that already catch LogFormatError keep working.
        path = tmp_path / "mystery.log"
        path.write_text("")
        with pytest.raises(LogFormatError):
            detect_log_format(path)

    def test_named_extension_still_wins_for_empty_files(self, tmp_path):
        # ".sql" is authoritative: an empty script is a valid (empty) log.
        path = tmp_path / "empty.sql"
        path.write_text("")
        assert detect_log_format(path) == "sql"
