"""Query-log reader tests: all five formats, durations, and auto-detection."""
from __future__ import annotations

import pytest

from repro.ingest import (
    LOG_FORMATS,
    LogFormatError,
    WorkloadLog,
    detect_log_format,
    iter_log_records,
    read_workload_log,
)

CSVLOG = (
    '2026-07-01 12:00:00.000 UTC,"app","appdb",1234,"10.0.0.5:44444",5ef,1,"SELECT",'
    '2026-07-01 11:59:59 UTC,10/100,0,LOG,00000,'
    '"duration: 1.291 ms  statement: SELECT * FROM tenant",,,,,,,,,"psql","client backend",,0\n'
    '2026-07-01 12:00:01.000 UTC,"app","appdb",1234,"10.0.0.5:44444",5ef,2,"SELECT",'
    '2026-07-01 11:59:59 UTC,10/100,0,LOG,00000,'
    '"statement: SELECT * FROM tenant",,,,,,,,,"psql","client backend",,0\n'
    '2026-07-01 12:00:02.000 UTC,"app","appdb",1234,"10.0.0.5:44444",5ef,3,"SELECT",'
    '2026-07-01 11:59:59 UTC,10/100,0,LOG,00000,'
    "\"execute q1: SELECT name FROM questionnaire WHERE name LIKE '%x'\""
    ',,,,,,,,,"psql","client backend",,0\n'
)

STDERR_LOG = (
    "2026-07-01 12:00:00 UTC [99] LOG:  statement: SELECT * FROM tenant\n"
    "2026-07-01 12:00:00 UTC [99] LOG:  duration: 0.532 ms\n"
    "2026-07-01 12:00:01 UTC [99] LOG:  statement: SELECT q.name FROM questionnaire q\n"
    "\tJOIN tenant t ON t.tenant_id = q.tenant_id\n"
    '2026-07-01 12:00:02 UTC [99] ERROR:  relation "missing" does not exist\n'
    "2026-07-01 12:00:02 UTC [99] STATEMENT:  SELECT * FROM missing\n"
)

MYSQL_LOG = (
    "/usr/sbin/mysqld, Version: 8.0.34 (MySQL Community Server - GPL). started with:\n"
    "Tcp port: 3306  Unix socket: /var/run/mysqld/mysqld.sock\n"
    "Time                 Id Command    Argument\n"
    "2026-07-01T12:00:00.123456Z\t   42 Connect\tapp@localhost on appdb\n"
    "2026-07-01T12:00:00.234567Z\t   42 Query\tSELECT * FROM tenant\n"
    "2026-07-01T12:00:01.000000Z\t   42 Query\tSELECT q.name FROM questionnaire q\n"
    "JOIN tenant t ON t.tenant_id = q.tenant_id\n"
    "2026-07-01T12:00:02.000000Z\t   42 Quit\t\n"
)

TRACE_LOG = (
    "-- opened database\n"
    "SELECT * FROM tenant;\n"
    "TRACE: INSERT INTO tenant VALUES (1, 'a')\n"
    "SELECT name FROM questionnaire WHERE name LIKE '%x'\n"
)

PLAIN_SQL = (
    "SELECT * FROM tenant;\n"
    "SELECT q.name\nFROM questionnaire q\nWHERE q.name LIKE '%x';\n"
    "SELECT * FROM tenant"
)


class TestReaders:
    def test_postgres_csvlog_statements_and_durations(self):
        records = list(iter_log_records(CSVLOG.splitlines(True), "postgres-csv"))
        assert [r.statement for r in records] == [
            "SELECT * FROM tenant",
            "SELECT * FROM tenant",
            "SELECT name FROM questionnaire WHERE name LIKE '%x'",
        ]
        assert records[0].duration_ms == pytest.approx(1.291)
        assert records[1].duration_ms is None

    def test_postgres_stderr_duration_attachment_and_continuations(self):
        records = list(iter_log_records(STDERR_LOG.splitlines(True), "postgres"))
        # The ERROR context (STATEMENT:) line must not be counted as a run.
        assert len(records) == 2
        assert records[0].duration_ms == pytest.approx(0.532)
        assert "JOIN tenant t" in records[1].statement

    def test_mysql_general_log_commands_and_continuations(self):
        records = list(iter_log_records(MYSQL_LOG.splitlines(True), "mysql"))
        assert len(records) == 2  # Connect/Quit are not SQL
        assert records[0].statement == "SELECT * FROM tenant"
        assert "JOIN tenant t" in records[1].statement

    def test_sqlite_trace_strips_prefixes_and_comments(self):
        records = list(iter_log_records(TRACE_LOG.splitlines(True), "sqlite-trace"))
        assert [r.statement for r in records] == [
            "SELECT * FROM tenant;",
            "INSERT INTO tenant VALUES (1, 'a')",
            "SELECT name FROM questionnaire WHERE name LIKE '%x'",
        ]

    def test_plain_sql_multiline_statements(self):
        records = list(iter_log_records(PLAIN_SQL.splitlines(True), "sql"))
        assert len(records) == 3
        assert records[1].statement.startswith("SELECT q.name")

    def test_plain_sql_semicolon_inside_multiline_string(self):
        """A ';' ending a line *inside* a string literal must not split the
        statement — the scan path must agree with the offline splitter."""
        from repro.sqlparser import split

        dump = "INSERT INTO t (x) VALUES ('a;\nb');\nSELECT x FROM t;\n"
        records = list(iter_log_records(dump.splitlines(True), "sql"))
        assert [r.statement for r in records] == split(dump)
        assert len(records) == 2
        assert records[0].statement == "INSERT INTO t (x) VALUES ('a;\nb');"

    def test_unknown_format_raises(self):
        with pytest.raises(LogFormatError):
            list(iter_log_records([], "syslog"))


class TestWorkloadFold:
    def test_frequencies_aggregate_across_formats(self):
        log = WorkloadLog.from_records(
            iter_log_records(CSVLOG.splitlines(True), "postgres-csv")
        )
        assert len(log) == 2
        assert log.frequency_of("SELECT * FROM tenant") == 2
        assert log.total_statements == 3
        assert log.total_duration_ms == pytest.approx(1.291)

    def test_fold_is_bounded_by_distinct_statements(self):
        lines = ("SELECT * FROM tenant;\n" * 5000).splitlines(True)
        log = WorkloadLog.from_records(iter_log_records(lines, "sql"))
        assert len(log) == 1
        assert log.frequency_of("SELECT * FROM tenant") == 5000

    def test_slices_preserve_entries(self):
        log = WorkloadLog.from_statements(
            [f"SELECT c{i} FROM t{i}" for i in range(7)]
        )
        pieces = list(log.slices(3))
        assert [len(p) for p in pieces] == [3, 3, 1]
        assert [s for p in pieces for s in p.statements()] == log.statements()

    def test_split_record_duration_is_spread_not_double_counted(self):
        from repro.ingest import LogRecord

        log = WorkloadLog()
        log.add(LogRecord(statement="SELECT a FROM t; SELECT b FROM u", duration_ms=100.0))
        assert len(log) == 2
        assert log.total_duration_ms == pytest.approx(100.0)
        assert log.entry_for("SELECT a FROM t").total_duration_ms == pytest.approx(50.0)

    def test_merge_adds_frequencies(self):
        a = WorkloadLog.from_statements(["SELECT a FROM t", "SELECT b FROM t"])
        b = WorkloadLog.from_statements(["SELECT a FROM t"])
        a.merge(b)
        assert a.frequency_of("SELECT a FROM t") == 2
        assert a.total_statements == 3


class TestDetection:
    def test_by_extension(self, tmp_path):
        assert detect_log_format(tmp_path / "x.csv") == "postgres-csv"
        assert detect_log_format(tmp_path / "x.sql") == "sql"

    def test_by_content(self, tmp_path):
        assert detect_log_format(tmp_path / "pg.log", STDERR_LOG) == "postgres"
        assert detect_log_format(tmp_path / "my.log", MYSQL_LOG) == "mysql"
        assert detect_log_format(tmp_path / "other.log", "SELECT 1;") == "sql"

    def test_statement_per_line_log_detects_as_trace(self, tmp_path):
        """sqlite3_trace_v2 output — one statement per line, no ';' — must
        not fall through to 'sql', which would fold the whole file into one
        bogus statement."""
        trace = "SELECT a FROM t\nINSERT INTO t VALUES (1)\nSELECT b FROM u\n"
        assert detect_log_format(tmp_path / "app.log", trace) == "sqlite-trace"
        assert detect_log_format(tmp_path / "app.trace") == "sqlite-trace"
        # Terminated multi-line scripts still read as plain SQL.
        script = "SELECT a\nFROM t;\nINSERT INTO t VALUES (1);\n"
        assert detect_log_format(tmp_path / "app.log", script) == "sql"

    def test_read_workload_log_autodetects(self, tmp_path):
        path = tmp_path / "server.log"
        path.write_text(STDERR_LOG, encoding="utf-8")
        log = read_workload_log(path)
        assert log.log_format == "postgres"
        assert log.source == str(path)
        assert log.frequency_of("SELECT * FROM tenant") == 1

    def test_all_advertised_formats_have_readers(self):
        for fmt in LOG_FORMATS:
            assert list(iter_log_records([], fmt)) == []


PG_STAT_CSV = """query,calls,total_exec_time,mean_exec_time
"SELECT * FROM tenant",40,4000.0,100.0
"SELECT name FROM questionnaire WHERE name LIKE '%x'",3,3.0,1.0
"<insufficient privilege>",9,9.0,1.0
"""

PG_STAT_CSV_PG12 = """query,calls,mean_time
"SELECT * FROM tenant",40,100.0
"""


class TestPgStatStatements:
    def test_rows_fold_pre_aggregated(self):
        from repro.ingest import read_pg_stat_statements

        log = WorkloadLog.from_records(
            read_pg_stat_statements(PG_STAT_CSV.splitlines(True))
        )
        entries = {e.statement: e for e in log}
        hot = entries["SELECT * FROM tenant"]
        assert hot.frequency == 40
        assert hot.total_duration_ms == 4000.0
        assert hot.mean_duration_ms == 100.0
        assert len(log) == 2  # the privilege-masked row is dropped

    def test_pg12_mean_time_column(self):
        from repro.ingest import read_pg_stat_statements

        log = WorkloadLog.from_records(
            read_pg_stat_statements(PG_STAT_CSV_PG12.splitlines(True))
        )
        entry = log.entries()[0]
        assert entry.frequency == 40
        assert entry.total_duration_ms == pytest.approx(4000.0)

    def test_missing_columns_raise(self):
        from repro.ingest import LogFormatError, read_pg_stat_statements

        with pytest.raises(LogFormatError, match="query"):
            list(read_pg_stat_statements(["a,b\n", "1,2\n"]))

    def test_detected_from_csv_header(self, tmp_path):
        path = tmp_path / "snapshot.csv"
        path.write_text(PG_STAT_CSV, encoding="utf-8")
        assert detect_log_format(path) == "pg_stat_statements"
        log = read_workload_log(path)
        assert log.log_format == "pg_stat_statements"
        assert log.frequency_of("SELECT * FROM tenant") == 40

    def test_plain_csvlog_still_detects_as_postgres_csv(self, tmp_path):
        path = tmp_path / "server.csv"
        path.write_text(
            '2026-07-01 12:00:00.000 UTC,"app","appdb",77,"10.0.0.9:5000",'
            'abc,1,"SELECT",2026-07-01 11:00:00 UTC,9/9,0,LOG,00000,'
            '"statement: SELECT 1",,,,,,,,,"psql","client backend",,0\n',
            encoding="utf-8",
        )
        assert detect_log_format(path) == "postgres-csv"

    def test_table_reader_from_sqlite_snapshot(self, tmp_path):
        import sqlite3

        from repro.ingest import read_pg_stat_table

        path = tmp_path / "snapshot.db"
        connection = sqlite3.connect(str(path))
        connection.execute(
            "CREATE TABLE pg_stat_statements "
            "(query TEXT, calls INTEGER, total_exec_time REAL, mean_exec_time REAL)"
        )
        connection.execute(
            "INSERT INTO pg_stat_statements VALUES "
            "('SELECT * FROM tenant', 40, 4000.0, 100.0)"
        )
        connection.commit()
        connection.close()
        log = read_pg_stat_table(str(path))
        assert log.log_format == "pg_stat_statements"
        entry = log.entries()[0]
        assert (entry.frequency, entry.mean_duration_ms) == (40, 100.0)

    def test_table_reader_missing_table_is_a_connector_error(self, tmp_path):
        import sqlite3

        from repro.ingest import ConnectorError, read_pg_stat_table

        path = tmp_path / "empty.db"
        sqlite3.connect(str(path)).close()
        with pytest.raises(ConnectorError):
            read_pg_stat_table(str(path))

    def test_aggregated_record_count_folds_into_frequency(self):
        from repro.ingest import LogRecord

        log = WorkloadLog()
        log.add(LogRecord(statement="SELECT 1", count=5, duration_ms=50.0))
        log.add(LogRecord(statement="SELECT 1", count=2, duration_ms=4.0))
        entry = log.entries()[0]
        assert entry.frequency == 7
        assert entry.total_duration_ms == 54.0
        assert entry.mean_duration_ms == pytest.approx(54.0 / 7)
