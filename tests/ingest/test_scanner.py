"""Workload-weighted scanning tests: frequencies, streaming, end-to-end."""
from __future__ import annotations

import pytest

from repro.core.sqlcheck import SQLCheck
from repro.engine.database import Database
from repro.ingest import (
    ConnectorError,
    LiveScanner,
    WorkloadLog,
    assign_frequencies,
    scan,
    stream_scan,
)
from repro.model.antipatterns import AntiPattern
from repro.ranking.ranker import APRanker

DDL = [
    "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, label VARCHAR(40) NOT NULL)",
    "CREATE TABLE questionnaire (q_id INTEGER PRIMARY KEY, tenant_id INTEGER, "
    "name VARCHAR(30))",
]

HOT_WILDCARD = "SELECT * FROM tenant"
JOIN_NO_FK = (
    "SELECT q.name FROM questionnaire q JOIN tenant t ON t.tenant_id = q.tenant_id"
)
PATTERN = "SELECT name FROM questionnaire WHERE name LIKE '%x'"


def _engine() -> Database:
    database = Database()
    for statement in DDL:
        database.execute(statement)
    database.insert_rows("tenant", [{"tenant_id": i, "label": f"t{i}"} for i in range(20)])
    database.insert_rows(
        "questionnaire",
        [{"q_id": i, "tenant_id": i % 20, "name": f"q{i}"} for i in range(40)],
    )
    return database


class TestFrequencyWeighting:
    def test_weight_is_logarithmic_and_neutral_at_one(self):
        assert APRanker.frequency_weight(None) == 1.0
        assert APRanker.frequency_weight(1) == 1.0
        assert APRanker.frequency_weight(2) == pytest.approx(2.0)
        assert APRanker.frequency_weight(1024) == pytest.approx(11.0)

    def test_hot_statement_outranks_with_real_frequencies(self):
        database = _engine()
        flat = scan(database, [HOT_WILDCARD, JOIN_NO_FK, PATTERN], source="app")
        hot = scan(
            database,
            WorkloadLog.from_statements([HOT_WILDCARD] * 64 + [JOIN_NO_FK, PATTERN]),
            source="app",
        )
        flat_order = [e.anti_pattern for e in flat]
        hot_order = [e.anti_pattern for e in hot]
        assert flat_order[0] != AntiPattern.COLUMN_WILDCARD
        assert hot_order[0] == AntiPattern.COLUMN_WILDCARD
        # Same findings, different order: frequencies weight, never filter.
        assert sorted(d.value for d in flat_order) == sorted(d.value for d in hot_order)

    def test_assign_frequencies_matches_whitespace_insensitively(self):
        toolchain = SQLCheck()
        context = toolchain._builder.build(["SELECT  *  FROM   tenant"])
        log = WorkloadLog.from_statements([HOT_WILDCARD] * 3)
        assign_frequencies(context, log)
        assert context.frequencies == {0: 3}
        assert context.frequency_of(0) == 3
        assert context.frequency_of(99) == 1

    def test_assign_frequencies_carries_durations(self):
        from repro.ingest import LogRecord

        toolchain = SQLCheck()
        context = toolchain._builder.build([HOT_WILDCARD, PATTERN])
        log = WorkloadLog.from_records([
            LogRecord(statement=HOT_WILDCARD, duration_ms=30.0),
            LogRecord(statement=HOT_WILDCARD, duration_ms=50.0),
            LogRecord(statement=PATTERN),  # no timing in the log line
        ])
        assign_frequencies(context, log)
        assert context.frequencies == {0: 2}
        assert context.durations == {0: pytest.approx(40.0)}
        assert context.duration_of(0) == pytest.approx(40.0)
        assert context.duration_of(1) is None
        assert context.duration_of(None) is None


class TestScan:
    def test_scan_needs_some_input(self):
        with pytest.raises(ConnectorError):
            scan()

    def test_database_only_scan_runs_data_rules(self):
        database = Database()
        database.execute(
            "CREATE TABLE readings (amount FLOAT, note VARCHAR(10))"
        )
        database.insert_rows(
            "readings", [{"amount": i / 10, "note": f"n{i}"} for i in range(30)]
        )
        report = scan(database)
        assert report.queries_analyzed == 0
        assert report.tables_analyzed == 1
        detected = {e.anti_pattern for e in report}
        assert AntiPattern.NO_PRIMARY_KEY in detected

    def test_log_only_scan(self):
        report = scan(workload=WorkloadLog.from_statements([HOT_WILDCARD]))
        assert {e.anti_pattern for e in report} == {AntiPattern.COLUMN_WILDCARD}

    def test_stats_accounting_holds(self):
        report = scan(_engine(), [HOT_WILDCARD, PATTERN], source="app")
        stats = report.stats
        assert stats is not None
        assert stats.total_seconds >= stats.stage_seconds_sum() * 0.9

    def test_scanner_reuse_keeps_results_identical(self):
        scanner = LiveScanner()
        first = scanner.scan(_engine(), [HOT_WILDCARD, JOIN_NO_FK], source="app")
        second = scanner.scan(_engine(), [HOT_WILDCARD, JOIN_NO_FK], source="app")
        assert [d.detection.to_dict() for d in first] == [
            d.detection.to_dict() for d in second
        ]


class TestStreaming:
    def test_stream_is_chunked_and_complete(self):
        statements = [f"SELECT * FROM table_{i}" for i in range(10)]
        reports = list(stream_scan(statements, chunk_size=3))
        assert len(reports) == 4
        assert sum(r.queries_analyzed for r in reports) == 10
        assert sum(len(r) for r in reports) == 10  # one wildcard each

    def test_stream_frequencies_are_chunk_local(self):
        log = WorkloadLog.from_statements([HOT_WILDCARD] * 8 + [PATTERN])
        reports = list(stream_scan(log, chunk_size=1))
        assert len(reports) == 2
        wildcard = reports[0].detections[0]
        assert wildcard.score > APRanker().score_detection(wildcard.detection)

    def test_stream_detect_uses_batch_pipeline(self):
        scanner = LiveScanner()
        chunks = list(
            scanner.stream_detect(
                [f"SELECT * FROM t{i}" for i in range(6)], chunk_size=2
            )
        )
        assert len(chunks) == 3
        for report, stats in chunks:
            assert stats.statements == 2
            assert len(report.detections) == 2
