"""Connector fault isolation: retry/backoff policy and circuit breaker.

Every guarded source operation (schema introspection, row fetch, count)
runs under a bounded exponential-backoff :class:`RetryPolicy` and a
per-scan :class:`CircuitBreaker`.  These tests pin the policy arithmetic,
the retry loop's semantics (only :class:`ConnectorError` retries; a bug
propagates raw), and the breaker's trip/close lifecycle.
"""
from __future__ import annotations

import pytest

from repro.ingest import (
    CircuitBreaker,
    CircuitOpenError,
    Connector,
    ConnectorError,
    RetryPolicy,
)
from repro.ingest.connectors import DEFAULT_RETRY_POLICY, NO_RETRY

#: Zero-delay policy so retry tests spend no wall-clock sleeping.
FAST = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0)


class ScriptedConnector(Connector):
    """Raises the scripted errors in order, then returns rows forever."""

    retry_policy = FAST

    def __init__(self, *errors):
        self.errors = list(errors)
        self.calls = 0

    def table_rows(self, table, limit=None):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return [{"id": 1}]

    def introspect_schema(self):  # pragma: no cover - unused here
        raise NotImplementedError

    def table_row_count(self, table):
        return len(self.table_rows(table))

    def close(self):
        pass


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(attempts=5, base_delay=0.05, max_delay=0.15)
        assert [policy.delay(n) for n in range(4)] == [0.05, 0.1, 0.15, 0.15]

    def test_defaults_are_bounded(self):
        # Worst-case extra latency per operation stays well under a second.
        policy = DEFAULT_RETRY_POLICY
        worst = sum(policy.delay(n) for n in range(policy.attempts - 1))
        assert worst < 1.0

    def test_no_retry_is_a_single_attempt(self):
        assert NO_RETRY.attempts == 1


class TestGuardedRetries:
    def test_transient_failure_recovers_within_the_policy(self):
        connector = ScriptedConnector(ConnectorError("blip"), ConnectorError("blip"))
        assert connector.fetch_rows("t") == [{"id": 1}]
        assert connector.calls == 3  # two failures + the success
        assert not connector.circuit.is_open
        assert connector.circuit.failures == 0  # success closed the window

    def test_exhausted_retries_raise_the_last_error(self):
        errors = [ConnectorError(f"down {n}") for n in range(3)]
        connector = ScriptedConnector(*errors)
        with pytest.raises(ConnectorError, match="down 2"):
            connector.fetch_rows("t")
        assert connector.calls == 3
        # One exhausted operation = one breaker failure, not one per attempt.
        assert connector.circuit.failures == 1

    def test_non_connector_errors_propagate_immediately(self):
        # A bug (TypeError, KeyError, …) must not be retried as if the
        # source were flaky — it would run three times and hide the stack.
        connector = ScriptedConnector(TypeError("bug"))
        with pytest.raises(TypeError):
            connector.fetch_rows("t")
        assert connector.calls == 1

    def test_fetch_row_count_is_guarded_too(self):
        connector = ScriptedConnector(ConnectorError("blip"))
        assert connector.fetch_row_count("t") == 1
        assert connector.calls == 2


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        assert not breaker.is_open
        breaker.record_failure()
        assert breaker.is_open

    def test_one_success_closes_the_window(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.is_open

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)

    def test_open_circuit_refuses_without_touching_the_source(self):
        connector = ScriptedConnector()
        connector._circuit = CircuitBreaker(threshold=1)
        connector.circuit.record_failure()
        with pytest.raises(CircuitOpenError):
            connector.fetch_rows("t")
        assert connector.calls == 0  # never reached the source

    def test_exhaustion_trips_then_reset_circuit_recovers(self):
        # threshold=1: one exhausted fetch opens the breaker; the per-scan
        # reset (LiveScanner calls reset_circuit at scan start) closes it.
        connector = ScriptedConnector(*[ConnectorError("down")] * 3)
        connector._circuit = CircuitBreaker(threshold=1)
        with pytest.raises(ConnectorError):
            connector.fetch_rows("t")
        with pytest.raises(CircuitOpenError):
            connector.fetch_rows("t")
        connector.reset_circuit()
        assert connector.fetch_rows("t") == [{"id": 1}]

    def test_circuit_open_error_is_a_connector_error(self):
        # Callers that degrade on ConnectorError degrade on an open
        # breaker the same way.
        assert issubclass(CircuitOpenError, ConnectorError)


class TestBackoffSleeps:
    def test_guarded_sleeps_per_policy_between_attempts(self, monkeypatch):
        from repro.ingest import connectors as connectors_module

        slept = []
        monkeypatch.setattr(connectors_module.time, "sleep", slept.append)

        class Timed(ScriptedConnector):
            retry_policy = RetryPolicy(attempts=3, base_delay=0.05, max_delay=2.0)

        connector = Timed(*[ConnectorError("down")] * 3)
        with pytest.raises(ConnectorError):
            connector.fetch_rows("t")
        # Two sleeps between three attempts: base, then doubled.
        assert slept == [pytest.approx(0.05), pytest.approx(0.1)]

    def test_no_sleep_after_the_final_attempt(self, monkeypatch):
        from repro.ingest import connectors as connectors_module

        slept = []
        monkeypatch.setattr(connectors_module.time, "sleep", slept.append)
        connector = ScriptedConnector(ConnectorError("down"))
        connector.retry_policy = RetryPolicy(attempts=1, base_delay=0.05)
        with pytest.raises(ConnectorError):
            connector.fetch_rows("t")
        assert slept == []
