"""Row storage, secondary indexes, and constraint enforcement.

This is the storage half of the PostgreSQL stand-in used by the performance
experiments.  The cost mechanisms the paper's Figure 3 / Figure 8 rely on are
modelled directly:

* secondary indexes are hash maps from key to row ids — equality lookups are
  O(matching rows), full scans are O(table size);
* every INSERT / UPDATE / DELETE maintains **all** indexes on the table, so
  each extra index adds real work (Index Overuse);
* PRIMARY KEY / FOREIGN KEY / CHECK constraints are validated on write, and
  re-validated over the whole table when a constraint is added back by
  ``ALTER TABLE`` (Enumerated Types fix experiment).
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from ..catalog.schema import CheckConstraint, Column, ForeignKey, Index, Table
from . import values as V
from .expressions import ExpressionError, parse_expression


class IntegrityError(Exception):
    """Raised when a write violates a PRIMARY KEY / FOREIGN KEY / CHECK constraint."""


class SecondaryIndex:
    """A hash index mapping a column-value tuple to the set of row ids."""

    def __init__(self, definition: Index):
        self.definition = definition
        self.columns = tuple(definition.columns)
        self.unique = definition.unique
        self._buckets: dict[tuple, set[int]] = {}

    def key_for(self, row: dict[str, Any]) -> tuple:
        return tuple(_normalise_key(row.get(self._actual_column(row, c))) for c in self.columns)

    def _actual_column(self, row: dict[str, Any], column: str) -> str:
        if column in row:
            return column
        lowered = column.lower()
        for key in row:
            if key.lower() == lowered:
                return key
        return column

    def add(self, row_id: int, row: dict[str, Any]) -> None:
        key = self.key_for(row)
        bucket = self._buckets.setdefault(key, set())
        if self.unique and bucket and not all(v is None for v in key):
            raise IntegrityError(
                f"unique index {self.definition.name} violated for key {key!r}"
            )
        bucket.add(row_id)

    def remove(self, row_id: int, row: dict[str, Any]) -> None:
        key = self.key_for(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key_values: Iterable[Any]) -> set[int]:
        key = tuple(_normalise_key(v) for v in key_values)
        return set(self._buckets.get(key, set()))

    def lookup_leading(self, value: Any) -> set[int]:
        """Lookup by the leading column only (used for single-column probes
        against multi-column indexes)."""
        if len(self.columns) == 1:
            return self.lookup((value,))
        target = _normalise_key(value)
        result: set[int] = set()
        for key, bucket in self._buckets.items():
            if key and key[0] == target:
                result |= bucket
        return result

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


def _normalise_key(value: Any) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        return value
    return value


@dataclass
class StoredTable:
    """A heap of rows plus its schema definition and secondary indexes."""

    definition: Table
    rows: dict[int, dict[str, Any]] = field(default_factory=dict)
    indexes: dict[str, SecondaryIndex] = field(default_factory=dict)
    _next_row_id: int = 0

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def column_names(self) -> list[str]:
        return self.definition.column_names

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def create_index(self, definition: Index) -> SecondaryIndex:
        index = SecondaryIndex(definition)
        for row_id, row in self.rows.items():
            index.add(row_id, row)
        self.indexes[definition.name.lower()] = index
        self.definition.add_index(definition)
        return index

    def drop_index(self, name: str) -> None:
        self.indexes.pop(name.lower(), None)
        self.definition.indexes.pop(name.lower(), None)

    def index_on(self, column: str) -> SecondaryIndex | None:
        """An index whose leading column is ``column`` (PK index included)."""
        target = column.lower()
        for index in self.indexes.values():
            if index.columns and index.columns[0].lower() == target:
                return index
        return None

    # ------------------------------------------------------------------
    # row operations
    # ------------------------------------------------------------------
    def insert(self, row: dict[str, Any], *, database: "Database | None" = None) -> int:
        """Insert a row (validating constraints), returning its row id."""
        stored = self._coerce_row(row)
        self._check_not_null(stored)
        self._check_primary_key(stored, exclude_row_id=None)
        self._check_checks(stored)
        if database is not None:
            self._check_foreign_keys(stored, database)
        row_id = self._next_row_id
        self._next_row_id += 1
        self.rows[row_id] = stored
        for index in self.indexes.values():
            index.add(row_id, stored)
        return row_id

    def update_row(
        self, row_id: int, changes: dict[str, Any], *, database: "Database | None" = None
    ) -> None:
        old = self.rows[row_id]
        new = dict(old)
        for column, value in changes.items():
            actual = self._actual_column_name(column)
            definition = self.definition.get_column(column)
            new[actual] = V.coerce(value, definition.sql_type) if definition else value
        self._check_not_null(new)
        self._check_primary_key(new, exclude_row_id=row_id)
        self._check_checks(new)
        if database is not None:
            self._check_foreign_keys(new, database)
        for index in self.indexes.values():
            index.remove(row_id, old)
            index.add(row_id, new)
        self.rows[row_id] = new

    def delete_row(self, row_id: int) -> None:
        row = self.rows.pop(row_id)
        for index in self.indexes.values():
            index.remove(row_id, row)

    def scan(self) -> Iterator[tuple[int, dict[str, Any]]]:
        yield from self.rows.items()

    def all_rows(self) -> list[dict[str, Any]]:
        return list(self.rows.values())

    # ------------------------------------------------------------------
    # constraint validation
    # ------------------------------------------------------------------
    def validate_all_rows(self) -> int:
        """Re-validate every row against CHECK constraints (used when a
        constraint is added via ALTER TABLE).  Returns rows validated."""
        validated = 0
        for row in self.rows.values():
            self._check_checks(row)
            validated += 1
        return validated

    def _coerce_row(self, row: dict[str, Any]) -> dict[str, Any]:
        stored: dict[str, Any] = {}
        for column in self.definition.columns.values():
            provided_key = self._provided_key(row, column.name)
            if provided_key is not None:
                stored[column.name] = V.coerce(row[provided_key], column.sql_type)
            elif column.default is not None:
                stored[column.name] = V.coerce(column.default.strip("'\""), column.sql_type)
            else:
                stored[column.name] = None
        # preserve any extra keys verbatim (schema-less inserts in tests)
        known = {c.lower() for c in stored}
        for key, value in row.items():
            if key.lower() not in known:
                stored[key] = value
        return stored

    def _provided_key(self, row: dict[str, Any], column: str) -> str | None:
        if column in row:
            return column
        lowered = column.lower()
        for key in row:
            if key.lower() == lowered:
                return key
        return None

    def _actual_column_name(self, column: str) -> str:
        definition = self.definition.get_column(column)
        return definition.name if definition is not None else column

    def _check_not_null(self, row: dict[str, Any]) -> None:
        for column in self.definition.columns.values():
            if not column.nullable and V.is_null(row.get(column.name)):
                raise IntegrityError(f"column {self.name}.{column.name} may not be NULL")

    def _check_primary_key(self, row: dict[str, Any], exclude_row_id: int | None) -> None:
        pk = self.definition.primary_key_columns
        if not pk:
            return
        key = tuple(_normalise_key(row.get(self._actual_column_name(c))) for c in pk)
        if all(v is None for v in key):
            raise IntegrityError(f"primary key of {self.name} may not be NULL")
        index = self.index_on(pk[0])
        if index is not None and tuple(c.lower() for c in index.columns) == tuple(c.lower() for c in pk):
            matches = index.lookup(key) - ({exclude_row_id} if exclude_row_id is not None else set())
            if matches:
                raise IntegrityError(f"duplicate primary key {key!r} in {self.name}")
            return
        for row_id, existing in self.rows.items():
            if row_id == exclude_row_id:
                continue
            existing_key = tuple(
                _normalise_key(existing.get(self._actual_column_name(c))) for c in pk
            )
            if existing_key == key:
                raise IntegrityError(f"duplicate primary key {key!r} in {self.name}")

    def _check_checks(self, row: dict[str, Any]) -> None:
        for column in self.definition.columns.values():
            if column.check_values:
                value = row.get(column.name)
                if value is not None and str(value) not in column.check_values:
                    raise IntegrityError(
                        f"CHECK constraint on {self.name}.{column.name} rejects {value!r}"
                    )
            if column.sql_type.is_enum and column.sql_type.enum_values:
                value = row.get(column.name)
                if value is not None and str(value) not in column.sql_type.enum_values:
                    raise IntegrityError(
                        f"ENUM column {self.name}.{column.name} rejects {value!r}"
                    )
        for check in self.definition.checks:
            if check.in_values and check.column:
                value = row.get(self._actual_column_name(check.column))
                if value is not None and str(value) not in check.in_values:
                    raise IntegrityError(
                        f"CHECK constraint {check.name or check.expression} rejects {value!r}"
                    )

    def _check_foreign_keys(self, row: dict[str, Any], database: "Database") -> None:
        for fk in self.definition.all_foreign_keys():
            referenced = database.get_table(fk.referenced_table)
            if referenced is None:
                continue
            values = [row.get(self._actual_column_name(c)) for c in fk.columns]
            if any(V.is_null(v) for v in values):
                continue
            ref_columns = fk.referenced_columns or referenced.definition.primary_key_columns
            if not ref_columns:
                continue
            index = referenced.index_on(ref_columns[0])
            if index is not None and len(ref_columns) == len(fk.columns):
                if index.lookup(values):
                    continue
            found = False
            for existing in referenced.rows.values():
                if all(
                    V.equals(existing.get(referenced._actual_column_name(rc)), v) is True
                    for rc, v in zip(ref_columns, values)
                ):
                    found = True
                    break
            if not found:
                raise IntegrityError(
                    f"foreign key violation: {self.name}({', '.join(fk.columns)}) -> "
                    f"{fk.referenced_table}({', '.join(ref_columns)}) value {values!r}"
                )
