"""Expression parsing and evaluation for the in-memory engine.

A small recursive-descent parser turns the token run of a WHERE / ON / SET
clause into an expression tree; the evaluator then computes the expression
against a row (a mapping from column name — optionally qualified — to value).

The grammar covers the subset the evaluation workloads need:

    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := concat ( (=|!=|<>|<|>|<=|>=) concat
                          | [NOT] LIKE concat | [NOT] ILIKE concat
                          | REGEXP concat | [NOT] IN ( list )
                          | IS [NOT] NULL | [NOT] BETWEEN concat AND concat )?
    concat      := additive (|| additive)*
    additive    := term ((+|-) term)*
    term        := factor ((*|/|%) factor)*
    factor      := literal | column | function(args) | ( expr ) | - factor
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..sqlparser import Token, TokenType, tokenize
from . import values as V

Row = Mapping[str, Any]


class ExpressionError(ValueError):
    """Raised when an expression cannot be parsed or evaluated."""


# ----------------------------------------------------------------------
# expression tree
# ----------------------------------------------------------------------
class Expression:
    """Base class for expression-tree nodes."""

    def evaluate(self, row: Row) -> Any:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names (qualified where written) of the columns the expression reads."""
        return set()


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def evaluate(self, row: Row) -> Any:
        return self.value


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str
    qualifier: str | None = None

    @property
    def key(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def evaluate(self, row: Row) -> Any:
        # Try the qualified key, then the bare name, then a case-insensitive
        # scan (the engine stores column names in their declared case).
        if self.qualifier:
            qualified = f"{self.qualifier}.{self.name}"
            if qualified in row:
                return row[qualified]
            lowered = qualified.lower()
            for key, value in row.items():
                if key.lower() == lowered:
                    return value
        if self.name in row:
            return row[self.name]
        lowered = self.name.lower()
        for key, value in row.items():
            if key.lower() == lowered or key.lower().endswith("." + lowered):
                return value
        raise ExpressionError(f"unknown column: {self.key}")

    def columns(self) -> set[str]:
        return {self.key}


@dataclass(frozen=True)
class BinaryOp(Expression):
    operator: str
    left: Expression
    right: Expression

    def evaluate(self, row: Row) -> Any:
        op = self.operator
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if op in ("=", "==", "<=>"):
            return V.equals(left, right)
        if op in ("!=", "<>"):
            eq = V.equals(left, right)
            return None if eq is None else not eq
        if op in ("<", ">", "<=", ">="):
            cmp = V.compare(left, right)
            if cmp is None:
                return None
            return {"<": cmp < 0, ">": cmp > 0, "<=": cmp <= 0, ">=": cmp >= 0}[op]
        if op == "||":
            return V.concat(left, right)
        if op in ("+", "-", "*", "/", "%"):
            if V.is_null(left) or V.is_null(right):
                return None
            left_num, right_num = float(left), float(right)
            if op == "+":
                result = left_num + right_num
            elif op == "-":
                result = left_num - right_num
            elif op == "*":
                result = left_num * right_num
            elif op == "/":
                if right_num == 0:
                    return None
                result = left_num / right_num
            else:
                if right_num == 0:
                    return None
                result = left_num % right_num
            if isinstance(left, int) and isinstance(right, int) and op != "/":
                return int(result)
            return result
        raise ExpressionError(f"unsupported operator: {op}")

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class LikeOp(Expression):
    left: Expression
    pattern: Expression
    negate: bool = False
    case_insensitive: bool = False
    regexp: bool = False

    def evaluate(self, row: Row) -> Any:
        value = self.left.evaluate(row)
        pattern = self.pattern.evaluate(row)
        if self.regexp:
            matched = V.regexp_match(value, pattern)
        else:
            matched = V.like_match(value, pattern, case_insensitive=self.case_insensitive)
        if matched is None:
            return None
        return (not matched) if self.negate else matched

    def columns(self) -> set[str]:
        return self.left.columns() | self.pattern.columns()


@dataclass(frozen=True)
class InOp(Expression):
    left: Expression
    options: tuple[Expression, ...]
    negate: bool = False

    def evaluate(self, row: Row) -> Any:
        value = self.left.evaluate(row)
        if V.is_null(value):
            return None
        found = False
        saw_null = False
        for option in self.options:
            candidate = option.evaluate(row)
            eq = V.equals(value, candidate)
            if eq is None:
                saw_null = True
            elif eq:
                found = True
                break
        if found:
            return not self.negate
        if saw_null:
            return None
        return self.negate

    def columns(self) -> set[str]:
        cols = self.left.columns()
        for option in self.options:
            cols |= option.columns()
        return cols


@dataclass(frozen=True)
class BetweenOp(Expression):
    left: Expression
    low: Expression
    high: Expression
    negate: bool = False

    def evaluate(self, row: Row) -> Any:
        value = self.left.evaluate(row)
        low = self.low.evaluate(row)
        high = self.high.evaluate(row)
        low_cmp = V.compare(value, low)
        high_cmp = V.compare(value, high)
        if low_cmp is None or high_cmp is None:
            return None
        inside = low_cmp >= 0 and high_cmp <= 0
        return (not inside) if self.negate else inside

    def columns(self) -> set[str]:
        return self.left.columns() | self.low.columns() | self.high.columns()


@dataclass(frozen=True)
class IsNullOp(Expression):
    left: Expression
    negate: bool = False

    def evaluate(self, row: Row) -> Any:
        null = V.is_null(self.left.evaluate(row))
        return (not null) if self.negate else null

    def columns(self) -> set[str]:
        return self.left.columns()


@dataclass(frozen=True)
class LogicalOp(Expression):
    operator: str  # AND / OR
    operands: tuple[Expression, ...]

    def evaluate(self, row: Row) -> Any:
        results = [operand.evaluate(row) for operand in self.operands]
        booleans = [None if r is None else bool(r) for r in results]
        if self.operator == "AND":
            if any(b is False for b in booleans):
                return False
            if any(b is None for b in booleans):
                return None
            return True
        if any(b is True for b in booleans):
            return True
        if any(b is None for b in booleans):
            return None
        return False

    def columns(self) -> set[str]:
        cols: set[str] = set()
        for operand in self.operands:
            cols |= operand.columns()
        return cols


@dataclass(frozen=True)
class NotOp(Expression):
    operand: Expression

    def evaluate(self, row: Row) -> Any:
        result = self.operand.evaluate(row)
        return None if result is None else not bool(result)

    def columns(self) -> set[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str
    arguments: tuple[Expression, ...]

    def evaluate(self, row: Row) -> Any:
        handler = _SCALAR_FUNCTIONS.get(self.name)
        if handler is None:
            raise ExpressionError(f"unsupported function: {self.name}")
        return handler([arg.evaluate(row) for arg in self.arguments])

    def columns(self) -> set[str]:
        cols: set[str] = set()
        for argument in self.arguments:
            cols |= argument.columns()
        return cols


def _fn_replace(args: Sequence[Any]) -> Any:
    if len(args) != 3 or any(V.is_null(a) for a in args):
        return None
    return str(args[0]).replace(str(args[1]), str(args[2]))


def _fn_concat(args: Sequence[Any]) -> Any:
    # MySQL-style CONCAT: NULL if any argument is NULL.
    return V.concat(*args)


def _fn_coalesce(args: Sequence[Any]) -> Any:
    for arg in args:
        if not V.is_null(arg):
            return arg
    return None

def _fn_length(args: Sequence[Any]) -> Any:
    if not args or V.is_null(args[0]):
        return None
    return len(str(args[0]))


def _fn_lower(args: Sequence[Any]) -> Any:
    if not args or V.is_null(args[0]):
        return None
    return str(args[0]).lower()


def _fn_upper(args: Sequence[Any]) -> Any:
    if not args or V.is_null(args[0]):
        return None
    return str(args[0]).upper()


def _fn_abs(args: Sequence[Any]) -> Any:
    if not args or V.is_null(args[0]):
        return None
    return abs(float(args[0]))


def _fn_round(args: Sequence[Any]) -> Any:
    if not args or V.is_null(args[0]):
        return None
    digits = int(args[1]) if len(args) > 1 and not V.is_null(args[1]) else 0
    return round(float(args[0]), digits)


def _fn_substr(args: Sequence[Any]) -> Any:
    if len(args) < 2 or V.is_null(args[0]):
        return None
    text = str(args[0])
    start = max(0, int(args[1]) - 1)
    if len(args) > 2:
        return text[start : start + int(args[2])]
    return text[start:]


_SCALAR_FUNCTIONS: dict[str, Callable[[Sequence[Any]], Any]] = {
    "REPLACE": _fn_replace,
    "CONCAT": _fn_concat,
    "CONCAT_WS": lambda args: None if any(V.is_null(a) for a in args[:1]) else str(args[0]).join(
        str(a) for a in args[1:] if not V.is_null(a)
    ),
    "COALESCE": _fn_coalesce,
    "IFNULL": _fn_coalesce,
    "NVL": _fn_coalesce,
    "LENGTH": _fn_length,
    "LOWER": _fn_lower,
    "UPPER": _fn_upper,
    "ABS": _fn_abs,
    "ROUND": _fn_round,
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
}


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
class ExpressionParser:
    """Recursive-descent parser over meaningful SQL tokens."""

    def __init__(self, tokens: Sequence[Token]):
        self._tokens = [t for t in tokens if not t.is_whitespace and not t.is_comment]
        self._pos = 0

    # -- token helpers -----------------------------------------------------
    def _peek(self) -> Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _match_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        if token is not None and token.is_keyword and token.normalized in keywords:
            self._advance()
            return True
        return False

    def _expect(self, value: str) -> None:
        token = self._peek()
        if token is None or token.value != value:
            raise ExpressionError(f"expected {value!r} at position {self._pos}")
        self._advance()

    # -- grammar -----------------------------------------------------------
    def parse(self) -> Expression:
        expression = self._or_expr()
        return expression

    def _or_expr(self) -> Expression:
        operands = [self._and_expr()]
        while self._match_keyword("OR"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return LogicalOp("OR", tuple(operands))

    def _and_expr(self) -> Expression:
        operands = [self._not_expr()]
        while self._match_keyword("AND"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return LogicalOp("AND", tuple(operands))

    def _not_expr(self) -> Expression:
        if self._match_keyword("NOT"):
            return NotOp(self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expression:
        left = self._concat()
        token = self._peek()
        if token is None:
            return left
        if token.ttype is TokenType.COMPARISON:
            operator = self._advance().normalized
            if operator == "==":
                operator = "="
            right = self._concat()
            return BinaryOp(operator, left, right)
        if token.is_keyword:
            keyword = token.normalized
            if keyword in ("LIKE", "NOT LIKE", "ILIKE", "NOT ILIKE"):
                self._advance()
                pattern = self._concat()
                return LikeOp(
                    left,
                    pattern,
                    negate=keyword.startswith("NOT"),
                    case_insensitive="ILIKE" in keyword,
                )
            if keyword in ("REGEXP", "RLIKE", "SIMILAR TO", "GLOB"):
                self._advance()
                pattern = self._concat()
                return LikeOp(left, pattern, regexp=True)
            if keyword in ("IN", "NOT IN"):
                self._advance()
                options = self._expression_list()
                return InOp(left, tuple(options), negate=keyword.startswith("NOT"))
            if keyword in ("BETWEEN", "NOT BETWEEN"):
                self._advance()
                low = self._concat()
                if not self._match_keyword("AND"):
                    raise ExpressionError("BETWEEN requires AND")
                high = self._concat()
                return BetweenOp(left, low, high, negate=keyword.startswith("NOT"))
            if keyword in ("IS", "IS NOT"):
                self._advance()
                negate = keyword == "IS NOT"
                if self._match_keyword("NOT"):
                    negate = True
                if self._match_keyword("NULL"):
                    return IsNullOp(left, negate=negate)
                # IS TRUE / IS FALSE
                if self._match_keyword("TRUE"):
                    return BinaryOp("=", left, Literal(True)) if not negate else BinaryOp("!=", left, Literal(True))
                if self._match_keyword("FALSE"):
                    return BinaryOp("=", left, Literal(False)) if not negate else BinaryOp("!=", left, Literal(False))
                raise ExpressionError("unsupported IS expression")
        return left

    def _concat(self) -> Expression:
        left = self._additive()
        while True:
            token = self._peek()
            if token is not None and token.ttype is TokenType.OPERATOR and token.value == "||":
                self._advance()
                right = self._additive()
                left = BinaryOp("||", left, right)
            else:
                return left

    def _additive(self) -> Expression:
        left = self._term()
        while True:
            token = self._peek()
            if token is not None and token.ttype is TokenType.OPERATOR and token.value in ("+", "-"):
                operator = self._advance().value
                left = BinaryOp(operator, left, self._term())
            else:
                return left

    def _term(self) -> Expression:
        left = self._factor()
        while True:
            token = self._peek()
            if token is not None and (
                (token.ttype is TokenType.OPERATOR and token.value in ("/", "%"))
                or token.ttype is TokenType.WILDCARD
            ):
                operator = self._advance().value
                operator = "*" if operator == "*" else operator
                left = BinaryOp(operator, left, self._factor())
            else:
                return left

    def _factor(self) -> Expression:
        token = self._peek()
        if token is None:
            raise ExpressionError("unexpected end of expression")
        if token.ttype is TokenType.OPERATOR and token.value == "-":
            self._advance()
            operand = self._factor()
            return BinaryOp("-", Literal(0), operand)
        if token.value == "(":
            self._advance()
            inner = self._or_expr()
            self._expect(")")
            return inner
        if token.ttype is TokenType.NUMBER:
            self._advance()
            text = token.value
            return Literal(float(text) if any(c in text for c in ".eE") else int(text))
        if token.ttype is TokenType.STRING:
            self._advance()
            return Literal(token.unquoted())
        if token.is_keyword and token.normalized in ("NULL",):
            self._advance()
            return Literal(None)
        if token.is_keyword and token.normalized in ("TRUE", "FALSE"):
            self._advance()
            return Literal(token.normalized == "TRUE")
        if token.ttype is TokenType.PLACEHOLDER:
            self._advance()
            return Literal(None)
        if token.is_identifier or token.ttype is TokenType.DATATYPE:
            return self._column_or_function()
        # Keywords that are actually function calls (REPLACE, SET, ...) — the
        # lexer tags them as keywords, but a following "(" disambiguates.
        if token.is_keyword and self._pos + 1 < len(self._tokens) and self._tokens[self._pos + 1].value == "(":
            return self._column_or_function()
        raise ExpressionError(f"unexpected token {token.value!r}")

    def _column_or_function(self) -> Expression:
        first = self._advance()
        nxt = self._peek()
        if nxt is not None and nxt.value == "(":
            self._advance()
            arguments: list[Expression] = []
            if self._peek() is not None and self._peek().value != ")":
                arguments.append(self._or_expr())
                while self._peek() is not None and self._peek().value == ",":
                    self._advance()
                    arguments.append(self._or_expr())
            self._expect(")")
            return FunctionCall(first.unquoted().upper(), tuple(arguments))
        if nxt is not None and nxt.value == ".":
            self._advance()
            column = self._advance()
            return ColumnRef(name=column.unquoted(), qualifier=first.unquoted())
        return ColumnRef(name=first.unquoted())

    def _expression_list(self) -> list[Expression]:
        self._expect("(")
        options: list[Expression] = []
        if self._peek() is not None and self._peek().value != ")":
            options.append(self._or_expr())
            while self._peek() is not None and self._peek().value == ",":
                self._advance()
                options.append(self._or_expr())
        self._expect(")")
        return options


def parse_expression(source: "str | Sequence[Token]") -> Expression:
    """Parse an expression from SQL text or a token sequence."""
    tokens = tokenize(source) if isinstance(source, str) else list(source)
    parser = ExpressionParser(tokens)
    return parser.parse()


def evaluate(source: "str | Expression", row: Row) -> Any:
    """Parse (if needed) and evaluate an expression against a row."""
    expression = parse_expression(source) if isinstance(source, str) else source
    return expression.evaluate(row)
