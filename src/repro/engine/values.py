"""Value semantics for the in-memory relational engine.

Implements SQL-style three-valued comparison (NULL never equals anything),
type coercion based on the declared column type, and LIKE / regular
expression matching.  These semantics are what several anti-patterns hinge
on (Concatenate Nulls, Rounding Errors, Pattern Matching).
"""
from __future__ import annotations

import re
from typing import Any

from ..catalog.types import SQLType, TypeFamily


class SQLNull:
    """Singleton marker for SQL NULL (kept distinct from Python ``None`` in
    expression results so three-valued logic is explicit)."""

    _instance: "SQLNull | None" = None

    def __new__(cls) -> "SQLNull":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL"

    def __bool__(self) -> bool:
        return False


NULL = SQLNull()


def is_null(value: Any) -> bool:
    """True for SQL NULL (``None`` or the :data:`NULL` marker)."""
    return value is None or isinstance(value, SQLNull)


def coerce(value: Any, sql_type: SQLType) -> Any:
    """Coerce a Python value to the storage representation of ``sql_type``.

    Coercion is permissive (like most DBMSs with weak typing): values that
    cannot be converted are stored as-is.  That permissiveness is exactly
    what enables the Incorrect Data Type anti-pattern to occur.
    """
    if is_null(value):
        return None
    family = sql_type.family
    try:
        if family is TypeFamily.INTEGER:
            return int(value)
        if family is TypeFamily.APPROXIMATE_NUMERIC:
            # FLOAT: round-trip through a 32-bit-ish representation to model
            # finite precision (rounding-errors AP).
            return float(f"{float(value):.6g}")
        if family is TypeFamily.EXACT_NUMERIC:
            return round(float(value), sql_type.scale if sql_type.scale is not None else 10)
        if family is TypeFamily.BOOLEAN:
            if isinstance(value, str):
                return value.strip().lower() in ("t", "true", "1", "yes")
            return bool(value)
        if family in (TypeFamily.TEXT, TypeFamily.ENUM):
            text = str(value)
            if sql_type.length is not None:
                return text[: sql_type.length]
            return text
        if family in (TypeFamily.DATE, TypeFamily.TIME, TypeFamily.DATETIME, TypeFamily.UUID):
            return str(value)
    except (TypeError, ValueError):
        return value
    return value


def compare(left: Any, right: Any) -> int | None:
    """SQL comparison: returns -1/0/1, or ``None`` when either side is NULL."""
    if is_null(left) or is_null(right):
        return None
    left, right = _align(left, right)
    try:
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    except TypeError:
        left_text, right_text = str(left), str(right)
        if left_text < right_text:
            return -1
        if left_text > right_text:
            return 1
        return 0


def equals(left: Any, right: Any) -> bool | None:
    """SQL equality with NULL propagation."""
    result = compare(left, right)
    return None if result is None else result == 0


def _align(left: Any, right: Any) -> tuple[Any, Any]:
    """Align operand types for comparison (numeric strings vs numbers,
    booleans vs their text forms)."""
    if isinstance(left, bool) or isinstance(right, bool):
        return _as_bool(left), _as_bool(right)
    if isinstance(left, (int, float)) and isinstance(right, str):
        converted = _try_number(right)
        if converted is not None:
            return left, converted
        return str(left), right
    if isinstance(right, (int, float)) and isinstance(left, str):
        converted = _try_number(left)
        if converted is not None:
            return converted, right
        return left, str(right)
    return left, right


def _as_bool(value: Any) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
    if isinstance(value, (int, float)):
        return bool(value)
    return value


def _try_number(text: str) -> float | int | None:
    try:
        if re.fullmatch(r"[+-]?\d+", text.strip()):
            return int(text)
        return float(text)
    except (ValueError, TypeError):
        return None


def like_match(value: Any, pattern: Any, *, case_insensitive: bool = False) -> bool | None:
    """SQL ``LIKE`` matching (``%`` and ``_`` wildcards)."""
    if is_null(value) or is_null(pattern):
        return None
    regex = _like_to_regex(str(pattern))
    flags = re.IGNORECASE if case_insensitive else 0
    return re.fullmatch(regex, str(value), flags) is not None


def regexp_match(value: Any, pattern: Any) -> bool | None:
    """SQL ``REGEXP`` / ``~`` matching.

    POSIX word-boundary markers ``[[:<:]]`` / ``[[:>:]]`` (used by the
    paper's multi-valued-attribute example) are translated to ``\\b``.
    """
    if is_null(value) or is_null(pattern):
        return None
    translated = str(pattern).replace("[[:<:]]", r"\b").replace("[[:>:]]", r"\b")
    try:
        return re.search(translated, str(value)) is not None
    except re.error:
        return False


def _like_to_regex(pattern: str) -> str:
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return "".join(out)


def concat(*values: Any) -> Any:
    """SQL ``||`` concatenation: NULL-propagating (the Concatenate-Nulls AP)."""
    if any(is_null(v) for v in values):
        return None
    return "".join(str(v) for v in values)


def sql_repr(value: Any) -> str:
    """Render a stored value the way a result printer would."""
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
