"""The Database facade: execute SQL against in-memory storage.

``Database`` is the PostgreSQL stand-in used by (a) the data analyser when a
"live database connection" is handed to sqlcheck and (b) the performance
benchmarks that reproduce Figures 3 and 8.  It supports the DDL/DML subset
the evaluation requires: CREATE TABLE / CREATE INDEX / ALTER TABLE / DROP,
INSERT (multi-row, with or without a column list), UPDATE, DELETE, and
SELECT with joins, grouping, ordering and aggregates.
"""
from __future__ import annotations

import re
from typing import Any, Iterable

from ..catalog.ddl_builder import DDLBuilder
from ..catalog.schema import Index as CatalogIndex
from ..catalog.schema import Schema, Table
from ..sqlparser import ParsedStatement, QueryAnnotation, annotate, parse, parse_statement
from ..sqlparser.tokens import Token, TokenType
from .executor import CostModel, Result, SelectExecutor, _literal_value
from .expressions import ExpressionError, parse_expression
from .storage import IntegrityError, SecondaryIndex, StoredTable


class EngineError(Exception):
    """Raised for statements the engine cannot execute."""


class Database:
    """An in-memory relational database."""

    def __init__(self, name: str = "main", cost_model: CostModel | None = None):
        self.name = name
        self.schema = Schema(name=name)
        self.tables: dict[str, StoredTable] = {}
        self.cost_model = cost_model or CostModel()
        self._executor = SelectExecutor(self, self.cost_model)
        self._ddl = DDLBuilder(self.schema)
        #: abstract cost units accumulated by the most recent statement
        self.last_cost: float = 0.0
        self.last_plan: str = ""

    # ------------------------------------------------------------------
    # catalog access
    # ------------------------------------------------------------------
    def get_table(self, name: str) -> StoredTable | None:
        return self.tables.get(name.lower())

    def table_names(self) -> list[str]:
        return [t.name for t in self.tables.values()]

    def create_table(self, definition: Table) -> StoredTable:
        """Create a table directly from a catalog definition (programmatic API)."""
        self.schema.add_table(definition)
        stored = StoredTable(definition=definition)
        self.tables[definition.name.lower()] = stored
        self._materialise_primary_key_index(stored)
        return stored

    def _materialise_primary_key_index(self, stored: StoredTable) -> None:
        """Create the implicit unique index backing a PRIMARY KEY (as real
        DBMSs do); PK lookups and FK validation then avoid full scans."""
        pk = stored.definition.primary_key_columns
        if not pk:
            return
        name = f"pk_{stored.definition.name.lower()}"
        if name in stored.indexes:
            return
        # Keep the implicit index out of the catalog definition so detection
        # rules (e.g. Index Overuse) only see user-created indexes.
        index = SecondaryIndex(
            CatalogIndex(name=name, table=stored.definition.name, columns=tuple(pk), unique=True)
        )
        for row_id, row in stored.rows.items():
            index.add(row_id, row)
        stored.indexes[name] = index

    def insert_rows(self, table_name: str, rows: Iterable[dict[str, Any]]) -> int:
        """Bulk-insert rows (programmatic API used by workload generators)."""
        table = self._require_table(table_name)
        count = 0
        for row in rows:
            table.insert(row, database=self)
            count += 1
        return count

    # ------------------------------------------------------------------
    # SQL execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, *, force_index: bool | None = None) -> Result:
        """Execute a single SQL statement and return its :class:`Result`."""
        statements = parse(sql)
        if not statements:
            return Result()
        if len(statements) > 1:
            result = Result()
            for statement in statements:
                result = self._execute_statement(statement, force_index=force_index)
            return result
        return self._execute_statement(statements[0], force_index=force_index)

    def execute_script(self, sql: str) -> list[Result]:
        """Execute every statement in a script, returning one result per statement."""
        return [self._execute_statement(s) for s in parse(sql)]

    def _execute_statement(
        self, statement: ParsedStatement, *, force_index: bool | None = None
    ) -> Result:
        handler = {
            "SELECT": self._execute_select,
            "INSERT": self._execute_insert,
            "UPDATE": self._execute_update,
            "DELETE": self._execute_delete,
            "CREATE_TABLE": self._execute_create_table,
            "CREATE_INDEX": self._execute_create_index,
            "ALTER_TABLE": self._execute_alter_table,
            "DROP": self._execute_drop,
            "TRUNCATE": self._execute_truncate,
        }.get(statement.statement_type)
        if handler is None:
            raise EngineError(f"unsupported statement: {statement.raw[:60]!r}")
        if statement.statement_type == "SELECT":
            result = handler(statement, force_index=force_index)
        else:
            result = handler(statement)
        self.last_cost = result.cost
        self.last_plan = result.plan
        return result

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _execute_create_table(self, statement: ParsedStatement) -> Result:
        before = set(self.schema.tables)
        self._ddl.apply(statement)
        created = set(self.schema.tables) - before
        for key in created:
            definition = self.schema.tables[key]
            stored = StoredTable(definition=definition)
            self.tables[key] = stored
            self._materialise_primary_key_index(stored)
        return Result(plan="create_table", rowcount=0)

    def _execute_create_index(self, statement: ParsedStatement) -> Result:
        before = {
            (t, name)
            for t, table in self.schema.tables.items()
            for name in table.indexes
        }
        self._ddl.apply(statement)
        cost = 0.0
        for table_key, table in self.schema.tables.items():
            stored = self.tables.get(table_key)
            if stored is None:
                continue
            for index_name, definition in table.indexes.items():
                if (table_key, index_name) not in before and index_name not in stored.indexes:
                    stored.create_index(definition)
                    cost += stored.row_count * self.cost_model.index_maintenance_cost
        return Result(plan="create_index", cost=cost)

    def _execute_alter_table(self, statement: ParsedStatement) -> Result:
        tokens = statement.meaningful_tokens()
        text = " ".join(t.value for t in tokens)
        upper = text.upper()
        self._ddl.apply(statement)
        cost = 0.0
        # Column drops must be applied to stored rows as well.
        drop_match = re.search(r"\bDROP\s+(?:COLUMN\s+)?(\w+)", text, re.IGNORECASE)
        if drop_match and "CONSTRAINT" not in upper:
            column = drop_match.group(1)
            table = self._table_for_statement(statement)
            if table is not None:
                for row in table.rows.values():
                    for key in [k for k in row if k.lower() == column.lower()]:
                        row.pop(key, None)
                cost += table.row_count * self.cost_model.seq_page_cost
        # Adding a constraint re-validates every row (the expensive part of
        # the Enumerated Types fix cycle, Figure 8g).
        if "ADD" in upper and ("CHECK" in upper or "FOREIGN KEY" in upper or "PRIMARY KEY" in upper):
            table = self._table_for_statement(statement)
            if table is not None:
                validated = table.validate_all_rows()
                cost += validated * self.cost_model.seq_page_cost
        return Result(plan="alter_table", cost=cost)

    def _execute_drop(self, statement: ParsedStatement) -> Result:
        tokens = statement.meaningful_tokens()
        keywords = {t.normalized for t in tokens if t.is_keyword}
        names = [t.unquoted() for t in tokens if t.is_identifier]
        self._ddl.apply(statement)
        if "TABLE" in keywords and names:
            self.tables.pop(names[0].lower(), None)
        elif "INDEX" in keywords and names:
            for stored in self.tables.values():
                stored.drop_index(names[0])
        return Result(plan="drop")

    def _execute_truncate(self, statement: ParsedStatement) -> Result:
        table = self._table_for_statement(statement)
        if table is None:
            return Result(plan="truncate")
        removed = table.row_count
        table.rows.clear()
        for index in table.indexes.values():
            index._buckets.clear()
        return Result(plan="truncate", rowcount=removed)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _execute_select(self, statement: ParsedStatement, *, force_index: bool | None = None) -> Result:
        annotation = annotate(statement)
        return self._executor.execute(annotation, force_index=force_index)

    def _execute_insert(self, statement: ParsedStatement) -> Result:
        annotation = annotate(statement)
        if not annotation.tables:
            raise EngineError("INSERT without a target table")
        table = self._require_table(annotation.tables[0].name)
        columns = annotation.insert_columns or table.column_names()
        value_rows = self._insert_value_rows(statement)
        cost = 0.0
        inserted = 0
        for literals in value_rows:
            row = {column: value for column, value in zip(columns, literals)}
            table.insert(row, database=self)
            inserted += 1
            cost += self.cost_model.seq_page_cost
            cost += len(table.indexes) * self.cost_model.index_maintenance_cost
        return Result(rowcount=inserted, cost=cost, plan=f"insert({table.name})")

    def _insert_value_rows(self, statement: ParsedStatement) -> list[list[Any]]:
        tokens = statement.meaningful_tokens()
        values_idx = None
        for i, token in enumerate(tokens):
            if token.is_keyword and token.normalized == "VALUES":
                values_idx = i
                break
        if values_idx is None:
            raise EngineError("INSERT ... SELECT is not supported by the engine")
        rows: list[list[Any]] = []
        current: list[Any] | None = None
        expression_tokens: list[Token] = []
        depth = 0
        for token in tokens[values_idx + 1 :]:
            if token.value == "(":
                depth += 1
                if depth == 1:
                    current = []
                    expression_tokens = []
                    continue
            if token.value == ")":
                depth -= 1
                if depth == 0 and current is not None:
                    if expression_tokens:
                        current.append(self._evaluate_literal(expression_tokens))
                    rows.append(current)
                    current = None
                    continue
            if depth >= 1:
                if token.value == "," and depth == 1:
                    current.append(self._evaluate_literal(expression_tokens))
                    expression_tokens = []
                else:
                    expression_tokens.append(token)
        return rows

    def _evaluate_literal(self, tokens: list[Token]) -> Any:
        if not tokens:
            return None
        if len(tokens) == 1:
            token = tokens[0]
            if token.ttype is TokenType.STRING:
                return token.unquoted()
            if token.ttype is TokenType.NUMBER:
                return _literal_value(token.value)
            if token.is_keyword and token.normalized in ("NULL",):
                return None
            if token.is_keyword and token.normalized in ("TRUE", "FALSE"):
                return token.normalized == "TRUE"
            if token.is_identifier:
                return token.unquoted()
        try:
            return parse_expression(tokens).evaluate({})
        except ExpressionError:
            return " ".join(t.value for t in tokens)

    def _execute_update(self, statement: ParsedStatement) -> Result:
        annotation = annotate(statement)
        if not annotation.tables:
            raise EngineError("UPDATE without a target table")
        table = self._require_table(annotation.tables[0].name)
        where = self._where_expression(statement)
        assignments = self._parse_assignments(annotation)
        cost = 0.0
        updated = 0
        # Index-assisted row selection mirrors the SELECT path.
        target_ids = self._candidate_row_ids(table, annotation, where)
        cost += self._selection_cost(table, annotation, target_ids)
        for row_id in target_ids:
            row = table.rows.get(row_id)
            if row is None:
                continue
            qualified = dict(row)
            if where is not None:
                cost += self.cost_model.expression_eval_cost
                try:
                    verdict = where.evaluate(qualified)
                except ExpressionError:
                    verdict = False
                if not verdict:
                    continue
            changes = {}
            for column, expression in assignments:
                try:
                    changes[column] = expression.evaluate(qualified)
                except ExpressionError:
                    changes[column] = None
            table.update_row(row_id, changes, database=self)
            updated += 1
            cost += self.cost_model.seq_page_cost
            cost += len(table.indexes) * self.cost_model.index_maintenance_cost
        return Result(rowcount=updated, cost=cost, plan=f"update({table.name})")

    def _execute_delete(self, statement: ParsedStatement) -> Result:
        annotation = annotate(statement)
        if not annotation.tables:
            raise EngineError("DELETE without a target table")
        table = self._require_table(annotation.tables[0].name)
        where = self._where_expression(statement)
        cost = 0.0
        to_delete: list[int] = []
        target_ids = self._candidate_row_ids(table, annotation, where)
        cost += self._selection_cost(table, annotation, target_ids)
        for row_id in target_ids:
            row = table.rows.get(row_id)
            if row is None:
                continue
            if where is not None:
                cost += self.cost_model.expression_eval_cost
                try:
                    if not where.evaluate(row):
                        continue
                except ExpressionError:
                    continue
            to_delete.append(row_id)
        for row_id in to_delete:
            table.delete_row(row_id)
            cost += len(table.indexes) * self.cost_model.index_maintenance_cost
        return Result(rowcount=len(to_delete), cost=cost, plan=f"delete({table.name})")

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _require_table(self, name: str) -> StoredTable:
        table = self.get_table(name)
        if table is None:
            raise EngineError(f"unknown table: {name}")
        return table

    def _table_for_statement(self, statement: ParsedStatement) -> StoredTable | None:
        annotation = annotate(statement)
        if annotation.tables:
            return self.get_table(annotation.tables[0].name)
        return None

    def _where_expression(self, statement: ParsedStatement):
        tokens = statement.meaningful_tokens()
        collecting = False
        collected: list[Token] = []
        for token in tokens:
            if token.is_keyword and token.normalized == "WHERE":
                collecting = True
                continue
            if collecting and token.is_keyword and token.normalized in ("RETURNING", "ORDER BY", "LIMIT"):
                break
            if collecting:
                collected.append(token)
        if not collected:
            return None
        try:
            return parse_expression(collected)
        except ExpressionError:
            return None

    def _parse_assignments(self, annotation: QueryAnnotation):
        assignments = []
        for column, expression_text in annotation.update_assignments:
            try:
                assignments.append((column, parse_expression(expression_text)))
            except ExpressionError:
                assignments.append((column, parse_expression("NULL")))
        return assignments

    def _candidate_row_ids(self, table: StoredTable, annotation: QueryAnnotation, where) -> list[int]:
        """Row ids to visit: an index probe when an equality predicate allows
        it, otherwise every row id."""
        for predicate in annotation.predicates:
            if predicate.operator not in ("=", "==") or predicate.column is None:
                continue
            if predicate.value is None:
                continue
            index = table.index_on(predicate.column.name)
            if index is None:
                continue
            value = _literal_value(predicate.value)
            return sorted(index.lookup_leading(value))
        return list(table.rows.keys())

    def _selection_cost(self, table: StoredTable, annotation: QueryAnnotation, target_ids: list[int]) -> float:
        if len(target_ids) < table.row_count:
            return len(target_ids) * self.cost_model.random_page_cost
        return table.row_count * self.cost_model.seq_page_cost
