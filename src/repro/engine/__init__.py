"""In-memory relational engine (the PostgreSQL stand-in for the experiments)."""
from .database import Database, EngineError
from .executor import CostModel, Result, SelectExecutor
from .expressions import (
    ColumnRef,
    Expression,
    ExpressionError,
    Literal,
    evaluate,
    parse_expression,
)
from .storage import IntegrityError, SecondaryIndex, StoredTable
from .values import NULL, SQLNull, coerce, compare, concat, equals, is_null, like_match, regexp_match

__all__ = [
    "ColumnRef",
    "CostModel",
    "Database",
    "EngineError",
    "Expression",
    "ExpressionError",
    "IntegrityError",
    "Literal",
    "NULL",
    "Result",
    "SQLNull",
    "SecondaryIndex",
    "SelectExecutor",
    "StoredTable",
    "coerce",
    "compare",
    "concat",
    "equals",
    "evaluate",
    "is_null",
    "like_match",
    "parse_expression",
    "regexp_match",
]
