"""SELECT execution for the in-memory engine.

The executor implements the handful of physical operators the evaluation
needs and mirrors their real cost behaviour:

* sequential scan — O(rows), each row costs ``seq_page_cost``;
* index lookup — O(matching rows), each fetched row costs ``random_page_cost``
  (PostgreSQL's default 1.0 / 4.0 ratio), which is what makes an index on a
  low-cardinality column a *loss* (Figure 8c);
* index nested-loop join vs. plain nested-loop join — the multi-valued
  attribute experiments (Figure 3) hinge on the difference between an
  indexed equi-join and a cross product evaluating a pattern expression;
* hash aggregation for GROUP BY, with a discount when the grouping column is
  indexed (Figure 8b).
"""
from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..sqlparser import QueryAnnotation, annotate, parse_statement
from ..sqlparser.tokens import Token, TokenType
from . import values as V
from .expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    ExpressionError,
    Literal,
    LogicalOp,
    parse_expression,
)
from .storage import StoredTable


@dataclass
class CostModel:
    """Abstract I/O cost parameters (PostgreSQL-like defaults)."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    index_maintenance_cost: float = 2.0
    expression_eval_cost: float = 0.01


@dataclass
class Result:
    """The outcome of executing one statement."""

    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)
    rowcount: int = 0
    cost: float = 0.0
    plan: str = ""

    def scalar(self) -> Any:
        """First column of the first row (for aggregate results)."""
        if not self.rows:
            return None
        first = self.rows[0]
        key = self.columns[0] if self.columns else next(iter(first))
        return first.get(key)

    def column_values(self, column: str) -> list[Any]:
        return [row.get(column) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class SelectExecutor:
    """Executes annotated SELECT statements against stored tables."""

    def __init__(self, database: "Any", cost_model: CostModel | None = None):
        self.database = database
        self.cost = cost_model or CostModel()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def execute(self, annotation: QueryAnnotation, *, force_index: bool | None = None) -> Result:
        result = Result()
        plan_notes: list[str] = []

        rows, cost = self._build_row_stream(annotation, force_index, plan_notes)
        result.cost += cost

        # WHERE filter (whatever was not already applied by an index probe
        # is re-checked here; re-checking is harmless and keeps plans simple).
        where_expr = self._where_expression(annotation)
        if where_expr is not None:
            filtered = []
            for row in rows:
                result.cost += self.cost.expression_eval_cost
                if _truthy(where_expr, row):
                    filtered.append(row)
            rows = filtered

        # GROUP BY / aggregates
        select_exprs = self._select_expressions(annotation)
        if annotation.group_by_columns or self._has_aggregate(annotation):
            rows, agg_cost = self._aggregate(annotation, rows, select_exprs, plan_notes)
            result.cost += agg_cost
            if annotation.order_by_items:
                rows = self._order(annotation, rows)
                plan_notes.append("sort")
        else:
            # ORDER BY runs before projection so it may reference columns
            # that are not part of the SELECT list.
            if annotation.order_by_items:
                rows = self._order(annotation, rows)
                plan_notes.append("sort")
            rows = [self._project(row, annotation, select_exprs) for row in rows]

        # DISTINCT
        if annotation.is_distinct:
            rows = _distinct(rows)
            plan_notes.append("distinct")

        # LIMIT
        if annotation.limit is not None:
            rows = rows[: annotation.limit]

        result.rows = rows
        result.rowcount = len(rows)
        result.columns = list(rows[0].keys()) if rows else [i for i in annotation.select_items]
        result.plan = " -> ".join(plan_notes) if plan_notes else "seq_scan"
        return result

    # ------------------------------------------------------------------
    # FROM / JOIN processing
    # ------------------------------------------------------------------
    def _build_row_stream(
        self, annotation: QueryAnnotation, force_index: bool | None, plan_notes: list[str]
    ) -> tuple[list[dict[str, Any]], float]:
        cost = 0.0
        base_tables = annotation.tables
        if not base_tables:
            return [{}], 0.0

        # Base FROM tables (cross product when more than one).
        streams: list[list[dict[str, Any]]] = []
        for ref in base_tables:
            table = self.database.get_table(ref.name)
            if table is None:
                raise ExpressionError(f"unknown table: {ref.name}")
            stream, table_cost, note = self._scan_or_probe(
                table, ref.effective_alias, annotation, force_index
            )
            cost += table_cost
            plan_notes.append(note)
            streams.append(stream)
        rows = streams[0]
        for extra in streams[1:]:
            rows = [_merge(a, b) for a in rows for b in extra]
            cost += len(rows) * self.cost.expression_eval_cost

        # Explicit JOIN clauses.
        for join in annotation.joins:
            if join.table is None:
                continue
            table = self.database.get_table(join.table.name)
            if table is None:
                raise ExpressionError(f"unknown table: {join.table.name}")
            rows, join_cost, note = self._join(
                rows, table, join.table.effective_alias, join.condition, join.join_type, force_index
            )
            cost += join_cost
            plan_notes.append(note)
        return rows, cost

    def _scan_or_probe(
        self,
        table: StoredTable,
        alias: str,
        annotation: QueryAnnotation,
        force_index: bool | None,
    ) -> tuple[list[dict[str, Any]], float, str]:
        """Full scan, or an index probe when an equality predicate allows it."""
        probe = self._find_index_probe(table, alias, annotation)
        use_index = probe is not None and force_index is not False
        if probe is not None and force_index is None:
            # Cost-based choice: an index probe pays random_page_cost per
            # matching row; a scan pays seq_page_cost per row.
            index, value, matches = probe
            index_cost = len(matches) * self.cost.random_page_cost
            scan_cost = table.row_count * self.cost.seq_page_cost
            use_index = index_cost < scan_cost
        if probe is not None and use_index:
            index, value, matches = probe
            rows = [
                _qualify(table.rows[row_id], table, alias)
                for row_id in matches
                if row_id in table.rows
            ]
            return rows, len(rows) * self.cost.random_page_cost, f"index_scan({table.name})"
        rows = [_qualify(row, table, alias) for row in table.rows.values()]
        return rows, table.row_count * self.cost.seq_page_cost, f"seq_scan({table.name})"

    def _find_index_probe(
        self, table: StoredTable, alias: str, annotation: QueryAnnotation
    ) -> tuple[Any, Any, set[int]] | None:
        for predicate in annotation.predicates:
            if predicate.clause not in ("where",):
                continue
            if predicate.operator not in ("=", "=="):
                continue
            if predicate.column is None or predicate.value is None:
                continue
            qualifier = predicate.column.qualifier
            if qualifier is not None and qualifier.lower() not in (alias.lower(), table.name.lower()):
                continue
            index = table.index_on(predicate.column.name)
            if index is None:
                continue
            value = _literal_value(predicate.value)
            matches = index.lookup_leading(value)
            return index, value, matches
        return None

    def _join(
        self,
        left_rows: list[dict[str, Any]],
        table: StoredTable,
        alias: str,
        condition: str,
        join_type: str,
        force_index: bool | None,
    ) -> tuple[list[dict[str, Any]], float, str]:
        cost = 0.0
        equi = self._equi_join_columns(condition, table, alias)
        if equi is not None and force_index is not False:
            left_key, right_column = equi
            index = table.index_on(right_column)
            if index is not None:
                joined: list[dict[str, Any]] = []
                for left in left_rows:
                    value = _row_value(left, left_key)
                    matches = index.lookup_leading(value)
                    cost += self.cost.random_page_cost * max(1, len(matches))
                    for row_id in matches:
                        joined.append(_merge(left, _qualify(table.rows[row_id], table, alias)))
                if join_type == "LEFT":
                    joined = self._add_left_outer(left_rows, joined, table, alias)
                return joined, cost, f"index_nested_loop({table.name})"
        # Fallback: nested-loop join evaluating the full condition per pair.
        condition_expr = parse_expression(condition) if condition.strip() else None
        right_rows = [_qualify(row, table, alias) for row in table.rows.values()]
        cost += table.row_count * self.cost.seq_page_cost
        joined = []
        for left in left_rows:
            matched = False
            for right in right_rows:
                cost += self.cost.expression_eval_cost
                candidate = _merge(left, right)
                if condition_expr is None or _truthy(condition_expr, candidate):
                    joined.append(candidate)
                    matched = True
            if join_type == "LEFT" and not matched:
                joined.append(_merge(left, _null_row(table, alias)))
        return joined, cost, f"nested_loop({table.name})"

    def _equi_join_columns(
        self, condition: str, table: StoredTable, alias: str
    ) -> tuple[str, str] | None:
        """For ``a.x = b.y`` conditions, return (outer key, inner column)."""
        if not condition.strip():
            return None
        try:
            expression = parse_expression(condition)
        except ExpressionError:
            return None
        if not isinstance(expression, BinaryOp) or expression.operator not in ("=", "=="):
            return None
        left, right = expression.left, expression.right
        if not isinstance(left, ColumnRef) or not isinstance(right, ColumnRef):
            return None
        names = {alias.lower(), table.name.lower()}
        left_is_inner = (left.qualifier or "").lower() in names
        right_is_inner = (right.qualifier or "").lower() in names
        if left_is_inner and not right_is_inner:
            return right.key, left.name
        if right_is_inner and not left_is_inner:
            return left.key, right.name
        return None

    def _add_left_outer(
        self,
        left_rows: list[dict[str, Any]],
        joined: list[dict[str, Any]],
        table: StoredTable,
        alias: str,
    ) -> list[dict[str, Any]]:
        matched_ids = {id(row) for row in joined}
        # identify unmatched left rows by checking whether any joined row
        # contains the same left content; cheap heuristic adequate for tests.
        result = list(joined)
        joined_reprs = [
            {k: v for k, v in row.items() if not k.lower().startswith(alias.lower() + ".")}
            for row in joined
        ]
        for left in left_rows:
            if not any(all(item in jr.items() for item in left.items()) for jr in joined_reprs):
                result.append(_merge(left, _null_row(table, alias)))
        return result

    # ------------------------------------------------------------------
    # projection / aggregation / ordering
    # ------------------------------------------------------------------
    def _select_expressions(self, annotation: QueryAnnotation) -> list[tuple[str, Any]]:
        """(output name, parsed expression or '*' marker) per select item."""
        expressions: list[tuple[str, Any]] = []
        for item in annotation.select_items:
            # normalise "u . Name" (token-joined) back to "u.Name"
            text = re.sub(r"\s*\.\s*", ".", item.strip())
            if not text:
                continue
            label = text
            upper = text.upper()
            if " AS " in upper:
                body, _, alias_part = _rpartition_ci(text, " AS ")
                text, label = body.strip(), alias_part.strip()
            if text == "*" or text.endswith(".*"):
                expressions.append((text, "*"))
                continue
            expressions.append((label, text))
        return expressions

    def _has_aggregate(self, annotation: QueryAnnotation) -> bool:
        return any(fn in _AGGREGATES for fn in annotation.functions)

    def _project(
        self, row: dict[str, Any], annotation: QueryAnnotation, select_exprs: list[tuple[str, Any]]
    ) -> dict[str, Any]:
        if not select_exprs or all(marker == "*" for _, marker in select_exprs):
            return dict(row)
        projected: dict[str, Any] = {}
        for label, expr_text in select_exprs:
            if expr_text == "*":
                projected.update(row)
                continue
            try:
                expression = parse_expression(expr_text)
                projected[label] = expression.evaluate(row)
            except ExpressionError:
                projected[label] = None
        return projected

    def _aggregate(
        self,
        annotation: QueryAnnotation,
        rows: list[dict[str, Any]],
        select_exprs: list[tuple[str, Any]],
        plan_notes: list[str],
    ) -> tuple[list[dict[str, Any]], float]:
        cost = len(rows) * self.cost.expression_eval_cost
        group_keys = [str(c) for c in annotation.group_by_columns]
        # An index on the grouping column lets the engine aggregate without
        # building the hash table from scratch (modelled as a discount).
        if group_keys:
            base_table = annotation.tables[0] if annotation.tables else None
            if base_table is not None:
                stored = self.database.get_table(base_table.name)
                group_column = annotation.group_by_columns[0].name
                if stored is not None and stored.index_on(group_column) is not None:
                    cost *= 0.5
                    plan_notes.append("indexed_group")
                else:
                    plan_notes.append("hash_group")
        groups: dict[tuple, list[dict[str, Any]]] = {}
        for row in rows:
            key = tuple(_row_value(row, k) for k in group_keys) if group_keys else ()
            groups.setdefault(key, []).append(row)
        if not groups and not group_keys:
            # Aggregates over an empty input still produce one row
            # (COUNT(*) = 0, SUM = NULL).
            groups[()] = []
        output: list[dict[str, Any]] = []
        for key, members in groups.items():
            out: dict[str, Any] = {}
            for label, expr_text in select_exprs:
                if expr_text == "*":
                    out.update(members[0])
                    continue
                aggregate = self._parse_aggregate(expr_text)
                if aggregate is not None:
                    fn, argument = aggregate
                    out[label] = self._compute_aggregate(fn, argument, members)
                else:
                    try:
                        out[label] = parse_expression(expr_text).evaluate(members[0])
                    except ExpressionError:
                        out[label] = None
            if not select_exprs:
                for name, value in zip(group_keys, key):
                    out[name] = value
            output.append(out)
        return output, cost

    def _parse_aggregate(self, text: str) -> tuple[str, str] | None:
        stripped = text.strip()
        upper = stripped.upper()
        for fn in _AGGREGATES:
            if upper.startswith(fn) and "(" in stripped and stripped.endswith(")"):
                inner = stripped[stripped.index("(") + 1 : -1].strip()
                return fn, inner
        return None

    def _compute_aggregate(self, fn: str, argument: str, rows: list[dict[str, Any]]) -> Any:
        if fn == "COUNT" and (argument == "*" or not argument):
            return len(rows)
        distinct = False
        if argument.upper().startswith("DISTINCT "):
            distinct = True
            argument = argument[9:].strip()
        try:
            expression = parse_expression(argument)
        except ExpressionError:
            return None
        observed = []
        for row in rows:
            try:
                value = expression.evaluate(row)
            except ExpressionError:
                value = None
            if not V.is_null(value):
                observed.append(value)
        if distinct:
            observed = list(dict.fromkeys(observed))
        if fn == "COUNT":
            return len(observed)
        if not observed:
            return None
        if fn == "SUM":
            return sum(float(v) for v in observed)
        if fn == "AVG":
            return sum(float(v) for v in observed) / len(observed)
        if fn == "MIN":
            return min(observed)
        if fn == "MAX":
            return max(observed)
        return None

    def _order(self, annotation: QueryAnnotation, rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
        items = list(reversed(annotation.order_by_items))
        ordered = rows
        for item in items:
            text = item.strip()
            descending = text.upper().endswith(" DESC")
            if descending:
                text = text[: -5].strip()
            elif text.upper().endswith(" ASC"):
                text = text[: -4].strip()
            if text.upper() in ("RAND ( )", "RAND()", "RANDOM ( )", "RANDOM()"):
                # Deterministic shuffle stand-in: sort by a hash of the row.
                ordered = sorted(ordered, key=lambda r: hash(tuple(sorted(str(v) for v in r.values()))))
                continue
            key_text = text

            def sort_key(row: dict[str, Any], key_text: str = key_text) -> tuple:
                value = _row_value(row, key_text)
                return (V.is_null(value), value if not V.is_null(value) else "")

            try:
                ordered = sorted(ordered, key=sort_key, reverse=descending)
            except TypeError:
                ordered = sorted(ordered, key=lambda r: str(_row_value(r, key_text)), reverse=descending)
        return ordered

    def _where_expression(self, annotation: QueryAnnotation) -> Expression | None:
        tokens = self._where_tokens(annotation)
        if not tokens:
            return None
        try:
            return parse_expression(tokens)
        except ExpressionError:
            return None

    def _where_tokens(self, annotation: QueryAnnotation) -> list[Token]:
        statement = annotation.statement
        tokens = statement.meaningful_tokens()
        collecting = False
        collected: list[Token] = []
        depth = 0
        stop_keywords = {"GROUP BY", "ORDER BY", "HAVING", "LIMIT", "OFFSET", "RETURNING", "UNION", "UNION ALL"}
        for token in tokens:
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth = max(0, depth - 1)
            if depth == 0 and token.is_keyword and token.normalized == "WHERE":
                collecting = True
                continue
            if collecting and depth == 0 and token.is_keyword and token.normalized in stop_keywords:
                break
            if collecting:
                collected.append(token)
        return collected


# ----------------------------------------------------------------------
# row helpers
# ----------------------------------------------------------------------
def _qualify(row: dict[str, Any], table: StoredTable, alias: str) -> dict[str, Any]:
    qualified: dict[str, Any] = {}
    for key, value in row.items():
        qualified[key] = value
        qualified[f"{alias}.{key}"] = value
        if alias.lower() != table.name.lower():
            qualified[f"{table.name}.{key}"] = value
    return qualified


def _null_row(table: StoredTable, alias: str) -> dict[str, Any]:
    return _qualify({c: None for c in table.column_names()}, table, alias)


def _merge(left: dict[str, Any], right: dict[str, Any]) -> dict[str, Any]:
    merged = dict(left)
    merged.update(right)
    return merged


def _distinct(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    seen: set = set()
    unique: list[dict[str, Any]] = []
    for row in rows:
        key = tuple(sorted((k, str(v)) for k, v in row.items()))
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def _row_value(row: dict[str, Any], key: str) -> Any:
    if key in row:
        return row[key]
    lowered = key.lower()
    for candidate, value in row.items():
        if candidate.lower() == lowered:
            return value
    bare = lowered.split(".")[-1]
    for candidate, value in row.items():
        if candidate.lower() == bare or candidate.lower().endswith("." + bare):
            return value
    return None


def _truthy(expression: Expression, row: dict[str, Any]) -> bool:
    try:
        result = expression.evaluate(row)
    except ExpressionError:
        return False
    return bool(result) and result is not None


def _literal_value(text: str) -> Any:
    stripped = text.strip()
    if stripped.startswith("'") and stripped.endswith("'"):
        return stripped[1:-1].replace("''", "'")
    if stripped.upper() == "TRUE":
        return True
    if stripped.upper() == "FALSE":
        return False
    if stripped.upper() == "NULL":
        return None
    try:
        return int(stripped)
    except ValueError:
        try:
            return float(stripped)
        except ValueError:
            return stripped


def _rpartition_ci(text: str, separator: str) -> tuple[str, str, str]:
    upper = text.upper()
    idx = upper.rfind(separator.upper())
    if idx < 0:
        return text, "", ""
    return text[:idx], separator, text[idx + len(separator):]
