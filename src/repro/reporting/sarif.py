"""SARIF 2.1.0 emitter.

SARIF (Static Analysis Results Interchange Format, OASIS) is the lingua
franca of CI code scanning: GitHub code scanning, GitLab SAST, and most
editors render SARIF results as native inline annotations.  This emitter
maps a sqlcheck run onto one SARIF ``run``:

* every registered rule becomes a ``reportingDescriptor`` under
  ``tool.driver.rules`` — id, title, problem statement, and a Markdown
  ``help`` block generated from the rule's :class:`~repro.rules.base.RuleDoc`;
* every ranked detection becomes a ``result`` pointing back into the
  analysed artifact via ``physicalLocation`` (1-based ``startLine`` plus
  ``charOffset``/``charLength`` from the statement offsets the parser
  records) and, for schema/data findings, a ``logicalLocation`` naming the
  table or column;
* rewrite-kind fixes whose statement has a recorded offset become real
  SARIF ``fixes`` — one ``replacement`` deleting the statement's byte range
  and inserting the rewritten query — so SARIF-aware editors and CI bots
  can apply them mechanically; every fix (rewrite or textual guidance)
  additionally travels in the result's property bag.

Only properties in the SARIF 2.1.0 required set plus widely-supported
optional ones are emitted; ``tests/conformance/test_rule_docs.py`` validates
the required-property contract over the golden corpus.
"""
from __future__ import annotations

import json
from typing import Iterable
from urllib.parse import quote

from ..model.antipatterns import catalog_entry
from ..model.detection import Severity
from ..rules.registry import RuleRegistry, default_registry
from .model import Finding, ReportDocument

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Detection severities → SARIF result levels.
_LEVELS = {Severity.LOW: "note", Severity.MEDIUM: "warning", Severity.HIGH: "error"}


def severity_level(severity: Severity) -> str:
    """Map a detection severity onto a SARIF ``level``."""
    return _LEVELS.get(severity, "warning")


def rule_descriptor(rule) -> dict:
    """The ``reportingDescriptor`` for one registered rule."""
    doc = rule.documentation()
    entry = catalog_entry(rule.anti_pattern)
    return {
        "id": rule.name,
        "name": rule.name,
        "shortDescription": {"text": doc.title},
        "fullDescription": {"text": doc.problem},
        "help": {"text": f"{doc.why_it_hurts}\n\nFix: {doc.fix}", "markdown": doc.help_markdown()},
        "defaultConfiguration": {"level": severity_level(rule.severity)},
        "properties": {
            "anti_pattern": rule.anti_pattern.value,
            "category": entry.category.value,
            "paper_section": doc.paper_section,
        },
    }


def _artifact_uri(document: ReportDocument, finding: Finding) -> str:
    uri = finding.detection.source or document.source
    # Placeholder labels like "<input>" are not URI-shaped; strip the angle
    # brackets and percent-encode the rest (a literal '#' or '%' in a file
    # name would otherwise be parsed as a fragment / escape by consumers).
    return quote(uri.strip("<>"), safe="/") or "input"


def _result(
    finding: Finding, rule_index: "dict[str, int]", artifact_uri: str
) -> dict:
    detection = finding.detection
    result: dict = {
        "ruleId": detection.rule or detection.anti_pattern.value,
        "level": severity_level(detection.severity),
        "message": {"text": detection.message},
        "properties": {
            "anti_pattern": detection.anti_pattern.value,
            "detection_mode": detection.detection_mode,
            "confidence": round(detection.confidence, 3),
            "rank": finding.rank,
            "score": round(finding.score, 4),
            "workload_weight": round(finding.workload_weight, 4),
        },
    }
    index = rule_index.get(result["ruleId"])
    if index is not None:
        result["ruleIndex"] = index
    location: dict = {
        "physicalLocation": {"artifactLocation": {"uri": artifact_uri}}
    }
    if detection.query:
        region: dict = {}
        if detection.statement_line is not None:
            region["startLine"] = max(1, detection.statement_line)
            # endLine defaults to startLine when absent (spec §3.30); emit
            # it for multi-line statements so the line-based and char-based
            # addressing schemes describe the same range.
            if (
                detection.statement_end_line is not None
                and detection.statement_end_line > detection.statement_line
            ):
                region["endLine"] = detection.statement_end_line
        if detection.statement_offset is not None:
            region["charOffset"] = max(0, detection.statement_offset)
            # The raw statement text can include leading comments that sit
            # *before* the offset; size the region with the recorded token
            # span, never len(query), or it bleeds into the next statement.
            if detection.statement_length is not None:
                region["charLength"] = detection.statement_length
        # SARIF 2.1.0 requires a region to carry at least one of
        # startLine/charOffset/byteOffset; when the statement's position is
        # unknown (list inputs, batch paths) omit the region entirely — a
        # location with only an artifactLocation is valid, a snippet-only
        # region is not.
        if region:
            # snippet.text must equal the region's content (spec 3.30.13).
            # The parser records whether the raw text is byte-identical to
            # the source span (lexer normalisation — folded compound
            # keywords, stripped comments — can make them differ); when it
            # is not, the snippet is omitted rather than emitted wrong.
            if detection.statement_text_exact:
                region["snippet"] = {"text": detection.query}
            location["physicalLocation"]["region"] = region
    if finding.target:
        location["logicalLocations"] = [
            {"name": finding.target, "kind": "member" if detection.column else "type"}
        ]
    result["locations"] = [location]
    if finding.fix is not None:
        result["properties"]["fix"] = {
            "explanation": finding.fix.explanation,
            "statements": list(finding.fix.statements),
            "rewritten_query": finding.fix.rewritten_query,
        }
        replacement = _fix_replacement(finding, artifact_uri)
        if replacement is not None:
            result["fixes"] = [replacement]
    return result


def _fix_replacement(finding: Finding, artifact_uri: str) -> "dict | None":
    """A SARIF ``fix`` object for a mechanically-applicable rewrite.

    Only rewrite-kind fixes qualify, and only when the parser recorded the
    statement's exact byte range (offset + token-span length): replacing a
    range the raw text does not actually occupy would corrupt the artifact,
    so anything positionless stays property-bag-only guidance.
    """
    fix = finding.fix
    detection = finding.detection
    if fix is None or not fix.is_rewrite or not fix.rewritten_query:
        return None
    if detection.statement_offset is None or detection.statement_length is None:
        return None
    return {
        "description": {"text": fix.explanation or f"Rewrite: {detection.display_name}"},
        "artifactChanges": [
            {
                "artifactLocation": {"uri": artifact_uri},
                "replacements": [
                    {
                        "deletedRegion": {
                            "charOffset": max(0, detection.statement_offset),
                            "charLength": detection.statement_length,
                        },
                        "insertedContent": {"text": fix.rewritten_query},
                    }
                ],
            }
        ],
    }


def _invocation(docs: "list[ReportDocument]") -> "dict | None":
    """The SARIF ``invocation`` carrying quarantined pipeline errors.

    Each :class:`~repro.errors.PipelineError` becomes a
    ``toolExecutionNotification`` (spec §3.20.21) whose descriptor id is the
    error's taxonomy code and whose property bag carries the full structured
    record.  ``executionSuccessful`` stays true — a degraded run still
    produced results; notifications at level ``error`` are how SARIF marks
    the gaps.  Clean runs emit no invocation at all, keeping the historical
    log shape byte-identical.
    """
    notifications: "list[dict]" = []
    for document in docs:
        for error in document.errors:
            notification: dict = {
                "level": "error",
                "message": {"text": str(error)},
                "descriptor": {"id": getattr(error, "code", "internal")},
                "properties": error.to_dict() if hasattr(error, "to_dict") else {},
            }
            source = getattr(error, "source", None)
            if source:
                notification["locations"] = [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": quote(str(source).strip("<>"), safe="/") or "input"
                            }
                        }
                    }
                ]
            notifications.append(notification)
    if not notifications:
        return None
    return {
        "executionSuccessful": True,
        "toolExecutionNotifications": notifications,
    }


def to_sarif(
    documents: "ReportDocument | Iterable[ReportDocument]",
    *,
    registry: "RuleRegistry | None" = None,
) -> dict:
    """Build the SARIF 2.1.0 log object for one or more report documents."""
    # Imported lazily: repro/__init__ imports this package before it defines
    # __version__, so a module-level import would see a half-initialised repro.
    from .. import __version__

    docs = [documents] if isinstance(documents, ReportDocument) else list(documents)
    registry = registry if registry is not None else default_registry()
    rules = [rule_descriptor(rule) for rule in registry]
    rule_index = {descriptor["id"]: i for i, descriptor in enumerate(rules)}
    results: "list[dict]" = []
    # Ordered URI dedup alongside result building: one _artifact_uri call
    # per finding, O(1) membership.
    uri_set: "dict[str, None]" = {}
    for document in docs:
        for finding in document.findings:
            uri = _artifact_uri(document, finding)
            uri_set[uri] = None
            results.append(_result(finding, rule_index, uri))
    uris = list(uri_set)
    run: dict = {
        "tool": {
            "driver": {
                "name": "sqlcheck",
                "version": __version__,
                "informationUri": "https://doi.org/10.1145/3318464.3389754",
                "rules": rules,
            }
        },
        "results": results,
        "columnKind": "unicodeCodePoints",
    }
    if uris:
        run["artifacts"] = [{"location": {"uri": uri}} for uri in uris]
    invocation = _invocation(docs)
    if invocation is not None:
        run["invocations"] = [invocation]
    # The workload cost model and pipeline timings travel in the run's
    # property bag (SARIF has no first-class slot for either).
    properties: dict = {
        "cost_model": {doc.source: doc.cost_model for doc in docs},
    }
    stats = {doc.source: doc.stats for doc in docs if doc.stats}
    if stats:
        properties["pipeline_stats"] = stats
    # Ingestion provenance (incl. degraded/lines_skipped) rides along so a
    # SARIF consumer knows what workload weighted the ranks and whether any
    # of it was dropped on the way in.
    workload = {doc.source: doc.workload for doc in docs if doc.workload}
    if workload:
        properties["workload"] = workload
    run["properties"] = properties
    return {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": [run]}


def render_sarif(
    documents: "ReportDocument | Iterable[ReportDocument]",
    *,
    registry: "RuleRegistry | None" = None,
    indent: int = 2,
) -> str:
    """Serialise :func:`to_sarif` output as a JSON string."""
    return json.dumps(to_sarif(documents, registry=registry), indent=indent)
