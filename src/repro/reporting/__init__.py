"""Explainable reports: the reporting/docs subsystem.

The paper's pitch is diagnosis, not detection: every finding ships with
*why it hurts* and *how to fix it* (§1, §6).  This package turns that
knowledge — declared as :class:`~repro.rules.base.RuleDoc` metadata on
every rule — into consumable artifacts:

* :mod:`repro.reporting.model` — the renderer-independent report model
  (:class:`ReportDocument` / :class:`Finding`) every emitter consumes;
* :mod:`repro.reporting.markdown` — GitHub-flavoured Markdown reports;
* :mod:`repro.reporting.html` — self-contained HTML pages;
* :mod:`repro.reporting.sarif` — SARIF 2.1.0 logs, so findings surface as
  native annotations in GitHub/GitLab CI and SARIF-aware editors;
* :mod:`repro.reporting.reference` — the generated per-rule reference
  (``docs/rules/``) behind ``sqlcheck docs`` / ``sqlcheck docs --check``.

The CLI (``--format markdown|html|sarif``), the REST API (``format`` in
the request body), and :func:`render_report` / :func:`render_batch_report`
below are thin wrappers over these pieces.
"""
from __future__ import annotations

from ..core.sqlcheck import BatchReport, SQLCheckReport
from ..rules.registry import RuleRegistry
from .html import render_html
from .markdown import render_markdown
from .model import (
    ALL_FORMATS,
    RICH_FORMATS,
    TEXT_FORMATS,
    Finding,
    ReportDocument,
    build_document,
    build_documents,
)
from .reference import (
    GENERATED_MARKER,
    check_reference,
    index_page,
    reference_pages,
    rule_page,
    write_reference,
)
from .sarif import SARIF_SCHEMA, SARIF_VERSION, render_sarif, severity_level, to_sarif

_RENDERERS = {"markdown": render_markdown, "html": render_html, "sarif": render_sarif}


def _render_documents(
    documents: "list[ReportDocument]",
    fmt: str,
    registry: "RuleRegistry | None",
    top: int,
) -> str:
    """Shared dispatch for the render entry points: one place owns the
    unknown-format error, the SARIF-skips-truncation rule, and the
    renderer table."""
    renderer = _RENDERERS.get(fmt)
    if renderer is None:
        raise ValueError(f"unknown report format {fmt!r} (expected one of {RICH_FORMATS})")
    if fmt == "sarif":
        return render_sarif(documents, registry=registry)
    if top:
        for document in documents:
            document.truncate(top)
    return renderer(documents)


def render_report(
    report: SQLCheckReport,
    fmt: str,
    *,
    registry: "RuleRegistry | None" = None,
    source: "str | None" = None,
    include_stats: bool = False,
    top: int = 0,
    workload: "dict | None" = None,
) -> str:
    """Render one report in a rich format (``markdown`` / ``html`` / ``sarif``).

    ``top`` keeps only the N highest-impact findings for markdown/html;
    SARIF always carries the full result set (consumers filter on
    level/rank themselves).  ``workload`` attaches ingestion provenance
    (distinct/total statements, log format, degraded-line counts) so rich
    formats surface it exactly like the JSON ``workload`` block.
    """
    document = build_document(
        report,
        registry=registry,
        source=source,
        include_stats=include_stats,
        workload=workload,
    )
    return _render_documents([document], fmt, registry, top)


def render_batch_report(
    batch: BatchReport,
    fmt: str,
    *,
    registry: "RuleRegistry | None" = None,
    include_stats: bool = False,
    top: int = 0,
) -> str:
    """Render a batch (one section per corpus) in a rich format.

    ``top`` truncates each corpus section to its N highest-impact findings
    for markdown/html; SARIF always carries the full result set.
    """
    documents = build_documents(batch, registry=registry, include_stats=include_stats)
    return _render_documents(documents, fmt, registry, top)


__all__ = [
    "ALL_FORMATS",
    "Finding",
    "GENERATED_MARKER",
    "ReportDocument",
    "RICH_FORMATS",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "TEXT_FORMATS",
    "build_document",
    "build_documents",
    "check_reference",
    "index_page",
    "reference_pages",
    "render_batch_report",
    "render_html",
    "render_markdown",
    "render_report",
    "render_sarif",
    "rule_page",
    "severity_level",
    "to_sarif",
    "write_reference",
]
