"""Report model: a renderer-independent view of a sqlcheck run.

Every emitter (Markdown, HTML, SARIF) consumes the same normalised
structure instead of poking at ``SQLCheckReport`` internals: a
:class:`ReportDocument` per analysed corpus, each holding one
:class:`Finding` per ranked detection with its fix and the firing rule's
:class:`~repro.rules.base.RuleDoc` already resolved.  This is the layer
that makes reports *explainable* — the emitters never have to know where
the prose comes from.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from ..core.sqlcheck import BatchReport, SQLCheckReport
from ..fixer.fix import Fix
from ..model.detection import Detection
from ..rules.base import RuleDoc
from ..rules.registry import RuleRegistry, default_registry

#: Report formats the toolchain can emit (CLI ``--format`` / REST ``format``).
TEXT_FORMATS = ("text", "json")
RICH_FORMATS = ("markdown", "html", "sarif")
ALL_FORMATS = TEXT_FORMATS + RICH_FORMATS


def _resolve_doc(detection: Detection, rules_by_name: "dict[str, object]") -> RuleDoc:
    """Resolve the documentation explaining a detection.

    Prefers the registered rule's declared :class:`RuleDoc`; when the rule
    is no longer registered (or a different registry built the index) the
    doc is synthesised from the anti-pattern catalog so reports never lose
    their explanation entirely.
    """
    rule = rules_by_name.get(detection.rule)
    if rule is not None:
        return rule.documentation()
    return RuleDoc.from_catalog(detection.anti_pattern)


@dataclass(frozen=True)
class Finding:
    """One explainable finding: detection + rank + fix + documentation."""

    rank: int
    score: float
    detection: Detection
    doc: RuleDoc
    fix: "Fix | None" = None
    #: the cost model's multiplicative workload weight behind ``score``
    #: (1.0 for schema/data findings and logless runs).
    workload_weight: float = 1.0

    @property
    def severity(self) -> str:
        return self.detection.severity.name

    @property
    def target(self) -> "str | None":
        """``table`` or ``table.column`` label, when the finding has one."""
        if not self.detection.table:
            return None
        if self.detection.column:
            return f"{self.detection.table}.{self.detection.column}"
        return self.detection.table

    def fix_statements(self) -> "list[str]":
        """The fix's SQL, rewrite included (empty when there is no fix)."""
        if self.fix is None:
            return []
        statements = list(self.fix.statements)
        if self.fix.rewritten_query:
            statements.append(self.fix.rewritten_query)
        return statements

    @property
    def location_label(self) -> str:
        """Human-oriented anchor: statement index or table/column target."""
        if self.detection.query_index is not None:
            label = f"statement {self.detection.query_index + 1}"
            if self.detection.statement_line is not None:
                label += f" (line {self.detection.statement_line})"
            return label
        return self.target or "workload"


@dataclass
class ReportDocument:
    """Everything an emitter needs to render one corpus's report."""

    source: str
    findings: "list[Finding]" = field(default_factory=list)
    queries_analyzed: int = 0
    tables_analyzed: int = 0
    stats: "dict | None" = None
    #: the run's true finding count; stays at the original value when
    #: ``truncate`` keeps only the top-N, so headers never understate it.
    total_findings: int = 0
    #: name of the workload cost model the ranking used (``frequency``,
    #: ``duration``, ``hybrid``); every emitter surfaces it so a reader
    #: knows what the scores mean.
    cost_model: str = "frequency"
    #: :class:`~repro.errors.PipelineError` records quarantined during the
    #: run; a non-empty list marks the report *degraded* and every emitter
    #: must surface them (partial results are only trustworthy when their
    #: gaps are visible).
    errors: "list" = field(default_factory=list)
    #: workload-ingestion provenance for live scans (distinct/total
    #: statements, log format, and — for degraded ingestion —
    #: ``degraded``/``lines_skipped``); every emitter surfaces it so the
    #: rendered report says what workload the weights came from and
    #: whether any of it was dropped.  ``None`` for logless runs.
    workload: "dict | None" = None

    @property
    def degraded(self) -> bool:
        """True when the run quarantined at least one pipeline error."""
        return bool(self.errors)

    @property
    def is_workload_weighted(self) -> bool:
        """True when any finding carries a real (≠ 1.0) workload weight."""
        return any(finding.workload_weight != 1.0 for finding in self.findings)

    def __post_init__(self) -> None:
        if not self.total_findings:
            self.total_findings = len(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def is_truncated(self) -> bool:
        return len(self.findings) < self.total_findings

    def truncate(self, top: int) -> "ReportDocument":
        """Keep only the ``top`` highest-impact findings (total preserved).

        Zero and negative values are no-ops — callers validate the sign,
        and a negative slice must never silently drop from the tail.
        """
        if top > 0 and len(self.findings) > top:
            self.findings = self.findings[:top]
        return self


def build_document(
    report: SQLCheckReport,
    *,
    registry: "RuleRegistry | None" = None,
    source: "str | None" = None,
    include_stats: bool = False,
    workload: "dict | None" = None,
) -> ReportDocument:
    """Normalise one :class:`SQLCheckReport` into a :class:`ReportDocument`."""
    registry = registry if registry is not None else default_registry()
    # One name -> rule index per document build, not a registry scan per
    # finding (corpus-scale reports carry thousands of findings).
    rules_by_name = {rule.name: rule for rule in registry}
    findings = [
        Finding(
            rank=entry.rank,
            score=entry.score,
            detection=entry.detection,
            doc=_resolve_doc(entry.detection, rules_by_name),
            fix=report.fix_for(entry),
            workload_weight=getattr(entry, "workload_weight", 1.0),
        )
        for entry in report.detections
    ]
    inferred = source
    if inferred is None:
        for finding in findings:
            if finding.detection.source:
                inferred = finding.detection.source
                break
    return ReportDocument(
        source=inferred or "<input>",
        findings=findings,
        queries_analyzed=report.queries_analyzed,
        tables_analyzed=report.tables_analyzed,
        stats=report.stats.to_dict() if include_stats and report.stats is not None else None,
        cost_model=getattr(report, "cost_model", "frequency"),
        errors=list(getattr(report, "errors", ()) or ()),
        workload=dict(workload) if workload else None,
    )


def build_documents(
    batch: BatchReport,
    *,
    registry: "RuleRegistry | None" = None,
    include_stats: bool = False,
) -> "list[ReportDocument]":
    """Normalise a :class:`BatchReport` into one document per corpus."""
    registry = registry if registry is not None else default_registry()
    return [
        build_document(report, registry=registry, source=source, include_stats=include_stats)
        for source, report in batch.reports.items()
    ]
