"""HTML report emitter.

Produces a self-contained HTML page (inline CSS, no external assets — the
REST API serves it directly and CI systems archive it as a build artifact).
All dynamic content is HTML-escaped.
"""
from __future__ import annotations

import html
from typing import Iterable

from .model import Finding, ReportDocument

#: Findings per page before a document's detail cards are paginated.
#: Reports at or under this size render exactly as before — no nav, no
#: script — so the common case stays a plain static page.
DEFAULT_PAGE_SIZE = 25

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 2rem auto;
       max-width: 60rem; padding: 0 1rem; color: #1f2328; line-height: 1.5; }
h1, h2 { border-bottom: 1px solid #d1d9e0; padding-bottom: .3rem; }
table { border-collapse: collapse; width: 100%; margin: 1rem 0; }
th, td { border: 1px solid #d1d9e0; padding: .4rem .6rem; text-align: left; }
th { background: #f6f8fa; }
pre { background: #f6f8fa; padding: .8rem; border-radius: 6px; overflow-x: auto; }
code { background: #f6f8fa; padding: .1rem .3rem; border-radius: 4px; }
.finding { border: 1px solid #d1d9e0; border-radius: 6px; padding: 1rem; margin: 1rem 0; }
.sev-high { border-left: 4px solid #cf222e; }
.sev-medium { border-left: 4px solid #bf8700; }
.sev-low { border-left: 4px solid #0969da; }
.meta { color: #59636e; font-size: .9rem; }
.cite { color: #59636e; font-style: italic; font-size: .9rem; }
.pager { display: flex; align-items: center; gap: .6rem; margin: 1rem 0; }
.pager button { border: 1px solid #d1d9e0; background: #f6f8fa; border-radius: 6px;
                padding: .3rem .8rem; cursor: pointer; font-size: .9rem; }
.pager button:disabled { opacity: .4; cursor: default; }
"""

#: Client-side page flipper (no external assets; one copy per page).  Page
#: divs are ``id="{doc}-page{n}"``; the pager buttons and label live in
#: ``id="{doc}-pager"``.
_PAGER_SCRIPT = """
function sqlcheckShowPage(doc, page, total) {
  if (page < 1 || page > total) return;
  for (var i = 1; i <= total; i++) {
    var el = document.getElementById(doc + '-page' + i);
    if (el) el.style.display = (i === page) ? '' : 'none';
  }
  var pager = document.getElementById(doc + '-pager');
  if (!pager) return;
  pager.querySelector('.pager-label').textContent = 'Page ' + page + ' of ' + total;
  pager.querySelector('.pager-prev').disabled = (page === 1);
  pager.querySelector('.pager-next').disabled = (page === total);
  pager.dataset.page = page;
}
function sqlcheckFlipPage(doc, total, delta) {
  var pager = document.getElementById(doc + '-pager');
  var page = pager ? parseInt(pager.dataset.page || '1', 10) : 1;
  sqlcheckShowPage(doc, page + delta, total);
}
"""


def _e(text: object) -> str:
    return html.escape(str(text), quote=True)


def _finding_html(finding: Finding) -> "list[str]":
    detection = finding.detection
    doc = finding.doc
    parts = [
        f'<div class="finding sev-{finding.severity.lower()}">',
        f"<h3>{finding.rank}. {_e(doc.title)}</h3>",
        '<p class="meta">'
        f"{_e(detection.display_name)} &middot; rule "
        f"<code>{_e(detection.rule or detection.anti_pattern.value)}</code>"
        f" &middot; {_e(finding.severity.title())} severity"
        f" &middot; confidence {detection.confidence:.2f}"
        f" &middot; score {finding.score:.3f}"
        + (
            f" (workload weight &times;{finding.workload_weight:.2f})"
            if finding.workload_weight != 1.0
            else ""
        )
        + f" &middot; {_e(finding.location_label)}</p>",
    ]
    if detection.query:
        parts.append(f"<pre><code>{_e(detection.query.strip())}</code></pre>")
    if finding.target:
        parts.append(f"<p><strong>Target:</strong> <code>{_e(finding.target)}</code></p>")
    parts.append(f"<p>{_e(detection.message)}</p>")
    parts.append(f"<p><strong>Why it hurts.</strong> {_e(doc.why_it_hurts)}</p>")
    parts.append(f"<p><strong>How to fix it.</strong> {_e(doc.fix)}</p>")
    if finding.fix is not None:
        parts.append(f"<p><strong>Suggested fix.</strong> {_e(finding.fix.explanation)}</p>")
        statements = finding.fix_statements()
        if statements:
            joined = ";\n".join(statements)
            parts.append(f"<pre><code>{_e(joined)}</code></pre>")
    if doc.paper_section:
        parts.append(f'<p class="cite">Source: {_e(doc.paper_section)}.</p>')
    parts.append("</div>")
    return parts


def _page_table(findings: "list[Finding]") -> "list[str]":
    parts = ["<table><tr><th>#</th><th>Anti-pattern</th><th>Rule</th>"
             "<th>Severity</th><th>Confidence</th><th>Where</th></tr>"]
    for finding in findings:
        detection = finding.detection
        parts.append(
            f"<tr><td>{finding.rank}</td><td>{_e(detection.display_name)}</td>"
            f"<td><code>{_e(detection.rule or detection.anti_pattern.value)}</code></td>"
            f"<td>{_e(finding.severity.title())}</td>"
            f"<td>{detection.confidence:.2f}</td>"
            f"<td>{_e(finding.location_label)}</td></tr>"
        )
    parts.append("</table>")
    return parts


def _pager_html(doc_id: str, pages: int) -> "list[str]":
    return [
        f'<div class="pager" id="{doc_id}-pager" data-page="1">',
        f'<button class="pager-prev" '
        f"onclick=\"sqlcheckFlipPage('{doc_id}', {pages}, -1)\" disabled>"
        "&larr; Prev</button>",
        f'<span class="pager-label meta">Page 1 of {pages}</span>',
        f'<button class="pager-next" '
        f"onclick=\"sqlcheckFlipPage('{doc_id}', {pages}, 1)\">Next &rarr;</button>",
        "</div>",
    ]


def _document_html(
    document: ReportDocument,
    *,
    tag: str = "h1",
    doc_id: str = "doc0",
    page_size: int = DEFAULT_PAGE_SIZE,
) -> "list[str]":
    shown = (
        f" Showing the top {len(document.findings)} by impact."
        if document.is_truncated
        else ""
    )
    weighted = (
        f" Scores are workload-weighted (cost model: <code>{_e(document.cost_model)}</code>)."
        if document.is_workload_weighted or document.cost_model != "frequency"
        else ""
    )
    degraded = (
        f" <strong>Degraded run:</strong> {len(document.errors)} pipeline"
        " error(s) were quarantined (see below)."
        if document.degraded
        else ""
    )
    workload = _workload_html(document.workload) if document.workload else ""
    parts = [
        f"<{tag}>SQLCheck report &mdash; <code>{_e(document.source)}</code></{tag}>",
        f"<p><strong>{document.total_findings} anti-pattern(s)</strong> in "
        f"{document.queries_analyzed} statement(s), "
        f"{document.tables_analyzed} table(s) analysed.{weighted}{shown}{workload}{degraded}</p>",
    ]
    if not document.findings:
        parts.append("<p>No anti-patterns detected.</p>")
        parts.extend(_errors_html(document))
        parts.extend(_stats_html(document))
        return parts
    findings = list(document.findings)
    if page_size <= 0 or len(findings) <= page_size:
        # Small report: one static page, no pager, no script.
        parts.extend(_page_table(findings))
        for finding in findings:
            parts.extend(_finding_html(finding))
        parts.extend(_errors_html(document))
        parts.extend(_stats_html(document))
        return parts
    chunks = [findings[i:i + page_size] for i in range(0, len(findings), page_size)]
    parts.extend(_pager_html(doc_id, len(chunks)))
    for number, chunk in enumerate(chunks, start=1):
        hidden = "" if number == 1 else ' style="display:none"'
        parts.append(f'<div class="page" id="{doc_id}-page{number}"{hidden}>')
        parts.extend(_page_table(chunk))
        for finding in chunk:
            parts.extend(_finding_html(finding))
        parts.append("</div>")
    parts.extend(_errors_html(document))
    parts.extend(_stats_html(document))
    return parts


def _workload_html(workload: dict) -> str:
    """Ingestion provenance sentence (see the Markdown emitter's twin)."""
    sentence = (
        f" Workload: {workload.get('distinct_statements', 0)} distinct / "
        f"{workload.get('total_statements', 0)} total statement(s)"
    )
    log_format = workload.get("log_format")
    if log_format:
        sentence += f" from a <code>{_e(log_format)}</code> log"
    sentence += "."
    if workload.get("degraded"):
        sentence += (
            f" <strong>Degraded ingestion:</strong>"
            f" {workload.get('lines_skipped', 0)} malformed line(s) skipped."
        )
    return sentence


def _errors_html(document: ReportDocument) -> "list[str]":
    if not document.errors:
        return []
    parts = [
        "<h4>Pipeline errors</h4>",
        '<p class="meta">Quarantined failures; results for every other '
        "statement, rule, and source are complete.</p>",
        "<ul>",
    ]
    for error in document.errors:
        parts.append(f"<li><code>{_e(error)}</code></li>")
    parts.append("</ul>")
    return parts


def _stats_html(document: ReportDocument) -> "list[str]":
    if not document.stats:
        return []
    stages = document.stats.get("stages", {})
    timings = ", ".join(
        f"{_e(name)} {seconds * 1000:.1f} ms" for name, seconds in stages.items()
    )
    return [f'<h4>Pipeline stats</h4>\n<p class="meta">{timings}</p>']


def render_html(
    documents: "ReportDocument | Iterable[ReportDocument]",
    *,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> str:
    """Render one document (or several corpus documents) as a full HTML page.

    Documents with more than ``page_size`` findings are split into
    client-side pages (summary table and detail cards together), navigated
    by an inline pager — still a single self-contained file with no
    external assets.  ``page_size=0`` disables pagination.
    """
    docs = [documents] if isinstance(documents, ReportDocument) else list(documents)
    body: "list[str]" = []
    if len(docs) == 1:
        body.extend(_document_html(docs[0], page_size=page_size))
    else:
        total = sum(doc.total_findings for doc in docs)
        body.append("<h1>SQLCheck batch report</h1>")
        body.append(f"<p><strong>{total} anti-pattern(s)</strong> across {len(docs)} corpora.</p>")
        for index, doc in enumerate(docs):
            body.extend(
                _document_html(doc, tag="h2", doc_id=f"doc{index}", page_size=page_size)
            )
    paginated = page_size > 0 and any(len(doc.findings) > page_size for doc in docs)
    script = f"<script>{_PAGER_SCRIPT}</script>\n" if paginated else ""
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
        "<title>SQLCheck report</title>\n"
        f"<style>{_STYLE}</style>\n{script}</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )
