"""Markdown report emitter.

Renders :class:`~repro.reporting.model.ReportDocument` objects into a
GitHub-flavoured Markdown report: a summary table followed by one
explainable section per finding (offending SQL, why it hurts, how to fix
it, the concrete suggested fix, and the paper citation).
"""
from __future__ import annotations

import re
from typing import Iterable, Sequence

from .model import Finding, ReportDocument


#: ASCII punctuation that can open live Markdown constructs (links, images,
#: emphasis, raw HTML) when it reaches the report through analysed SQL —
#: e.g. a hostile table name inside a rule message.
_INLINE_ESCAPE = re.compile(r"([\\`*_{}\[\]<>!|])")


def _escape_inline(text: str) -> str:
    """Backslash-escape SQL-derived prose so it renders as plain text."""
    return _INLINE_ESCAPE.sub(r"\\\1", text)


def _escape_cell(text: str) -> str:
    """Make a string safe inside a Markdown table cell."""
    return _escape_inline(text).replace("\n", " ")


def _code_span(text: str) -> str:
    """Inline code span whose delimiter outruns any backtick in the content
    (same break-out threat as :func:`_sql_block`, CommonMark §6.1)."""
    longest = max((len(run) for run in re.findall(r"`+", text)), default=0)
    if not longest:
        return f"`{text}`"
    delim = "`" * (longest + 1)
    return f"{delim} {text} {delim}"


def _sql_block(sql: str) -> str:
    """Fence SQL so its content cannot break out of the code block.

    A backtick run inside the SQL (e.g. in a string literal) would close a
    plain ``` fence early and inject live Markdown into the report — the
    fence must be longer than any run in the content (CommonMark).
    """
    text = sql.strip()
    longest = max((len(run) for run in re.findall(r"`+", text)), default=0)
    fence = "`" * max(3, longest + 1)
    return f"{fence}sql\n{text}\n{fence}"


def _summary_table(findings: Sequence[Finding]) -> "list[str]":
    lines = [
        "| # | Anti-pattern | Rule | Severity | Confidence | Where |",
        "|---|--------------|------|----------|------------|-------|",
    ]
    for finding in findings:
        detection = finding.detection
        lines.append(
            "| {rank} | {ap} | `{rule}` | {sev} | {conf:.2f} | {where} |".format(
                rank=finding.rank,
                ap=_escape_cell(detection.display_name),
                rule=detection.rule or "?",
                sev=finding.severity.title(),
                conf=detection.confidence,
                where=_escape_cell(finding.location_label),
            )
        )
    return lines


def _finding_section(finding: Finding) -> "list[str]":
    detection = finding.detection
    doc = finding.doc
    lines = [
        f"### {finding.rank}. {doc.title}",
        "",
        f"*{detection.display_name}* · rule `{detection.rule or detection.anti_pattern.value}` · "
        f"{finding.severity.title()} severity · confidence {detection.confidence:.2f} · "
        f"score {finding.score:.3f}"
        + (
            f" (workload weight ×{finding.workload_weight:.2f})"
            if finding.workload_weight != 1.0
            else ""
        )
        + f" · {detection.detection_mode.replace('_', '-')} analysis",
        "",
    ]
    if detection.query:
        lines.extend([_sql_block(detection.query), ""])
    if finding.target:
        lines.extend([f"**Target:** {_code_span(finding.target)}", ""])
    # message and fix explanations embed SQL-derived identifiers — escape
    # them; the RuleDoc prose is first-party and keeps its formatting.
    lines.extend([_escape_inline(detection.message), ""])
    lines.extend([f"**Why it hurts.** {doc.why_it_hurts}", ""])
    lines.extend([f"**How to fix it.** {doc.fix}", ""])
    if finding.fix is not None:
        lines.append(f"**Suggested fix.** {_escape_inline(finding.fix.explanation)}")
        lines.append("")
        statements = finding.fix_statements()
        if statements:
            lines.extend([_sql_block(";\n".join(statements)), ""])
    if doc.paper_section:
        lines.extend([f"*Source: {doc.paper_section}.*", ""])
    return lines


def _document_lines(document: ReportDocument, *, heading_level: int = 1) -> "list[str]":
    heading = "#" * heading_level
    summary = (
        f"**{document.total_findings} anti-pattern(s)** in "
        f"{document.queries_analyzed} statement(s), "
        f"{document.tables_analyzed} table(s) analysed."
    )
    if document.is_workload_weighted or document.cost_model != "frequency":
        summary += f" Scores are workload-weighted (cost model: `{document.cost_model}`)."
    if document.is_truncated:
        summary += f" Showing the top {len(document.findings)} by impact."
    if document.workload:
        summary += " " + _workload_sentence(document.workload)
    if document.degraded:
        summary += (
            f" **Degraded run:** {len(document.errors)} pipeline error(s)"
            " were quarantined (see below)."
        )
    lines = [
        f"{heading} SQLCheck report — {_code_span(document.source)}",
        "",
        summary,
        "",
    ]
    if not document.findings:
        lines.extend(["No anti-patterns detected.", ""])
        lines.extend(_errors_section(document))
        lines.extend(_stats_section(document))
        return lines
    lines.extend(_summary_table(document.findings))
    lines.append("")
    for finding in document.findings:
        lines.extend(_finding_section(finding))
    lines.extend(_errors_section(document))
    lines.extend(_stats_section(document))
    return lines


def _workload_sentence(workload: dict) -> str:
    """Ingestion provenance: what log the weights came from, and — for
    degraded ingestion — how many lines never made it into the workload."""
    sentence = (
        f"Workload: {workload.get('distinct_statements', 0)} distinct / "
        f"{workload.get('total_statements', 0)} total statement(s)"
    )
    log_format = workload.get("log_format")
    if log_format:
        sentence += f" from a `{log_format}` log"
    sentence += "."
    if workload.get("degraded"):
        sentence += (
            f" **Degraded ingestion:** {workload.get('lines_skipped', 0)}"
            " malformed line(s) skipped."
        )
    return sentence


def _errors_section(document: ReportDocument) -> "list[str]":
    if not document.errors:
        return []
    lines = [
        "#### Pipeline errors",
        "",
        "Quarantined failures; results for every other statement, rule, and"
        " source are complete.",
        "",
    ]
    for error in document.errors:
        # Error messages embed exception text derived from analysed input —
        # escape them like any other SQL-derived prose.
        lines.append(f"- {_escape_inline(str(error))}")
    lines.append("")
    return lines


def _stats_section(document: ReportDocument) -> "list[str]":
    if not document.stats:
        return []
    stages = document.stats.get("stages", {})
    return [
        "#### Pipeline stats",
        "",
        ", ".join(f"{name} {seconds * 1000:.1f} ms" for name, seconds in stages.items()),
        "",
    ]


def render_markdown(documents: "ReportDocument | Iterable[ReportDocument]") -> str:
    """Render one document (or several corpus documents) as Markdown."""
    if isinstance(documents, ReportDocument):
        return "\n".join(_document_lines(documents)).rstrip() + "\n"
    docs = list(documents)
    if len(docs) == 1:
        return render_markdown(docs[0])
    total = sum(doc.total_findings for doc in docs)
    lines = [
        "# SQLCheck batch report",
        "",
        f"**{total} anti-pattern(s)** across {len(docs)} corpora.",
        "",
    ]
    for doc in docs:
        lines.extend(_document_lines(doc, heading_level=2))
    return "\n".join(lines).rstrip() + "\n"
