"""Schema catalog: columns, constraints, indexes, tables, and the schema.

The catalog is the logical-design half of the application context
(Algorithm 1 builds it from DDL statements or from the live database).  The
detection rules query it for primary keys, foreign keys, indexes, column
types and table shapes.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from .types import SQLType, parse_type


@dataclass
class Column:
    """A column definition within a table."""

    name: str
    sql_type: SQLType = field(default_factory=lambda: parse_type("TEXT"))
    nullable: bool = True
    default: str | None = None
    is_primary_key: bool = False
    is_unique: bool = False
    is_auto_increment: bool = False
    check_values: tuple[str, ...] = ()
    has_check: bool = False
    references: "ForeignKey | None" = None
    comment: str | None = None

    @property
    def has_domain_constraint(self) -> bool:
        """True when the column restricts its domain via CHECK/ENUM values."""
        return bool(self.check_values) or self.sql_type.is_enum or self.has_check


@dataclass(frozen=True)
class ForeignKey:
    """A referential-integrity constraint."""

    columns: tuple[str, ...]
    referenced_table: str
    referenced_columns: tuple[str, ...] = ()
    name: str | None = None
    on_delete: str | None = None
    on_update: str | None = None

    @property
    def is_self_reference_candidate(self) -> bool:
        """Whether the constraint could reference its own table (resolved by
        the adjacency-list rule, which knows the owning table)."""
        return bool(self.referenced_table)


@dataclass(frozen=True)
class CheckConstraint:
    """A CHECK constraint (possibly an enumerated-domain check)."""

    expression: str
    name: str | None = None
    column: str | None = None
    in_values: tuple[str, ...] = ()


@dataclass(frozen=True)
class UniqueConstraint:
    """A UNIQUE constraint over one or more columns."""

    columns: tuple[str, ...]
    name: str | None = None


@dataclass
class Index:
    """An index over one or more columns of a table."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False

    @property
    def is_multi_column(self) -> bool:
        return len(self.columns) > 1

    def covers(self, columns: "tuple[str, ...] | list[str]") -> bool:
        """True when the index's leading columns cover the given column set."""
        wanted = {c.lower() for c in columns}
        prefix: set[str] = set()
        for column in self.columns:
            prefix.add(column.lower())
            if wanted <= prefix:
                return True
        return wanted <= prefix


@dataclass
class Table:
    """A table definition: columns, constraints, and indexes."""

    name: str
    columns: dict[str, Column] = field(default_factory=dict)
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    checks: list[CheckConstraint] = field(default_factory=list)
    uniques: list[UniqueConstraint] = field(default_factory=list)
    indexes: dict[str, Index] = field(default_factory=dict)
    comment: str | None = None

    # -- column access ------------------------------------------------------
    def add_column(self, column: Column) -> None:
        self.columns[column.name.lower()] = column

    def get_column(self, name: str) -> Column | None:
        return self.columns.get(name.lower())

    def has_column(self, name: str) -> bool:
        return name.lower() in self.columns

    def drop_column(self, name: str) -> None:
        self.columns.pop(name.lower(), None)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns.values()]

    @property
    def column_count(self) -> int:
        return len(self.columns)

    # -- key / constraint facts ---------------------------------------------
    @property
    def has_primary_key(self) -> bool:
        if self.primary_key:
            return True
        return any(c.is_primary_key for c in self.columns.values())

    @property
    def primary_key_columns(self) -> tuple[str, ...]:
        if self.primary_key:
            return self.primary_key
        return tuple(c.name for c in self.columns.values() if c.is_primary_key)

    @property
    def has_foreign_keys(self) -> bool:
        return bool(self.foreign_keys) or any(
            c.references is not None for c in self.columns.values()
        )

    def all_foreign_keys(self) -> list[ForeignKey]:
        fks = list(self.foreign_keys)
        for column in self.columns.values():
            if column.references is not None:
                fks.append(column.references)
        return fks

    def indexed_column_sets(self) -> list[tuple[str, ...]]:
        """All column tuples covered by an index (including the PK)."""
        covered = [tuple(c.lower() for c in idx.columns) for idx in self.indexes.values()]
        if self.primary_key_columns:
            covered.append(tuple(c.lower() for c in self.primary_key_columns))
        for unique in self.uniques:
            covered.append(tuple(c.lower() for c in unique.columns))
        return covered

    def column_is_indexed(self, column: str) -> bool:
        """True when the column is the leading column of some index/PK."""
        target = column.lower()
        for columns in self.indexed_column_sets():
            if columns and columns[0] == target:
                return True
        return False

    def add_index(self, index: Index) -> None:
        self.indexes[index.name.lower()] = index


@dataclass
class Schema:
    """A collection of tables plus schema-level indexes."""

    tables: dict[str, Table] = field(default_factory=dict)
    name: str = "public"

    def add_table(self, table: Table) -> None:
        self.tables[table.name.lower()] = table

    def get_table(self, name: str) -> Table | None:
        return self.tables.get(name.lower())

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def drop_table(self, name: str) -> None:
        self.tables.pop(name.lower(), None)

    @property
    def table_names(self) -> list[str]:
        return [t.name for t in self.tables.values()]

    @property
    def table_count(self) -> int:
        return len(self.tables)

    def all_indexes(self) -> list[Index]:
        indexes: list[Index] = []
        for table in self.tables.values():
            indexes.extend(table.indexes.values())
        return indexes

    def foreign_keys_to(self, table_name: str) -> list[tuple[str, ForeignKey]]:
        """All (owning-table, FK) pairs that reference ``table_name``."""
        result = []
        for table in self.tables.values():
            for fk in table.all_foreign_keys():
                if fk.referenced_table.lower() == table_name.lower():
                    result.append((table.name, fk))
        return result

    def resolve_column(self, column: str, hint_tables: list[str] | None = None
                       ) -> tuple[Table, Column] | None:
        """Find the (table, column) pair a bare column name refers to.

        When several tables define the column, tables in ``hint_tables`` win.
        """
        candidates: list[tuple[Table, Column]] = []
        for table in self.tables.values():
            col = table.get_column(column)
            if col is not None:
                candidates.append((table, col))
        if not candidates:
            return None
        if hint_tables:
            hints = {h.lower() for h in hint_tables}
            for table, col in candidates:
                if table.name.lower() in hints:
                    return table, col
        return candidates[0]
