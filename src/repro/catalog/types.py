"""SQL type system.

The catalog records each column's declared SQL type; several anti-pattern
rules reason about it (Rounding Errors needs to know a type has finite binary
precision, Incorrect Data Type compares declared vs. observed types, Missing
Timezone checks date-time types, Enumerated Types checks for ENUM/SET).
"""
from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field


class TypeFamily(enum.Enum):
    """Coarse-grained type families used by the detection rules."""

    INTEGER = "integer"
    APPROXIMATE_NUMERIC = "approximate_numeric"   # FLOAT / REAL / DOUBLE
    EXACT_NUMERIC = "exact_numeric"               # DECIMAL / NUMERIC
    TEXT = "text"
    BINARY = "binary"
    BOOLEAN = "boolean"
    DATE = "date"
    TIME = "time"
    DATETIME = "datetime"
    UUID = "uuid"
    JSON = "json"
    ENUM = "enum"
    OTHER = "other"


_FAMILY_BY_NAME: dict[str, TypeFamily] = {
    "INT": TypeFamily.INTEGER,
    "INTEGER": TypeFamily.INTEGER,
    "TINYINT": TypeFamily.INTEGER,
    "SMALLINT": TypeFamily.INTEGER,
    "MEDIUMINT": TypeFamily.INTEGER,
    "BIGINT": TypeFamily.INTEGER,
    "SERIAL": TypeFamily.INTEGER,
    "SMALLSERIAL": TypeFamily.INTEGER,
    "BIGSERIAL": TypeFamily.INTEGER,
    "YEAR": TypeFamily.INTEGER,
    "BIT": TypeFamily.INTEGER,
    "FLOAT": TypeFamily.APPROXIMATE_NUMERIC,
    "REAL": TypeFamily.APPROXIMATE_NUMERIC,
    "DOUBLE": TypeFamily.APPROXIMATE_NUMERIC,
    "DOUBLE PRECISION": TypeFamily.APPROXIMATE_NUMERIC,
    "DECIMAL": TypeFamily.EXACT_NUMERIC,
    "NUMERIC": TypeFamily.EXACT_NUMERIC,
    "MONEY": TypeFamily.EXACT_NUMERIC,
    "CHAR": TypeFamily.TEXT,
    "NCHAR": TypeFamily.TEXT,
    "VARCHAR": TypeFamily.TEXT,
    "NVARCHAR": TypeFamily.TEXT,
    "CHARACTER": TypeFamily.TEXT,
    "CHARACTER VARYING": TypeFamily.TEXT,
    "TEXT": TypeFamily.TEXT,
    "TINYTEXT": TypeFamily.TEXT,
    "MEDIUMTEXT": TypeFamily.TEXT,
    "LONGTEXT": TypeFamily.TEXT,
    "CLOB": TypeFamily.TEXT,
    "STRING": TypeFamily.TEXT,
    "BLOB": TypeFamily.BINARY,
    "BYTEA": TypeFamily.BINARY,
    "BINARY": TypeFamily.BINARY,
    "VARBINARY": TypeFamily.BINARY,
    "BOOLEAN": TypeFamily.BOOLEAN,
    "BOOL": TypeFamily.BOOLEAN,
    "DATE": TypeFamily.DATE,
    "TIME": TypeFamily.TIME,
    "DATETIME": TypeFamily.DATETIME,
    "DATETIME2": TypeFamily.DATETIME,
    "TIMESTAMP": TypeFamily.DATETIME,
    "TIMESTAMPTZ": TypeFamily.DATETIME,
    "SMALLDATETIME": TypeFamily.DATETIME,
    "UUID": TypeFamily.UUID,
    "JSON": TypeFamily.JSON,
    "JSONB": TypeFamily.JSON,
    "XML": TypeFamily.JSON,
    "ENUM": TypeFamily.ENUM,
    "SET": TypeFamily.ENUM,
}

_TYPE_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z][A-Za-z0-9_ ]*)\s*(\(\s*(?P<args>[^)]*)\s*\))?\s*(?P<suffix>.*)$"
)


@dataclass(frozen=True)
class SQLType:
    """A declared SQL column type.

    Attributes:
        name: normalised (upper-case) type name, e.g. ``VARCHAR``.
        length: declared length/precision, e.g. 30 for ``VARCHAR(30)``.
        scale: declared scale for exact numerics, e.g. 2 for ``DECIMAL(10,2)``.
        enum_values: permitted values for ``ENUM('a','b')`` / ``SET(...)``.
        with_timezone: True for ``TIMESTAMP WITH TIME ZONE`` / ``TIMESTAMPTZ``.
        raw: the original type text as written in the DDL.
    """

    name: str
    length: int | None = None
    scale: int | None = None
    enum_values: tuple[str, ...] = ()
    with_timezone: bool = False
    raw: str = ""

    @property
    def family(self) -> TypeFamily:
        return _FAMILY_BY_NAME.get(self.name, TypeFamily.OTHER)

    @property
    def is_numeric(self) -> bool:
        return self.family in (
            TypeFamily.INTEGER,
            TypeFamily.APPROXIMATE_NUMERIC,
            TypeFamily.EXACT_NUMERIC,
        )

    @property
    def is_textual(self) -> bool:
        return self.family is TypeFamily.TEXT

    @property
    def is_temporal(self) -> bool:
        return self.family in (TypeFamily.DATE, TypeFamily.TIME, TypeFamily.DATETIME)

    @property
    def is_approximate(self) -> bool:
        """True for types with finite binary precision (FLOAT/REAL/DOUBLE)."""
        return self.family is TypeFamily.APPROXIMATE_NUMERIC

    @property
    def is_enum(self) -> bool:
        return self.family is TypeFamily.ENUM

    def __str__(self) -> str:
        return self.raw or self.name


def parse_type(text: str) -> SQLType:
    """Parse a SQL type expression (``VARCHAR(30)``, ``DECIMAL(10,2)``,
    ``TIMESTAMP WITH TIME ZONE``, ``ENUM('a','b')``) into a :class:`SQLType`.

    The parser is tolerant: unknown types map to the ``OTHER`` family.
    """
    raw = text.strip()
    if not raw:
        return SQLType(name="UNKNOWN", raw=raw)
    match = _TYPE_RE.match(raw)
    if not match:
        return SQLType(name=raw.upper(), raw=raw)
    name = re.sub(r"\s+", " ", match.group("name")).strip().upper()
    args = match.group("args") or ""
    suffix = (match.group("suffix") or "").upper()

    with_timezone = False
    if "WITH TIME ZONE" in suffix or name == "TIMESTAMPTZ":
        with_timezone = True
    if name.endswith(" WITH TIME ZONE"):
        name = name.replace(" WITH TIME ZONE", "").strip()
        with_timezone = True
    if name.endswith(" WITHOUT TIME ZONE"):
        name = name.replace(" WITHOUT TIME ZONE", "").strip()

    # normalise multi-word names
    if name.startswith("DOUBLE"):
        name = "DOUBLE"
    if name.startswith("CHARACTER VARYING"):
        name = "VARCHAR"

    length: int | None = None
    scale: int | None = None
    enum_values: tuple[str, ...] = ()
    if args:
        if name in ("ENUM", "SET"):
            enum_values = tuple(
                part.strip().strip("'\"") for part in args.split(",") if part.strip()
            )
        else:
            numbers = [p.strip() for p in args.split(",") if p.strip()]
            try:
                if numbers:
                    length = int(numbers[0])
                if len(numbers) > 1:
                    scale = int(numbers[1])
            except ValueError:
                pass
    return SQLType(
        name=name,
        length=length,
        scale=scale,
        enum_values=enum_values,
        with_timezone=with_timezone,
        raw=raw,
    )


def infer_type_from_value(value: object) -> TypeFamily:
    """Infer the type family a Python value naturally belongs to.

    Used by the data analyser to compare observed data against declared
    column types (Incorrect Data Type AP).
    """
    if value is None:
        return TypeFamily.OTHER
    if isinstance(value, bool):
        return TypeFamily.BOOLEAN
    if isinstance(value, int):
        return TypeFamily.INTEGER
    if isinstance(value, float):
        return TypeFamily.APPROXIMATE_NUMERIC
    text = str(value).strip()
    if not text:
        return TypeFamily.TEXT
    if re.fullmatch(r"[+-]?\d+", text):
        return TypeFamily.INTEGER
    if re.fullmatch(r"[+-]?\d*\.\d+([eE][+-]?\d+)?", text) or re.fullmatch(
        r"[+-]?\d+\.\d*([eE][+-]?\d+)?", text
    ):
        return TypeFamily.APPROXIMATE_NUMERIC
    if text.lower() in ("true", "false", "t", "f"):
        return TypeFamily.BOOLEAN
    if re.fullmatch(r"\d{4}-\d{2}-\d{2}", text):
        return TypeFamily.DATE
    if re.fullmatch(r"\d{4}-\d{2}-\d{2}[T ]\d{2}:\d{2}(:\d{2}(\.\d+)?)?([+-]\d{2}:?\d{2}|Z)?", text):
        return TypeFamily.DATETIME
    if re.fullmatch(r"\d{2}:\d{2}(:\d{2})?", text):
        return TypeFamily.TIME
    if re.fullmatch(r"[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}", text):
        return TypeFamily.UUID
    return TypeFamily.TEXT


def value_has_timezone(value: object) -> bool:
    """True when a datetime-looking string carries an explicit UTC offset."""
    text = str(value).strip()
    return bool(re.search(r"([+-]\d{2}:?\d{2}|Z)$", text)) and bool(
        re.match(r"\d{4}-\d{2}-\d{2}", text)
    )
