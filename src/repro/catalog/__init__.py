"""Schema catalog: SQL types, tables, constraints, indexes, and DDL interpretation."""
from .ddl_builder import DDLBuilder, build_schema
from .schema import (
    CheckConstraint,
    Column,
    ForeignKey,
    Index,
    Schema,
    Table,
    UniqueConstraint,
)
from .types import SQLType, TypeFamily, infer_type_from_value, parse_type, value_has_timezone

__all__ = [
    "CheckConstraint",
    "Column",
    "DDLBuilder",
    "ForeignKey",
    "Index",
    "SQLType",
    "Schema",
    "Table",
    "TypeFamily",
    "UniqueConstraint",
    "build_schema",
    "infer_type_from_value",
    "parse_type",
    "value_has_timezone",
]
