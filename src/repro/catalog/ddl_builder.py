"""DDL interpreter: build a :class:`Schema` from CREATE/ALTER statements.

When a live database connection is unavailable, the context builder falls
back to DDL statements to construct the application's schema context
(Algorithm 2: "If the database is not available, the ContextBuilder leverages
the DDL statements to construct the context").
"""
from __future__ import annotations

import re

from ..sqlparser import ParsedStatement, Token, TokenType, parse, parse_statement
from .schema import (
    CheckConstraint,
    Column,
    ForeignKey,
    Index,
    Schema,
    Table,
    UniqueConstraint,
)
from .types import parse_type

_CONSTRAINT_STARTERS = {
    "PRIMARY KEY",
    "FOREIGN KEY",
    "UNIQUE",
    "CHECK",
    "CONSTRAINT",
    "KEY",
    "INDEX",
    "EXCLUDE",
}


_DEFAULT_RE = re.compile(r"DEFAULT\s+(\S+)", re.IGNORECASE)
_CHECK_RE = re.compile(r"\bCHECK\b", re.IGNORECASE)
_OPEN_SPACE_RE = re.compile(r"\(\s+")
_SPACE_CLOSE_RE = re.compile(r"\s+\)")
_TRAILING_CLOSE_RE = re.compile(r"\s*\)\s*$")


class DDLBuilder:
    """Interprets DDL statements and incrementally updates a schema."""

    def __init__(self, schema: Schema | None = None):
        self.schema = schema if schema is not None else Schema()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def build(self, statements: "list[ParsedStatement] | list[str] | str") -> Schema:
        """Apply every DDL statement in ``statements`` to the schema."""
        for statement in self._coerce(statements):
            self.apply(statement)
        return self.schema

    def apply(self, statement: ParsedStatement | str) -> None:
        """Apply a single statement (non-DDL statements are ignored)."""
        if isinstance(statement, str):
            statement = parse_statement(statement)
        handler = {
            "CREATE_TABLE": self._apply_create_table,
            "CREATE_INDEX": self._apply_create_index,
            "ALTER_TABLE": self._apply_alter_table,
            "DROP": self._apply_drop,
        }.get(statement.statement_type)
        if handler is not None:
            handler(statement)

    # ------------------------------------------------------------------
    # CREATE TABLE
    # ------------------------------------------------------------------
    def _apply_create_table(self, statement: ParsedStatement) -> None:
        tokens = statement.meaningful_tokens()
        table_name = self._create_table_name(tokens)
        if not table_name:
            return
        table = Table(name=table_name)
        body = self._first_parenthesis_body(tokens)
        for item in self._split_top_level_commas(body):
            self._apply_table_item(table, item)
        self.schema.add_table(table)

    def _create_table_name(self, tokens: list[Token]) -> str | None:
        skip = {"CREATE", "TABLE", "IF", "NOT", "EXISTS", "TEMP", "TEMPORARY", "NOT EXISTS"}
        for token in tokens:
            if token.is_identifier:
                return token.unquoted()
            if token.is_keyword and token.normalized not in skip:
                return None
        return None

    def _apply_table_item(self, table: Table, item: list[Token]) -> None:
        if not item:
            return
        first = item[0]
        head = first.normalized if first.is_keyword else None
        if head == "CONSTRAINT":
            # CONSTRAINT <name> <constraint-def>
            name = item[1].unquoted() if len(item) > 1 and item[1].is_identifier else None
            self._apply_table_constraint(table, item[2:], name)
            return
        if head in _CONSTRAINT_STARTERS:
            self._apply_table_constraint(table, item, None)
            return
        if first.is_identifier:
            column = self._parse_column_definition(item)
            if column is not None:
                table.add_column(column)
                if column.is_primary_key and not table.primary_key:
                    table.primary_key = (column.name,)

    def _apply_table_constraint(self, table: Table, item: list[Token], name: str | None) -> None:
        if not item:
            return
        head = item[0].normalized if item[0].is_keyword else ""
        if head == "PRIMARY KEY":
            columns = self._identifier_list_in_parens(item)
            if columns:
                table.primary_key = tuple(columns)
                for column in columns:
                    col = table.get_column(column)
                    if col is not None:
                        col.is_primary_key = True
        elif head == "FOREIGN KEY":
            columns = self._identifier_list_in_parens(item)
            referenced_table, referenced_columns = self._references_target(item)
            if referenced_table:
                table.foreign_keys.append(
                    ForeignKey(
                        columns=tuple(columns),
                        referenced_table=referenced_table,
                        referenced_columns=tuple(referenced_columns),
                        name=name,
                        on_delete=self._on_action(item, "DELETE"),
                        on_update=self._on_action(item, "UPDATE"),
                    )
                )
        elif head in ("UNIQUE", "KEY", "INDEX"):
            columns = self._identifier_list_in_parens(item)
            if columns:
                if head == "UNIQUE":
                    table.uniques.append(UniqueConstraint(columns=tuple(columns), name=name))
                table.add_index(
                    Index(
                        name=name or f"idx_{table.name}_{'_'.join(columns)}".lower(),
                        table=table.name,
                        columns=tuple(columns),
                        unique=head == "UNIQUE",
                    )
                )
        elif head == "CHECK":
            expression = " ".join(t.value for t in item[1:])
            column, in_values = self._parse_check_expression(expression)
            table.checks.append(
                CheckConstraint(expression=expression, name=name, column=column, in_values=in_values)
            )
            if column:
                col = table.get_column(column)
                if col is not None:
                    col.has_check = True
                    if in_values:
                        col.check_values = in_values

    # ------------------------------------------------------------------
    # column definitions
    # ------------------------------------------------------------------
    def _parse_column_definition(self, item: list[Token]) -> Column | None:
        name = item[0].unquoted()
        type_tokens: list[Token] = []
        i = 1
        depth = 0
        # The type is everything up to the first constraint keyword at depth 0.
        constraint_keywords = {
            "PRIMARY KEY",
            "NOT NULL",
            "NULL",
            "UNIQUE",
            "DEFAULT",
            "REFERENCES",
            "CHECK",
            "AUTO_INCREMENT",
            "AUTOINCREMENT",
            "COLLATE",
            "GENERATED",
            "CONSTRAINT",
            "COMMENT",
            "ON",
        }
        while i < len(item):
            token = item[i]
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth = max(0, depth - 1)
            if depth == 0 and token.is_keyword and token.normalized in constraint_keywords:
                break
            type_tokens.append(token)
            i += 1
        type_text = self._render_type(type_tokens)
        column = Column(name=name, sql_type=parse_type(type_text))
        rest = item[i:]
        check_text = " ".join(t.value for t in rest)
        rest_text = check_text.upper()
        column.nullable = "NOT NULL" not in rest_text
        column.is_primary_key = "PRIMARY KEY" in rest_text
        column.is_unique = "UNIQUE" in rest_text or column.is_primary_key
        column.is_auto_increment = (
            "AUTO_INCREMENT" in rest_text
            or "AUTOINCREMENT" in rest_text
            or column.sql_type.name in ("SERIAL", "BIGSERIAL", "SMALLSERIAL")
        )
        default_match = _DEFAULT_RE.search(check_text)
        if default_match:
            column.default = default_match.group(1)
        # inline REFERENCES
        referenced_table, referenced_columns = self._references_target(rest)
        if referenced_table:
            column.references = ForeignKey(
                columns=(name,),
                referenced_table=referenced_table,
                referenced_columns=tuple(referenced_columns),
                on_delete=self._on_action(rest, "DELETE"),
                on_update=self._on_action(rest, "UPDATE"),
            )
        # inline CHECK (col IN (...)) or range checks
        if _CHECK_RE.search(check_text):
            column.has_check = True
            column_name, in_values = self._parse_check_expression(check_text)
            if in_values and (column_name is None or column_name.lower() == name.lower()):
                column.check_values = in_values
        return column

    def _render_type(self, tokens: list[Token]) -> str:
        parts: list[str] = []
        for token in tokens:
            if token.value in ("(", ")", ","):
                if token.value == "(" or not parts:
                    parts.append(token.value)
                else:
                    parts[-1] = parts[-1] + token.value if parts else token.value
                continue
            if parts and parts[-1].endswith("("):
                parts[-1] = parts[-1] + token.value
            elif parts and parts[-1].endswith(","):
                parts[-1] = parts[-1] + token.value
            else:
                parts.append(token.value)
        text = " ".join(parts)
        text = _OPEN_SPACE_RE.sub("(", text)
        text = _SPACE_CLOSE_RE.sub(")", text)
        text = _TRAILING_CLOSE_RE.sub(")", text) if "(" in text else text
        # close any unclosed parenthesis conservatively
        if text.count("(") > text.count(")"):
            text += ")"
        return text.strip()

    # ------------------------------------------------------------------
    # CREATE INDEX / ALTER TABLE / DROP
    # ------------------------------------------------------------------
    def _apply_create_index(self, statement: ParsedStatement) -> None:
        tokens = statement.meaningful_tokens()
        unique = any(t.is_keyword and t.normalized == "UNIQUE" for t in tokens)
        index_name: str | None = None
        table_name: str | None = None
        on_seen = False
        for token in tokens:
            if token.is_keyword and token.normalized == "ON":
                on_seen = True
                continue
            if token.is_identifier:
                if not on_seen and index_name is None:
                    index_name = token.unquoted()
                elif on_seen and table_name is None:
                    table_name = token.unquoted()
        columns = self._identifier_list_in_parens(tokens)
        if not table_name:
            return
        table = self.schema.get_table(table_name)
        if table is None:
            table = Table(name=table_name)
            self.schema.add_table(table)
        table.add_index(
            Index(
                name=index_name or f"idx_{table_name}_{'_'.join(columns)}".lower(),
                table=table_name,
                columns=tuple(columns),
                unique=unique,
            )
        )

    def _apply_alter_table(self, statement: ParsedStatement) -> None:
        tokens = statement.meaningful_tokens()
        table_name = None
        for token in tokens:
            if token.is_identifier:
                table_name = token.unquoted()
                break
        if not table_name:
            return
        table = self.schema.get_table(table_name)
        if table is None:
            table = Table(name=table_name)
            self.schema.add_table(table)
        text = " ".join(t.value for t in tokens)
        upper = text.upper()
        # Constraint additions, named (ADD CONSTRAINT x PRIMARY KEY ...) or
        # anonymous (ADD PRIMARY KEY ... / ADD FOREIGN KEY ... / ADD CHECK ...).
        if " ADD CONSTRAINT" in upper or re.search(
            r"\bADD\s+(CHECK|PRIMARY\s+KEY|FOREIGN\s+KEY|UNIQUE)\b", upper
        ):
            name_match = re.search(r"ADD\s+CONSTRAINT\s+(\w+)", text, re.IGNORECASE)
            name = name_match.group(1) if name_match else None
            column, in_values = self._parse_check_expression(text)
            if "CHECK" in upper:
                table.checks.append(
                    CheckConstraint(
                        expression=text[upper.find("CHECK"):], name=name, column=column, in_values=in_values
                    )
                )
                if column:
                    col = table.get_column(column)
                    if col is not None:
                        col.has_check = True
                        if in_values:
                            col.check_values = in_values
            if "FOREIGN KEY" in upper:
                fk_columns = self._identifier_list_in_parens(tokens)
                referenced_table, referenced_columns = self._references_target(tokens)
                if referenced_table:
                    table.foreign_keys.append(
                        ForeignKey(
                            columns=tuple(fk_columns),
                            referenced_table=referenced_table,
                            referenced_columns=tuple(referenced_columns),
                            name=name,
                            on_delete=self._on_action(tokens, "DELETE"),
                            on_update=self._on_action(tokens, "UPDATE"),
                        )
                    )
            if "PRIMARY KEY" in upper:
                pk_columns = self._identifier_list_in_parens(tokens)
                if pk_columns:
                    table.primary_key = tuple(pk_columns)
        elif re.search(r"\bADD\s+(COLUMN\s+)?\w+", upper) and "CONSTRAINT" not in upper:
            add_match = re.search(r"\bADD\s+(?:COLUMN\s+)?(.*)$", text, re.IGNORECASE | re.DOTALL)
            if add_match:
                column_statement = parse_statement(f"CREATE TABLE _t ({add_match.group(1)})")
                body = self._first_parenthesis_body(column_statement.meaningful_tokens())
                for item in self._split_top_level_commas(body):
                    if item and item[0].is_identifier:
                        column = self._parse_column_definition(item)
                        if column is not None:
                            table.add_column(column)
        if re.search(r"\bDROP\s+(COLUMN\s+)?", upper) and "CONSTRAINT" not in upper:
            drop_match = re.search(r"\bDROP\s+(?:COLUMN\s+)?(\w+)", text, re.IGNORECASE)
            if drop_match:
                table.drop_column(drop_match.group(1))
        if re.search(r"\bDROP\s+CONSTRAINT\b", upper):
            drop_match = re.search(r"DROP\s+CONSTRAINT\s+(?:IF\s+EXISTS\s+)?(\w+)", text, re.IGNORECASE)
            if drop_match:
                constraint_name = drop_match.group(1).lower()
                dropped = [c for c in table.checks if (c.name or "").lower() == constraint_name]
                table.checks = [c for c in table.checks if (c.name or "").lower() != constraint_name]
                table.foreign_keys = [
                    fk for fk in table.foreign_keys if (fk.name or "").lower() != constraint_name
                ]
                # Dropping a named CHECK also lifts the domain restriction that
                # was recorded on the column itself.
                for check in dropped:
                    if check.column:
                        column = table.get_column(check.column)
                        if column is not None:
                            column.check_values = ()
                            column.has_check = bool(table.checks) and any(
                                (c.column or "").lower() == check.column.lower() for c in table.checks
                            )

    def _apply_drop(self, statement: ParsedStatement) -> None:
        tokens = statement.meaningful_tokens()
        upper = [t.normalized for t in tokens if t.is_keyword]
        names = [t.unquoted() for t in tokens if t.is_identifier]
        if "TABLE" in upper and names:
            self.schema.drop_table(names[0])
        elif "INDEX" in upper and names:
            target = names[0].lower()
            for table in self.schema.tables.values():
                table.indexes.pop(target, None)

    # ------------------------------------------------------------------
    # shared low-level helpers
    # ------------------------------------------------------------------
    def _coerce(self, statements) -> list[ParsedStatement]:
        if isinstance(statements, str):
            return parse(statements)
        result: list[ParsedStatement] = []
        for statement in statements:
            if isinstance(statement, str):
                result.extend(parse(statement))
            else:
                result.append(statement)
        return result

    def _first_parenthesis_body(self, tokens: list[Token]) -> list[Token]:
        depth = 0
        body: list[Token] = []
        started = False
        for token in tokens:
            if token.value == "(":
                depth += 1
                if depth == 1:
                    started = True
                    continue
            elif token.value == ")":
                depth -= 1
                if depth == 0 and started:
                    break
            if started and depth >= 1:
                body.append(token)
        return body

    def _split_top_level_commas(self, tokens: list[Token]) -> list[list[Token]]:
        items: list[list[Token]] = []
        current: list[Token] = []
        depth = 0
        for token in tokens:
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth = max(0, depth - 1)
            if depth == 0 and token.ttype is TokenType.PUNCTUATION and token.value == ",":
                if current:
                    items.append(current)
                current = []
                continue
            current.append(token)
        if current:
            items.append(current)
        return items

    def _identifier_list_in_parens(self, tokens: list[Token]) -> list[str]:
        """Identifiers inside the first parenthesis that is NOT part of a
        REFERENCES target (used for PK/FK/index column lists)."""
        depth = 0
        inside_references = False
        columns: list[str] = []
        collecting = False
        for token in tokens:
            if token.is_keyword and token.normalized == "REFERENCES":
                inside_references = True
            if token.value == "(":
                depth += 1
                if depth == 1 and not inside_references and not columns:
                    collecting = True
                continue
            if token.value == ")":
                depth = max(0, depth - 1)
                if depth == 0:
                    collecting = False
                    if columns:
                        break
                continue
            if collecting and token.is_identifier:
                columns.append(token.unquoted())
        return columns

    def _references_target(self, tokens: list[Token]) -> tuple[str | None, list[str]]:
        referenced_table: str | None = None
        referenced_columns: list[str] = []
        seen_references = False
        depth_after = 0
        for token in tokens:
            if token.is_keyword and token.normalized == "REFERENCES":
                seen_references = True
                continue
            if not seen_references:
                continue
            if token.value == "(":
                depth_after += 1
                continue
            if token.value == ")":
                depth_after = max(0, depth_after - 1)
                if referenced_table and depth_after == 0:
                    break
                continue
            if token.is_identifier:
                if referenced_table is None:
                    referenced_table = token.unquoted()
                elif depth_after >= 1:
                    referenced_columns.append(token.unquoted())
            if token.is_keyword and referenced_table and depth_after == 0 and token.normalized in (
                "ON",
                "NOT NULL",
                "DEFAULT",
                "UNIQUE",
                "PRIMARY KEY",
                "CHECK",
            ):
                break
        return referenced_table, referenced_columns

    def _on_action(self, tokens: list[Token], action: str) -> str | None:
        text = " ".join(t.value for t in tokens).upper()
        match = re.search(rf"ON\s+{action}\s+(CASCADE|RESTRICT|SET NULL|SET DEFAULT|NO ACTION)", text)
        return match.group(1) if match else None

    def _parse_check_expression(self, expression: str) -> tuple[str | None, tuple[str, ...]]:
        """Extract ``(column, permitted values)`` from ``CHECK (col IN (...))``."""
        match = re.search(r"\(?\s*(\w+)\s+IN\s*\(([^)]*)\)", expression, re.IGNORECASE)
        if not match:
            # range-style checks: CHECK (rating BETWEEN 1 AND 5) / (col >= x)
            range_match = re.search(r"\(?\s*(\w+)\s*(BETWEEN|[<>]=?)", expression, re.IGNORECASE)
            if range_match:
                return range_match.group(1), ()
            return None, ()
        column = match.group(1)
        values = tuple(v.strip().strip("'\"") for v in match.group(2).split(",") if v.strip())
        return column, values


def build_schema(statements: "list[ParsedStatement] | list[str] | str") -> Schema:
    """Build a fresh :class:`Schema` from DDL statements."""
    return DDLBuilder().build(statements)
