"""The data analyser: profiles tables and produces table/column statistics.

Algorithm 3's outer loop ("for table t in D.tables: sample tuples, apply
data rules") uses the profiles computed here.  The profiler accepts either
an engine :class:`~repro.engine.Database` or plain row dictionaries, so data
rules can be exercised in tests without standing up an engine instance.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..catalog.schema import Table
from .column_profile import ColumnProfile, profile_column
from .sampler import Sampler


@dataclass
class TableProfile:
    """Profile of one table: row count and per-column statistics."""

    name: str
    row_count: int = 0
    sampled_rows: int = 0
    columns: dict[str, ColumnProfile] = field(default_factory=dict)
    definition: Table | None = None

    def column(self, name: str) -> ColumnProfile | None:
        return self.columns.get(name.lower())

    def column_names(self) -> list[str]:
        return [profile.name for profile in self.columns.values()]

    @property
    def column_count(self) -> int:
        return len(self.columns)


class DataProfiler:
    """Builds :class:`TableProfile` objects from stored rows."""

    def __init__(self, sampler: Sampler | None = None):
        self.sampler = sampler or Sampler()

    # ------------------------------------------------------------------
    # profiling entry points
    # ------------------------------------------------------------------
    def profile_rows(
        self,
        table_name: str,
        rows: Sequence[Mapping[str, Any]],
        definition: Table | None = None,
    ) -> TableProfile:
        """Profile a table given its rows (each a mapping column -> value)."""
        rows = list(rows)
        sampled = self.sampler.sample(rows)
        profile = TableProfile(
            name=table_name,
            row_count=len(rows),
            sampled_rows=len(sampled),
            definition=definition,
        )
        columns = self._column_names(sampled, definition)
        for column in columns:
            values = [self._value(row, column) for row in sampled]
            profile.columns[column.lower()] = profile_column(column, values, table=table_name)
        return profile

    def profile_database(self, database: "Any") -> dict[str, TableProfile]:
        """Profile every table of an engine :class:`Database` (or anything
        exposing ``tables`` with ``all_rows()`` and ``definition``)."""
        profiles: dict[str, TableProfile] = {}
        for stored in database.tables.values():
            profiles[stored.name.lower()] = self.profile_rows(
                stored.name, stored.all_rows(), definition=stored.definition
            )
        return profiles

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _column_names(
        self, rows: Sequence[Mapping[str, Any]], definition: Table | None
    ) -> list[str]:
        if definition is not None and definition.columns:
            return definition.column_names
        names: list[str] = []
        seen: set[str] = set()
        for row in rows:
            for key in row:
                if key.lower() not in seen:
                    seen.add(key.lower())
                    names.append(key)
        return names

    def _value(self, row: Mapping[str, Any], column: str) -> Any:
        if column in row:
            return row[column]
        lowered = column.lower()
        for key, value in row.items():
            if key.lower() == lowered:
                return value
        return None
