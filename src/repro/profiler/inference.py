"""Format-inference heuristics used by the data-analysis rules.

Each helper answers one narrow question about a column's values (does it
look like a delimiter-separated list? a file path? a derived column?), so
the data rules in :mod:`repro.rules.data` stay short and declarative.
"""
from __future__ import annotations

import re
from typing import Any, Iterable, Sequence

_DELIMITERS = (",", ";", "|", "/")
_PATH_RE = re.compile(
    r"^([A-Za-z]:\\|\\\\|/|\./|\.\./|~/)[\w\-./\\ ]+\.\w{1,5}$|^[\w\-./\\ ]+\.(jpg|jpeg|png|gif|pdf|csv|txt|doc|docx|xls|xlsx|mp3|mp4|zip)$",
    re.IGNORECASE,
)
_EMAIL_RE = re.compile(r"^[\w.+-]+@[\w-]+\.[\w.-]+$")
_URL_RE = re.compile(r"^https?://", re.IGNORECASE)
_PASSWORD_COLUMN_RE = re.compile(r"(passwd|password|pwd|secret)", re.IGNORECASE)
_HASH_RE = re.compile(r"^[0-9a-fA-F]{32,128}$|^\$2[aby]?\$")


def detect_delimited_values(values: Sequence[str]) -> tuple[str | None, float]:
    """Detect whether string values look like delimiter-separated lists.

    Returns (most common delimiter, fraction of values containing it as a
    separator between word-like items).  Values with free text (spaces around
    the delimiter, long prose) are not counted, which is what keeps columns
    such as ADDRESS from being flagged (§4.1's false-positive discussion).
    """
    if not values:
        return None, 0.0
    hits: dict[str, int] = {d: 0 for d in _DELIMITERS}
    for value in values:
        for delimiter in _DELIMITERS:
            if _looks_like_list(value, delimiter):
                hits[delimiter] += 1
    best = max(hits.items(), key=lambda kv: kv[1])
    if best[1] == 0:
        return None, 0.0
    return best[0], best[1] / len(values)


def _looks_like_list(value: str, delimiter: str) -> bool:
    if delimiter not in value:
        return False
    parts = [p.strip() for p in value.split(delimiter)]
    if len(parts) < 2:
        return False
    # every part must look like an atomic token (identifier-ish, no spaces)
    token_re = re.compile(r"^[\w.@+-]{1,64}$")
    return all(part and token_re.match(part) for part in parts)


def looks_like_file_path(value: str) -> bool:
    """True when a value looks like a filesystem path or media file reference."""
    value = value.strip()
    if not value or len(value) > 300:
        return False
    if _URL_RE.match(value):
        return bool(re.search(r"\.(jpg|jpeg|png|gif|pdf|mp3|mp4|zip)$", value, re.IGNORECASE))
    return bool(_PATH_RE.match(value))


def looks_like_email(value: str) -> bool:
    return bool(_EMAIL_RE.match(value.strip()))


def looks_like_plaintext_password_column(column_name: str, values: Iterable[Any]) -> bool:
    """True when a password-ish column appears to hold plain-text values
    (short strings that are not digests)."""
    if not _PASSWORD_COLUMN_RE.search(column_name):
        return False
    observed = [str(v) for v in values if v is not None]
    if not observed:
        return True  # name alone is suspicious when we cannot see data
    plain = [v for v in observed if not _HASH_RE.match(v)]
    return len(plain) / len(observed) >= 0.5


def detect_derived_pair(
    first_name: str,
    first_values: Sequence[Any],
    second_name: str,
    second_values: Sequence[Any],
) -> bool:
    """Detect the Information Duplication AP: one column derivable from another.

    Two signals are used: (1) a name pair known to be derivable (age /
    birth-date, total / price*quantity-style prefixes), or (2) a perfect
    functional dependency in both directions with identical distinct counts
    and a derivation-looking name.
    """
    name_pairs = (
        ("age", "birth"),
        ("age", "dob"),
        ("year", "date"),
        ("total", "amount"),
        ("fullname", "firstname"),
        ("full_name", "first_name"),
    )
    a, b = first_name.lower(), second_name.lower()
    for derived, source in name_pairs:
        if (derived in a and source in b) or (derived in b and source in a):
            return True
    # functional dependency check on aligned value pairs
    pairs = [
        (x, y)
        for x, y in zip(first_values, second_values)
        if x is not None and y is not None
    ]
    if len(pairs) < 10:
        return False
    forward: dict[Any, Any] = {}
    backward: dict[Any, Any] = {}
    for x, y in pairs:
        if forward.setdefault(x, y) != y:
            return False
        if backward.setdefault(y, x) != x:
            return False
    # bijective mapping between the two columns -> one is derivable
    distinct = len({x for x, _ in pairs})
    return distinct > 1 and distinct < len(pairs)
