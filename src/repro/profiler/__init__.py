"""Data profiling: column/table statistics that power the data-analysis rules."""
from .column_profile import ColumnProfile
from .inference import (
    detect_delimited_values,
    detect_derived_pair,
    looks_like_email,
    looks_like_file_path,
    looks_like_plaintext_password_column,
)
from .profiler import DataProfiler, TableProfile
from .sampler import Sampler

__all__ = [
    "ColumnProfile",
    "DataProfiler",
    "Sampler",
    "TableProfile",
    "detect_delimited_values",
    "detect_derived_pair",
    "looks_like_email",
    "looks_like_file_path",
    "looks_like_plaintext_password_column",
]
