"""Per-column statistics computed by the data analyser."""
from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any

from ..catalog.types import TypeFamily, infer_type_from_value, value_has_timezone
from .inference import detect_delimited_values, looks_like_file_path


@dataclass
class ColumnProfile:
    """Statistics for a single column over the sampled rows.

    These are the facts the paper's data analyser collects: "the distribution
    of the data in the component columns (e.g., unique values, mean, median)"
    plus format inferences used by individual data rules.
    """

    name: str
    table: str = ""
    values_sampled: int = 0
    null_count: int = 0
    distinct_count: int = 0
    inferred_family: TypeFamily = TypeFamily.OTHER
    family_counts: dict[TypeFamily, int] = field(default_factory=dict)
    mean: float | None = None
    median: float | None = None
    min_value: Any = None
    max_value: Any = None
    average_length: float | None = None
    most_common_value: Any = None
    most_common_fraction: float = 0.0
    delimiter: str | None = None
    delimited_fraction: float = 0.0
    timezone_fraction: float = 0.0
    file_path_fraction: float = 0.0

    # -- derived ratios ------------------------------------------------------
    @property
    def non_null_count(self) -> int:
        return self.values_sampled - self.null_count

    @property
    def null_fraction(self) -> float:
        if self.values_sampled == 0:
            return 0.0
        return self.null_count / self.values_sampled

    @property
    def distinct_ratio(self) -> float:
        """Distinct values over non-null values (1.0 = all unique)."""
        if self.non_null_count == 0:
            return 0.0
        return self.distinct_count / self.non_null_count

    @property
    def is_constant(self) -> bool:
        return self.non_null_count > 0 and self.distinct_count <= 1

    @property
    def is_all_null(self) -> bool:
        return self.values_sampled > 0 and self.null_count == self.values_sampled

    @property
    def looks_delimited(self) -> bool:
        return self.delimiter is not None and self.delimited_fraction >= 0.5


def profile_column(name: str, values: list[Any], table: str = "") -> ColumnProfile:
    """Compute a :class:`ColumnProfile` from sampled values."""
    profile = ColumnProfile(name=name, table=table, values_sampled=len(values))
    non_null = [v for v in values if v is not None]
    profile.null_count = len(values) - len(non_null)
    if not non_null:
        return profile

    as_keys = [_hashable(v) for v in non_null]
    counts: dict[Any, int] = {}
    for key in as_keys:
        counts[key] = counts.get(key, 0) + 1
    profile.distinct_count = len(counts)
    most_common = max(counts.items(), key=lambda kv: kv[1])
    profile.most_common_value = most_common[0]
    profile.most_common_fraction = most_common[1] / len(non_null)

    family_counts: dict[TypeFamily, int] = {}
    for value in non_null:
        family = infer_type_from_value(value)
        family_counts[family] = family_counts.get(family, 0) + 1
    profile.family_counts = family_counts
    profile.inferred_family = max(family_counts.items(), key=lambda kv: kv[1])[0]

    numbers = [_as_number(v) for v in non_null]
    numbers = [n for n in numbers if n is not None]
    if numbers:
        profile.mean = statistics.fmean(numbers)
        profile.median = statistics.median(numbers)
        profile.min_value = min(numbers)
        profile.max_value = max(numbers)
    else:
        text_values = sorted(str(v) for v in non_null)
        profile.min_value = text_values[0]
        profile.max_value = text_values[-1]

    text_lengths = [len(str(v)) for v in non_null]
    profile.average_length = statistics.fmean(text_lengths) if text_lengths else None

    delimiter, fraction = detect_delimited_values([str(v) for v in non_null])
    profile.delimiter = delimiter
    profile.delimited_fraction = fraction

    timezone_hits = sum(1 for v in non_null if value_has_timezone(v))
    profile.timezone_fraction = timezone_hits / len(non_null)

    path_hits = sum(1 for v in non_null if looks_like_file_path(str(v)))
    profile.file_path_fraction = path_hits / len(non_null)
    return profile


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return str(value)


def _as_number(value: Any) -> float | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value))
    except (TypeError, ValueError):
        return None
