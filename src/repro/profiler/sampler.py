"""Tuple sampling.

Data analysis is computationally expensive, so ap-detect samples tuples from
each table instead of scanning everything (§4.2: "It then collects samples
from each table in the examined database"; the sampling frequency is
configurable).  The sampler is deterministic for reproducibility.
"""
from __future__ import annotations

import random
from typing import Any, Sequence


class Sampler:
    """Deterministic reservoir-style sampler over table rows."""

    def __init__(self, sample_size: int = 1000, seed: int = 7):
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        self.sample_size = sample_size
        self.seed = seed

    def sample(self, rows: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
        """Sample up to ``sample_size`` rows.

        Small tables are returned in full; larger tables are sampled without
        replacement using a seeded PRNG so repeated runs see the same sample.
        """
        rows = list(rows)
        if len(rows) <= self.sample_size:
            return rows
        rng = random.Random(self.seed)
        return rng.sample(rows, self.sample_size)

    def sample_column(self, rows: Sequence[dict[str, Any]], column: str) -> list[Any]:
        """Sampled values of a single column (case-insensitive lookup)."""
        sampled = self.sample(rows)
        values: list[Any] = []
        lowered = column.lower()
        for row in sampled:
            if column in row:
                values.append(row[column])
                continue
            for key, value in row.items():
                if key.lower() == lowered:
                    values.append(value)
                    break
        return values
