"""Statement splitting.

Applications hand sqlcheck whole scripts or extracted query strings that may
contain several statements separated by semicolons.  The splitter cuts the
token stream on top-level semicolons while respecting strings, comments and
nested parentheses, again without validating the SQL.
"""
from __future__ import annotations

from .lexer import tokenize
from .tokens import Token, TokenType


def split_tokens(tokens: list[Token]) -> list[list[Token]]:
    """Split a flat token list into one token list per statement."""
    statements: list[list[Token]] = []
    current: list[Token] = []
    depth = 0
    for token in tokens:
        if token.ttype is TokenType.PUNCTUATION and token.value == "(":
            depth += 1
        elif token.ttype is TokenType.PUNCTUATION and token.value == ")":
            depth = max(0, depth - 1)
        if token.ttype is TokenType.PUNCTUATION and token.value == ";" and depth == 0:
            current.append(token)
            if _has_content(current):
                statements.append(current)
            current = []
            continue
        current.append(token)
    if _has_content(current):
        statements.append(current)
    return statements


def split(sql: str) -> list[str]:
    """Split SQL text into individual statement strings.

    Whitespace-only fragments are dropped; the trailing semicolon (when
    present) is preserved so round-tripping the text is loss-free.
    """
    statements = split_tokens(tokenize(sql))
    return ["".join(t.value for t in stmt).strip() for stmt in statements]


def _has_content(tokens: list[Token]) -> bool:
    return any(
        not t.is_whitespace and not t.is_comment and not (t.ttype is TokenType.PUNCTUATION and t.value == ";")
        for t in tokens
    )
