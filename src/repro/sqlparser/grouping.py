"""Token grouping: fold the flat token stream into a parse tree.

The grouping passes run in a fixed order:

1. parentheses (recursive),
2. function calls (identifier immediately followed by a parenthesis),
3. dotted / aliased identifiers,
4. binary comparisons,
5. comma-separated identifier lists,
6. WHERE clauses.

Each pass is tolerant: if a pattern does not match, the tokens stay as
leaves.  That is exactly the "annotated parse tree over a non-validating
parser" design the paper describes (§4.1).
"""
from __future__ import annotations

from .ast import (
    Comparison,
    Function,
    Group,
    Identifier,
    IdentifierList,
    Node,
    Parenthesis,
    Statement,
    TokenNode,
    Where,
)
from .tokens import Token, TokenType

# Keywords that terminate a WHERE clause at the same nesting level.
_WHERE_TERMINATORS = {
    "GROUP BY",
    "ORDER BY",
    "HAVING",
    "LIMIT",
    "OFFSET",
    "UNION",
    "UNION ALL",
    "INTERSECT",
    "EXCEPT",
    "RETURNING",
    "FETCH",
    "WINDOW",
}

# Keywords after which an identifier is expected (used to keep keywords such
# as function-like names out of identifier grouping).
_IDENTIFIER_BLOCKERS = {
    TokenType.KEYWORD,
    TokenType.DML_KEYWORD,
    TokenType.DDL_KEYWORD,
}


def group_statement(tokens: list[Token], statement_type: str = "UNKNOWN") -> Statement:
    """Build a :class:`Statement` tree from a flat token list."""
    nodes: list[Node] = [TokenNode(t) for t in tokens]
    nodes = _group_parentheses(nodes)
    nodes = _apply_recursively(nodes, _group_functions)
    nodes = _apply_recursively(nodes, _group_identifiers)
    nodes = _apply_recursively(nodes, _group_comparisons)
    nodes = _apply_recursively(nodes, _group_identifier_lists)
    nodes = _group_where(nodes)
    return Statement(nodes, statement_type=statement_type)


# ----------------------------------------------------------------------
# pass helpers
# ----------------------------------------------------------------------
def _apply_recursively(nodes: list[Node], transform) -> list[Node]:
    """Apply ``transform`` inside every existing child group, then at this level.

    Transforming bottom-up (children first, then the current list) guarantees
    that groups created by ``transform`` itself are not re-visited, which
    would otherwise nest single identifiers forever.
    """
    for node in nodes:
        if isinstance(node, Group):
            node.children = _apply_recursively(node.children, transform)
    return transform(nodes)


def _group_parentheses(nodes: list[Node]) -> list[Node]:
    """Fold balanced ``( ... )`` runs into :class:`Parenthesis` groups."""
    result: list[Node] = []
    stack: list[list[Node]] = []
    for node in nodes:
        if isinstance(node, TokenNode) and node.value == "(":
            stack.append([node])
        elif isinstance(node, TokenNode) and node.value == ")" and stack:
            group_children = stack.pop()
            group_children.append(node)
            paren = Parenthesis(group_children)
            if stack:
                stack[-1].append(paren)
            else:
                result.append(paren)
        else:
            if stack:
                stack[-1].append(node)
            else:
                result.append(node)
    # Unbalanced input: flush whatever is left as-is (non-validating).
    for leftovers in stack:
        result.extend(leftovers)
    return result


def _group_functions(nodes: list[Node]) -> list[Node]:
    """Fold ``name ( ... )`` into :class:`Function` groups.

    Keyword-like names (``IN``, ``VALUES``, datatypes, ...) are excluded so
    that ``VARCHAR(30)`` or ``IN (...)`` are not mistaken for function calls;
    datatype calls are handled by the catalog's type parser instead.
    """
    result: list[Node] = []
    i = 0
    while i < len(nodes):
        node = nodes[i]
        nxt = _next_meaningful(nodes, i + 1)
        if (
            isinstance(node, TokenNode)
            and node.ttype is TokenType.NAME
            and nxt is not None
            and isinstance(nodes[nxt], Parenthesis)
            and nxt == i + 1  # no whitespace between name and parenthesis
        ):
            result.append(Function([node, nodes[nxt]]))
            i = nxt + 1
            continue
        result.append(node)
        i += 1
    return result


def _group_identifiers(nodes: list[Node]) -> list[Node]:
    """Fold dotted and aliased names into :class:`Identifier` groups."""
    result: list[Node] = []
    i = 0
    while i < len(nodes):
        node = nodes[i]
        if isinstance(node, TokenNode) and node.token.is_identifier:
            j = i
            chain: list[Node] = [node]
            end = i
            # consume dotted components:  a . b . c
            while True:
                dot = _next_meaningful(nodes, end + 1)
                if dot is None or not (
                    isinstance(nodes[dot], TokenNode) and nodes[dot].value == "."
                ):
                    break
                part = _next_meaningful(nodes, dot + 1)
                if part is None or not (
                    isinstance(nodes[part], TokenNode)
                    and (nodes[part].token.is_identifier or nodes[part].ttype is TokenType.WILDCARD)
                ):
                    break
                chain.extend(nodes[end + 1 : part + 1])
                end = part
            # consume an alias:  AS alias   |   bare alias
            alias_idx = _next_meaningful(nodes, end + 1)
            if alias_idx is not None and isinstance(nodes[alias_idx], TokenNode):
                alias_node = nodes[alias_idx]
                if alias_node.token.match(TokenType.KEYWORD, "AS"):
                    name_idx = _next_meaningful(nodes, alias_idx + 1)
                    if name_idx is not None and isinstance(nodes[name_idx], TokenNode) and nodes[
                        name_idx
                    ].token.is_identifier:
                        chain.extend(nodes[end + 1 : name_idx + 1])
                        end = name_idx
                elif alias_node.token.is_identifier and alias_idx == end + 2:
                    # "Users u" style alias: exactly one whitespace separator
                    sep = nodes[end + 1]
                    if isinstance(sep, TokenNode) and sep.token.is_whitespace:
                        chain.extend(nodes[end + 1 : alias_idx + 1])
                        end = alias_idx
            if len(chain) > 1:
                result.append(Identifier(nodes[i : end + 1]))
                i = end + 1
                continue
            result.append(Identifier([node]))
            i += 1
            continue
        result.append(node)
        i += 1
    return result


def _group_comparisons(nodes: list[Node]) -> list[Node]:
    """Fold ``lhs <op> rhs`` into :class:`Comparison` groups."""
    result: list[Node] = []
    i = 0
    while i < len(nodes):
        node = nodes[i]
        if isinstance(node, TokenNode) and node.ttype is TokenType.COMPARISON:
            left_idx = _prev_meaningful_in(result)
            right_idx = _next_meaningful(nodes, i + 1)
            left_ok = left_idx is not None and _is_operand(result[left_idx])
            right_ok = right_idx is not None and _is_operand(nodes[right_idx])
            if left_ok and right_ok:
                # Keep the whitespace between the left operand and the operator
                # so serialising the tree reproduces the original text.
                comparison_children = result[left_idx:] + nodes[i : right_idx + 1]
                del result[left_idx:]
                result.append(Comparison(comparison_children))
                i = right_idx + 1
                continue
        result.append(node)
        i += 1
    return result


def _group_identifier_lists(nodes: list[Node]) -> list[Node]:
    """Fold runs of ``item , item , item`` into :class:`IdentifierList`."""
    result: list[Node] = []
    i = 0
    while i < len(nodes):
        node = nodes[i]
        if _is_list_item(node):
            comma_idx = _next_meaningful(nodes, i + 1)
            if comma_idx is not None and isinstance(nodes[comma_idx], TokenNode) and nodes[
                comma_idx
            ].value == ",":
                items: list[Node] = list(nodes[i : comma_idx + 1])
                end = comma_idx
                while True:
                    item_idx = _next_meaningful(nodes, end + 1)
                    if item_idx is None or not _is_list_item(nodes[item_idx]):
                        break
                    items.extend(nodes[end + 1 : item_idx + 1])
                    end = item_idx
                    next_comma = _next_meaningful(nodes, end + 1)
                    if next_comma is not None and isinstance(
                        nodes[next_comma], TokenNode
                    ) and nodes[next_comma].value == ",":
                        items.extend(nodes[end + 1 : next_comma + 1])
                        end = next_comma
                        continue
                    break
                result.append(IdentifierList(items))
                i = end + 1
                continue
        result.append(node)
        i += 1
    return result


def _group_where(nodes: list[Node]) -> list[Node]:
    """Fold the WHERE keyword and its condition into a :class:`Where` group."""
    result: list[Node] = []
    i = 0
    while i < len(nodes):
        node = nodes[i]
        if isinstance(node, TokenNode) and node.token.match(TokenType.KEYWORD, "WHERE"):
            end = len(nodes)
            for j in range(i + 1, len(nodes)):
                candidate = nodes[j]
                if isinstance(candidate, TokenNode) and candidate.token.is_keyword and (
                    candidate.normalized in _WHERE_TERMINATORS
                ):
                    end = j
                    break
                if isinstance(candidate, TokenNode) and candidate.value == ";":
                    end = j
                    break
            result.append(Where(nodes[i:end]))
            i = end
            continue
        result.append(node)
        i += 1
    return result


# ----------------------------------------------------------------------
# small utilities
# ----------------------------------------------------------------------
def _next_meaningful(nodes: list[Node], start: int) -> int | None:
    for idx in range(start, len(nodes)):
        node = nodes[idx]
        if isinstance(node, TokenNode) and (node.token.is_whitespace or node.token.is_comment):
            continue
        return idx
    return None


def _prev_meaningful_in(nodes: list[Node]) -> int | None:
    for idx in range(len(nodes) - 1, -1, -1):
        node = nodes[idx]
        if isinstance(node, TokenNode) and (node.token.is_whitespace or node.token.is_comment):
            continue
        return idx
    return None


def _is_operand(node: Node) -> bool:
    if isinstance(node, (Identifier, Function, Parenthesis)):
        return True
    if isinstance(node, TokenNode):
        return node.token.is_literal or node.ttype in (
            TokenType.PLACEHOLDER,
            TokenType.NAME,
            TokenType.QUOTED_NAME,
            TokenType.NUMBER,
            TokenType.STRING,
        ) or node.token.match(TokenType.KEYWORD, ("NULL", "TRUE", "FALSE", "CURRENT_TIMESTAMP"))
    return False


def _is_list_item(node: Node) -> bool:
    if isinstance(node, (Identifier, Function, Comparison, Parenthesis)):
        return True
    if isinstance(node, TokenNode):
        return node.token.is_literal or node.ttype in (
            TokenType.WILDCARD,
            TokenType.PLACEHOLDER,
            TokenType.DATATYPE,
        ) or node.token.match(TokenType.KEYWORD, ("NULL", "TRUE", "FALSE", "DEFAULT"))
    return False
