"""Statement fingerprinting and the annotation cache.

Real query corpora (the paper's 174k-statement GitHub corpus, ORM-generated
web-application workloads) are dominated by *literal-only duplication*: the
same statement template executed over and over with different constants.
This module canonicalizes a statement into a stable **fingerprint** — the
same idea as ``pg_stat_statements``' queryid — so the toolchain can detect a
template once and replay the result cheaply:

* :func:`canonicalize` — keywords upper-cased, literals replaced by ``?``,
  whitespace and comments collapsed;
* :func:`fingerprint` — a short stable hash of the canonical form;
* :class:`AnnotationCache` — an LRU cache from fingerprint to parsed
  statement + annotation, used by the context builder to skip re-parsing.

Correctness note: two statements may share a fingerprint while differing in
rule-relevant literal content (``LIKE 'INV-2020%'`` is index-friendly,
``LIKE '%offer%'`` is the Pattern Matching anti-pattern).  The fingerprint is
therefore used as the *bucket* key, and every cache hit additionally verifies
the exact raw text, so cached results are byte-identical to cold-path
results by construction.
"""
from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable

from .lexer import tokenize
from .tokens import Token, TokenType

#: Literal-like token types normalized to a placeholder in the canonical form.
_LITERAL_TYPES = frozenset({TokenType.STRING, TokenType.NUMBER, TokenType.PLACEHOLDER})

#: Token types whose text is upper-cased in the canonical form.
_CASEFOLD_TYPES = frozenset(
    {
        TokenType.KEYWORD,
        TokenType.DDL_KEYWORD,
        TokenType.DML_KEYWORD,
        TokenType.DATATYPE,
        TokenType.NAME,
        TokenType.COMPARISON,
        TokenType.OPERATOR,
    }
)

#: Maximum number of exact-text variants kept per fingerprint bucket.
_VARIANTS_PER_BUCKET = 8


def canonicalize_tokens(tokens: Iterable[Token]) -> str:
    """Canonical text of an already-tokenized statement."""
    parts: list[str] = []
    for token in tokens:
        if token.is_whitespace or token.is_comment:
            continue
        if token.ttype in _LITERAL_TYPES:
            parts.append("?")
        elif token.ttype in _CASEFOLD_TYPES:
            parts.append(token.value.upper())
        else:
            parts.append(token.value)
    return " ".join(parts)


def canonicalize(sql: "str | Iterable[Token]") -> str:
    """Canonicalize a statement: upper-cased keywords and identifiers,
    literals normalized to ``?``, whitespace collapsed, comments dropped."""
    if isinstance(sql, str):
        return canonicalize_tokens(tokenize(sql))
    return canonicalize_tokens(sql)


def fingerprint(sql: "str | Iterable[Token]") -> str:
    """Stable 16-hex-digit fingerprint of a statement's canonical form."""
    canonical = canonicalize(sql)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


def combine_fingerprints(fingerprints: Iterable[str]) -> str:
    """Fingerprint of a multi-statement script from its statements'
    fingerprints (avoids re-tokenizing the combined text)."""
    digest = hashlib.blake2b(digest_size=8)
    for fp in fingerprints:
        digest.update(fp.encode("ascii"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters exposed through :class:`PipelineStats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Entry:
    """One exact-text variant stored under a fingerprint bucket."""

    raw: str
    value: object


@dataclass
class AnnotationCache:
    """LRU cache: fingerprint -> parsed statement + annotation.

    The cache is value-agnostic (the context builder stores lists of
    ``(ParsedStatement, QueryAnnotation)`` pairs) so it can also back other
    per-statement memos.  Lookups verify the exact raw text inside the
    fingerprint bucket, keeping hits byte-identical to the cold path.
    """

    maxsize: int = 2048
    stats: CacheStats = field(default_factory=CacheStats)
    _buckets: "OrderedDict[str, list[_Entry]]" = field(default_factory=OrderedDict)
    # raw text -> fingerprint, so lookups never tokenize: a miss must stay
    # cheaper than the parse it precedes.
    _raw_index: dict = field(default_factory=dict, repr=False)
    _size: int = field(default=0, repr=False)

    def __len__(self) -> int:
        return self._size

    def get(self, raw: str, *, fp: str | None = None) -> object | None:
        """Return the cached value for ``raw`` or None (LRU touch on hit)."""
        fp = fp if fp is not None else self._raw_index.get(raw)
        bucket = self._buckets.get(fp) if fp is not None else None
        if bucket is not None:
            for entry in bucket:
                if entry.raw == raw:
                    self._buckets.move_to_end(fp)
                    self.stats.hits += 1
                    return entry.value
        self.stats.misses += 1
        return None

    def put(self, raw: str, value: object, *, fp: str | None = None) -> str:
        """Store ``value`` under ``raw``; returns the fingerprint used.

        Pass ``fp`` when the statement is already tokenized (e.g. from
        ``ParsedStatement.fingerprint``) to avoid re-tokenizing ``raw``.
        """
        fp = fp if fp is not None else fingerprint(raw)
        bucket = self._buckets.get(fp)
        if bucket is None:
            bucket = self._buckets[fp] = []
        else:
            self._buckets.move_to_end(fp)
        for entry in bucket:
            if entry.raw == raw:
                entry.value = value
                return fp
        bucket.append(_Entry(raw=raw, value=value))
        self._raw_index[raw] = fp
        self._size += 1
        if len(bucket) > _VARIANTS_PER_BUCKET:
            dropped = bucket.pop(0)
            self._raw_index.pop(dropped.raw, None)
            self._size -= 1
            self.stats.evictions += 1
        # maxsize bounds total cached entries, not buckets: literal-variant
        # heavy corpora can hold several entries per fingerprint.
        while self._size > self.maxsize and self._buckets:
            _, evicted = self._buckets.popitem(last=False)
            for dropped in evicted:
                self._raw_index.pop(dropped.raw, None)
            self._size -= len(evicted)
            self.stats.evictions += len(evicted)
        return fp

    def info(self) -> dict:
        """Occupancy snapshot for health probes (``GET /api/health``)."""
        return {
            "entries": self._size,
            "buckets": len(self._buckets),
            "maxsize": self.maxsize,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
        }

    def clear(self) -> None:
        self._buckets.clear()
        self._raw_index.clear()
        self._size = 0
