"""Top-level parse API: SQL text -> list of parsed statements.

``parse`` is the function the rest of the toolchain uses.  Each parsed
statement bundles the raw text, the flat token stream, the grouped tree and
the inferred statement type.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from .ast import Statement
from .grouping import group_statement
from .lexer import tokenize
from .splitter import split_tokens
from .tokens import Token, TokenStream, TokenType

#: Statement types recognised by :func:`classify_statement`.
STATEMENT_TYPES = (
    "SELECT",
    "INSERT",
    "UPDATE",
    "DELETE",
    "CREATE_TABLE",
    "CREATE_INDEX",
    "CREATE_VIEW",
    "CREATE_OTHER",
    "ALTER_TABLE",
    "DROP",
    "TRUNCATE",
    "MERGE",
    "REPLACE",
    "OTHER",
    "EMPTY",
)


@dataclass(slots=True)
class ParsedStatement:
    """A single parsed SQL statement.

    Slotted: corpus runs hold tens of thousands of statements, and the
    detection rules hit these attributes constantly.  The grouped parse
    tree is built lazily on first :attr:`tree` access — the detection cold
    path never consumes it (only the serializer/fixer layers do), so the
    grouping pass stays off the hot path entirely.

    Attributes:
        raw: original statement text (whitespace preserved).
        tokens: flat token list including whitespace and comments.
        statement_type: one of :data:`STATEMENT_TYPES`.
        index: position of the statement within the parsed script.
        offset: character offset of the statement within the parsed text
            (``None`` when unknown).
        line: 1-based line number of the statement within the parsed text
            (``None`` when unknown).
    """

    raw: str
    tokens: list[Token]
    statement_type: str
    index: int = 0
    source: str | None = None
    #: character offset of the statement's first meaningful token within the
    #: text handed to :func:`parse`.  ``None`` when the position within the
    #: workload is unknown — statements parsed standalone, or handed in as a
    #: list whose element boundaries within any containing file are unknown
    #: (the batch paths clear positions at index-rebind time).
    offset: "int | None" = None
    #: 1-based line of that first token within the parsed text, or ``None``
    #: when unknown.  Reports and the SARIF emitter use (offset, line) to
    #: anchor findings to the input and omit the anchor when unknown.
    line: "int | None" = None
    #: character length of the span from the first to the last meaningful
    #: token (``raw`` can be longer — it keeps leading comments — so a
    #: region must not be sized with ``len(raw)``).  ``None`` when unknown.
    length: "int | None" = None
    #: 1-based line on which the meaningful span ends (≥ ``line``), or
    #: ``None`` when unknown.
    end_line: "int | None" = None
    #: True when ``raw`` is byte-identical to the source span
    #: ``text[offset:offset+length]`` — False when lexer normalisation
    #: (compound-keyword folding, stripped comments) made them differ.
    #: Emitters must only quote ``raw`` as the span's content when True.
    span_matches_raw: "bool | None" = None
    _fingerprint: str | None = field(default=None, init=False, repr=False, compare=False)
    _tree: "Statement | None" = field(default=None, init=False, repr=False, compare=False)
    _meaningful: "list[Token] | None" = field(default=None, init=False, repr=False, compare=False)

    @property
    def stream(self) -> TokenStream:
        return TokenStream(self.tokens)

    @property
    def tree(self) -> Statement:
        """Grouped parse tree, built on first access (cached)."""
        if self._tree is None:
            self._tree = group_statement(self.tokens, statement_type=self.statement_type)
        return self._tree

    def clear_position(self) -> None:
        """Mark the statement's position within the workload as unknown.

        The batch paths call this for statements parsed from list elements
        (their offsets are element-relative, not positions in a containing
        file); keeping the invariant in one place means a future position
        field cannot be forgotten at one of the call sites.
        """
        self.offset = None
        self.line = None
        self.length = None
        self.end_line = None
        self.span_matches_raw = None

    @property
    def fingerprint(self) -> str:
        """Stable fingerprint of the statement's canonical form (cached)."""
        if self._fingerprint is None:
            from .fingerprint import fingerprint as _fp

            self._fingerprint = _fp(self.tokens)
        return self._fingerprint

    def meaningful_tokens(self) -> list[Token]:
        """Tokens that are not whitespace or comments (cached — callers must
        treat the returned list as read-only)."""
        cached = self._meaningful
        if cached is None:
            cached = self._meaningful = [
                t for t in self.tokens if not t.is_whitespace and not t.is_comment
            ]
        return cached

    @property
    def is_ddl(self) -> bool:
        return self.statement_type in (
            "CREATE_TABLE",
            "CREATE_INDEX",
            "CREATE_VIEW",
            "CREATE_OTHER",
            "ALTER_TABLE",
            "DROP",
            "TRUNCATE",
        )

    @property
    def is_dml(self) -> bool:
        return self.statement_type in ("SELECT", "INSERT", "UPDATE", "DELETE", "MERGE", "REPLACE")

    def __str__(self) -> str:
        return self.raw


def classify_statement(tokens: list[Token]) -> str:
    """Infer the statement type from the first few meaningful tokens."""
    meaningful = [t for t in tokens if not t.is_whitespace and not t.is_comment]
    if not meaningful:
        return "EMPTY"
    # Skip a leading WITH ... CTE prelude by finding the first DML keyword.
    first = meaningful[0]
    if first.match(TokenType.KEYWORD, "WITH"):
        for token in meaningful[1:]:
            if token.ttype is TokenType.DML_KEYWORD:
                first = token
                break
    head = first.normalized
    if first.ttype is TokenType.DML_KEYWORD or head in ("INSERT INTO", "DELETE FROM"):
        if head.startswith("INSERT"):
            return "INSERT"
        if head.startswith("DELETE"):
            return "DELETE"
        if head == "SELECT":
            return "SELECT"
        if head == "UPDATE":
            return "UPDATE"
        if head == "MERGE":
            return "MERGE"
        if head in ("REPLACE", "UPSERT"):
            return "REPLACE"
    if first.ttype is TokenType.DDL_KEYWORD:
        second = meaningful[1].normalized if len(meaningful) > 1 else ""
        third = meaningful[2].normalized if len(meaningful) > 2 else ""
        if head == "CREATE":
            qualifier = {second, third}
            if "TABLE" in qualifier:
                return "CREATE_TABLE"
            if "INDEX" in qualifier or "UNIQUE" == second and "INDEX" in third:
                return "CREATE_INDEX"
            if "VIEW" in qualifier or "MATERIALIZED" in qualifier:
                return "CREATE_VIEW"
            return "CREATE_OTHER"
        if head == "ALTER":
            if second == "TABLE":
                return "ALTER_TABLE"
            return "OTHER"
        if head == "DROP":
            return "DROP"
        if head == "TRUNCATE":
            return "TRUNCATE"
    return "OTHER"


def parse_statement(sql: str, index: int = 0, source: str | None = None) -> ParsedStatement:
    """Parse a single statement string."""
    tokens = tokenize(sql)
    statement_type = classify_statement(tokens)
    return ParsedStatement(
        raw=sql,
        tokens=tokens,
        statement_type=statement_type,
        index=index,
        source=source,
    )


def parse(sql: str, source: str | None = None) -> list[ParsedStatement]:
    """Parse SQL text that may contain multiple ``;``-separated statements.

    Each statement records the character offset and 1-based line of its
    first meaningful token within ``sql``, so downstream reports (SARIF in
    particular) can point back into the original script.
    """
    all_tokens = tokenize(sql)
    last_token = all_tokens[-1] if all_tokens else None
    statements: list[ParsedStatement] = []
    # Running newline counter: line numbers over one pass of the script
    # instead of rescanning the prefix per statement (quadratic on the
    # corpus-scale path otherwise).
    line, scanned = 1, 0
    for i, stmt_tokens in enumerate(split_tokens(all_tokens)):
        raw = "".join(t.value for t in stmt_tokens).strip()
        statement_type = classify_statement(stmt_tokens)
        meaningful = [t for t in stmt_tokens if not t.is_whitespace and not t.is_comment]
        if meaningful:
            offset = meaningful[0].position
            # A token's source extent ends where the next token begins:
            # folded compound keywords carry a normalised value ("NOT  NULL"
            # becomes "NOT NULL"), so len(value) understates the consumed
            # source.  The successor is searched within the chunk; a
            # meaningful chunk-final token is either the script's last
            # token (extent = len(sql)) or a one-char ";" (len is exact).
            last = meaningful[-1]
            j = len(stmt_tokens) - 1
            while stmt_tokens[j] is not last:
                j -= 1
            if j + 1 < len(stmt_tokens):
                end = stmt_tokens[j + 1].position
            elif last is last_token:
                end = len(sql)
            else:
                end = last.position + len(last.value)
        else:
            offset = stmt_tokens[0].position if stmt_tokens else 0
            end = offset
        if offset > scanned:
            line += sql.count("\n", scanned, offset)
            scanned = offset
        statement = ParsedStatement(
            raw=raw,
            tokens=stmt_tokens,
            statement_type=statement_type,
            index=i,
            source=source,
            offset=offset,
            line=line,
            length=end - offset,
            end_line=line + sql.count("\n", offset, end),
            span_matches_raw=sql[offset:end] == raw,
        )
        # ``meaningful`` was just computed for the span math — seed the cache
        # so the annotator's first meaningful_tokens() call is free.
        statement._meaningful = meaningful
        statements.append(statement)
    return statements
