"""Statement annotation: extract structured facts from a parsed statement.

The paper addresses sqlparse's lack of a semantically-rich parse tree by
*annotating* the tree (§4.1).  This module is that annotation layer: it turns
a :class:`ParsedStatement` into a :class:`QueryAnnotation` carrying the
tables, columns, predicates, joins, and clause-level facts that the detection
rules, the context builder and the repair engine all consume.
"""
from __future__ import annotations

import re
from dataclasses import dataclass, field

from .parser import ParsedStatement, parse_statement
from .tokens import Token, TokenType

# Clause-introducing keywords for DML statements.
_CLAUSE_KEYWORDS = {
    "SELECT": "select",
    "FROM": "from",
    "WHERE": "where",
    "GROUP BY": "group_by",
    "HAVING": "having",
    "ORDER BY": "order_by",
    "LIMIT": "limit",
    "OFFSET": "offset",
    "SET": "set",
    "VALUES": "values",
    "RETURNING": "returning",
    "ON": "on",
    "USING": "using",
    "INTO": "into",
    "UPDATE": "update",
    "INSERT INTO": "into",
    "DELETE FROM": "from",
}

_JOIN_KEYWORDS = {
    "JOIN": "INNER",
    "INNER JOIN": "INNER",
    "LEFT JOIN": "LEFT",
    "LEFT OUTER JOIN": "LEFT",
    "RIGHT JOIN": "RIGHT",
    "RIGHT OUTER JOIN": "RIGHT",
    "FULL JOIN": "FULL",
    "FULL OUTER JOIN": "FULL",
    "CROSS JOIN": "CROSS",
    "NATURAL JOIN": "NATURAL",
}

_PATTERN_OPERATORS = {"LIKE", "NOT LIKE", "ILIKE", "NOT ILIKE", "REGEXP", "RLIKE", "SIMILAR TO", "GLOB"}

_RANDOM_FUNCTIONS = {"RAND", "RANDOM", "NEWID"}


@dataclass(frozen=True, slots=True)
class TableReference:
    """A table referenced by a statement, with its alias when present."""

    name: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True, slots=True)
class ColumnReference:
    """A column referenced by a statement, with its qualifier when present."""

    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True, slots=True)
class Predicate:
    """A simple predicate ``<column> <operator> <value>`` from WHERE/ON/HAVING.

    ``value`` holds the literal text when the right-hand side is a literal;
    ``value_column`` holds a column reference when the predicate compares two
    columns (as in a join condition).
    """

    column: ColumnReference | None
    operator: str
    value: str | None = None
    value_column: ColumnReference | None = None
    clause: str = "where"

    @property
    def is_column_comparison(self) -> bool:
        return self.value_column is not None


@dataclass(frozen=True, slots=True)
class JoinInfo:
    """A join clause: join type, joined table, and the raw ON condition."""

    join_type: str
    table: TableReference | None
    condition: str = ""


@dataclass(slots=True)
class QueryAnnotation:
    """Structured facts extracted from one SQL statement.

    Slotted: the detection rules read these attributes for every rule on
    every statement, so the per-instance dict is dropped and the hottest
    derived fact (:attr:`alias_map`) is computed once and cached.
    """

    statement: ParsedStatement
    statement_type: str = "OTHER"
    tables: list[TableReference] = field(default_factory=list)
    select_items: list[str] = field(default_factory=list)
    select_columns: list[ColumnReference] = field(default_factory=list)
    has_select_wildcard: bool = False
    is_distinct: bool = False
    joins: list[JoinInfo] = field(default_factory=list)
    predicates: list[Predicate] = field(default_factory=list)
    group_by_columns: list[ColumnReference] = field(default_factory=list)
    order_by_items: list[str] = field(default_factory=list)
    order_by_columns: list[ColumnReference] = field(default_factory=list)
    functions: set[str] = field(default_factory=set)
    string_literals: list[str] = field(default_factory=list)
    insert_columns: list[str] | None = None
    insert_values_rows: int = 0
    update_assignments: list[tuple[str, str]] = field(default_factory=list)
    limit: int | None = None
    uses_concat_operator: bool = False
    raw: str = ""
    # Cache for :attr:`alias_map`; safe because the annotator finishes
    # populating ``tables``/``joins`` before any consumer reads the map,
    # and annotations are never restructured afterwards.
    _alias_map: "dict[str, str] | None" = field(default=None, init=False, repr=False, compare=False)

    # -- derived facts -----------------------------------------------------
    @property
    def join_count(self) -> int:
        return len(self.joins)

    @property
    def alias_map(self) -> dict[str, str]:
        """Map from alias (lower-cased) to table name (cached)."""
        mapping = self._alias_map
        if mapping is not None:
            return mapping
        mapping = {}
        for table in self.tables:
            if table.alias:
                mapping[table.alias.lower()] = table.name
            mapping[table.name.lower()] = table.name
        for join in self.joins:
            if join.table is None:
                continue
            if join.table.alias:
                mapping[join.table.alias.lower()] = join.table.name
            mapping[join.table.name.lower()] = join.table.name
        self._alias_map = mapping
        return mapping

    @property
    def all_tables(self) -> list[TableReference]:
        """Tables from the FROM clause plus every joined table."""
        refs = list(self.tables)
        refs.extend(j.table for j in self.joins if j.table is not None)
        return refs

    def resolve_qualifier(self, qualifier: str | None) -> str | None:
        """Resolve a column qualifier (alias or table name) to a table name."""
        if qualifier is None:
            return None
        return self.alias_map.get(qualifier.lower(), qualifier)

    @property
    def pattern_predicates(self) -> list[Predicate]:
        return [p for p in self.predicates if p.operator in _PATTERN_OPERATORS]

    @property
    def uses_random_ordering(self) -> bool:
        for item in self.order_by_items:
            upper = item.upper()
            if any(fn + "(" in upper.replace(" ", "") or upper.strip() == fn for fn in _RANDOM_FUNCTIONS):
                return True
        return False

    def referenced_columns(self) -> list[ColumnReference]:
        """Every column reference extracted from any clause."""
        columns = list(self.select_columns)
        columns.extend(p.column for p in self.predicates if p.column is not None)
        columns.extend(p.value_column for p in self.predicates if p.value_column is not None)
        columns.extend(self.group_by_columns)
        columns.extend(self.order_by_columns)
        columns.extend(ColumnReference(name=a, qualifier=None) for a, _ in self.update_assignments)
        return columns


class QueryAnnotator:
    """Builds :class:`QueryAnnotation` objects from parsed statements."""

    def annotate(self, statement: ParsedStatement | str) -> QueryAnnotation:
        if isinstance(statement, str):
            statement = parse_statement(statement)
        annotation = QueryAnnotation(
            statement=statement,
            statement_type=statement.statement_type,
            raw=statement.raw,
        )
        tokens = statement.meaningful_tokens()
        if not tokens:
            return annotation
        if statement.statement_type in ("SELECT", "UPDATE", "DELETE", "INSERT", "MERGE", "REPLACE"):
            self._annotate_dml(annotation, tokens)
        else:
            self._annotate_generic(annotation, tokens)
        self._collect_functions_and_literals(annotation, tokens)
        return annotation

    # ------------------------------------------------------------------
    # DML annotation
    # ------------------------------------------------------------------
    def _annotate_dml(self, annotation: QueryAnnotation, tokens: list[Token]) -> None:
        clauses = self._split_clauses(tokens)
        for clause_name, clause_tokens in clauses:
            if clause_name == "distinct":
                annotation.is_distinct = True
            elif clause_name == "select":
                self._annotate_select_clause(annotation, clause_tokens)
            elif clause_name in ("from", "update", "into"):
                self._annotate_table_clause(annotation, clause_tokens)
            elif clause_name.startswith("join:"):
                join_type = clause_name.split(":", 1)[1]
                self._annotate_join_clause(annotation, join_type, clause_tokens)
            elif clause_name in ("where", "having", "on"):
                annotation.predicates.extend(
                    self._extract_predicates(clause_tokens, clause=clause_name)
                )
            elif clause_name == "group_by":
                annotation.group_by_columns.extend(self._extract_columns(clause_tokens))
            elif clause_name == "order_by":
                annotation.order_by_items.extend(self._split_on_commas(clause_tokens))
                annotation.order_by_columns.extend(self._extract_columns(clause_tokens))
            elif clause_name == "limit":
                annotation.limit = self._extract_limit(clause_tokens)
            elif clause_name == "set":
                annotation.update_assignments.extend(self._extract_assignments(clause_tokens))
            elif clause_name == "values":
                annotation.insert_values_rows = max(
                    1, sum(1 for t in clause_tokens if t.value == "(")
                )
        if annotation.statement_type == "INSERT":
            self._annotate_insert_columns(annotation, tokens)

    def _split_clauses(self, tokens: list[Token]) -> list[tuple[str, list[Token]]]:
        """Split the meaningful token list into (clause-name, tokens) pairs.

        Nested parentheses (sub-selects, IN lists, VALUES rows) stay inside
        the clause in which they appear.
        """
        clauses: list[tuple[str, list[Token]]] = []
        current_name = "head"
        current: list[Token] = []
        depth = 0
        for token in tokens:
            if token.ttype is TokenType.PUNCTUATION and token.value == "(":
                depth += 1
            elif token.ttype is TokenType.PUNCTUATION and token.value == ")":
                depth = max(0, depth - 1)
            if depth == 0 and token.is_keyword:
                keyword = token.normalized
                if keyword in _JOIN_KEYWORDS:
                    clauses.append((current_name, current))
                    current_name = f"join:{_JOIN_KEYWORDS[keyword]}"
                    current = []
                    continue
                if keyword in _CLAUSE_KEYWORDS:
                    # ON / USING belong to the join clause they follow, so the
                    # join condition stays attached to its JoinInfo.
                    if keyword in ("ON", "USING") and current_name.startswith("join:"):
                        current.append(token)
                        continue
                    clauses.append((current_name, current))
                    current_name = _CLAUSE_KEYWORDS[keyword]
                    current = []
                    if keyword == "UPDATE":
                        current_name = "update"
                    continue
                if keyword == "DISTINCT" and current_name == "select" and not current:
                    # DISTINCT immediately after SELECT
                    clauses.append(("distinct", [token]))
                    continue
            current.append(token)
        clauses.append((current_name, current))
        return [(name, toks) for name, toks in clauses if name != "head" or toks]

    def _annotate_select_clause(self, annotation: QueryAnnotation, tokens: list[Token]) -> None:
        if tokens and tokens[0].match(TokenType.KEYWORD, "DISTINCT"):
            annotation.is_distinct = True
            tokens = tokens[1:]
        # DISTINCT may also have been captured as a pseudo-clause by _split_clauses.
        items = self._split_on_commas(tokens)
        annotation.select_items.extend(items)
        for token in tokens:
            if token.ttype is TokenType.WILDCARD:
                annotation.has_select_wildcard = True
        annotation.select_columns.extend(self._extract_columns(tokens))

    def _annotate_table_clause(self, annotation: QueryAnnotation, tokens: list[Token]) -> None:
        for item in self._split_on_commas(tokens):
            ref = self._parse_table_reference(item)
            if ref is not None:
                annotation.tables.append(ref)

    def _annotate_join_clause(
        self, annotation: QueryAnnotation, join_type: str, tokens: list[Token]
    ) -> None:
        # A join clause looks like:  <table> [AS alias] ON <condition>
        on_index = None
        depth = 0
        for i, token in enumerate(tokens):
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth = max(0, depth - 1)
            if depth == 0 and token.match(TokenType.KEYWORD, ("ON", "USING")):
                on_index = i
                break
        table_tokens = tokens[:on_index] if on_index is not None else tokens
        condition_tokens = tokens[on_index + 1 :] if on_index is not None else []
        table_text = " ".join(t.value for t in table_tokens)
        table_ref = self._parse_table_reference(table_text)
        condition = " ".join(t.value for t in condition_tokens)
        annotation.joins.append(JoinInfo(join_type=join_type, table=table_ref, condition=condition))
        if condition_tokens:
            annotation.predicates.extend(self._extract_predicates(condition_tokens, clause="on"))

    def _annotate_insert_columns(self, annotation: QueryAnnotation, tokens: list[Token]) -> None:
        """INSERT INTO t (c1, c2) VALUES ... — detect the optional column list."""
        # Find the INTO target, then check whether a parenthesis appears before
        # VALUES / SELECT.
        values_idx = None
        for i, token in enumerate(tokens):
            if token.match(TokenType.KEYWORD, "VALUES") or (
                token.ttype is TokenType.DML_KEYWORD and token.normalized == "SELECT" and i > 0
            ):
                values_idx = i
                break
        head = tokens[:values_idx] if values_idx is not None else tokens
        # Columns are listed in the first parenthesis of the head section.
        try:
            open_idx = next(i for i, t in enumerate(head) if t.value == "(")
        except StopIteration:
            annotation.insert_columns = None
            return
        close_idx = None
        depth = 0
        for i in range(open_idx, len(head)):
            if head[i].value == "(":
                depth += 1
            elif head[i].value == ")":
                depth -= 1
                if depth == 0:
                    close_idx = i
                    break
        if close_idx is None:
            annotation.insert_columns = None
            return
        columns = [
            t.unquoted()
            for t in head[open_idx + 1 : close_idx]
            if t.is_identifier or t.ttype is TokenType.DATATYPE
        ]
        annotation.insert_columns = columns

    # ------------------------------------------------------------------
    # generic / DDL annotation
    # ------------------------------------------------------------------
    def _annotate_generic(self, annotation: QueryAnnotation, tokens: list[Token]) -> None:
        """For DDL we only record the target table; the catalog interprets DDL."""
        target = self._ddl_target_table(annotation.statement_type, tokens)
        if target:
            annotation.tables.append(TableReference(name=target))
        annotation.predicates.extend(self._extract_predicates(tokens, clause="ddl"))

    def _ddl_target_table(self, statement_type: str, tokens: list[Token]) -> str | None:
        names = [t for t in tokens if t.is_identifier]
        upper = [t.normalized for t in tokens if t.is_keyword]
        if statement_type in ("CREATE_TABLE", "ALTER_TABLE", "TRUNCATE", "DROP"):
            skip = {"IF", "NOT", "EXISTS", "TEMP", "TEMPORARY", "ONLY"}
            for token in tokens:
                if token.is_identifier:
                    return token.unquoted()
                if token.is_keyword and token.normalized not in (
                    {"CREATE", "ALTER", "DROP", "TRUNCATE", "TABLE"} | skip
                ):
                    # e.g. CREATE UNIQUE INDEX ... — handled below
                    break
        if statement_type == "CREATE_INDEX":
            # CREATE [UNIQUE] INDEX name ON table (...)
            on_seen = False
            for token in tokens:
                if token.is_keyword and token.normalized == "ON":
                    on_seen = True
                    continue
                if on_seen and token.is_identifier:
                    return token.unquoted()
        if names and statement_type not in ("CREATE_INDEX",):
            return names[0].unquoted()
        return None

    # ------------------------------------------------------------------
    # shared extraction helpers
    # ------------------------------------------------------------------
    def _split_on_commas(self, tokens: list[Token]) -> list[str]:
        items: list[str] = []
        current: list[str] = []
        depth = 0
        for token in tokens:
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth = max(0, depth - 1)
            if depth == 0 and token.ttype is TokenType.PUNCTUATION and token.value == ",":
                if current:
                    items.append(" ".join(current))
                current = []
                continue
            current.append(token.value)
        if current:
            items.append(" ".join(current))
        return [i.strip() for i in items if i.strip()]

    def _parse_table_reference(self, text: str) -> TableReference | None:
        text = text.strip()
        if not text or text.startswith("("):
            # Derived table / subquery: not a plain table reference.
            return None
        parts = re.split(r"\s+", text)
        name = parts[0].rstrip(",")
        name = _strip_quotes(name.split(".")[-1])
        alias = None
        rest = [p for p in parts[1:] if p]
        if rest:
            if rest[0].upper() == "AS" and len(rest) > 1:
                alias = _strip_quotes(rest[1])
            elif rest[0].upper() not in ("ON", "USING", "WHERE", "SET", "VALUES", "JOIN"):
                alias = _strip_quotes(rest[0])
        if not name or not re.match(r"^[A-Za-z_][\w$]*$", name):
            return None
        return TableReference(name=name, alias=alias)

    def _extract_columns(self, tokens: list[Token]) -> list[ColumnReference]:
        """Extract column references (qualified or bare) from a token run."""
        columns: list[ColumnReference] = []
        i = 0
        while i < len(tokens):
            token = tokens[i]
            if token.is_identifier:
                # qualified name?  a.b
                if i + 2 < len(tokens) and tokens[i + 1].value == "." and (
                    tokens[i + 2].is_identifier or tokens[i + 2].ttype is TokenType.WILDCARD
                ):
                    qualifier = token.unquoted()
                    name = tokens[i + 2].unquoted() if tokens[i + 2].is_identifier else "*"
                    columns.append(ColumnReference(name=name, qualifier=qualifier))
                    i += 3
                    continue
                # skip aliases following AS
                prev = tokens[i - 1] if i > 0 else None
                if prev is not None and prev.match(TokenType.KEYWORD, "AS"):
                    i += 1
                    continue
                # a bare name followed by "(" is a function, not a column
                nxt = tokens[i + 1] if i + 1 < len(tokens) else None
                if nxt is not None and nxt.value == "(":
                    i += 1
                    continue
                columns.append(ColumnReference(name=token.unquoted()))
            i += 1
        return columns

    def _extract_predicates(self, tokens: list[Token], clause: str) -> list[Predicate]:
        """Extract simple binary predicates from a condition token run."""
        predicates: list[Predicate] = []
        i = 0
        while i < len(tokens):
            token = tokens[i]
            is_comparison = token.ttype is TokenType.COMPARISON
            is_pattern = token.is_keyword and token.normalized in _PATTERN_OPERATORS
            is_membership = token.is_keyword and token.normalized in ("IN", "NOT IN", "BETWEEN", "NOT BETWEEN", "IS", "IS NOT")
            if is_comparison or is_pattern or is_membership:
                column = self._operand_column(tokens, i - 1, direction=-1)
                value_literal, value_column = self._operand_value(tokens, i + 1)
                operator = token.normalized
                if column is not None or value_column is not None:
                    predicates.append(
                        Predicate(
                            column=column,
                            operator=operator,
                            value=value_literal,
                            value_column=value_column,
                            clause=clause,
                        )
                    )
            i += 1
        return predicates

    def _operand_column(self, tokens: list[Token], index: int, direction: int) -> ColumnReference | None:
        """Column reference ending (direction=-1) or starting (+1) at index."""
        if index < 0 or index >= len(tokens):
            return None
        token = tokens[index]
        if not token.is_identifier:
            return None
        if direction == -1 and index >= 2 and tokens[index - 1].value == "." and tokens[index - 2].is_identifier:
            return ColumnReference(name=token.unquoted(), qualifier=tokens[index - 2].unquoted())
        if direction == 1 and index + 2 < len(tokens) and tokens[index + 1].value == "." and tokens[index + 2].is_identifier:
            return ColumnReference(name=tokens[index + 2].unquoted(), qualifier=token.unquoted())
        return ColumnReference(name=token.unquoted())

    def _operand_value(self, tokens: list[Token], index: int) -> tuple[str | None, ColumnReference | None]:
        """Literal text or column reference starting at ``index``."""
        if index >= len(tokens):
            return None, None
        token = tokens[index]
        if token.is_literal or token.ttype is TokenType.PLACEHOLDER:
            return token.value, None
        if token.is_keyword and token.normalized in ("NULL", "TRUE", "FALSE"):
            return token.normalized, None
        if token.is_identifier:
            return None, self._operand_column(tokens, index, direction=1)
        if token.value == "(":
            return "(...)", None
        return None, None

    def _extract_assignments(self, tokens: list[Token]) -> list[tuple[str, str]]:
        """Parse ``SET col = expr, col = expr`` into (column, expression) pairs."""
        assignments: list[tuple[str, str]] = []
        for item in self._split_on_commas(tokens):
            if "=" not in item:
                continue
            column, _, expression = item.partition("=")
            column = _strip_quotes(column.strip().split(".")[-1])
            assignments.append((column, expression.strip()))
        return assignments

    def _extract_limit(self, tokens: list[Token]) -> int | None:
        for token in tokens:
            if token.ttype is TokenType.NUMBER:
                try:
                    return int(float(token.value))
                except ValueError:  # pragma: no cover - defensive
                    return None
        return None

    def _collect_functions_and_literals(self, annotation: QueryAnnotation, tokens: list[Token]) -> None:
        for i, token in enumerate(tokens):
            if token.ttype is TokenType.STRING:
                annotation.string_literals.append(token.unquoted())
            if token.ttype is TokenType.OPERATOR and token.value == "||":
                annotation.uses_concat_operator = True
            if token.ttype is TokenType.NAME and i + 1 < len(tokens) and tokens[i + 1].value == "(":
                annotation.functions.add(token.value.upper())


def _strip_quotes(name: str) -> str:
    name = name.strip()
    if len(name) >= 2 and name[0] == name[-1] and name[0] in ('"', "`", "'"):
        return name[1:-1]
    if len(name) >= 2 and name[0] == "[" and name[-1] == "]":
        return name[1:-1]
    return name


_DEFAULT_ANNOTATOR = QueryAnnotator()


def annotate(statement: ParsedStatement | str) -> QueryAnnotation:
    """Annotate a statement using the shared default annotator."""
    return _DEFAULT_ANNOTATOR.annotate(statement)
