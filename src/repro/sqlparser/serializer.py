"""SQL serialization helpers.

The query repair engine transforms parse trees and must turn them back into
SQL text in the application's dialect (§6.1, "It then transforms the parse
tree to a SQL string based on the dialect used by the application").
"""
from __future__ import annotations

from .ast import Node
from .dialects import Dialect, GENERIC
from .lexer import tokenize
from .tokens import Token, TokenType


def to_sql(node: Node) -> str:
    """Serialize a parse-tree node back to SQL text (loss-free)."""
    return node.sql()


def format_sql(sql: str, *, keyword_case: str = "upper", strip_comments: bool = False) -> str:
    """Normalise whitespace and keyword casing of a SQL string.

    This is a light-weight formatter used when presenting suggested fixes:
    it never changes the statement structure.
    """
    tokens = tokenize(sql)
    parts: list[str] = []
    previous_meaningful: Token | None = None
    for token in tokens:
        if token.is_whitespace:
            continue
        if token.is_comment and strip_comments:
            continue
        text = token.value
        if token.is_keyword:
            text = text.upper() if keyword_case == "upper" else text.lower()
        if _needs_space(previous_meaningful, token):
            parts.append(" ")
        parts.append(text)
        previous_meaningful = token
    return "".join(parts).strip()


def _needs_space(previous: Token | None, current: Token) -> bool:
    if previous is None:
        return False
    no_space_before = {",", ";", ")", "."}
    no_space_after = {"(", "."}
    if current.value in no_space_before:
        return False
    if previous.value in no_space_after:
        return False
    if current.value == "(" and (previous.ttype is TokenType.NAME):
        return False  # function call
    return True


def quote_identifier(name: str, dialect: Dialect = GENERIC) -> str:
    """Quote an identifier if it needs quoting in the given dialect."""
    if name.isidentifier() and not name[0].isdigit():
        return name
    return dialect.quote_char + name + dialect.quote_close


def quote_literal(value: object) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"
