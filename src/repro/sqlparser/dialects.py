"""SQL dialect descriptors.

The toolchain is dialect tolerant (non-validating), but the repair engine and
serializer need a handful of dialect-specific facts: identifier quoting,
whether ``ENUM`` is a native type, the random-order function name, and the
concatenation operator.
"""
from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Dialect:
    """A minimal description of a SQL dialect."""

    name: str
    quote_char: str = '"'
    quote_close: str = '"'
    supports_enum_type: bool = False
    random_function: str = "RANDOM()"
    concat_operator: str = "||"
    supports_check_constraints: bool = True
    boolean_literals: tuple[str, str] = ("TRUE", "FALSE")


GENERIC = Dialect(name="generic")

POSTGRESQL = Dialect(
    name="postgresql",
    quote_char='"',
    quote_close='"',
    supports_enum_type=True,
    random_function="RANDOM()",
)

MYSQL = Dialect(
    name="mysql",
    quote_char="`",
    quote_close="`",
    supports_enum_type=True,
    random_function="RAND()",
    concat_operator="CONCAT",
)

SQLITE = Dialect(
    name="sqlite",
    quote_char='"',
    quote_close='"',
    supports_enum_type=False,
    random_function="RANDOM()",
)

SQLSERVER = Dialect(
    name="sqlserver",
    quote_char="[",
    quote_close="]",
    supports_enum_type=False,
    random_function="NEWID()",
    concat_operator="+",
)

DIALECTS: dict[str, Dialect] = {
    d.name: d for d in (GENERIC, POSTGRESQL, MYSQL, SQLITE, SQLSERVER)
}


def get_dialect(name: str | None) -> Dialect:
    """Look up a dialect by name, falling back to the generic dialect."""
    if not name:
        return GENERIC
    return DIALECTS.get(name.lower(), GENERIC)
