"""Parse-tree node classes.

The grouping pass (:mod:`repro.sqlparser.grouping`) folds the flat token
stream into a shallow tree of these nodes.  The tree is deliberately
*non-validating*: a malformed statement still produces a tree, it simply has
fewer composite nodes.  The paper's rules and the query repair engine both
walk this tree ("the tree-structured representation allows recursive
application of rules", §4.1).
"""
from __future__ import annotations

from typing import Iterable, Iterator

from .tokens import Token, TokenType


class Node:
    """Base class for every parse-tree node."""

    def flatten_tokens(self) -> Iterator[Token]:
        """Yield the raw tokens covered by this node, in source order."""
        raise NotImplementedError

    def sql(self) -> str:
        """Reconstruct the SQL text covered by this node."""
        return "".join(t.value for t in self.flatten_tokens())

    @property
    def is_group(self) -> bool:
        return isinstance(self, Group)


class TokenNode(Node):
    """Leaf node wrapping a single token."""

    __slots__ = ("token",)

    def __init__(self, token: Token):
        self.token = token

    def flatten_tokens(self) -> Iterator[Token]:
        yield self.token

    @property
    def ttype(self) -> TokenType:
        return self.token.ttype

    @property
    def value(self) -> str:
        return self.token.value

    @property
    def normalized(self) -> str:
        return self.token.normalized

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenNode({self.token.ttype.name}, {self.token.value!r})"


class Group(Node):
    """Composite node holding child nodes."""

    def __init__(self, children: Iterable[Node] | None = None):
        self.children: list[Node] = list(children or [])

    def flatten_tokens(self) -> Iterator[Token]:
        for child in self.children:
            yield from child.flatten_tokens()

    # -- navigation helpers -------------------------------------------------
    def meaningful_children(self) -> list[Node]:
        """Children that are not whitespace/comment leaves."""
        result = []
        for child in self.children:
            if isinstance(child, TokenNode) and (child.token.is_whitespace or child.token.is_comment):
                continue
            result.append(child)
        return result

    def walk(self) -> Iterator[Node]:
        """Depth-first traversal of the subtree (including self)."""
        yield self
        for child in self.children:
            if isinstance(child, Group):
                yield from child.walk()
            else:
                yield child

    def find_all(self, node_type: type) -> Iterator[Node]:
        """All descendant nodes (and possibly self) of the given class."""
        for node in self.walk():
            if isinstance(node, node_type):
                yield node

    def token_matching(self, ttype: TokenType, values: "str | tuple[str, ...] | None" = None
                       ) -> TokenNode | None:
        """First direct-child leaf matching the given type/values."""
        for child in self.children:
            if isinstance(child, TokenNode) and child.token.match(ttype, values):
                return child
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.sql()!r})"


class Parenthesis(Group):
    """A parenthesised group, including the surrounding ``(`` and ``)``."""

    def inner_children(self) -> list[Node]:
        """Children excluding the outer parentheses."""
        inner = []
        for child in self.meaningful_children():
            if isinstance(child, TokenNode) and child.value in ("(", ")"):
                continue
            inner.append(child)
        return inner


class Function(Group):
    """A function call: a name leaf followed by a :class:`Parenthesis`."""

    @property
    def name(self) -> str:
        for child in self.children:
            if isinstance(child, TokenNode) and not child.token.is_whitespace:
                return child.token.unquoted().upper()
            if isinstance(child, Identifier):
                return child.name.upper()
        return ""

    @property
    def arguments(self) -> Parenthesis | None:
        for child in self.children:
            if isinstance(child, Parenthesis):
                return child
        return None


class Identifier(Group):
    """A (possibly dotted, possibly aliased) identifier.

    Examples: ``users``, ``u.name``, ``Users AS u``, ``"Users" u``.
    """

    @property
    def parts(self) -> list[str]:
        """Dotted name components excluding the alias."""
        names: list[str] = []
        for child in self.children:
            if isinstance(child, TokenNode):
                if child.token.is_identifier:
                    names.append(child.token.unquoted())
                elif child.token.match(TokenType.KEYWORD, "AS"):
                    break
                elif child.token.is_whitespace:
                    # whitespace before a bare alias terminates the dotted name
                    if names:
                        break
        return names

    @property
    def name(self) -> str:
        """The final component of the dotted name (column or table name)."""
        parts = self.parts
        return parts[-1] if parts else ""

    @property
    def qualifier(self) -> str | None:
        """The table/schema qualifier, if the identifier is dotted."""
        parts = self.parts
        return parts[-2] if len(parts) >= 2 else None

    @property
    def alias(self) -> str | None:
        """Alias introduced via ``AS alias`` or a trailing bare name."""
        meaningful = [
            c for c in self.children
            if isinstance(c, TokenNode) and not c.token.is_whitespace and not c.token.is_comment
        ]
        saw_as = False
        dotted_done = False
        last_identifier: Token | None = None
        for i, child in enumerate(meaningful):
            token = child.token
            if token.match(TokenType.KEYWORD, "AS"):
                saw_as = True
                continue
            if token.is_identifier:
                if saw_as:
                    return token.unquoted()
                if dotted_done:
                    return token.unquoted()
                last_identifier = token
                # a dotted chain continues only when the next token is a dot
                nxt = meaningful[i + 1] if i + 1 < len(meaningful) else None
                if not (nxt is not None and nxt.token.value == "."):
                    dotted_done = True
        return None

    @property
    def full_name(self) -> str:
        """Dotted name joined with ``.`` (no alias)."""
        return ".".join(self.parts)


class IdentifierList(Group):
    """A comma-separated list of identifiers/expressions."""

    def items(self) -> list[Node]:
        """List elements (commas and whitespace removed)."""
        result = []
        for child in self.meaningful_children():
            if isinstance(child, TokenNode) and child.value == ",":
                continue
            result.append(child)
        return result


class Comparison(Group):
    """A binary comparison such as ``a.x = b.y`` or ``price > 10``."""

    def _sides(self) -> tuple[list[Node], TokenNode | None, list[Node]]:
        left: list[Node] = []
        right: list[Node] = []
        op: TokenNode | None = None
        for child in self.meaningful_children():
            if op is None and isinstance(child, TokenNode) and child.ttype is TokenType.COMPARISON:
                op = child
                continue
            (left if op is None else right).append(child)
        return left, op, right

    @property
    def left(self) -> Node | None:
        left, _, _ = self._sides()
        return left[0] if left else None

    @property
    def operator(self) -> str | None:
        _, op, _ = self._sides()
        return op.normalized if op else None

    @property
    def right(self) -> Node | None:
        _, _, right = self._sides()
        return right[0] if right else None


class Where(Group):
    """A WHERE clause (keyword plus condition tokens)."""


class Values(Group):
    """The VALUES(...) section of an INSERT statement."""


class Statement(Group):
    """Root node for a single SQL statement."""

    def __init__(self, children: Iterable[Node] | None = None, statement_type: str = "UNKNOWN"):
        super().__init__(children)
        self.statement_type = statement_type

    def first_keyword(self) -> str:
        for child in self.meaningful_children():
            tokens = list(child.flatten_tokens())
            for token in tokens:
                if token.is_keyword:
                    return token.normalized
        return ""
