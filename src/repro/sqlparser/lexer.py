"""Non-validating SQL lexer.

The lexer converts a SQL string into a flat list of :class:`Token` objects.
It never rejects input: unknown characters become ``UNKNOWN`` tokens, unknown
words become identifiers.  This mirrors the behaviour of ``sqlparse`` that
the paper relies on for dialect tolerance (§4.1).
"""
from __future__ import annotations

import re

from .keywords import (
    ALL_KEYWORDS,
    COMPARISON_OPERATORS,
    COMPOUND_KEYWORDS,
    DATATYPE_KEYWORDS,
    DDL_KEYWORDS,
    DML_KEYWORDS,
    OPERATORS,
)
from .tokens import Token, TokenType

_WHITESPACE_RE = re.compile(r"\s+")
_LINE_COMMENT_RE = re.compile(r"--[^\n]*|#[^\n]*")
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_NUMBER_RE = re.compile(r"\d+(\.\d+)?([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?")
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_STRING_RE = re.compile(r"'(?:[^']|'')*'")
_DOLLAR_STRING_RE = re.compile(r"\$([A-Za-z_]*)\$.*?\$\1\$", re.DOTALL)
_DOUBLE_QUOTED_RE = re.compile(r'"(?:[^"]|"")*"')
_BACKTICK_QUOTED_RE = re.compile(r"`(?:[^`]|``)*`")
_BRACKET_QUOTED_RE = re.compile(r"\[[^\]]*\]")
_PLACEHOLDER_RE = re.compile(r"\?|%\(\w+\)s|%s|%d|:\w+|\$\d+|@\w+")

#: Fast path for the token classes that dominate real SQL — whitespace,
#: words, numbers, string literals, and the unambiguous punctuation
#: characters.  One anchored match replaces the per-class probe cascade of
#: :meth:`Lexer._next_token`; every alternative starts with a character no
#: earlier branch of the cascade could claim, so hitting this regex first
#: cannot change which token is produced.  (``.`` stays out: it is a number
#: when a digit follows and punctuation otherwise.)
_COMMON_RE = re.compile(
    r"(?P<ws>\s+)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_$]*)"
    r"|(?P<num>\d+(\.\d+)?([eE][+-]?\d+)?)"
    r"|(?P<str>'(?:[^']|'')*')"
    r"|(?P<punct>[(),;])"
)

#: Compound keyword phrases indexed by their (upper-cased) first word, each
#: bucket sorted longest-first so the longest-match-wins rule falls out of a
#: plain scan.  Folding checks every keyword token against this index; the
#: dict lookup replaces the seed's scan over all phrases per keyword.
_COMPOUND_BY_FIRST: "dict[str, list[tuple[str, ...]]]" = {}
for _phrase in COMPOUND_KEYWORDS:
    _upper = tuple(word.upper() for word in _phrase)
    _COMPOUND_BY_FIRST.setdefault(_upper[0], []).append(_upper)
for _bucket in _COMPOUND_BY_FIRST.values():
    _bucket.sort(key=len, reverse=True)


class Lexer:
    """Tokenizes SQL text.

    The lexer is stateless; reuse one instance across statements.
    """

    def tokenize(self, sql: str) -> list[Token]:
        """Tokenize ``sql`` into a flat token list (including whitespace)."""
        tokens: list[Token] = []
        pos = 0
        length = len(sql)
        append = tokens.append
        common = _COMMON_RE.match
        classify = self._classify_word
        while pos < length:
            match = common(sql, pos)
            if match is not None:
                text = match.group()
                kind = match.lastgroup
                if kind == "ws":
                    token = Token(TokenType.WHITESPACE, text, pos)
                elif kind == "name":
                    token = Token(classify(text), text, pos)
                elif kind == "num":
                    token = Token(TokenType.NUMBER, text, pos)
                elif kind == "str":
                    token = Token(TokenType.STRING, text, pos)
                else:
                    token = Token(TokenType.PUNCTUATION, text, pos)
            else:
                token = self._next_token(sql, pos)
            append(token)
            pos += len(token.value)
        return self._fold_compound_keywords(tokens)

    # ------------------------------------------------------------------
    # single-token scanning
    # ------------------------------------------------------------------
    def _next_token(self, sql: str, pos: int) -> Token:
        ch = sql[pos]

        match = _WHITESPACE_RE.match(sql, pos)
        if match:
            return Token(TokenType.WHITESPACE, match.group(), pos)

        if ch == "-" and sql.startswith("--", pos) or ch == "#":
            match = _LINE_COMMENT_RE.match(sql, pos)
            if match:
                return Token(TokenType.COMMENT, match.group(), pos)

        if ch == "/" and sql.startswith("/*", pos):
            match = _BLOCK_COMMENT_RE.match(sql, pos)
            if match:
                return Token(TokenType.COMMENT, match.group(), pos)
            # Unterminated block comment: consume the rest of the input.
            return Token(TokenType.COMMENT, sql[pos:], pos)

        if ch == "'":
            match = _STRING_RE.match(sql, pos)
            if match:
                return Token(TokenType.STRING, match.group(), pos)
            # Unterminated string literal: take the rest, stay non-validating.
            return Token(TokenType.STRING, sql[pos:], pos)

        if ch == "$":
            match = _DOLLAR_STRING_RE.match(sql, pos)
            if match:
                return Token(TokenType.STRING, match.group(), pos)
            match = _PLACEHOLDER_RE.match(sql, pos)
            if match:
                return Token(TokenType.PLACEHOLDER, match.group(), pos)

        if ch == '"':
            match = _DOUBLE_QUOTED_RE.match(sql, pos)
            if match:
                return Token(TokenType.QUOTED_NAME, match.group(), pos)

        if ch == "`":
            match = _BACKTICK_QUOTED_RE.match(sql, pos)
            if match:
                return Token(TokenType.QUOTED_NAME, match.group(), pos)

        if ch == "[":
            match = _BRACKET_QUOTED_RE.match(sql, pos)
            if match:
                return Token(TokenType.QUOTED_NAME, match.group(), pos)

        if ch in "?%:@":
            match = _PLACEHOLDER_RE.match(sql, pos)
            if match:
                return Token(TokenType.PLACEHOLDER, match.group(), pos)

        if ch.isdigit() or (ch == "." and pos + 1 < len(sql) and sql[pos + 1].isdigit()):
            match = _NUMBER_RE.match(sql, pos)
            if match:
                return Token(TokenType.NUMBER, match.group(), pos)

        match = _NAME_RE.match(sql, pos)
        if match:
            word = match.group()
            return Token(self._classify_word(word), word, pos)

        for operator in COMPARISON_OPERATORS:
            if sql.startswith(operator, pos):
                return Token(TokenType.COMPARISON, operator, pos)

        for operator in OPERATORS:
            if sql.startswith(operator, pos):
                if operator == "*":
                    return Token(TokenType.WILDCARD, operator, pos)
                return Token(TokenType.OPERATOR, operator, pos)

        if ch in "(),;.":
            return Token(TokenType.PUNCTUATION, ch, pos)

        return Token(TokenType.UNKNOWN, ch, pos)

    def _classify_word(self, word: str) -> TokenType:
        upper = word.upper()
        if upper in DML_KEYWORDS:
            return TokenType.DML_KEYWORD
        if upper in DDL_KEYWORDS:
            return TokenType.DDL_KEYWORD
        if upper in DATATYPE_KEYWORDS:
            return TokenType.DATATYPE
        if upper in ALL_KEYWORDS:
            return TokenType.KEYWORD
        return TokenType.NAME

    # ------------------------------------------------------------------
    # compound keyword folding
    # ------------------------------------------------------------------
    def _fold_compound_keywords(self, tokens: list[Token]) -> list[Token]:
        """Fold multi-word phrases (``GROUP BY``, ``LEFT OUTER JOIN``) into
        single keyword tokens so downstream rules can match them directly."""
        meaningful_idx = [
            i for i, t in enumerate(tokens) if not t.is_whitespace and not t.is_comment
        ]
        folded: list[Token] = []
        skip_until = -1
        position_of = {idx: n for n, idx in enumerate(meaningful_idx)}
        for i, token in enumerate(tokens):
            if i <= skip_until:
                continue
            if token.is_keyword and token.normalized in _COMPOUND_BY_FIRST and i in position_of:
                phrase_end = self._match_compound(tokens, meaningful_idx, position_of[i])
                if phrase_end is not None:
                    phrase_tokens = tokens[i : phrase_end + 1]
                    text = " ".join(
                        t.value for t in phrase_tokens if not t.is_whitespace and not t.is_comment
                    )
                    folded.append(Token(TokenType.KEYWORD, text, token.position))
                    skip_until = phrase_end
                    continue
            folded.append(token)
        return folded

    def _match_compound(
        self, tokens: list[Token], meaningful_idx: list[int], start_meaningful: int
    ) -> int | None:
        """If a compound keyword phrase starts at the given meaningful index,
        return the raw-token index of its last word (longest match wins)."""
        first = tokens[meaningful_idx[start_meaningful]]
        phrases = _COMPOUND_BY_FIRST.get(first.normalized)
        if not phrases:
            return None
        for phrase in phrases:  # longest first within the bucket
            end = start_meaningful + len(phrase) - 1
            if end >= len(meaningful_idx):
                continue
            matched = True
            for k in range(1, len(phrase)):
                candidate = tokens[meaningful_idx[start_meaningful + k]]
                if not candidate.is_keyword or candidate.normalized != phrase[k]:
                    matched = False
                    break
            if matched:
                return meaningful_idx[end]
        return None


_DEFAULT_LEXER = Lexer()


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` using a shared default :class:`Lexer` instance."""
    return _DEFAULT_LEXER.tokenize(sql)
