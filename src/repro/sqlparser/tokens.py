"""Token model for the non-validating SQL lexer.

The paper's ap-detect builds on ``sqlparse``, a non-validating SQL parser.
That package is not available here, so this module (together with
:mod:`repro.sqlparser.lexer` and :mod:`repro.sqlparser.grouping`) provides an
equivalent substrate: a flat token stream with rich token types that the
grouping pass later folds into a tree.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.sqlparser.lexer.Lexer`."""

    KEYWORD = "keyword"            # SELECT, FROM, WHERE, ...
    DDL_KEYWORD = "ddl"            # CREATE, ALTER, DROP, TRUNCATE
    DML_KEYWORD = "dml"            # INSERT, UPDATE, DELETE, SELECT, MERGE
    DATATYPE = "datatype"          # INTEGER, VARCHAR, FLOAT, ...
    NAME = "name"                  # identifiers (unquoted)
    QUOTED_NAME = "quoted_name"    # "quoted" or `quoted` or [quoted] identifiers
    STRING = "string"              # 'string literal'
    NUMBER = "number"              # 42, 3.14, 1e9
    OPERATOR = "operator"          # + - * / % || etc.
    COMPARISON = "comparison"      # = != <> < > <= >= LIKE-free comparisons
    WILDCARD = "wildcard"          # * used as a projection wildcard
    PUNCTUATION = "punctuation"    # , ; ( ) .
    WHITESPACE = "whitespace"
    COMMENT = "comment"            # -- line and /* block */ comments
    PLACEHOLDER = "placeholder"    # ?, %s, :name, $1
    UNKNOWN = "unknown"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenType.{self.name}"


_KEYWORD_TYPES = frozenset(
    {TokenType.KEYWORD, TokenType.DDL_KEYWORD, TokenType.DML_KEYWORD, TokenType.DATATYPE}
)
_NORMALIZED_TYPES = frozenset(
    {
        TokenType.KEYWORD,
        TokenType.DDL_KEYWORD,
        TokenType.DML_KEYWORD,
        TokenType.DATATYPE,
        TokenType.COMPARISON,
        TokenType.OPERATOR,
    }
)

#: Per-type flag tuple (normalize, is_keyword, is_whitespace, is_comment,
#: is_identifier), attached to each enum member: one attribute read in
#: ``Token.__init__`` instead of five frozenset membership tests (each of
#: which would hash the enum member again).
for _ttype in TokenType:
    _ttype._token_flags = (
        _ttype in _NORMALIZED_TYPES,
        _ttype in _KEYWORD_TYPES,
        _ttype is TokenType.WHITESPACE,
        _ttype is TokenType.COMMENT,
        _ttype is TokenType.NAME or _ttype is TokenType.QUOTED_NAME,
    )


class Token:
    """A single lexical token.

    A slotted class rather than a dataclass: corpus-scale runs create and
    interrogate hundreds of thousands of tokens, so the hot derived facts
    (``normalized``, ``is_keyword``, the whitespace/comment/identifier
    flags) are computed once at construction instead of per property call.

    Attributes:
        ttype: lexical category.
        value: the raw text exactly as it appeared in the statement.
        position: character offset of the first character in the source.
        normalized: upper-cased value for keyword-like tokens, raw otherwise.
        is_keyword / is_whitespace / is_comment / is_identifier: category
            flags, precomputed.
    """

    __slots__ = (
        "ttype",
        "value",
        "position",
        "normalized",
        "is_keyword",
        "is_whitespace",
        "is_comment",
        "is_identifier",
    )

    def __init__(self, ttype: TokenType, value: str, position: int = 0):
        self.ttype = ttype
        self.value = value
        self.position = position
        normalize, keyword, whitespace, comment, identifier = ttype._token_flags
        self.normalized = value.upper() if normalize else value
        self.is_keyword = keyword
        self.is_whitespace = whitespace
        self.is_comment = comment
        self.is_identifier = identifier

    @property
    def is_literal(self) -> bool:
        return self.ttype in (TokenType.STRING, TokenType.NUMBER)

    def match(self, ttype: TokenType, values: "str | tuple[str, ...] | None" = None) -> bool:
        """Return True when the token has the given type and (optionally) value.

        Value comparison is case-insensitive for keyword-like tokens.
        """
        if self.ttype is not ttype:
            return False
        if values is None:
            return True
        if isinstance(values, str):
            return self.normalized == values.upper()
        return self.normalized in tuple(v.upper() for v in values)

    def unquoted(self) -> str:
        """Identifier text with surrounding quote characters removed."""
        value = self.value
        if self.ttype is TokenType.QUOTED_NAME and len(value) >= 2:
            if value[0] == "[" and value[-1] == "]":
                return value[1:-1]
            if value[0] == value[-1] and value[0] in ('"', "`"):
                return value[1:-1].replace(value[0] * 2, value[0])
        if self.ttype is TokenType.STRING and len(value) >= 2 and value[0] == value[-1] == "'":
            return value[1:-1].replace("''", "'")
        return value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.ttype is other.ttype
            and self.value == other.value
            and self.position == other.position
        )

    def __hash__(self) -> int:
        return hash((self.ttype, self.value, self.position))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token(ttype={self.ttype!r}, value={self.value!r}, position={self.position!r})"

    def __str__(self) -> str:
        return self.value


@dataclass
class TokenStream:
    """A cursor over a list of tokens with convenience navigation.

    The detection rules frequently need "next meaningful token" style lookups;
    centralising them here keeps the rules terse and uniform.
    """

    tokens: list[Token] = field(default_factory=list)
    index: int = 0

    def __iter__(self):
        return iter(self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)

    def __getitem__(self, item):
        return self.tokens[item]

    def meaningful(self) -> list[Token]:
        """All tokens that are not whitespace or comments."""
        return [t for t in self.tokens if not t.is_whitespace and not t.is_comment]

    def next_meaningful(self, start: int) -> "tuple[int, Token] | tuple[None, None]":
        """Index and token of the first meaningful token at or after ``start``."""
        for idx in range(start, len(self.tokens)):
            token = self.tokens[idx]
            if not token.is_whitespace and not token.is_comment:
                return idx, token
        return None, None

    def prev_meaningful(self, start: int) -> "tuple[int, Token] | tuple[None, None]":
        """Index and token of the first meaningful token at or before ``start``."""
        for idx in range(start, -1, -1):
            token = self.tokens[idx]
            if not token.is_whitespace and not token.is_comment:
                return idx, token
        return None, None

    def find_keyword(self, *keywords: str, start: int = 0) -> "tuple[int, Token] | tuple[None, None]":
        """Locate the first keyword token matching any of ``keywords``."""
        wanted = tuple(k.upper() for k in keywords)
        for idx in range(start, len(self.tokens)):
            token = self.tokens[idx]
            if token.is_keyword and token.normalized in wanted:
                return idx, token
        return None, None
