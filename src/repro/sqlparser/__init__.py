"""Non-validating SQL parsing substrate.

This package replaces the ``sqlparse`` dependency used by the original
SQLCheck implementation: a tolerant lexer, a statement splitter, a grouping
pass that builds a shallow parse tree, an annotation layer that extracts
tables / columns / predicates / joins, and a serializer for the repair
engine's rewrites.
"""
from .annotate import (
    ColumnReference,
    JoinInfo,
    Predicate,
    QueryAnnotation,
    QueryAnnotator,
    TableReference,
    annotate,
)
from .ast import (
    Comparison,
    Function,
    Group,
    Identifier,
    IdentifierList,
    Node,
    Parenthesis,
    Statement,
    TokenNode,
    Where,
)
from .dialects import DIALECTS, Dialect, get_dialect
from .fingerprint import AnnotationCache, CacheStats, canonicalize, fingerprint
from .lexer import Lexer, tokenize
from .parser import STATEMENT_TYPES, ParsedStatement, classify_statement, parse, parse_statement
from .serializer import format_sql, quote_identifier, quote_literal, to_sql
from .splitter import split, split_tokens
from .tokens import Token, TokenStream, TokenType

__all__ = [
    "AnnotationCache",
    "CacheStats",
    "ColumnReference",
    "Comparison",
    "DIALECTS",
    "Dialect",
    "Function",
    "Group",
    "Identifier",
    "IdentifierList",
    "JoinInfo",
    "Lexer",
    "Node",
    "ParsedStatement",
    "Parenthesis",
    "Predicate",
    "QueryAnnotation",
    "QueryAnnotator",
    "STATEMENT_TYPES",
    "Statement",
    "TableReference",
    "Token",
    "TokenNode",
    "TokenStream",
    "TokenType",
    "Where",
    "annotate",
    "canonicalize",
    "classify_statement",
    "fingerprint",
    "format_sql",
    "get_dialect",
    "parse",
    "parse_statement",
    "quote_identifier",
    "quote_literal",
    "split",
    "split_tokens",
    "to_sql",
    "tokenize",
]
