"""``sqlcheck selftest``: run the conformance suite against any corpus.

Ties the testkit together into one entry point usable from the CLI or as a
library call: per-rule conformance examples, golden-corpus comparison (or
regeneration with ``update_golden=True``), the cold/warm/batch differential
oracle over a fuzzed (or user-supplied) corpus, detector-vs-dbdeo
agreement, and the fixer round-trip oracle.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..detector.detector import DetectorConfig
from .conformance import ConformanceFailure, failures_from_entries
from .generator import CorpusGenerator
from .golden import diff_golden, golden_entries, load_golden, write_golden
from .oracles import (
    OracleFailure,
    check_cold_warm_batch,
    check_cost_model_equivalence,
    check_dbdeo_agreement,
    check_fault_isolation,
    check_fixer_round_trip,
    check_fused_equivalence,
    check_observability_transparency,
    check_service_equivalence,
)

#: Default golden-corpus location (repo checkout layout); resolves to
#: ``tests/conformance/golden`` next to ``src/``.
DEFAULT_GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "conformance" / "golden"


@dataclass
class SelftestResult:
    """Outcome of one conformance run."""

    seed: int
    corpus_statements: int = 0
    examples_run: int = 0
    rules_documented: int = 0
    doc_failures: "list[str]" = field(default_factory=list)
    golden_entries: int = 0
    golden_updated: bool = False
    golden_skipped: bool = False
    rewrites_checked: int = 0
    conformance_failures: "list[ConformanceFailure]" = field(default_factory=list)
    golden_mismatches: "list[str]" = field(default_factory=list)
    oracle_failures: "list[OracleFailure]" = field(default_factory=list)
    dbdeo_agreement: "dict[str, float]" = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not (
            self.conformance_failures
            or self.golden_mismatches
            or self.oracle_failures
            or self.doc_failures
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "corpus_statements": self.corpus_statements,
            "examples_run": self.examples_run,
            "golden_entries": self.golden_entries,
            "golden_updated": self.golden_updated,
            "golden_skipped": self.golden_skipped,
            "rewrites_checked": self.rewrites_checked,
            "rules_documented": self.rules_documented,
            "doc_failures": list(self.doc_failures),
            "conformance_failures": [str(f) for f in self.conformance_failures],
            "golden_mismatches": list(self.golden_mismatches),
            "oracle_failures": [str(f) for f in self.oracle_failures],
            "dbdeo_agreement": dict(self.dbdeo_agreement),
        }

    def summary_lines(self) -> "list[str]":
        lines = [
            f"selftest: {'OK' if self.ok else 'FAILED'} (seed {self.seed})",
            f"    conformance: {self.examples_run} example(s), "
            f"{len(self.conformance_failures)} failure(s)",
            f"    rule docs: {self.rules_documented} documented rule(s), "
            f"{len(self.doc_failures)} failure(s)",
        ]
        if self.golden_skipped:
            lines.append("    golden corpus: skipped (no golden directory)")
        elif self.golden_updated:
            lines.append(f"    golden corpus: regenerated {self.golden_entries} entries")
        else:
            lines.append(
                f"    golden corpus: {self.golden_entries} entries, "
                f"{len(self.golden_mismatches)} mismatch(es)"
            )
        lines.append(
            f"    differential oracles: {self.corpus_statements} fuzzed statement(s), "
            f"{self.rewrites_checked} rewrite(s), {len(self.oracle_failures)} failure(s)"
        )
        if self.dbdeo_agreement:
            agreed = sum(1 for rate in self.dbdeo_agreement.values() if rate == 1.0)
            lines.append(
                f"    dbdeo agreement: {agreed}/{len(self.dbdeo_agreement)} "
                "shared anti-patterns fully agreed"
            )
        for failure in self.doc_failures:
            lines.append(f"    FAIL docs: {failure}")
        for failure in self.conformance_failures:
            lines.append(f"    FAIL {failure}")
        for mismatch in self.golden_mismatches:
            lines.append(f"    FAIL golden: {mismatch}")
        for failure in self.oracle_failures:
            lines.append(f"    FAIL {failure}")
        return lines


def run_selftest(
    corpus: "Sequence[str] | None" = None,
    *,
    seed: int = 2020,
    statements: int = 250,
    workers: int = 2,
    update_golden: bool = False,
    golden_dir: "str | Path | None" = None,
    config: DetectorConfig | None = None,
) -> SelftestResult:
    """Run the full conformance suite; see module docstring.

    ``corpus`` supplies the statements for the differential oracle; when
    omitted a seeded fuzzed corpus of roughly ``statements`` statement
    groups is generated.
    """
    result = SelftestResult(seed=seed)

    # 1. per-rule conformance examples — computed once; the same entries
    #    carry both the planted/control verdicts and the golden snapshot.
    current = golden_entries(config=config)
    result.conformance_failures, result.examples_run = failures_from_entries(current)
    result.golden_entries = len(current)

    # 1b. documentation contract: every registered rule carries a complete
    #     RuleDoc (the reporting subsystem renders it into every format).
    from ..rules.registry import default_registry

    for rule in default_registry():
        if rule.doc is None:
            result.doc_failures.append(f"{rule.name}: no RuleDoc declared")
            continue
        missing = rule.doc.missing_fields()
        if missing:
            result.doc_failures.append(f"{rule.name}: RuleDoc missing {', '.join(missing)}")
        else:
            result.rules_documented += 1

    # 2. golden corpus.  Only a repo checkout has a resolvable default
    #    golden directory; refuse to regenerate into a guessed location
    #    (e.g. inside site-packages for an installed package).
    if golden_dir is not None:
        golden_path = Path(golden_dir)
    elif DEFAULT_GOLDEN_DIR.parent.is_dir():
        golden_path = DEFAULT_GOLDEN_DIR
    else:
        golden_path = None
    if update_golden:
        if golden_path is None:
            raise ValueError(
                "cannot locate the golden corpus directory outside a repo "
                "checkout; pass golden_dir (CLI: --golden-dir) explicitly"
            )
        write_golden(golden_path, current)
        result.golden_updated = True
    elif golden_path is not None and golden_path.is_dir():
        result.golden_mismatches = diff_golden(current, load_golden(golden_path))
    else:
        result.golden_skipped = True

    # 3. cold/warm/batch differential oracle over the fuzzed or given corpus
    if corpus is None:
        corpus = CorpusGenerator(seed).corpus_sql(statements)
    corpus = list(corpus)
    result.corpus_statements = len(corpus)
    result.oracle_failures.extend(
        check_cold_warm_batch(corpus, config=config, workers=workers)
    )

    # 4. detector vs. dbdeo agreement on the shared subset
    dbdeo_failures, result.dbdeo_agreement = check_dbdeo_agreement(seed=seed, config=config)
    result.oracle_failures.extend(dbdeo_failures)

    # 5. fixer round trip on planted statements
    fixer_failures, result.rewrites_checked = check_fixer_round_trip(seed=seed)
    result.oracle_failures.extend(fixer_failures)

    # 6. cost-model degeneracies over the same corpus: duration/hybrid with
    #    uniform durations ≡ frequency; logless ≡ the seed ranking.
    result.oracle_failures.extend(check_cost_model_equivalence(corpus, seed=seed))

    # 7. fault isolation: injected faults (crashing rules, corrupted logs,
    #    flaky/broken connectors) must be quarantined — the clean subset's
    #    detections stay byte-identical and every fault is recorded.
    result.oracle_failures.extend(
        check_fault_isolation(corpus, seed=seed, config=config)
    )

    # 8. fused matcher vs. pre-fusion reference: the trigger pre-filter and
    #    workload-fact caches must be pure optimisation — byte-identical
    #    detections over the corpus, every rule example, and the ablated
    #    configurations, so any matcher drift fails the selftest.
    result.oracle_failures.extend(
        check_fused_equivalence(corpus, seed=seed, workers=workers, config=config)
    )

    # 9. observability transparency: the metrics registry and the tracer
    #    are pure observation — enabling either must not change a single
    #    detection or ranking byte, and the instrumented runs must actually
    #    record timings/spans (no vacuous pass).
    result.oracle_failures.extend(
        check_observability_transparency(
            corpus, seed=seed, workers=workers, config=config
        )
    )

    # 10. service equivalence: detections served over a live keep-alive
    #     connection ≡ the in-process toolchain, and a warm restart over a
    #     persistent memo ≡ its own cold run (corrupt files fall back cold).
    result.oracle_failures.extend(
        check_service_equivalence(corpus, seed=seed, config=config)
    )
    return result
