"""Seeded grammar-based SQL generator with known planted anti-patterns.

The generator is the fuzzing half of the conformance testkit: given a seed
it deterministically emits a corpus of parseable SQL statements, each
labelled with the anti-patterns that were *planted* into it (empty for
clean controls).  Plantings span all four rule categories — query shape,
logical design, physical design, and data-ish DDL — so a fuzzed corpus
exercises every dispatch path of the detector.

Labels are ground truth *for the statement group in isolation*: the
statements of one planting, analysed alone, trigger the planted
anti-pattern (that invariant is checked by ``tests/conformance``).  In a
combined corpus inter-query context can add or refine detections across
groups; the differential oracles therefore compare detector configurations
against each other, not against labels.
"""
from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..model.antipatterns import AntiPattern

_NOUNS = (
    "orders", "articles", "sensors", "payments", "tickets", "events",
    "invoices", "shipments", "devices", "accounts", "agents", "venues",
    "readings", "bookings", "reviews", "profiles",
)
_COLUMNS = ("label", "region", "notes", "quantity", "total", "created_on")
_WORDS = ("alpha", "bravo", "delta", "echo", "lima", "oscar", "tango", "zulu")


@dataclass(frozen=True)
class GeneratedStatement:
    """One generated SQL statement group with its planted ground truth.

    ``rows`` optionally carries generated data (table → row dicts, frozen
    as tuples) for *data-rule* plantings: the group must then be analysed
    against an engine database loaded with those rows, exactly like a
    :class:`~repro.rules.base.RuleExample` with data.
    """

    sql: "tuple[str, ...]"
    planted: "tuple[AntiPattern, ...]" = ()
    rows: "tuple[tuple[str, tuple[dict, ...]], ...]" = ()

    @property
    def is_clean(self) -> bool:
        return not self.planted

    @property
    def needs_database(self) -> bool:
        return bool(self.rows)

    @property
    def text(self) -> str:
        return ";\n".join(self.sql)


class CorpusGenerator:
    """Deterministic anti-pattern corpus generator.

    Two generators built with the same seed produce identical corpora; the
    seed is therefore enough to reproduce any fuzzing failure.
    """

    def __init__(self, seed: int = 2020):
        self.seed = seed
        self._rng = random.Random(seed)
        self._unique = 0
        self._makers: "list[tuple[AntiPattern, Callable[[random.Random], list[str]]]]" = [
            (AntiPattern.COLUMN_WILDCARD, self._column_wildcard),
            (AntiPattern.IMPLICIT_COLUMNS, self._implicit_columns),
            (AntiPattern.ORDERING_BY_RAND, self._ordering_by_rand),
            (AntiPattern.PATTERN_MATCHING, self._pattern_matching),
            (AntiPattern.DISTINCT_AND_JOIN, self._distinct_and_join),
            (AntiPattern.TOO_MANY_JOINS, self._too_many_joins),
            (AntiPattern.READABLE_PASSWORD, self._readable_password),
            (AntiPattern.CONCATENATE_NULLS, self._concatenate_nulls),
            (AntiPattern.MULTI_VALUED_ATTRIBUTE, self._multi_valued_attribute),
            (AntiPattern.NO_FOREIGN_KEY, self._no_foreign_key),
            (AntiPattern.NO_PRIMARY_KEY, self._no_primary_key),
            (AntiPattern.GENERIC_PRIMARY_KEY, self._generic_primary_key),
            (AntiPattern.DATA_IN_METADATA, self._data_in_metadata),
            (AntiPattern.ADJACENCY_LIST, self._adjacency_list),
            (AntiPattern.GOD_TABLE, self._god_table),
            (AntiPattern.ROUNDING_ERRORS, self._rounding_errors),
            (AntiPattern.ENUMERATED_TYPES, self._enumerated_types),
            (AntiPattern.EXTERNAL_DATA_STORAGE, self._external_data_storage),
            (AntiPattern.CLONE_TABLE, self._clone_table),
            (AntiPattern.INDEX_OVERUSE, self._index_overuse),
            (AntiPattern.INDEX_UNDERUSE, self._index_underuse),
        ]
        #: data-rule recipes: groups that carry generated *rows* and must be
        #: analysed against a database (kept out of the flat SQL corpus —
        #: ``corpus_sql`` cannot represent them).
        self._data_makers: "list[tuple[AntiPattern, Callable[[random.Random], GeneratedStatement]]]" = [
            (AntiPattern.ENUMERATED_TYPES, self._enumerated_types_data),
            (AntiPattern.EXTERNAL_DATA_STORAGE, self._external_data_storage_data),
        ]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def plantable_anti_patterns(self) -> "tuple[AntiPattern, ...]":
        return tuple(ap for ap, _ in self._makers)

    def planted_statement(self, anti_pattern: AntiPattern | None = None) -> GeneratedStatement:
        """One statement group with a planted anti-pattern (random when None)."""
        if anti_pattern is None:
            anti_pattern, maker = self._rng.choice(self._makers)
        else:
            makers = dict(self._makers)
            if anti_pattern not in makers:
                raise ValueError(f"no planting recipe for {anti_pattern}")
            maker = makers[anti_pattern]
        return GeneratedStatement(sql=tuple(maker(self._rng)), planted=(anti_pattern,))

    def plantable_data_anti_patterns(self) -> "tuple[AntiPattern, ...]":
        return tuple(ap for ap, _ in self._data_makers)

    def planted_data_statement(
        self, anti_pattern: AntiPattern | None = None
    ) -> GeneratedStatement:
        """One data-rule scenario: DDL plus generated rows (random when
        ``anti_pattern`` is None).  The returned group carries ``rows`` and
        must be analysed against an engine database loaded with them."""
        if anti_pattern is None:
            anti_pattern, maker = self._rng.choice(self._data_makers)
        else:
            makers = dict(self._data_makers)
            if anti_pattern not in makers:
                raise ValueError(f"no data planting recipe for {anti_pattern}")
            maker = makers[anti_pattern]
        return maker(self._rng)

    def clean_statement(self) -> GeneratedStatement:
        """One statement group that triggers no rule in isolation."""
        maker = self._rng.choice(
            (self._clean_select, self._clean_insert, self._clean_update,
             self._clean_delete, self._clean_create)
        )
        return GeneratedStatement(sql=tuple(maker(self._rng)))

    def corpus(
        self, statements: int = 1000, planted_fraction: float = 0.5
    ) -> "list[GeneratedStatement]":
        """A labelled corpus of roughly ``statements`` statement groups."""
        if not 0 <= planted_fraction <= 1:
            raise ValueError("planted_fraction must be in [0, 1]")
        groups: list[GeneratedStatement] = []
        for _ in range(statements):
            if self._rng.random() < planted_fraction:
                groups.append(self.planted_statement())
            else:
                groups.append(self.clean_statement())
        return groups

    def corpus_sql(self, statements: int = 1000, planted_fraction: float = 0.5) -> "list[str]":
        """A flat statement list, ready for ``detect`` / ``detect_batch``."""
        flat: list[str] = []
        for group in self.corpus(statements, planted_fraction):
            flat.extend(group.sql)
        return flat

    # ------------------------------------------------------------------
    # vocabulary helpers
    # ------------------------------------------------------------------
    def _table(self, rng: random.Random, fresh: bool = False) -> str:
        """A table name; ``fresh`` names are unique so DDL plantings never
        collide with (or feed schema context to) other groups."""
        noun = rng.choice(_NOUNS)
        if not fresh:
            return noun
        self._unique += 1
        return f"{noun}_{self._unique}x"

    @staticmethod
    def _pk(table: str) -> str:
        return f"{table.rstrip('s')}_key"

    def _word(self, rng: random.Random) -> str:
        return rng.choice(_WORDS)

    # ------------------------------------------------------------------
    # clean controls
    # ------------------------------------------------------------------
    def _clean_select(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        column = rng.choice(_COLUMNS)
        return [
            f"SELECT {column}, {self._pk(table)} FROM {table} "
            f"WHERE {column} = '{self._word(rng)}' ORDER BY {column} LIMIT {rng.randint(1, 50)}"
        ]

    def _clean_insert(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        return [
            f"INSERT INTO {table} ({self._pk(table)}, label, quantity) "
            f"VALUES ({rng.randint(1, 9999)}, '{self._word(rng)}', {rng.randint(0, 99)})"
        ]

    def _clean_update(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        return [
            f"UPDATE {table} SET label = '{self._word(rng)}' "
            f"WHERE {self._pk(table)} = {rng.randint(1, 9999)}"
        ]

    def _clean_delete(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        return [f"DELETE FROM {table} WHERE {self._pk(table)} = {rng.randint(1, 9999)}"]

    def _clean_create(self, rng: random.Random) -> list[str]:
        table = self._table(rng, fresh=True)
        return [
            f"CREATE TABLE {table} ({self._pk(table)} INTEGER PRIMARY KEY, "
            "label VARCHAR(40) NOT NULL, quantity INTEGER, "
            "created_on TIMESTAMP WITH TIME ZONE)"
        ]

    # ------------------------------------------------------------------
    # planting recipes (query rules)
    # ------------------------------------------------------------------
    def _column_wildcard(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        return [f"SELECT * FROM {table} WHERE {self._pk(table)} = {rng.randint(1, 9999)}"]

    def _implicit_columns(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        return [
            f"INSERT INTO {table} VALUES ({rng.randint(1, 9999)}, '{self._word(rng)}')"
        ]

    def _ordering_by_rand(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        fn = rng.choice(("RAND()", "RANDOM()"))
        return [f"SELECT label FROM {table} ORDER BY {fn} LIMIT {rng.randint(1, 5)}"]

    def _pattern_matching(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        return [f"SELECT label FROM {table} WHERE notes LIKE '%{self._word(rng)}'"]

    def _distinct_and_join(self, rng: random.Random) -> list[str]:
        left, right = self._table(rng), self._table(rng)
        if left == right:
            right = f"{right}_b"
        return [
            f"SELECT DISTINCT l.label FROM {left} l "
            f"JOIN {right} r ON l.{self._pk(left)} = r.{self._pk(left)}"
        ]

    def _too_many_joins(self, rng: random.Random) -> list[str]:
        base = self._table(rng, fresh=True)
        joins = " ".join(
            f"JOIN {base}_{i} ON {base}_{i - 1}.k{i - 1} = {base}_{i}.k{i - 1}"
            for i in range(1, rng.randint(6, 8))
        )
        return [f"SELECT {base}_0.k0 FROM {base}_0 {joins}"]

    def _readable_password(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        return [
            f"SELECT {self._pk(table)} FROM {table} WHERE password = '{self._word(rng)}{rng.randint(1, 99)}'"
        ]

    def _concatenate_nulls(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        return [f"SELECT label || '-' || region FROM {table}"]

    def _multi_valued_attribute(self, rng: random.Random) -> list[str]:
        table = self._table(rng)
        return [
            f"SELECT {self._pk(table)} FROM {table} WHERE tag_ids LIKE '%{rng.randint(1, 99)}%'"
        ]

    # ------------------------------------------------------------------
    # planting recipes (logical / physical design DDL)
    # ------------------------------------------------------------------
    def _no_foreign_key(self, rng: random.Random) -> list[str]:
        """The paper's canonical inter-query planting (Example 3): both
        tables' DDL plus a JOIN on a column pair no FOREIGN KEY covers —
        the rule needs all three statements together to fire."""
        parent = self._table(rng, fresh=True)
        child = self._table(rng, fresh=True)
        parent_pk = self._pk(parent)
        return [
            f"CREATE TABLE {parent} ({parent_pk} INTEGER PRIMARY KEY, "
            "label VARCHAR(40) NOT NULL)",
            f"CREATE TABLE {child} ({self._pk(child)} INTEGER PRIMARY KEY, "
            f"{parent_pk} INTEGER, quantity INTEGER)",
            f"SELECT c.quantity FROM {child} c "
            f"JOIN {parent} p ON p.{parent_pk} = c.{parent_pk}",
        ]

    def _no_primary_key(self, rng: random.Random) -> list[str]:
        table = self._table(rng, fresh=True)
        return [
            f"CREATE TABLE {table} (label VARCHAR(40), quantity INTEGER, "
            "created_on TIMESTAMP WITH TIME ZONE)"
        ]

    def _generic_primary_key(self, rng: random.Random) -> list[str]:
        table = self._table(rng, fresh=True)
        return [f"CREATE TABLE {table} (id INTEGER PRIMARY KEY, label VARCHAR(40) NOT NULL)"]

    def _data_in_metadata(self, rng: random.Random) -> list[str]:
        table = self._table(rng, fresh=True)
        numbered = ", ".join(f"slot_{i} INTEGER" for i in range(1, rng.randint(4, 6)))
        return [f"CREATE TABLE {table} ({self._pk(table)} INTEGER PRIMARY KEY, {numbered})"]

    def _adjacency_list(self, rng: random.Random) -> list[str]:
        table = self._table(rng, fresh=True)
        pk = self._pk(table)
        return [
            f"CREATE TABLE {table} ({pk} INTEGER PRIMARY KEY, label VARCHAR(40) NOT NULL, "
            f"parent_id INTEGER REFERENCES {table}({pk}))"
        ]

    def _god_table(self, rng: random.Random) -> list[str]:
        table = self._table(rng, fresh=True)
        wide = ", ".join(
            f"attr_{chr(ord('a') + i)} VARCHAR(20)" for i in range(rng.randint(11, 14))
        )
        return [f"CREATE TABLE {table} ({self._pk(table)} INTEGER PRIMARY KEY, {wide})"]

    def _rounding_errors(self, rng: random.Random) -> list[str]:
        table = self._table(rng, fresh=True)
        return [
            f"CREATE TABLE {table} ({self._pk(table)} INTEGER PRIMARY KEY, "
            "amount FLOAT, label VARCHAR(40) NOT NULL)"
        ]

    def _enumerated_types(self, rng: random.Random) -> list[str]:
        table = self._table(rng, fresh=True)
        values = ", ".join(f"'{w}'" for w in rng.sample(_WORDS, 3))
        return [
            f"CREATE TABLE {table} ({self._pk(table)} INTEGER PRIMARY KEY, "
            f"status ENUM({values}))"
        ]

    def _external_data_storage(self, rng: random.Random) -> list[str]:
        table = self._table(rng, fresh=True)
        return [
            f"CREATE TABLE {table} ({self._pk(table)} INTEGER PRIMARY KEY, "
            "file_path VARCHAR(255), label VARCHAR(40) NOT NULL)"
        ]

    def _clone_table(self, rng: random.Random) -> list[str]:
        base = self._table(rng, fresh=True)
        columns = f"{self._pk(base)} INTEGER PRIMARY KEY, payload TEXT"
        return [
            f"CREATE TABLE {base}_1 ({columns})",
            f"CREATE TABLE {base}_2 ({columns})",
        ]

    def _index_overuse(self, rng: random.Random) -> list[str]:
        """Example 5's unused index: the whole workload filters on the
        primary key, so the planted index accelerates nothing — an
        inter-query detection needing DDL + index + queries together."""
        table = self._table(rng, fresh=True)
        pk = self._pk(table)
        return [
            f"CREATE TABLE {table} ({pk} INTEGER PRIMARY KEY, "
            "label VARCHAR(40) NOT NULL, region VARCHAR(20))",
            f"CREATE INDEX idx_{table}_region ON {table} (region)",
            f"SELECT label FROM {table} WHERE {pk} = {rng.randint(1, 9999)}",
        ]

    def _index_underuse(self, rng: random.Random) -> list[str]:
        """A selective predicate on a column no index covers — inter-query:
        the CREATE TABLE supplies the schema the predicate is judged
        against."""
        table = self._table(rng, fresh=True)
        pk = self._pk(table)
        return [
            f"CREATE TABLE {table} ({pk} INTEGER PRIMARY KEY, "
            "label VARCHAR(40) NOT NULL, region VARCHAR(20))",
            f"SELECT {pk} FROM {table} WHERE region = '{self._word(rng)}'",
        ]

    # ------------------------------------------------------------------
    # planting recipes (data rules: DDL + generated rows)
    # ------------------------------------------------------------------
    def _enumerated_types_data(self, rng: random.Random) -> GeneratedStatement:
        """An undeclared enum: a textual column with a handful of distinct
        values across a large sample (Example 4's distinct-to-tuples
        ratio), visible only to data analysis."""
        table = self._table(rng, fresh=True)
        pk = self._pk(table)
        domain = rng.sample(_WORDS, 3)
        count = rng.randint(120, 160)
        rows = tuple(
            {pk: i, "status": domain[i % len(domain)]} for i in range(count)
        )
        return GeneratedStatement(
            sql=(
                f"CREATE TABLE {table} ({pk} INTEGER PRIMARY KEY, "
                "status VARCHAR(12))",
            ),
            planted=(AntiPattern.ENUMERATED_TYPES,),
            rows=((table, rows),),
        )

    def _external_data_storage_data(self, rng: random.Random) -> GeneratedStatement:
        """File paths stored as data: the column name gives nothing away,
        so only profiling the rows can catch it."""
        table = self._table(rng, fresh=True)
        pk = self._pk(table)
        folder = self._word(rng)
        count = rng.randint(20, 40)
        rows = tuple(
            {pk: i, "location": f"/srv/{folder}/batch_{i}/blob_{i}.bin"}
            for i in range(count)
        )
        return GeneratedStatement(
            sql=(
                f"CREATE TABLE {table} ({pk} INTEGER PRIMARY KEY, "
                "location VARCHAR(255))",
            ),
            planted=(AntiPattern.EXTERNAL_DATA_STORAGE,),
            rows=((table, rows),),
        )


def labelled_recall(
    groups: "Sequence[GeneratedStatement]",
    detected_types_for: "Callable[[Sequence[str]], set]",
) -> "dict[AntiPattern, tuple[int, int]]":
    """Per-anti-pattern (hits, planted) recall of a detector callback run on
    each planted group in isolation."""
    tally: "dict[AntiPattern, list[int]]" = {}
    for group in groups:
        for anti_pattern in group.planted:
            hits, planted = tally.setdefault(anti_pattern, [0, 0])
            tally[anti_pattern][1] = planted + 1
            if anti_pattern in detected_types_for(list(group.sql)):
                tally[anti_pattern][0] = hits + 1
    return {ap: (hits, planted) for ap, (hits, planted) in tally.items()}
