"""Differential oracles over the detect→rank→fix pipeline.

Every oracle returns a list of :class:`OracleFailure` (empty = pass):

* :func:`check_cold_warm_batch` — the cache/batch machinery must be pure
  optimisation: a cold detector (caches off), a warm detector (second run
  over the same instance), and ``detect_batch`` must produce byte-identical
  reports over the same corpus;
* :func:`check_stats_accounting` — :class:`PipelineStats` totals must equal
  the sum of the stage times (wall-clock semantics), catching double- or
  un-counted stages on any pipeline path, including the serial fallbacks;
* :func:`check_dbdeo_agreement` — on planted corpora for the rule subset
  both tools support, sqlcheck must fire, and the deliberately imprecise
  dbdeo baseline must agree on the obviously-planted instances;
* :func:`check_fixer_round_trip` — every concrete rewrite the fixer emits
  must re-parse and must no longer trigger the anti-pattern it fixed;
* :func:`check_scan_equivalence` — live-source ingestion must be pure
  plumbing: ``sqlcheck scan`` over a SQLite database built from given DDL +
  rows, with a query log's frequencies, must produce detections
  byte-identical to the offline path over the equivalent inputs (the same
  DDL applied to the in-repo engine, the same rows, the same statements and
  frequencies);
* :func:`check_cost_model_equivalence` — the pluggable workload cost
  models must degenerate exactly where the design says they do: the
  ``duration`` and ``hybrid`` models under *uniform* durations are
  byte-identical to ``frequency``, and every model over a logless workload
  is byte-identical to the seed ranking (no cost model at all);
* :func:`check_observability_transparency` — instrumentation must be pure
  observation: detections and rankings with metrics on, and with metrics
  *and* tracing on, are byte-identical to a run with all observability
  off;
* :func:`check_service_equivalence` — service mode must be pure transport
  and persistence pure optimisation: detections served over a live
  keep-alive HTTP connection are byte-identical to the in-process
  toolchain, and a warm-restarted process (a fresh detector over the same
  persistent memo file) is byte-identical to its own cold run — including
  after the memo file is corrupted, which must fall back to cold cleanly.
"""
from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Sequence

from ..baselines.dbdeo import DBDEO_ANTI_PATTERNS, DBDeo
from ..core.sqlcheck import SQLCheck, SQLCheckOptions
from ..detector.detector import APDetector, DetectorConfig
from ..detector.pipeline import PipelineStats
from ..model.antipatterns import AntiPattern
from ..model.detection import DetectionReport
from ..sqlparser import parse
from .generator import CorpusGenerator, GeneratedStatement

#: Shared-rule subset on which dbdeo's keyword regexes reliably hit the
#: generator's plantings.  The remaining shared anti-patterns (e.g.
#: DATA_IN_METADATA, INDEX_OVERUSE/UNDERUSE) need context dbdeo does not
#: model, so agreement on them is reported but not enforced.
DBDEO_AGREEMENT_SUBSET: "tuple[AntiPattern, ...]" = (
    AntiPattern.NO_PRIMARY_KEY,
    AntiPattern.ENUMERATED_TYPES,
    AntiPattern.ROUNDING_ERRORS,
    AntiPattern.CLONE_TABLE,
    AntiPattern.ADJACENCY_LIST,
    AntiPattern.GOD_TABLE,
    AntiPattern.MULTI_VALUED_ATTRIBUTE,
    AntiPattern.PATTERN_MATCHING,
)

#: Anti-patterns whose fixes are inherently textual/schema-level guidance;
#: their rewrites restructure DDL rather than silence the detector, so the
#: round-trip oracle only checks that they re-parse.
ROUND_TRIP_PARSE_ONLY: "tuple[AntiPattern, ...]" = (
    AntiPattern.CONCATENATE_NULLS,
)


@dataclass(frozen=True)
class OracleFailure:
    """One violated equivalence or accounting invariant."""

    oracle: str
    subject: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.oracle}] {self.subject}: {self.reason}"


# ----------------------------------------------------------------------
# cold vs. warm vs. batch equivalence
# ----------------------------------------------------------------------
def detection_bytes(report: DetectionReport) -> bytes:
    """Canonical byte serialisation of a report (order-preserving)."""
    payload = {
        "queries_analyzed": report.queries_analyzed,
        "tables_analyzed": report.tables_analyzed,
        "detections": [d.to_dict() for d in report.detections],
    }
    return json.dumps(payload, sort_keys=True, default=str).encode()


def check_cold_warm_batch(
    corpus: "Sequence[str]",
    *,
    config: DetectorConfig | None = None,
    workers: int = 2,
) -> "list[OracleFailure]":
    """Cold path ≡ warm cache ≡ batch pipeline, byte for byte."""
    corpus = list(corpus)
    base = config or DetectorConfig()
    failures: list[OracleFailure] = []

    import dataclasses as _dc

    cold_detector = APDetector(_dc.replace(base, enable_cache=False))
    cold = detection_bytes(cold_detector.detect(corpus))

    warm_detector = APDetector(_dc.replace(base, enable_cache=True))
    first = detection_bytes(warm_detector.detect(corpus))
    second = detection_bytes(warm_detector.detect(corpus))
    if first != cold:
        failures.append(OracleFailure(
            "cold-warm-batch", "first cached run",
            "cache-on first pass differs from the cache-off path"))
    if second != cold:
        failures.append(OracleFailure(
            "cold-warm-batch", "warm replay",
            "memo replay differs from the cache-off path"))
    if warm_detector.memo_info["hits"] == 0 and len(corpus) > 1:
        failures.append(OracleFailure(
            "cold-warm-batch", "warm replay",
            "second pass over an identical corpus produced no memo hits"))

    batch_detector = APDetector(_dc.replace(base, enable_cache=True))
    batch_report, stats = batch_detector.detect_batch(corpus, workers=workers)
    if detection_bytes(batch_report) != cold:
        failures.append(OracleFailure(
            "cold-warm-batch", "detect_batch",
            f"batch pipeline ({stats.parallel_mode}) differs from the cache-off path"))
    failures.extend(check_stats_accounting(stats, subject="detect_batch"))
    if stats.statements != len(corpus):
        failures.append(OracleFailure(
            "cold-warm-batch", "detect_batch",
            f"stats counted {stats.statements} statements for a corpus of {len(corpus)}"))
    return failures


# ----------------------------------------------------------------------
# fused matcher vs. pre-fusion reference
# ----------------------------------------------------------------------
def check_fused_equivalence(
    corpus: "Sequence[str] | None" = None,
    *,
    seed: int = 2020,
    statements: int = 60,
    workers: int = 2,
    config: DetectorConfig | None = None,
) -> "list[OracleFailure]":
    """Fused matcher ≡ pre-fusion reference path, byte for byte.

    The fused cold path (trigger-token pre-filter over the compiled
    :class:`~repro.rules.registry.TriggerAutomaton` plus per-run
    workload-fact caches) is pure optimisation: over every corpus and
    configuration its detections must serialise identically to the
    reference path (``fused=False`` — plain dispatch, facts recomputed per
    rule call, exactly the pre-fusion detector).  Checked corpora: the
    fuzzed (or given) corpus and every registered rule's conformance
    examples — the statements behind the golden corpus.  Checked
    configurations: the given (or default) config, intra-query-only,
    cache-off, and the strict-thresholds ablation; ``detect_batch`` is
    compared against the reference on the main corpus too, so the sharded
    fan-out inherits the same guarantee.
    """
    import dataclasses as _dc

    from ..rules.registry import default_registry
    from ..rules.thresholds import Thresholds

    if corpus is None:
        corpus = CorpusGenerator(seed).corpus_sql(statements)
    corpus = list(corpus)
    example_corpora = [
        (f"example {rule.name}/{index}", list(example.statements))
        for rule in default_registry()
        for index, example in enumerate(rule.examples())
    ]
    base = config or DetectorConfig()
    configurations = {
        "default": base,
        "intra-only": _dc.replace(base, enable_inter_query=False),
        "cache-off": _dc.replace(base, enable_cache=False),
        "strict-thresholds": _dc.replace(
            base,
            thresholds=Thresholds(
                god_table_columns=5,
                too_many_joins=3,
                enum_max_distinct=4,
                index_overuse_max_indexes=1,
                data_in_metadata_min_columns=2,
            ),
        ),
    }
    failures: list[OracleFailure] = []
    for config_name, configured in configurations.items():
        fused_config = _dc.replace(configured, fused=True)
        reference_config = _dc.replace(configured, fused=False)
        for subject, subject_corpus in [("fuzzed corpus", corpus), *example_corpora]:
            fused = detection_bytes(APDetector(fused_config).detect(subject_corpus))
            reference = detection_bytes(
                APDetector(reference_config).detect(subject_corpus)
            )
            if fused != reference:
                failures.append(OracleFailure(
                    "fused-equivalence", f"{subject} [{config_name}]",
                    "fused detections differ from the pre-fusion reference path"))
        batch_report, stats = APDetector(fused_config).detect_batch(
            corpus, workers=workers
        )
        reference = detection_bytes(APDetector(reference_config).detect(corpus))
        if detection_bytes(batch_report) != reference:
            failures.append(OracleFailure(
                "fused-equivalence", f"detect_batch [{config_name}]",
                f"fused batch pipeline ({stats.parallel_mode}) differs from the "
                "pre-fusion reference path"))
    return failures


# ----------------------------------------------------------------------
# pipeline-stats accounting
# ----------------------------------------------------------------------
def check_stats_accounting(
    stats: PipelineStats, *, subject: str = "pipeline"
) -> "list[OracleFailure]":
    """Totals ≡ sum of stage times (wall-clock runs only).

    Process-pool ``check_many`` merges are CPU-aggregate (stage sums exceed
    wall-clock by design, recorded in ``stage_semantics``) — those only get
    the weaker ``total > 0`` check.
    """
    failures: list[OracleFailure] = []
    stage_sum = stats.stage_seconds_sum()
    if stats.total_seconds < 0 or stage_sum < 0:
        failures.append(OracleFailure("stats", subject, "negative stage or total time"))
    if stats.stage_semantics == "wall-clock":
        if not math.isclose(stats.total_seconds, stage_sum, rel_tol=0.05, abs_tol=0.005):
            failures.append(OracleFailure(
                "stats", subject,
                f"total_seconds {stats.total_seconds:.6f} drifts from stage sum "
                f"{stage_sum:.6f} (mode {stats.parallel_mode})"))
    elif stats.total_seconds <= 0:
        failures.append(OracleFailure("stats", subject, "cpu-aggregate run with zero total"))
    return failures


# ----------------------------------------------------------------------
# dbdeo agreement
# ----------------------------------------------------------------------
def check_dbdeo_agreement(
    groups: "Sequence[GeneratedStatement] | None" = None,
    *,
    seed: int = 2020,
    per_anti_pattern: int = 5,
    config: DetectorConfig | None = None,
) -> "tuple[list[OracleFailure], dict[str, float]]":
    """Detector vs. dbdeo on the shared rule subset.

    Returns ``(failures, agreement)`` where ``agreement`` maps every shared
    planted anti-pattern to dbdeo's hit rate.  Enforced: sqlcheck detects
    every planting; dbdeo agrees on the :data:`DBDEO_AGREEMENT_SUBSET`.
    """
    if groups is None:
        generator = CorpusGenerator(seed)
        shared = [ap for ap in generator.plantable_anti_patterns() if ap in DBDEO_ANTI_PATTERNS]
        groups = [
            generator.planted_statement(ap) for ap in shared for _ in range(per_anti_pattern)
        ]
    detector_config = config or DetectorConfig()
    dbdeo = DBDeo()
    failures: list[OracleFailure] = []
    tallies: "dict[AntiPattern, list[int]]" = {}
    for group in groups:
        statements = list(group.sql)
        sqlcheck_types = APDetector(detector_config).detect(statements).types_detected()
        dbdeo_types = dbdeo.detect_types(statements)
        for anti_pattern in group.planted:
            if anti_pattern not in DBDEO_ANTI_PATTERNS:
                continue
            hits = tallies.setdefault(anti_pattern, [0, 0])
            hits[1] += 1
            if anti_pattern in dbdeo_types:
                hits[0] += 1
            if anti_pattern not in sqlcheck_types:
                failures.append(OracleFailure(
                    "dbdeo-agreement", anti_pattern.value,
                    f"sqlcheck missed its own planted instance: {group.text!r}"))
    agreement = {ap.value: hits / total for ap, (hits, total) in tallies.items()}
    for anti_pattern in DBDEO_AGREEMENT_SUBSET:
        hits, total = tallies.get(anti_pattern, (0, 0))
        if total and hits != total:
            failures.append(OracleFailure(
                "dbdeo-agreement", anti_pattern.value,
                f"dbdeo agreed on only {hits}/{total} obvious plantings"))
    return failures, agreement


# ----------------------------------------------------------------------
# cost-model equivalence
# ----------------------------------------------------------------------
def ranking_bytes(ranked) -> bytes:
    """Canonical byte serialisation of a ranking (order, scores, weights).

    Captures everything a cost model can influence; call it immediately
    after each :meth:`~repro.ranking.ranker.APRanker.rank` run — ranking
    writes scores back onto the shared detections, so a later capture would
    see the latest run's values.
    """
    payload = [
        {
            "rank": entry.rank,
            "score": round(entry.score, 9),
            "workload_weight": round(entry.workload_weight, 9),
            "detection": entry.detection.to_dict(),
        }
        for entry in ranked
    ]
    return json.dumps(payload, sort_keys=True, default=str).encode()


def check_cost_model_equivalence(
    corpus: "Sequence[str] | None" = None,
    *,
    seed: int = 2020,
    statements: int = 60,
) -> "list[OracleFailure]":
    """The cost models' exact degeneracies, byte for byte.

    Over one detected corpus (fuzzed from ``seed`` when not given):

    * ``frequency`` ≡ the seed ranking path (no ``cost_model`` argument);
    * ``duration`` and ``hybrid`` with *uniform* durations ≡ ``frequency``
      — median normalisation makes every relative duration exactly 1.0;
    * every model over a logless workload (no frequencies, no durations)
      ≡ the unweighted seed ranking.
    """
    from ..ranking.cost_model import COST_MODEL_NAMES
    from ..ranking.ranker import APRanker

    if corpus is None:
        corpus = CorpusGenerator(seed).corpus_sql(statements)
    corpus = list(corpus)
    report = APDetector(DetectorConfig()).detect(corpus)
    ranker = APRanker()
    failures: list[OracleFailure] = []

    # Deterministic synthetic workload facts: every other statement ran
    # more than once, every statement took the same mean time.
    indexed = [d.query_index for d in report.detections if d.query_index is not None]
    frequencies = {index: 2 + (index * 7) % 97 for index in indexed[::2]}
    uniform = {index: 12.5 for index in indexed}

    baseline = ranking_bytes(ranker.rank(report, frequencies=frequencies))
    if ranking_bytes(
        ranker.rank(report, frequencies=frequencies, cost_model="frequency")
    ) != baseline:
        failures.append(OracleFailure(
            "cost-model", "frequency",
            "explicit frequency model differs from the default ranking path"))
    for model in ("duration", "hybrid"):
        captured = ranking_bytes(ranker.rank(
            report, frequencies=frequencies, durations=uniform, cost_model=model
        ))
        if captured != baseline:
            failures.append(OracleFailure(
                "cost-model", model,
                "uniform durations must degenerate to the frequency ranking, "
                "byte for byte"))

    logless = ranking_bytes(ranker.rank(report))
    for model in COST_MODEL_NAMES:
        captured = ranking_bytes(ranker.rank(report, cost_model=model))
        if captured != logless:
            failures.append(OracleFailure(
                "cost-model", model,
                "logless ranking differs from the seed (unweighted) ranking"))
    return failures


# ----------------------------------------------------------------------
# live-scan vs. offline equivalence
# ----------------------------------------------------------------------
def check_scan_equivalence(
    ddl: "Sequence[str]",
    rows: "dict[str, list[dict]]",
    workload,
    *,
    db_path,
    options: "SQLCheckOptions | None" = None,
) -> "list[OracleFailure]":
    """Live ``sqlcheck scan`` ≡ offline DDL+rows+queries, byte for byte.

    Builds a SQLite database at ``db_path`` *and* an in-repo engine
    database from the same ``ddl`` and ``rows``, runs the live scanner
    against the file and the offline context path against the engine — both
    over ``workload`` (a :class:`~repro.ingest.workload_log.WorkloadLog`,
    whose real frequencies weight the ranking on both sides) — and fails
    unless detections and fixes serialise identically.
    """
    import sqlite3

    from ..context.builder import ContextBuilder
    from ..engine.database import Database
    from ..ingest import LiveScanner, SQLiteConnector, assign_frequencies

    failures: list[OracleFailure] = []
    options = options or SQLCheckOptions()
    label = str(db_path)

    # Live side: a real SQLite file scanned through the connector.
    connection = sqlite3.connect(str(db_path))
    for statement in ddl:
        connection.execute(statement)
    for table, table_rows in rows.items():
        for row in table_rows:
            columns = ", ".join(row)
            holes = ", ".join("?" for _ in row)
            connection.execute(
                f"INSERT INTO {table} ({columns}) VALUES ({holes})",
                tuple(row.values()),
            )
    connection.commit()
    connection.close()
    live_toolchain = SQLCheck(options)
    with SQLiteConnector(db_path) as connector:
        live = LiveScanner(live_toolchain).scan(connector, workload, source=label)

    # Offline side: the same inputs through the pre-ingestion pipeline.
    engine = Database()
    for statement in ddl:
        engine.execute(statement)
    for table, table_rows in rows.items():
        engine.insert_rows(table, [dict(row) for row in table_rows])
    offline_toolchain = SQLCheck(options)
    context = offline_toolchain._builder.build(
        workload.statements(), database=engine, source=label
    )
    assign_frequencies(context, workload)
    offline = offline_toolchain.check_context(context)

    live_bytes = json.dumps(
        [d.detection.to_dict() for d in live], sort_keys=True, default=str
    )
    offline_bytes = json.dumps(
        [d.detection.to_dict() for d in offline], sort_keys=True, default=str
    )
    if live_bytes != offline_bytes:
        failures.append(OracleFailure(
            "scan-equivalence", label,
            "live sqlite scan detections differ from the offline DDL+rows path"))
    if [round(d.score, 9) for d in live] != [round(d.score, 9) for d in offline]:
        failures.append(OracleFailure(
            "scan-equivalence", label,
            "frequency-weighted scores differ between live and offline runs"))
    live_fixes = json.dumps([f.to_dict() for f in live.fixes], sort_keys=True, default=str)
    offline_fixes = json.dumps([f.to_dict() for f in offline.fixes], sort_keys=True, default=str)
    if live_fixes != offline_fixes:
        failures.append(OracleFailure(
            "scan-equivalence", label,
            "suggested fixes differ between live and offline runs"))
    if live.queries_analyzed != offline.queries_analyzed:
        failures.append(OracleFailure(
            "scan-equivalence", label,
            f"queries_analyzed {live.queries_analyzed} != {offline.queries_analyzed}"))
    return failures


# ----------------------------------------------------------------------
# fixer round trip
# ----------------------------------------------------------------------
def check_fixer_round_trip(
    groups: "Sequence[GeneratedStatement] | None" = None,
    *,
    seed: int = 2020,
    options: SQLCheckOptions | None = None,
) -> "tuple[list[OracleFailure], int]":
    """Every concrete rewrite must re-parse and silence its anti-pattern.

    Returns ``(failures, rewrites_checked)``.  Textual fixes are guidance
    and are skipped; rewrites of the anti-patterns in
    :data:`ROUND_TRIP_PARSE_ONLY` only need to re-parse.
    """
    if groups is None:
        generator = CorpusGenerator(seed)
        groups = [
            generator.planted_statement(ap)
            for ap in generator.plantable_anti_patterns()
            for _ in range(2)
        ]
    toolchain = SQLCheck(options or SQLCheckOptions())
    failures: list[OracleFailure] = []
    rewrites = 0
    for group in groups:
        report = toolchain.check(list(group.sql))
        for fix in report.fixes:
            if not fix.rewritten_query:
                continue
            rewrites += 1
            anti_pattern = fix.detection.anti_pattern
            subject = f"{anti_pattern.value}: {fix.rewritten_query[:80]}"
            try:
                statements = parse(fix.rewritten_query)
            except Exception as error:  # noqa: BLE001 - oracle reports, never raises
                failures.append(OracleFailure(
                    "fixer-round-trip", subject, f"rewritten SQL does not parse: {error}"))
                continue
            if not statements:
                failures.append(OracleFailure(
                    "fixer-round-trip", subject, "rewritten SQL parses to no statements"))
                continue
            if anti_pattern in ROUND_TRIP_PARSE_ONLY:
                continue
            recheck = toolchain.detect([fix.rewritten_query]).types_detected()
            if anti_pattern in recheck:
                failures.append(OracleFailure(
                    "fixer-round-trip", subject,
                    "rewritten SQL still triggers the fixed anti-pattern"))
    return failures, rewrites


# ----------------------------------------------------------------------
# fault isolation
# ----------------------------------------------------------------------
def check_fault_isolation(
    corpus: "Sequence[str] | None" = None,
    *,
    seed: int = 2020,
    statements: int = 60,
    config: DetectorConfig | None = None,
) -> "list[OracleFailure]":
    """Injected faults must be quarantined, never contagious.

    Three chaos scenarios over one corpus (fuzzed from ``seed`` when not
    given), each holding the same invariant: the degraded run's detections
    on the *clean subset* are byte-identical to a clean run's, and every
    injected fault surfaces as a structured
    :class:`~repro.errors.PipelineError` with its stage and provenance.

    1. a :class:`~repro.testkit.chaos.CrashingRule` registered alongside
       the real rules crashes on every statement — the other rules'
       detections must not change, and each crash must be recorded as a
       ``detect``-stage ``rule-error``;
    2. a log corrupted by :func:`~repro.testkit.chaos.corrupt_log_lines`
       (junk-only insertions) read under the degraded reader must yield
       exactly the clean log's statements, one ``ingest``-stage error per
       injected line;
    3. a :class:`~repro.testkit.chaos.FlakyConnector` that recovers within
       the retry budget must scan byte-identically to the bare connector,
       while a :class:`~repro.testkit.chaos.BrokenConnector` (permanent
       mid-scan loss) must degrade to *exactly* the schema-only analysis —
       byte-identical to an offline run over the same schema with no data
       profiles — and record the loss as ``source-unavailable`` provenance.
    """
    import dataclasses as _dc
    import sqlite3
    import tempfile
    from pathlib import Path

    from ..errors import (
        CODE_LOG_MALFORMED,
        CODE_RULE_ERROR,
        CODE_SOURCE_UNAVAILABLE,
        ErrorBudget,
    )
    from ..ingest import (
        LiveScanner,
        SQLiteConnector,
        WorkloadLog,
        iter_log_records,
    )
    from ..ingest.connectors import RetryPolicy
    from ..rules.registry import RuleRegistry, default_registry
    from .chaos import (
        BrokenConnector,
        CrashingRule,
        FaultPlan,
        FlakyConnector,
        corrupt_log_lines,
    )

    if corpus is None:
        corpus = CorpusGenerator(seed).corpus_sql(statements)
    corpus = list(corpus)
    base = config or DetectorConfig()
    failures: list[OracleFailure] = []

    # 1. crashing rule: quarantine must be per-rule, never per-statement.
    clean = detection_bytes(APDetector(_dc.replace(base, enable_cache=False)).detect(corpus))
    chaos_registry = RuleRegistry(list(default_registry()))
    crashing = CrashingRule()
    chaos_registry.register(crashing)
    degraded = APDetector(
        _dc.replace(base, enable_cache=False), registry=chaos_registry
    ).detect(corpus)
    if detection_bytes(degraded) != clean:
        failures.append(OracleFailure(
            "fault-isolation", "crashing rule",
            "a crashing rule changed the other rules' detections"))
    if crashing.calls == 0:
        failures.append(OracleFailure(
            "fault-isolation", "crashing rule",
            "the chaos rule was never invoked — nothing was tested"))
    rule_errors = [
        e for e in degraded.errors
        if e.stage == "detect" and e.code == CODE_RULE_ERROR and e.rule == crashing.name
    ]
    if len(rule_errors) != crashing.calls:
        failures.append(OracleFailure(
            "fault-isolation", "crashing rule",
            f"{crashing.calls} crash(es) produced {len(rule_errors)} "
            "structured rule-error record(s); every fault must be recorded"))
    if any(e.statement_fingerprint is None for e in rule_errors):
        failures.append(OracleFailure(
            "fault-isolation", "crashing rule",
            "a rule-error record lost its statement fingerprint provenance"))

    # 2. corrupted log: insertions must be skipped-and-counted exactly.
    log_lines = [statement.rstrip().rstrip(";") + ";\n" for statement in corpus]
    corrupted, injected = corrupt_log_lines(log_lines, plan=FaultPlan(seed))
    clean_log = WorkloadLog.from_records(iter_log_records(log_lines, "sql"))
    budget = ErrorBudget()
    degraded_log = WorkloadLog.from_records(iter_log_records(corrupted, "sql", budget))
    if degraded_log.statements() != clean_log.statements():
        failures.append(OracleFailure(
            "fault-isolation", "corrupted log",
            "the degraded reader did not preserve the clean statement subset"))
    recorded = [
        e for e in budget if e.stage == "ingest" and e.code == CODE_LOG_MALFORMED
    ]
    if len(recorded) != injected:
        failures.append(OracleFailure(
            "fault-isolation", "corrupted log",
            f"{injected} injected junk line(s) produced {len(recorded)} "
            "ingest error record(s)"))

    # 3. connectors: retry is invisible, permanent loss degrades with
    #    provenance.  Small fixed fixture — the invariants are structural.
    ddl = (
        "CREATE TABLE chaos_orders (order_id INTEGER PRIMARY KEY, "
        "status VARCHAR(16), total FLOAT)",
    )
    scan_workload = [
        "SELECT * FROM chaos_orders",
        "SELECT order_id FROM chaos_orders WHERE status LIKE '%paid%'",
    ]
    fast_retry = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0)
    with tempfile.TemporaryDirectory(prefix="sqlcheck-chaos-") as tmp:
        db_path = Path(tmp) / "chaos.db"
        connection = sqlite3.connect(str(db_path))
        for statement in ddl:
            connection.execute(statement)
        connection.executemany(
            "INSERT INTO chaos_orders (order_id, status, total) VALUES (?, ?, ?)",
            [(i, "paid" if i % 2 else "open", 9.99 * i) for i in range(1, 21)],
        )
        connection.commit()
        connection.close()

        def scan_with(connector):
            connector.retry_policy = fast_retry
            with connector:
                return LiveScanner(SQLCheck(SQLCheckOptions())).scan(
                    connector, list(scan_workload), source="chaos"
                )

        baseline = scan_with(SQLiteConnector(db_path))
        flaky_report = scan_with(FlakyConnector(SQLiteConnector(db_path), failures=1))
        broken_report = scan_with(BrokenConnector(SQLiteConnector(db_path)))

        # The degraded twin: the same schema and workload through the
        # offline path with data analysis ablated (no profiles).  Mid-scan
        # source loss must degrade to exactly this — a principled ablation,
        # never a half-broken in-between state.
        twin_toolchain = SQLCheck(SQLCheckOptions())
        with SQLiteConnector(db_path) as twin_connector:
            twin_schema = twin_connector.schema()
        twin_context = twin_toolchain._builder.build(
            list(scan_workload), source="chaos"
        )
        twin_context.schema = twin_schema
        twin_report = twin_toolchain.check_context(twin_context)

        def ranked_bytes(report):
            dicts = [entry.detection.to_dict() for entry in report.detections]
            # Source labels differ per connector wrapper; the invariant is
            # about findings, not the connector's display name.
            for payload in dicts:
                payload.pop("source", None)
            return json.dumps(sorted(
                json.dumps(d, sort_keys=True, default=str) for d in dicts
            ))

        if ranked_bytes(flaky_report) != ranked_bytes(baseline):
            failures.append(OracleFailure(
                "fault-isolation", "flaky connector",
                "a fault recovered within the retry budget changed the scan"))
        if flaky_report.errors:
            failures.append(OracleFailure(
                "fault-isolation", "flaky connector",
                "a recovered transient fault left error records behind"))
        if ranked_bytes(broken_report) != ranked_bytes(twin_report):
            failures.append(OracleFailure(
                "fault-isolation", "broken connector",
                "mid-scan source loss did not degrade to the schema-only "
                "analysis byte-for-byte"))
        loss = [
            e for e in broken_report.errors
            if e.stage == "ingest" and e.code == CODE_SOURCE_UNAVAILABLE
        ]
        if not loss:
            failures.append(OracleFailure(
                "fault-isolation", "broken connector",
                "permanent source loss was not recorded as source-unavailable"))
        elif (loss[0].detail or {}).get("verdict") != "skipped: source unavailable":
            failures.append(OracleFailure(
                "fault-isolation", "broken connector",
                "the source-loss record lost its skipped-verdict provenance"))
    return failures


# ----------------------------------------------------------------------
# observability transparency
# ----------------------------------------------------------------------
def check_observability_transparency(
    corpus: "Sequence[str] | None" = None,
    *,
    seed: int = 2020,
    statements: int = 60,
    workers: int = 2,
    config: DetectorConfig | None = None,
) -> "list[OracleFailure]":
    """Observability on ≡ observability off, byte for byte.

    The metrics registry and the tracer are *pure observation*: switching
    them on must not change a single detection or ranking byte.  Over one
    corpus (fuzzed from ``seed`` when not given), three runs are compared:

    1. **obs-off** — metrics disabled, tracer disabled (the baseline);
    2. **metrics-on** — a fresh enabled :class:`~repro.obs.MetricsRegistry`
       swapped in for the run;
    3. **metrics+trace** — the same, with the process tracer enabled too.

    Each mode runs ``detect_batch`` (the instrumented batch path) and a
    full :meth:`~repro.core.sqlcheck.SQLCheck.check` (detect→rank→fix),
    capturing :func:`detection_bytes` and :func:`ranking_bytes`.  The
    instrumented runs must also be *non-vacuous* — metrics-on must record
    rule timings and trace-on must record spans, so a regression that
    silently disables collection cannot pass as "transparent".  All
    process-wide observability state is restored afterwards.
    """
    import dataclasses as _dc

    from ..obs import MetricsRegistry, get_tracer, set_metrics_enabled, swap_registry

    if corpus is None:
        corpus = CorpusGenerator(seed).corpus_sql(statements)
    corpus = list(corpus)
    base = config or DetectorConfig()
    failures: list[OracleFailure] = []
    tracer = get_tracer()

    def run_once() -> "tuple[bytes, bytes]":
        batch_report, _stats = APDetector(_dc.replace(base, enable_cache=True)).detect_batch(
            corpus, workers=workers
        )
        full = SQLCheck(SQLCheckOptions(detector=base)).check(corpus)
        return detection_bytes(batch_report), ranking_bytes(full.detections)

    was_tracing = tracer.enabled
    previous_registry = swap_registry(MetricsRegistry(enabled=False))
    tracer.disable()
    try:
        baseline = run_once()

        metrics_registry = MetricsRegistry(enabled=True)
        swap_registry(metrics_registry)
        with_metrics = run_once()
        if with_metrics != baseline:
            failures.append(OracleFailure(
                "obs-transparency", "metrics-on",
                "enabling the metrics registry changed detections or rankings"))
        timings = sum(
            count for _labels, count, _sum, _buckets
            in metrics_registry.rule_check_seconds.series()
        )
        if timings == 0:
            failures.append(OracleFailure(
                "obs-transparency", "metrics-on",
                "an instrumented run recorded no rule timings — the comparison "
                "was vacuous"))

        swap_registry(MetricsRegistry(enabled=True))
        tracer.enable(reset=True)
        with_trace = run_once()
        spans = len(tracer.spans())
        tracer.disable()
        if with_trace != baseline:
            failures.append(OracleFailure(
                "obs-transparency", "metrics+trace",
                "enabling the tracer changed detections or rankings"))
        if spans == 0:
            failures.append(OracleFailure(
                "obs-transparency", "metrics+trace",
                "a traced run recorded no spans — the comparison was vacuous"))
    finally:
        swap_registry(previous_registry)
        tracer.reset()
        tracer.enabled = was_tracing
    return failures


# ----------------------------------------------------------------------
# service mode ≡ in-process, warm restart ≡ cold
# ----------------------------------------------------------------------
def check_service_equivalence(
    corpus: "Sequence[str] | None" = None,
    *,
    seed: int = 2020,
    statements: int = 40,
    config: DetectorConfig | None = None,
) -> "list[OracleFailure]":
    """Service mode ≡ in-process, and a warm restart ≡ its own cold run.

    Two independent invariants:

    1. **Transport transparency.**  Detections served by a live
       :class:`~repro.interfaces.rest.RestServer` — two requests down one
       HTTP/1.1 keep-alive connection — are byte-identical to the
       in-process toolchain over the same SQL.  The second request rides
       the *same* socket, so a server that drops keep-alive (or returns a
       wrong Content-Length, which desynchronises the connection) cannot
       pass vacuously.
    2. **Persistence transparency.**  With a persistent memo file, a fresh
       detector instance over the already-warm file (a simulated process
       restart) must reproduce its own cold run byte for byte — and must
       actually replay from the store, not re-detect.  Corrupting the file
       afterwards must fall back to a clean cold run: never crash, never
       serve stale bytes.
    """
    import dataclasses as _dc
    import http.client
    import os
    import tempfile

    from ..interfaces.rest import RestServer
    from ..ranking.config import C1

    if corpus is None:
        corpus = CorpusGenerator(seed).corpus_sql(statements)
    corpus = list(corpus)
    base = config or DetectorConfig()
    failures: list[OracleFailure] = []

    # 1. transport transparency over a live keep-alive connection.  The
    # server always builds its pooled toolchains from the default detector
    # config, so the in-process reference must too.
    sql = ";\n".join(corpus)
    reference = SQLCheck(SQLCheckOptions(ranking=C1)).check(sql)
    body = json.dumps({"query": sql}).encode()
    with RestServer() as server:
        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            for attempt in ("first request", "keep-alive reuse"):
                try:
                    connection.request(
                        "POST", "/api/check", body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    served = json.loads(response.read())
                except (OSError, http.client.HTTPException) as error:
                    failures.append(OracleFailure(
                        "service-equivalence", attempt,
                        f"request over the shared connection failed: {error}"))
                    break
                if response.version != 11:
                    failures.append(OracleFailure(
                        "service-equivalence", attempt,
                        f"server answered HTTP/1.{response.version % 10}, "
                        "not HTTP/1.1"))
                served_bytes = json.dumps(
                    {
                        "queries_analyzed": served.get("queries_analyzed"),
                        "tables_analyzed": served.get("tables_analyzed"),
                        "detections": served.get("detections"),
                    },
                    sort_keys=True, default=str,
                ).encode()
                if served_bytes != _ranked_detection_bytes(reference):
                    failures.append(OracleFailure(
                        "service-equivalence", attempt,
                        "served detections differ from the in-process toolchain"))
        finally:
            connection.close()

    # 2. persistence transparency: warm restart ≡ cold, corrupt file ≡ cold
    with tempfile.TemporaryDirectory() as tmp:
        memo_path = os.path.join(tmp, "memo.sqlite")
        persistent = _dc.replace(
            base, enable_cache=True, persistent_memo_path=memo_path
        )
        cold_detector = APDetector(persistent)
        cold_report, _cold_stats = cold_detector.detect_batch(corpus, workers=2)
        cold = detection_bytes(cold_report)
        cold_detector.close()
        if detection_bytes(APDetector(base).detect(corpus)) != cold:
            failures.append(OracleFailure(
                "service-equivalence", "persistent cold run",
                "enabling the persistent memo changed a cold run's detections"))

        warm_detector = APDetector(persistent)
        warm_report, warm_stats = warm_detector.detect_batch(corpus, workers=2)
        warm_detector.close()
        if detection_bytes(warm_report) != cold:
            failures.append(OracleFailure(
                "service-equivalence", "warm restart",
                "a restarted process's warm run differs from its own cold run"))
        if warm_stats.parallel_mode != "persistent-replay":
            failures.append(OracleFailure(
                "service-equivalence", "warm restart",
                f"warm restart ran {warm_stats.parallel_mode!r}, not a "
                "persistent replay — the comparison was vacuous"))

        with open(memo_path, "wb") as handle:
            handle.write(b"this is not a sqlite database")
        recovered_detector = APDetector(persistent)
        recovered, recovered_stats = recovered_detector.detect_batch(
            corpus, workers=2
        )
        recovered_detector.close()
        if detection_bytes(recovered) != cold:
            failures.append(OracleFailure(
                "service-equivalence", "corrupt memo file",
                "recovery from a corrupt memo file changed the detections"))
        if recovered_stats.parallel_mode == "persistent-replay":
            failures.append(OracleFailure(
                "service-equivalence", "corrupt memo file",
                "a corrupt memo file still served a persistent replay"))
    return failures


def _ranked_detection_bytes(report) -> bytes:
    """Canonical bytes of a ranked :class:`SQLCheckReport`'s served shape."""
    payload = report.to_dict()
    return json.dumps(
        {
            "queries_analyzed": payload.get("queries_analyzed"),
            "tables_analyzed": payload.get("tables_analyzed"),
            "detections": payload.get("detections"),
        },
        sort_keys=True, default=str,
    ).encode()
