"""Run per-rule conformance examples through the real detector.

Every rule declares :meth:`~repro.rules.base.Rule.examples`; this module
executes them exactly the way production does — full ``APDetector`` over
the statements (and, for data examples, an engine database loaded with the
example's rows) — and checks the planted/control contract:

* a *positive* example must produce at least one detection attributed to
  the rule (``Detection.rule == rule.name``);
* a *control* example must produce none from that rule (other rules may
  still fire — controls are per-rule, not globally clean).
"""
from __future__ import annotations

from dataclasses import dataclass

from ..detector.detector import APDetector, DetectorConfig
from ..model.detection import Detection, DetectionReport
from ..rules.base import EXAMPLE_CONTROL, EXAMPLE_POSITIVE, Rule, RuleExample
from ..rules.registry import RuleRegistry, default_registry


@dataclass(frozen=True)
class ConformanceFailure:
    """One broken planted/control contract."""

    rule: str
    example_index: int
    kind: str
    sql: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.rule}[{self.example_index}] ({self.kind}): {self.reason} — {self.sql!r}"


def _build_database(example: RuleExample):
    """Load the example's rows into a fresh engine database."""
    from ..engine.database import Database

    database = Database()
    for statement in example.statements:
        if statement.lstrip().upper().startswith(("CREATE TABLE", "ALTER TABLE")):
            database.execute(statement)
    for table, rows in example.rows:
        database.insert_rows(table, [dict(row) for row in rows])
    return database


def example_report(
    example: RuleExample,
    *,
    registry: RuleRegistry | None = None,
    config: DetectorConfig | None = None,
) -> DetectionReport:
    """Detect over one example exactly as production would."""
    detector = APDetector(config or DetectorConfig(), registry=registry or default_registry())
    database = _build_database(example) if example.needs_database else None
    return detector.detect(list(example.statements), database=database)


def rule_detections(report: DetectionReport, rule: Rule) -> list[Detection]:
    """The detections a specific rule contributed to a report."""
    return [d for d in report.detections if d.rule == rule.name]


def run_rule_examples(
    registry: RuleRegistry | None = None,
    *,
    config: DetectorConfig | None = None,
) -> "tuple[list[ConformanceFailure], int]":
    """Check every registered rule's examples.

    Returns ``(failures, examples_run)``.  Rules with no examples, a
    missing positive, or a missing control are failures too — the
    conformance matrix requires at least one of each per rule.
    """
    registry = registry or default_registry()
    failures: list[ConformanceFailure] = []
    examples_run = 0
    for rule in registry:
        examples = rule.examples()
        if not any(e.is_positive for e in examples):
            failures.append(
                ConformanceFailure(rule.name, -1, "positive", "", "rule declares no planted-positive example")
            )
        if not any(not e.is_positive for e in examples):
            failures.append(
                ConformanceFailure(rule.name, -1, "control", "", "rule declares no clean-control example")
            )
        for index, example in enumerate(examples):
            examples_run += 1
            report = example_report(example, registry=registry, config=config)
            fired = rule_detections(report, rule)
            if example.is_positive and not fired:
                failures.append(
                    ConformanceFailure(
                        rule.name, index, example.kind, example.sql,
                        "planted anti-pattern was not detected",
                    )
                )
            elif not example.is_positive and fired:
                failures.append(
                    ConformanceFailure(
                        rule.name, index, example.kind, example.sql,
                        f"rule fired on a clean control ({fired[0].message[:80]}…)",
                    )
                )
    return failures, examples_run


def failures_from_entries(
    entries: "list[dict]", registry: RuleRegistry | None = None
) -> "tuple[list[ConformanceFailure], int]":
    """The planted/control verdicts derived from precomputed golden entries.

    Equivalent to :func:`run_rule_examples` without re-running the detector:
    each entry's ``detections`` list is already filtered to the rule's own
    findings, so a positive entry must be non-empty and a control empty.
    """
    registry = registry or default_registry()
    by_rule: "dict[str, list[dict]]" = {}
    for entry in entries:
        by_rule.setdefault(entry["rule"], []).append(entry)
    failures: list[ConformanceFailure] = []
    for rule in registry:
        rule_entries = by_rule.get(rule.name, [])
        if not any(e["kind"] == EXAMPLE_POSITIVE for e in rule_entries):
            failures.append(
                ConformanceFailure(rule.name, -1, EXAMPLE_POSITIVE, "", "rule declares no planted-positive example")
            )
        if not any(e["kind"] == EXAMPLE_CONTROL for e in rule_entries):
            failures.append(
                ConformanceFailure(rule.name, -1, EXAMPLE_CONTROL, "", "rule declares no clean-control example")
            )
        for entry in rule_entries:
            sql = ";\n".join(entry["statements"])
            if entry["kind"] == EXAMPLE_POSITIVE and not entry["detections"]:
                failures.append(
                    ConformanceFailure(rule.name, entry["example"], entry["kind"], sql,
                                       "planted anti-pattern was not detected")
                )
            elif entry["kind"] == EXAMPLE_CONTROL and entry["detections"]:
                message = entry["detections"][0].get("message", "")
                failures.append(
                    ConformanceFailure(rule.name, entry["example"], entry["kind"], sql,
                                       f"rule fired on a clean control ({message[:80]}…)")
                )
    return failures, len(entries)
