"""Conformance testkit: the test-infrastructure subsystem.

SQLCheck's claims rest on detecting, ranking, and fixing anti-patterns
correctly over messy corpora; this package is the mechanical safety net
behind those claims:

* :mod:`repro.testkit.conformance` — runs each rule's declared
  :meth:`~repro.rules.base.Rule.examples` through the full detector and
  checks planted positives fire while clean controls stay silent;
* :mod:`repro.testkit.generator` — a seeded grammar-based SQL generator
  emitting statements with *known* planted anti-patterns plus clean
  controls, for fuzzing the detect→rank→fix pipeline at corpus scale;
* :mod:`repro.testkit.golden` — the golden-corpus snapshot format
  (``tests/conformance/golden/*.jsonl``) with an update path;
* :mod:`repro.testkit.oracles` — differential oracles: cold vs. warm-cache
  vs. batch equivalence, detector vs. dbdeo agreement, fixer round-trips,
  pipeline-stats accounting, live-scan vs. offline equivalence, fault
  isolation (degraded runs preserve the clean subset byte-for-byte), and
  observability transparency (metrics/tracing never change a detection);
* :mod:`repro.testkit.chaos` — seeded fault injection: crashing/flaky
  rules, flaky/broken connectors, and a log corrupter driving the
  fault-isolation oracle;
* :mod:`repro.testkit.coverage` — a dependency-free line-coverage tracer
  used to enforce the rules-package coverage floor;
* :mod:`repro.testkit.selftest` — the ``sqlcheck selftest`` entry point
  tying all of the above together.
"""
from .chaos import (
    BrokenConnector,
    ChaosError,
    CrashingRule,
    FaultPlan,
    FlakyConnector,
    FlakyRule,
    corrupt_log_lines,
)
from .conformance import ConformanceFailure, example_report, run_rule_examples
from .generator import CorpusGenerator, GeneratedStatement
from .golden import golden_entries, load_golden, diff_golden, write_golden
from .oracles import (
    OracleFailure,
    check_cold_warm_batch,
    check_cost_model_equivalence,
    check_dbdeo_agreement,
    check_fault_isolation,
    check_fixer_round_trip,
    check_fused_equivalence,
    check_observability_transparency,
    check_scan_equivalence,
    check_service_equivalence,
    check_stats_accounting,
    detection_bytes,
    ranking_bytes,
)
from .selftest import SelftestResult, run_selftest

__all__ = [
    "BrokenConnector",
    "ChaosError",
    "ConformanceFailure",
    "CorpusGenerator",
    "CrashingRule",
    "FaultPlan",
    "FlakyConnector",
    "FlakyRule",
    "GeneratedStatement",
    "OracleFailure",
    "SelftestResult",
    "check_cold_warm_batch",
    "check_cost_model_equivalence",
    "check_dbdeo_agreement",
    "check_fault_isolation",
    "check_fixer_round_trip",
    "check_fused_equivalence",
    "check_observability_transparency",
    "check_scan_equivalence",
    "check_service_equivalence",
    "check_stats_accounting",
    "corrupt_log_lines",
    "detection_bytes",
    "ranking_bytes",
    "diff_golden",
    "example_report",
    "golden_entries",
    "load_golden",
    "run_rule_examples",
    "run_selftest",
    "write_golden",
]
