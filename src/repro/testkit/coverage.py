"""Minimal line-coverage tracer (no external coverage dependency).

The conformance suite enforces a coverage floor over ``repro.rules``
without assuming ``pytest-cov``/``coverage`` are installed: executable
lines are taken from the code objects of the functions and methods a
module defines (import-time lines — class statements, constants — are
excluded, since the modules are already imported before measurement), and
executed lines are recorded with :func:`sys.settrace` while a callback
runs.
"""
from __future__ import annotations

import sys
import types
from dataclasses import dataclass, field
from typing import Callable, Iterable


@dataclass
class CoverageResult:
    """Executed vs. executable line sets per file."""

    executable: "dict[str, set[int]]" = field(default_factory=dict)
    executed: "dict[str, set[int]]" = field(default_factory=dict)

    def counts(self) -> "dict[str, tuple[int, int]]":
        return {
            path: (len(self.executed.get(path, set()) & lines), len(lines))
            for path, lines in self.executable.items()
        }

    @property
    def percent(self) -> float:
        covered = sum(hit for hit, _ in self.counts().values())
        total = sum(total for _, total in self.counts().values())
        return 100.0 * covered / total if total else 100.0

    def uncovered(self) -> "dict[str, list[int]]":
        return {
            path: sorted(lines - self.executed.get(path, set()))
            for path, lines in self.executable.items()
            if lines - self.executed.get(path, set())
        }


def _function_code_objects(module: types.ModuleType) -> "Iterable[types.CodeType]":
    """Code objects of every function/method (incl. nested) the module defines."""
    seen: set[int] = set()
    stack: list[types.CodeType] = []
    for value in vars(module).values():
        if isinstance(value, types.FunctionType) and value.__module__ == module.__name__:
            stack.append(value.__code__)
        elif isinstance(value, type) and value.__module__ == module.__name__:
            for attribute in vars(value).values():
                function = getattr(attribute, "__func__", attribute)
                if isinstance(function, types.FunctionType):
                    stack.append(function.__code__)
                elif isinstance(attribute, property):
                    for accessor in (attribute.fget, attribute.fset, attribute.fdel):
                        if isinstance(accessor, types.FunctionType):
                            stack.append(accessor.__code__)
    while stack:
        code = stack.pop()
        if id(code) in seen:
            continue
        seen.add(id(code))
        yield code
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)


def executable_lines(module: types.ModuleType) -> "set[int]":
    """Line numbers of the module's runtime-callable code.

    Code objects compiled elsewhere (dataclass-generated ``__init__``
    methods, inherited functions) are excluded — their line numbers belong
    to other files.
    """
    lines: set[int] = set()
    for code in _function_code_objects(module):
        if code.co_filename != getattr(module, "__file__", code.co_filename):
            continue
        lines.add(code.co_firstlineno)
        for _, _, line in code.co_lines():
            if line is not None:
                lines.add(line)
    return lines


def measure(
    action: "Callable[[], object]", modules: "Iterable[types.ModuleType]"
) -> CoverageResult:
    """Run ``action`` under the tracer, measuring the given modules."""
    result = CoverageResult()
    files: "dict[str, str]" = {}
    for module in modules:
        path = getattr(module, "__file__", None)
        if path:
            files[path] = module.__name__
            result.executable[path] = executable_lines(module)
            result.executed.setdefault(path, set())

    def tracer(frame, event, arg):  # noqa: ANN001 - sys.settrace signature
        filename = frame.f_code.co_filename
        if filename not in files:
            return None
        if event == "call":
            result.executed[filename].add(frame.f_code.co_firstlineno)
        elif event == "line":
            result.executed[filename].add(frame.f_lineno)
        return tracer

    previous = sys.gettrace()
    sys.settrace(tracer)
    try:
        action()
    finally:
        sys.settrace(previous)
    return result
