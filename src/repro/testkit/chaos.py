"""Fault-injection chaos wrappers for the fault-isolation contract.

Every quarantine path the pipeline promises — per-rule error isolation,
degraded log ingestion, connector retry and mid-scan source loss — needs a
way to *make* the fault happen on demand, deterministically.  This module
is that switchboard:

* :class:`CrashingRule` / :class:`FlakyRule` — query rules that raise
  instead of returning detections (always, or on a seeded subset of
  statements), exercising the detector's per-rule quarantine;
* :class:`FlakyConnector` / :class:`BrokenConnector` — connector wrappers
  whose row fetches fail transiently (recoverable through the retry
  policy) or permanently (degrading data analysis to "source unavailable");
* :func:`corrupt_log_lines` — injects junk lines into a query log per a
  seeded :class:`FaultPlan`, so degraded readers can be checked against
  the clean subset they must preserve.

Everything is seeded: the same plan produces the same faults on every run,
which is what lets :func:`~repro.testkit.oracles.check_fault_isolation`
compare a degraded run byte-for-byte against a clean one.
"""
from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..ingest.connectors import Connector, ConnectorError
from ..model.antipatterns import AntiPattern
from ..rules.base import QueryRule


class ChaosError(RuntimeError):
    """The injected failure — distinguishable from any organic exception."""


class FaultPlan:
    """A seeded, reproducible plan of which targets fail.

    ``pick(n, count)`` chooses the failing positions out of ``n``; the
    same ``(seed, n, count)`` always yields the same set, so a degraded
    run can be replayed exactly.
    """

    def __init__(self, seed: int = 2020):
        self.seed = seed

    def pick(self, n: int, count: int) -> "frozenset[int]":
        count = max(0, min(count, n))
        return frozenset(random.Random(f"{self.seed}:{n}:{count}").sample(range(n), count))


class CrashingRule(QueryRule):
    """A query rule that raises on every statement it is asked to check."""

    anti_pattern = AntiPattern.NO_PRIMARY_KEY  # never fires; identity only
    name = "chaos_crashing_rule"

    def __init__(self, message: str = "chaos: rule crashed"):
        super().__init__()
        self.message = message
        self.calls = 0

    def check(self, annotation, context):
        self.calls += 1
        raise ChaosError(self.message)


class FlakyRule(QueryRule):
    """A query rule that raises on a planned subset of statement indexes.

    ``fail_indexes`` are statement indexes (``annotation.statement.index``);
    everything else passes through silently, so the detections of the other
    rules are the clean-run baseline the oracle compares against.
    """

    anti_pattern = AntiPattern.NO_PRIMARY_KEY  # never fires; identity only
    name = "chaos_flaky_rule"

    def __init__(self, fail_indexes: Iterable[int]):
        super().__init__()
        self.fail_indexes = frozenset(fail_indexes)
        self.crashes = 0

    def check(self, annotation, context):
        statement = annotation.statement
        if statement is not None and statement.index in self.fail_indexes:
            self.crashes += 1
            raise ChaosError(f"chaos: rule crashed on statement {statement.index}")
        return []


class _WrappingConnector(Connector):
    """Delegating base for connector chaos wrappers."""

    def __init__(self, inner: Connector):
        self.inner = inner
        self.name = f"chaos:{inner.name}"
        self.dialect = inner.dialect

    def introspect_schema(self):
        return self.inner.introspect_schema()

    def table_rows(self, table, limit=None):
        return self.inner.table_rows(table, limit)

    def table_row_count(self, table):
        return self.inner.table_row_count(table)

    def close(self):
        self.inner.close()


class FlakyConnector(_WrappingConnector):
    """Fails the first ``failures`` row fetches, then recovers.

    With ``failures`` below the retry policy's attempt count the scan must
    succeed *identically* to a scan over the bare connector — retries are
    pure plumbing.
    """

    def __init__(self, inner: Connector, *, failures: int = 1):
        super().__init__(inner)
        self.failures_left = failures
        self.attempts = 0

    def table_rows(self, table, limit=None):
        self.attempts += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise ConnectorError(f"chaos: transient failure fetching {table!r}")
        return self.inner.table_rows(table, limit)


class BrokenConnector(_WrappingConnector):
    """Introspects fine, then every row fetch fails permanently.

    Models a source that died between catalog introspection and profiling —
    the mid-scan loss the scanner must degrade (not abort) on.
    """

    def table_rows(self, table, limit=None):
        raise ConnectorError(f"chaos: source gone while fetching {table!r}")

    def table_row_count(self, table):
        raise ConnectorError(f"chaos: source gone while counting {table!r}")


#: Junk payloads a corrupted log line can carry — each contains a NUL or
#: replacement character so the degraded readers' junk filter catches it.
_JUNK_LINES = (
    "\x00\x00\x04garbage frame\x00\x1f\n",
    "��binary spill�\n",
    "\x00SELECT not really\x00\n",
)


def corrupt_log_lines(
    lines: "Sequence[str]",
    *,
    plan: "FaultPlan | None" = None,
    faults: int = 3,
) -> "tuple[list[str], int]":
    """Interleave junk lines into a log per the seeded plan.

    Returns ``(corrupted_lines, injected)``.  Original lines are never
    modified or dropped — only junk is *inserted* — so the clean subset of
    the corrupted log is exactly the input, which is the invariant the
    fault-isolation oracle's byte-identity check relies on.
    """
    plan = plan or FaultPlan()
    lines = list(lines)
    slots = len(lines) + 1
    positions = plan.pick(slots, faults)
    rng = random.Random(f"{plan.seed}:payload")
    out: "list[str]" = []
    injected = 0
    for slot in range(slots):
        if slot in positions:
            out.append(rng.choice(_JUNK_LINES))
            injected += 1
        if slot < len(lines):
            out.append(lines[slot])
    return out, injected
