"""Golden anti-pattern corpus: snapshot format, loader, and update path.

Each registered rule's :meth:`~repro.rules.base.Rule.examples` are run
through the real detector and the rule's own detections are frozen as one
JSON line per example in ``tests/conformance/golden/<module>.jsonl``
(grouped by the rule module: ``query_rules``, ``logical_design``,
``physical_design``, ``data_rules``).  The conformance suite recomputes
the entries and fails on any drift; regeneration is explicit:

* ``pytest tests/conformance --update-golden``, or
* ``sqlcheck selftest --update-golden``.

Only fields that describe the rule's verdict are locked (anti-pattern,
rule, mode, confidence, table/column attribution, message) so unrelated
pipeline changes — ranking, fixes, stats — never churn the corpus.
"""
from __future__ import annotations

import json
from pathlib import Path

from ..detector.detector import DetectorConfig
from ..rules.registry import RuleRegistry, default_registry
from .conformance import example_report, rule_detections

#: Golden files are keyed by the defining module's basename.
GOLDEN_SUFFIX = ".jsonl"


def _category(rule) -> str:
    return type(rule).__module__.rsplit(".", 1)[-1]


def _canonical_detection(detection) -> dict:
    return {
        "anti_pattern": detection.anti_pattern.value,
        "rule": detection.rule,
        "detection_mode": detection.detection_mode,
        "confidence": round(detection.confidence, 3),
        "table": detection.table,
        "column": detection.column,
        "query_index": detection.query_index,
        "message": detection.message,
    }


def golden_entries(
    registry: RuleRegistry | None = None,
    *,
    config: DetectorConfig | None = None,
) -> "list[dict]":
    """Recompute the golden corpus from the registered rules' examples."""
    registry = registry or default_registry()
    entries: list[dict] = []
    for rule in registry:
        for index, example in enumerate(rule.examples()):
            report = example_report(example, registry=registry, config=config)
            fired = rule_detections(report, rule)
            entries.append(
                {
                    "category": _category(rule),
                    "rule": rule.name,
                    "example": index,
                    "kind": example.kind,
                    "statements": list(example.statements),
                    "has_data": example.needs_database,
                    "note": example.note,
                    "detections": sorted(
                        (_canonical_detection(d) for d in fired),
                        key=lambda d: (d["query_index"] is None, d["query_index"] or 0,
                                       d["table"] or "", d["column"] or "", d["message"]),
                    ),
                }
            )
    entries.sort(key=lambda e: (e["category"], e["rule"], e["example"]))
    return entries


def _is_golden_file(path: Path) -> bool:
    """True when the file's first line is a golden entry we wrote — the
    stale-file cleanup must never delete unrelated ``.jsonl`` files from a
    user-supplied directory."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline().strip()
        entry = json.loads(first) if first else {}
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(entry, dict) and {"rule", "kind", "detections"} <= entry.keys()


def write_golden(golden_dir: "str | Path", entries: "list[dict]") -> "list[Path]":
    """Write entries as per-category JSONL files; returns the paths written.

    Golden files of categories that no longer exist are removed; files that
    do not look like golden snapshots are left untouched.
    """
    golden_dir = Path(golden_dir)
    golden_dir.mkdir(parents=True, exist_ok=True)
    by_category: "dict[str, list[dict]]" = {}
    for entry in entries:
        by_category.setdefault(entry["category"], []).append(entry)
    written: list[Path] = []
    for stale in golden_dir.glob(f"*{GOLDEN_SUFFIX}"):
        if stale.stem not in by_category and _is_golden_file(stale):
            stale.unlink()
    for category, group in sorted(by_category.items()):
        path = golden_dir / f"{category}{GOLDEN_SUFFIX}"
        with open(path, "w", encoding="utf-8") as handle:
            for entry in group:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        written.append(path)
    return written


def load_golden(golden_dir: "str | Path") -> "list[dict]":
    """Load every stored golden entry (empty when the directory is missing).

    Only files in the per-rule snapshot format are read: the golden
    directory can hold other lock files (e.g. the generator-recipe lock)
    with their own loaders.
    """
    golden_dir = Path(golden_dir)
    entries: list[dict] = []
    if not golden_dir.is_dir():
        return entries
    for path in sorted(golden_dir.glob(f"*{GOLDEN_SUFFIX}")):
        if not _is_golden_file(path):
            continue
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
    entries.sort(key=lambda e: (e["category"], e["rule"], e["example"]))
    return entries


def diff_golden(current: "list[dict]", stored: "list[dict]") -> "list[str]":
    """Human-readable differences between recomputed and stored entries."""
    stored_by_key = {(e["rule"], e["example"]): e for e in stored}
    current_by_key = {(e["rule"], e["example"]): e for e in current}
    problems: list[str] = []
    for key in sorted(stored_by_key.keys() - current_by_key.keys()):
        problems.append(f"{key[0]}[{key[1]}]: stored golden entry no longer produced")
    for key in sorted(current_by_key.keys() - stored_by_key.keys()):
        problems.append(f"{key[0]}[{key[1]}]: new example has no stored golden entry")
    for key in sorted(current_by_key.keys() & stored_by_key.keys()):
        new, old = current_by_key[key], stored_by_key[key]
        if new == old:
            continue
        fields = [f for f in sorted(new.keys() | old.keys()) if new.get(f) != old.get(f)]
        problems.append(
            f"{key[0]}[{key[1]}]: drift in {', '.join(fields)} "
            f"(rerun with --update-golden if intentional)"
        )
    return problems
