"""ap-detect: the anti-pattern detection component."""
from .detector import APDetector, DetectorConfig
from .pipeline import PipelineStats

__all__ = ["APDetector", "DetectorConfig", "PipelineStats"]
