"""ap-detect: the anti-pattern detection component."""
from .detector import APDetector, DetectorConfig

__all__ = ["APDetector", "DetectorConfig"]
