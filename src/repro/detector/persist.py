"""Persistent detection memo: SQLite-backed warm state across restarts.

The in-memory caches that make the steady state fast — the annotation
cache, the per-statement detection memo, and the corpus-level replay — die
with the process, so every REST worker and every CLI invocation pays the
cold path again.  :class:`PersistentMemo` mirrors those caches into one
SQLite file so a *restarted* process resumes warm, and concurrent
``detect_batch`` workers (which each open the same path) share one store.

Three tables mirror the three cache layers:

* ``memo`` — ``(scope, fingerprint, raw) -> pickled detection templates``,
  the exact key of ``APDetector._memo``, so a persistent hit installs into
  the in-memory memo and replays through the same code path (byte-identical
  by construction);
* ``annotations`` — ``(dialect, raw) -> pickled parse templates``, the
  read-through layer under :class:`PersistentAnnotationCache`;
* ``corpus`` — a whole-run replay: the digest of an entire ``detect_batch``
  input (ordered exact texts + configuration scope) maps to the final
  deduplicated detections, so re-analysing an unchanged corpus skips the
  parse stage entirely — this is what makes a warm restart comparable to
  the in-memory warm path instead of ~2× cold.

Safety model — the store must *never* crash a run and *never* serve stale
results:

* every key embeds :attr:`RuleRegistry.content_digest` plus the thresholds
  and analysis flags, so rule or configuration changes orphan old entries
  rather than match them;
* a ``meta`` table records the format version and registry digest; a
  mismatch on open purges the file back to cold (counted as an
  invalidation);
* a corrupt or truncated file (sqlite errors, unpicklable payloads) is
  dropped and recreated once; if the path stays unusable the store disables
  itself and the detector simply runs cold.
"""
from __future__ import annotations

import os
import pickle
import sqlite3
import threading

from ..obs import get_metrics
from ..sqlparser.fingerprint import AnnotationCache

#: Schema/payload format of the store; bump on any incompatible change so
#: old files invalidate cleanly instead of unpickling garbage.
FORMAT_VERSION = 1

#: Row ceiling per cache table; the flush trims oldest-first beyond it.
MAX_ROWS = 65536

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS memo (
    scope TEXT NOT NULL, fingerprint TEXT NOT NULL, raw TEXT NOT NULL,
    payload BLOB NOT NULL, PRIMARY KEY (scope, fingerprint, raw));
CREATE TABLE IF NOT EXISTS annotations (
    dialect TEXT NOT NULL, raw TEXT NOT NULL, fingerprint TEXT NOT NULL,
    payload BLOB NOT NULL, PRIMARY KEY (dialect, raw));
CREATE TABLE IF NOT EXISTS corpus (
    key TEXT PRIMARY KEY, payload BLOB NOT NULL);
"""

#: Invalidation reasons surfaced through metrics and :meth:`info`.
REASON_FORMAT = "format-version"
REASON_REGISTRY = "registry-change"
REASON_CORRUPT_FILE = "corrupt-file"
REASON_CORRUPT_ENTRY = "corrupt-entry"
REASON_IO = "io-error"


class PersistentMemo:
    """One process's handle on the shared SQLite warm-state store.

    All public methods are safe to call from any thread (one internal
    lock serialises access) and never raise: any storage-layer failure
    counts an invalidation and degrades lookups to misses — the cold path
    is always available.  Writes are buffered per run and flushed in one
    transaction by :meth:`flush` (the detector calls it at the end of every
    detection pass).
    """

    def __init__(self, path, *, registry_digest: bytes, max_rows: int = MAX_ROWS):
        self.path = str(path)
        self.registry_digest = registry_digest.hex()
        self.max_rows = max_rows
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._lock = threading.RLock()
        self._conn: "sqlite3.Connection | None" = None
        self._recreated = False
        # (table, row tuple) pairs accumulated until the next flush.
        self._pending: "list[tuple[str, tuple]]" = []
        try:
            self._connect()
        except (sqlite3.Error, OSError, ValueError):
            self._invalidate(REASON_CORRUPT_FILE)
            self._recreate()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        conn = sqlite3.connect(self.path, timeout=5.0, check_same_thread=False)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            meta = dict(conn.execute("SELECT key, value FROM meta"))
            stale = None
            if meta and meta.get("format_version") != str(FORMAT_VERSION):
                stale = REASON_FORMAT
            elif meta and meta.get("registry_digest") != self.registry_digest:
                stale = REASON_REGISTRY
            if stale is not None or not meta:
                if stale is not None:
                    self._invalidate(stale)
                for table in ("memo", "annotations", "corpus", "meta"):
                    conn.execute(f"DELETE FROM {table}")
                conn.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    [
                        ("format_version", str(FORMAT_VERSION)),
                        ("registry_digest", self.registry_digest),
                    ],
                )
            conn.commit()
        except (sqlite3.Error, OSError, ValueError):
            conn.close()
            raise
        self._conn = conn

    def _recreate(self) -> None:
        """Drop the on-disk file and start cold; on failure stay disabled."""
        self._conn = None
        try:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.remove(self.path + suffix)
                except FileNotFoundError:
                    pass
            self._connect()
        except (sqlite3.Error, OSError, ValueError):
            self._conn = None

    def _io_failure(self) -> None:
        """A storage operation failed mid-run: invalidate, recreate once."""
        self._invalidate(REASON_IO)
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        if not self._recreated:
            self._recreated = True
            self._recreate()

    def close(self) -> None:
        with self._lock:
            self.flush()
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    @property
    def enabled(self) -> bool:
        return self._conn is not None

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def _invalidate(self, reason: str) -> None:
        self.invalidations += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.persistent_memo_invalidations.inc_single(reason)

    def _count(self, layer: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.persistent_memo_lookups.inc(
                1, layer=layer, result="hit" if hit else "miss"
            )

    # ------------------------------------------------------------------
    # generic row access
    # ------------------------------------------------------------------
    def _fetch(self, layer: str, sql: str, params: tuple) -> "object | None":
        """One guarded SELECT returning the unpickled payload, or None."""
        with self._lock:
            if self._conn is None:
                return None
            try:
                row = self._conn.execute(sql, params).fetchone()
            except (sqlite3.Error, OSError):
                self._io_failure()
                return None
            if row is None:
                self._count(layer, hit=False)
                return None
            value = _loads(row[-1])
            if value is None:
                # Unpicklable payload: a truncated write or a library drift
                # the format version missed — treat as corrupt, never serve.
                self._invalidate(REASON_CORRUPT_ENTRY)
                self._count(layer, hit=False)
                return None
            self._count(layer, hit=True)
            return value

    def _buffer(self, table: str, row: tuple) -> None:
        with self._lock:
            if self._conn is None:
                return
            self._pending.append((table, row))

    # ------------------------------------------------------------------
    # the three cache layers
    # ------------------------------------------------------------------
    def get_detections(self, scope: bytes, fp: str, raw: str) -> "list | None":
        return self._fetch(
            "memo",
            "SELECT payload FROM memo WHERE scope=? AND fingerprint=? AND raw=?",
            (scope.hex(), fp, raw),
        )

    def put_detections(self, scope: bytes, fp: str, raw: str, detections: list) -> None:
        payload = _dumps(detections)
        if payload is not None:
            self._buffer("memo", (scope.hex(), fp, raw, payload))

    def get_annotations(self, dialect: str, raw: str) -> "tuple[str, object] | None":
        """Return ``(fingerprint, templates)`` for a cached parse, or None."""
        with self._lock:
            if self._conn is None:
                return None
            try:
                row = self._conn.execute(
                    "SELECT fingerprint, payload FROM annotations "
                    "WHERE dialect=? AND raw=?",
                    (dialect, raw),
                ).fetchone()
            except (sqlite3.Error, OSError):
                self._io_failure()
                return None
            if row is None:
                self._count("annotations", hit=False)
                return None
            value = _loads(row[1])
            if value is None:
                self._invalidate(REASON_CORRUPT_ENTRY)
                self._count("annotations", hit=False)
                return None
            self._count("annotations", hit=True)
            return row[0], value

    def put_annotations(self, dialect: str, raw: str, fp: str, templates) -> None:
        payload = _dumps(templates)
        if payload is not None:
            self._buffer("annotations", (dialect, raw, fp, payload))

    def get_corpus(self, key: str) -> "dict | None":
        value = self._fetch(
            "corpus", "SELECT payload FROM corpus WHERE key=?", (key,)
        )
        return value if isinstance(value, dict) else None

    def put_corpus(self, key: str, payload: dict) -> None:
        blob = _dumps(payload)
        if blob is not None:
            self._buffer("corpus", (key, blob))

    # ------------------------------------------------------------------
    # flush / maintenance
    # ------------------------------------------------------------------
    _INSERTS = {
        "memo": "INSERT OR REPLACE INTO memo "
        "(scope, fingerprint, raw, payload) VALUES (?, ?, ?, ?)",
        "annotations": "INSERT OR REPLACE INTO annotations "
        "(dialect, raw, fingerprint, payload) VALUES (?, ?, ?, ?)",
        "corpus": "INSERT OR REPLACE INTO corpus (key, payload) VALUES (?, ?)",
    }

    def flush(self) -> None:
        """Write buffered puts in one transaction and trim oversized tables."""
        with self._lock:
            if self._conn is None or not self._pending:
                self._pending.clear()
                return
            pending, self._pending = self._pending, []
            try:
                with self._conn:
                    for table, row in pending:
                        self._conn.execute(self._INSERTS[table], row)
                    for table in ("memo", "annotations", "corpus"):
                        self._conn.execute(
                            f"DELETE FROM {table} WHERE rowid NOT IN "
                            f"(SELECT rowid FROM {table} ORDER BY rowid DESC LIMIT ?)",
                            (self.max_rows,),
                        )
            except (sqlite3.Error, OSError):
                self._io_failure()
                return
            metrics = get_metrics()
            if metrics.enabled:
                metrics.persistent_memo_entries.set(self._total_rows())

    def _total_rows(self) -> int:
        if self._conn is None:
            return 0
        try:
            return sum(
                self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
                for table in ("memo", "annotations", "corpus")
            )
        except (sqlite3.Error, OSError):
            return 0

    def info(self) -> dict:
        """Occupancy + counter snapshot for health probes and ``memo_info``."""
        with self._lock:
            payload = {
                "path": self.path,
                "enabled": self.enabled,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "pending_writes": len(self._pending),
            }
            if self._conn is not None:
                try:
                    for table in ("memo", "annotations", "corpus"):
                        payload[f"{table}_rows"] = self._conn.execute(
                            f"SELECT COUNT(*) FROM {table}"
                        ).fetchone()[0]
                except (sqlite3.Error, OSError):
                    pass
            return payload


def _loads(blob) -> "object | None":
    """Unpickle a stored payload; any failure reads as 'no entry'."""
    try:
        return pickle.loads(blob)
    except Exception:  # noqa: BLE001 - corrupt bytes can raise anything
        return None


def _dumps(value) -> "bytes | None":
    """Pickle a payload; unpicklable values are simply not persisted."""
    try:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 - user rules can attach anything
        return None


class PersistentAnnotationCache(AnnotationCache):
    """An :class:`AnnotationCache` with the persistent store as its L2.

    In-memory lookups behave exactly like the base class; a miss probes the
    store, and a store hit is promoted into the in-memory cache (so later
    occurrences hit L1) and re-counted as a hit — either way the caller
    skipped a parse, which is what the hit/miss stats mean.  Every put
    writes through (buffered until the store's next flush).
    """

    def __init__(self, maxsize: int, store: PersistentMemo, dialect_key: str):
        super().__init__(maxsize=maxsize)
        self._store = store
        self._dialect_key = dialect_key

    def get(self, raw: str, *, fp: "str | None" = None) -> "object | None":
        value = super().get(raw, fp=fp)
        if value is not None:
            return value
        row = self._store.get_annotations(self._dialect_key, raw)
        if row is None:
            return None
        stored_fp, value = row
        AnnotationCache.put(self, raw, value, fp=stored_fp)
        # The L1 probe above already counted a miss, but the caller is
        # getting templates and skipping the parse: reclassify as a hit.
        self.stats.misses -= 1
        self.stats.hits += 1
        return value

    def put(self, raw: str, value: object, *, fp: "str | None" = None) -> str:
        fp = super().put(raw, value, fp=fp)
        self._store.put_annotations(self._dialect_key, raw, fp, value)
        return fp
