"""Corpus-scale batch pipeline: chunking, parallel parsing, stage timing.

The evaluation workloads run ap-detect over hundreds of thousands of
statements (§8.1's GitHub corpus).  This module provides the throughput
machinery shared by :meth:`APDetector.detect_batch` and
:meth:`SQLCheck.check_many`:

* :class:`PipelineStats` — per-stage wall-clock timings (``parse``,
  ``detect``, ``rank``, ``fix``), cache hit rates, and worker/chunk counts,
  surfaced through the CLI (``--stats``), the REST API, and the workload
  drivers;
* :func:`chunked` — deterministic statement chunking;
* :func:`parallel_annotate` — fan-out of cold parses over a
  ``concurrent.futures`` process pool.  Statements are sharded by a stable
  hash of their text so duplicate statements always land in the same
  worker, which parses each distinct text once and rebinds copies for the
  repeats — no worker ever duplicates another worker's parse work.  A
  chunk whose worker fails is re-run alone through the serial quarantine
  path (the other chunks keep their pool results); the whole fan-out
  falls back to the serial (cache-accelerated) path only for small
  inputs, single-CPU machines, or executor-level failure.
"""
from __future__ import annotations

import copy
import os
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from ..sqlparser import QueryAnnotation, annotate, parse

T = TypeVar("T")

#: Below this many statements the process-pool fan-out is never worth the
#: spawn + pickle overhead; the serial path is used instead.
MIN_PARALLEL_STATEMENTS = 64

#: Default number of statements handed to one worker task.
DEFAULT_CHUNK_SIZE = 256

#: ``PipelineStats.parallel_mode`` vocabulary — shared by every batch entry
#: point (detect_batch, check_many) so the surfaced strings cannot diverge.
MODE_SERIAL = "serial"
MODE_PROCESS_POOL = "process-pool"
#: the whole batch was replayed from the persistent corpus memo — no parse,
#: no rule execution; detection bytes come from a verified prior clean run.
MODE_PERSISTENT_REPLAY = "persistent-replay"
REASON_SINGLE_CPU = "single-cpu"
REASON_SMALL_INPUT = "small-input"
REASON_SINGLE_CORPUS = "single-corpus"
REASON_EXECUTOR_ERROR = "executor-error"


def serial_mode(requested_workers: int, reason: str) -> str:
    """Mode string for a run that stayed serial: plain ``serial`` when serial
    was requested, ``serial-fallback:<reason>`` when a fan-out downgraded."""
    return MODE_SERIAL if requested_workers <= 1 else f"serial-fallback:{reason}"


def merged_label(left: str, right: str) -> str:
    """Combine two mode/semantics labels into an explicit ``mixed(...)``.

    :meth:`PipelineStats.merge` uses this so a merge across runs that took
    different paths (one corpus fanned out, another stayed serial) is
    surfaced instead of silently keeping the left side's label.  Existing
    ``mixed(...)`` labels are unwrapped so repeated merges stay flat.
    """
    parts: "set[str]" = set()
    for label in (left, right):
        if label.startswith("mixed(") and label.endswith(")"):
            parts.update(p.strip() for p in label[len("mixed(") : -1].split(","))
        else:
            parts.add(label)
    if len(parts) == 1:
        return parts.pop()
    return f"mixed({', '.join(sorted(parts))})"


@dataclass
class PipelineStats:
    """Per-stage timing and cache accounting for one pipeline run.

    ``total_seconds`` is always wall-clock.  Stage seconds are wall-clock
    too, except after a process-pool ``check_many`` merge, where they are
    summed across concurrently-running workers (CPU-aggregate) and can
    therefore exceed ``total_seconds`` — ``stage_semantics`` records which
    interpretation applies.
    """

    statements: int = 0
    parse_seconds: float = 0.0
    context_seconds: float = 0.0
    detect_seconds: float = 0.0
    rank_seconds: float = 0.0
    fix_seconds: float = 0.0
    total_seconds: float = 0.0
    workers: int = 1
    chunks: int = 1
    parallel_mode: str = "serial"
    annotation_cache_hits: int = 0
    annotation_cache_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    corpora: int = 1
    stage_semantics: str = "wall-clock"
    #: quarantined :class:`repro.errors.PipelineError` records for this run;
    #: mirrors the report's error list so ``--stats`` consumers see them.
    errors: list = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any stage quarantined a failure during this run."""
        return bool(self.errors)

    def stage_seconds_sum(self) -> float:
        """Sum of the five stage timings.

        On wall-clock runs every moment between the pipeline's first and
        last boundary timestamp is attributed to exactly one stage, so this
        equals ``total_seconds`` up to the glue between timing scopes — the
        invariant the stats-accounting oracle enforces
        (:func:`repro.testkit.oracles.check_stats_accounting`).
        """
        return (
            self.parse_seconds
            + self.context_seconds
            + self.detect_seconds
            + self.rank_seconds
            + self.fix_seconds
        )

    @property
    def statements_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.statements / self.total_seconds

    @property
    def annotation_cache_hit_rate(self) -> float:
        lookups = self.annotation_cache_hits + self.annotation_cache_misses
        return self.annotation_cache_hits / lookups if lookups else 0.0

    @property
    def memo_hit_rate(self) -> float:
        lookups = self.memo_hits + self.memo_misses
        return self.memo_hits / lookups if lookups else 0.0

    def merge(self, other: "PipelineStats") -> "PipelineStats":
        """Accumulate another run's stats into this one (stage times and
        corpus counts add; worker/chunk counts take the maximum; totals are
        the caller's).  Merging runs whose ``parallel_mode`` or
        ``stage_semantics`` differ marks the field ``mixed(...)`` instead of
        silently keeping the left side's label."""
        self.statements += other.statements
        self.parse_seconds += other.parse_seconds
        self.context_seconds += other.context_seconds
        self.detect_seconds += other.detect_seconds
        self.rank_seconds += other.rank_seconds
        self.fix_seconds += other.fix_seconds
        self.workers = max(self.workers, other.workers)
        self.chunks = max(self.chunks, other.chunks)
        self.parallel_mode = merged_label(self.parallel_mode, other.parallel_mode)
        self.stage_semantics = merged_label(self.stage_semantics, other.stage_semantics)
        self.annotation_cache_hits += other.annotation_cache_hits
        self.annotation_cache_misses += other.annotation_cache_misses
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses
        self.corpora += other.corpora
        self.errors.extend(other.errors)
        return self

    def to_dict(self) -> dict:
        return {
            "statements": self.statements,
            "statements_per_second": round(self.statements_per_second, 2),
            "stages": {
                "parse": round(self.parse_seconds, 6),
                "context": round(self.context_seconds, 6),
                "detect": round(self.detect_seconds, 6),
                "rank": round(self.rank_seconds, 6),
                "fix": round(self.fix_seconds, 6),
            },
            "total_seconds": round(self.total_seconds, 6),
            "stage_semantics": self.stage_semantics,
            "workers": self.workers,
            "chunks": self.chunks,
            "parallel_mode": self.parallel_mode,
            "corpora": self.corpora,
            "annotation_cache": {
                "hits": self.annotation_cache_hits,
                "misses": self.annotation_cache_misses,
                "hit_rate": round(self.annotation_cache_hit_rate, 4),
            },
            "detection_memo": {
                "hits": self.memo_hits,
                "misses": self.memo_misses,
                "hit_rate": round(self.memo_hit_rate, 4),
            },
            "degraded": self.degraded,
            "errors": [e.to_dict() for e in self.errors],
        }


def chunked(items: Sequence[T], size: int) -> list[Sequence[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    return [items[i : i + size] for i in range(0, len(items), size)]


def resolve_workers(requested: int) -> int:
    """Clamp a requested worker count to the CPUs actually available.

    Oversubscribing a CPU-bound parse stage only adds scheduling and pickle
    overhead, so a single-CPU container always degrades to the serial path.
    """
    if requested <= 1:
        return 1
    try:
        available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    return max(1, min(requested, available))


def _annotate_chunk(payload: "tuple[Sequence[str], str | None]") -> list[QueryAnnotation]:
    """Process-pool worker: parse + annotate one chunk of SQL strings.

    Statement indexes are chunk-local; the parent rebinds them after the
    gather so results are identical to the serial path.
    """
    sqls, source = payload
    annotations: list[QueryAnnotation] = []
    for sql in sqls:
        for statement in parse(sql, source=source):
            annotations.append(annotate(statement))
    return annotations


def _shard_of(sql: str, shard_count: int) -> int:
    """Stable shard assignment by statement text.

    ``zlib.crc32`` (not ``hash``, which is randomised per process) keys the
    shard, so every occurrence of a duplicate text lands in the same worker
    and the corpus's parse work is never repeated across the pool.
    """
    return zlib.crc32(sql.encode("utf-8", "replace")) % shard_count


def _annotate_shard(
    payload: "tuple[Sequence[tuple[int, str]], str | None, bool]",
) -> "tuple[list[tuple[int, list[QueryAnnotation]]], list[dict]]":
    """Process-pool worker: parse + annotate one shard of (position, sql).

    Sharding colocates duplicate texts, so each distinct text is parsed
    once; repeats are shallow-copied and rebound (the same template idiom
    the annotation cache uses), which keeps every returned element's
    statement object independently mutable for the parent's index rebind.
    Returns ``(position, annotations)`` pairs so the parent can reassemble
    the corpus in its original order, plus span payloads for
    :meth:`repro.obs.Tracer.adopt` when ``trace`` is set.  The payloads are
    anchored by one wall-clock timestamp because ``perf_counter`` epochs
    are arbitrary per process — this is the sanctioned raw
    ``time.perf_counter`` scope outside ``repro.obs`` (the parent tracer
    object cannot cross the pickle boundary).
    """
    pairs, source, trace = payload
    span_payloads: "list[dict]" = []
    wall_start = time.time() if trace else 0.0
    t0 = time.perf_counter() if trace else 0.0
    parsed: "dict[str, list[QueryAnnotation]]" = {}
    out: "list[tuple[int, list[QueryAnnotation]]]" = []
    for position, sql in pairs:
        template = parsed.get(sql)
        if template is None:
            annotations = [annotate(s) for s in parse(sql, source=source)]
            parsed[sql] = annotations
        else:
            annotations = []
            for cached in template:
                statement = copy.copy(cached.statement)
                annotation = copy.copy(cached)
                annotation.statement = statement
                annotations.append(annotation)
        out.append((position, annotations))
    if trace:
        span_payloads.append(
            {
                "name": "chunk",
                "wall_start": wall_start,
                "duration": time.perf_counter() - t0,
                "attributes": {
                    "statements": len(pairs),
                    "distinct": len(parsed),
                    "pid": os.getpid(),
                },
            }
        )
    return out, span_payloads


def parallel_annotate(
    queries: Sequence[str],
    *,
    workers: int,
    source: str | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    serial_fallback: "Callable[..., list[QueryAnnotation]] | None" = None,
    trace: bool = False,
) -> "tuple[list[QueryAnnotation], int, str, list[dict]]":
    """Annotate a statement list, fanning cold parses over a process pool.

    Statements are sharded by :func:`_shard_of` (stable text hash), so the
    pool never duplicates parse work on corpora with repeated statements.
    Returns ``(annotations, chunks, mode, span_payloads)`` where ``mode``
    records the path taken: ``process-pool``,
    ``process-pool:chunks-recovered=N`` when N failed chunks were
    individually re-run through the serial quarantine path (the other
    chunks keep their pool results), or one of the serial fallbacks.
    ``span_payloads`` — populated only when ``trace`` is set and the pool
    actually ran — are worker chunk timings for
    :meth:`repro.obs.Tracer.adopt`.  ``serial_fallback`` takes
    ``(batch, start_index=0)`` — ``start_index`` is the corpus position of
    the batch's first element, so quarantined error records carry
    corpus-wide provenance.  Statement indexes are rebound to corpus
    order, so the output is identical to the serial path regardless of
    sharding.
    """
    effective = resolve_workers(workers)
    serial = serial_fallback or (
        lambda batch, start_index=0: _annotate_chunk((batch, source))
    )
    if effective <= 1 or len(queries) < MIN_PARALLEL_STATEMENTS:
        reason = REASON_SINGLE_CPU if workers > 1 and effective <= 1 else REASON_SMALL_INPUT
        annotations = serial(queries)
        _rebind_indexes(annotations)
        return annotations, 1, serial_mode(workers, reason), []
    # At least one shard per worker; never hand one worker the whole input.
    chunk_size = max(1, min(chunk_size, -(-len(queries) // effective)))
    shard_count = max(effective, -(-len(queries) // chunk_size))
    shards: "list[list[tuple[int, str]]]" = [[] for _ in range(shard_count)]
    for position, sql in enumerate(queries):
        shards[_shard_of(sql, shard_count)].append((position, sql))
    shards = [shard for shard in shards if shard]
    recovered = 0
    results_by_position: "dict[int, list[QueryAnnotation]]" = {}
    span_payloads: "list[dict]" = []
    try:
        with ProcessPoolExecutor(max_workers=effective) as pool:
            futures = [
                pool.submit(_annotate_shard, (shard, source, trace)) for shard in shards
            ]
            for shard, future in zip(shards, futures):
                try:
                    shard_results, shard_spans = future.result()
                    for position, annotations in shard_results:
                        results_by_position[position] = annotations
                    span_payloads.extend(shard_spans)
                except Exception:
                    # One bad statement fails only its own chunk: re-run
                    # just this chunk element-by-element through the serial
                    # quarantine path so the failure is recorded (with its
                    # corpus position) and the chunk-mates — and every
                    # other chunk's pool results — survive.
                    recovered += 1
                    for position, sql in shard:
                        results_by_position[position] = serial(
                            [sql], start_index=position
                        )
    except Exception:  # pool unavailable (sandboxing, pickling) -> stay correct
        annotations = serial(queries)
        _rebind_indexes(annotations)
        return annotations, 1, serial_mode(workers, REASON_EXECUTOR_ERROR), []
    annotations = [
        annotation
        for position in range(len(queries))
        for annotation in results_by_position.get(position, ())
    ]
    _rebind_indexes(annotations)
    mode = MODE_PROCESS_POOL
    if recovered:
        mode = f"{MODE_PROCESS_POOL}:chunks-recovered={recovered}"
    return annotations, len(shards), mode, span_payloads


def _rebind_indexes(annotations: Iterable[QueryAnnotation]) -> None:
    for index, annotation in enumerate(annotations):
        annotation.statement.index = index
        # Batch inputs are flat statement lists: each element was parsed on
        # its own, so its offset/line are element-relative, not positions in
        # any containing file — clear them (ContextBuilder does the same for
        # its list inputs) so every batch path stays byte-identical.
        annotation.statement.clear_position()
