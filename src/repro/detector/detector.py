"""ap-detect (Algorithms 1–3).

``APDetector`` builds the application context from queries and an optional
database, applies the registered query rules to every statement
(intra-query and — when enabled — inter-query detection), applies the data
rules to every profiled table, filters out low-confidence findings, and
returns a :class:`DetectionReport`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..context.application_context import ApplicationContext
from ..context.builder import ContextBuilder
from ..model.detection import Detection, DetectionReport
from ..rules.base import RuleContext
from ..rules.registry import RuleRegistry, default_registry
from ..rules.thresholds import Thresholds
from ..sqlparser import ParsedStatement, QueryAnnotation
from ..sqlparser.dialects import Dialect


@dataclass
class DetectorConfig:
    """Configuration of ap-detect.

    ``enable_inter_query`` and ``enable_data`` correspond to the two analysis
    stages the paper ablates in §8.1 (intra-query only vs. intra+inter) and
    §4.2 (data analysis).  ``confidence_threshold`` drops detections whose
    confidence a contextual rule has lowered — this is the mechanism that
    removes false positives when more context is available.
    """

    enable_inter_query: bool = True
    enable_data: bool = True
    confidence_threshold: float = 0.5
    deduplicate: bool = True
    thresholds: Thresholds = field(default_factory=Thresholds)
    dialect: "Dialect | str | None" = None
    sample_size: int = 1000


class APDetector:
    """Finds anti-patterns in a workload (Algorithm 1)."""

    def __init__(
        self,
        config: DetectorConfig | None = None,
        registry: RuleRegistry | None = None,
    ):
        self.config = config or DetectorConfig()
        self.registry = registry or default_registry()
        self._builder = ContextBuilder(
            sample_size=self.config.sample_size, dialect=self.config.dialect
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def detect(
        self,
        queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str" = (),
        database: Any | None = None,
        source: str | None = None,
    ) -> DetectionReport:
        """Run detection over queries and (optionally) a live database."""
        context = self._builder.build(queries, database=database, source=source)
        return self.detect_in_context(context)

    def detect_in_context(self, context: ApplicationContext) -> DetectionReport:
        """Run detection over a pre-built application context."""
        rule_context = RuleContext(
            application=context,
            thresholds=self.config.thresholds,
            use_inter_query=self.config.enable_inter_query,
            use_data=self.config.enable_data,
        )
        detections: list[Detection] = []
        # Query analysis (Algorithm 2): rules chosen by statement type.
        for annotation in context.queries:
            for rule in self.registry.rules_for_statement(annotation.statement_type):
                if rule.requires_context and not self.config.enable_inter_query:
                    continue
                if not rule.applies_to(annotation):
                    continue
                detections.extend(rule.check(annotation, rule_context))
        # Data analysis (Algorithm 3): rules applied to every profiled table.
        if self.config.enable_data and context.has_data:
            for profile in context.profiles.values():
                for rule in self.registry.data_rules:
                    detections.extend(rule.check_table(profile, rule_context))
        kept = [
            d for d in detections if d.confidence >= self.config.confidence_threshold
        ]
        report = DetectionReport(
            detections=kept,
            queries_analyzed=len(context.queries),
            tables_analyzed=len(context.profiles) or context.schema.table_count,
        )
        if self.config.deduplicate:
            report.detections = report.deduplicated()
        return report
