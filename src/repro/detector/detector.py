"""ap-detect (Algorithms 1–3).

``APDetector`` builds the application context from queries and an optional
database, applies the registered query rules to every statement
(intra-query and — when enabled — inter-query detection), applies the data
rules to every profiled table, filters out low-confidence findings, and
returns a :class:`DetectionReport`.

Corpus-scale additions: statement-level results are memoized per
``(fingerprint, registry version, thresholds, workload signature)`` so the
literal-only duplication that dominates real corpora is detected once and
replayed cheaply, and :meth:`detect_batch` runs the parse stage over a
process pool and reports per-stage timings in a :class:`PipelineStats`.
"""
from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..context.application_context import ApplicationContext
from ..context.builder import ContextBuilder
from ..errors import (
    CODE_DATA_RULE_ERROR,
    CODE_RULE_ERROR,
    CODE_SOURCE_UNAVAILABLE,
    PipelineError,
    SourceUnavailableError,
)
from ..model.detection import Detection, DetectionReport
from ..obs import get_metrics, get_tracer, now, observe_stage_seconds
from ..rules.base import RuleContext
from ..rules.registry import RuleRegistry, default_registry
from ..rules.thresholds import Thresholds
from ..sqlparser import AnnotationCache, ParsedStatement, QueryAnnotation
from ..sqlparser.dialects import Dialect
from .pipeline import (
    DEFAULT_CHUNK_SIZE,
    MODE_PERSISTENT_REPLAY,
    MODE_PROCESS_POOL,
    PipelineStats,
    parallel_annotate,
    resolve_workers,
)


@dataclass
class DetectorConfig:
    """Configuration of ap-detect.

    ``enable_inter_query`` and ``enable_data`` correspond to the two analysis
    stages the paper ablates in §8.1 (intra-query only vs. intra+inter) and
    §4.2 (data analysis).  ``confidence_threshold`` drops detections whose
    confidence a contextual rule has lowered — this is the mechanism that
    removes false positives when more context is available.

    ``enable_cache`` / ``cache_size`` control the annotation cache and the
    per-statement detection memo; ``workers`` is the default fan-out of
    :meth:`APDetector.detect_batch`.

    Attributes:
        enable_inter_query: apply contextual (whole-workload) refinements.
        enable_data: run data rules over profiled tables.
        confidence_threshold: drop detections below this confidence.
        deduplicate: collapse duplicate (AP, statement, table, column)
            findings, keeping the highest confidence.
        thresholds: the rule thresholds (join counts, column counts, …).
        dialect: SQL dialect hint (``postgresql``, ``mysql``, ``sqlite``).
        sample_size: rows sampled per table by the data profiler.
        enable_cache: annotation cache + detection memo on/off.
        cache_size: LRU capacity (entries) of both caches.
        workers: default process fan-out of the batch APIs.
        quarantine: isolate per-statement parse failures and per-rule
            check failures as structured :class:`~repro.errors.PipelineError`
            records on the report instead of aborting the run.  Off, any
            rule or parser exception propagates (fail-fast).
        persistent_memo_path: path of a SQLite file mirroring the warm
            state (annotation templates, detection memo, whole-corpus
            replays) across process restarts and ``detect_batch`` workers.
            Keys embed the registry content digest, thresholds, and
            analysis flags, so rule or configuration changes invalidate
            cleanly back to the cold path; a corrupt or stale file is
            dropped and recreated, never served.  ``None`` (default) keeps
            all caches in-memory only.
        fused: run the fused matching engine — compiled trigger-token
            pre-filter plus per-run workload-fact caches.  Off, detection
            takes the pre-fusion reference path (plain dispatch, facts
            recomputed per rule call), which exists for the fused≡reference
            conformance oracle and the cold-path benchmark; both paths
            produce byte-identical reports.
    """

    enable_inter_query: bool = True
    enable_data: bool = True
    confidence_threshold: float = 0.5
    deduplicate: bool = True
    thresholds: Thresholds = field(default_factory=Thresholds)
    dialect: "Dialect | str | None" = None
    sample_size: int = 1000
    enable_cache: bool = True
    cache_size: int = 4096
    workers: int = 1
    quarantine: bool = True
    fused: bool = True
    persistent_memo_path: "str | None" = None


class APDetector:
    """Finds anti-patterns in a workload (Algorithm 1).

    Entry points: :meth:`detect` (queries + optional live database →
    :class:`~repro.model.detection.DetectionReport`), :meth:`detect_batch`
    (flat statement list with process-pool parse fan-out and
    :class:`~repro.detector.pipeline.PipelineStats`), :meth:`stream`
    (yield detections as statements are analysed), and
    :meth:`detect_in_context` for a pre-built application context.

    Caching: an :class:`~repro.sqlparser.AnnotationCache` keyed by
    statement fingerprint skips re-parsing duplicates, and a detection
    memo keyed by ``(fingerprint, registry version, thresholds, workload
    signature)`` replays rule results with statement index/offset/source
    rebound to each occurrence.  Observability: :attr:`memo_info`,
    ``annotation_cache.stats``, :meth:`clear_caches`.
    """

    def __init__(
        self,
        config: DetectorConfig | None = None,
        registry: RuleRegistry | None = None,
        *,
        annotation_cache: AnnotationCache | None = None,
    ):
        self.config = config or DetectorConfig()
        self.registry = registry or default_registry()
        self.persistent = self._open_persistent()
        if annotation_cache is not None:
            self.annotation_cache: AnnotationCache | None = annotation_cache
        elif self.config.enable_cache and self.persistent is not None:
            from .persist import PersistentAnnotationCache

            self.annotation_cache = PersistentAnnotationCache(
                maxsize=self.config.cache_size,
                store=self.persistent,
                dialect_key=self._dialect_key(),
            )
        elif self.config.enable_cache:
            self.annotation_cache = AnnotationCache(maxsize=self.config.cache_size)
        else:
            self.annotation_cache = None
        self._builder = ContextBuilder(
            sample_size=self.config.sample_size,
            dialect=self.config.dialect,
            annotation_cache=self.annotation_cache,
        )
        # (workload signature, statement fingerprint, raw) -> detection templates
        self._memo: "OrderedDict[tuple, list[Detection]]" = OrderedDict()
        self._memo_hits = 0
        self._memo_misses = 0
        # statement type -> candidate rule count, for the prefilter metrics
        # (telemetry only — avoids a second registry dispatch per statement;
        # a registry mutated mid-run refreshes on the next detector).
        self._candidate_counts: "dict[str, int]" = {}

    def _open_persistent(self):
        """Open the persistent memo when configured; ``None`` otherwise."""
        if not self.config.enable_cache or not self.config.persistent_memo_path:
            return None
        from .persist import PersistentMemo

        return PersistentMemo(
            self.config.persistent_memo_path,
            registry_digest=self.registry.content_digest,
        )

    def _dialect_key(self) -> str:
        """Stable dialect label for cross-process annotation-cache keys."""
        return str(getattr(self.config.dialect, "name", self.config.dialect))

    def close(self) -> None:
        """Flush and release the persistent store (no-op without one)."""
        if self.persistent is not None:
            self.persistent.close()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def detect(
        self,
        queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str" = (),
        database: Any | None = None,
        source: str | None = None,
    ) -> DetectionReport:
        """Run detection over queries and (optionally) a live database."""
        context = self._builder.build(
            queries, database=database, source=source, quarantine=self.config.quarantine
        )
        return self.detect_in_context(context)

    def detect_in_context(
        self, context: ApplicationContext, stats: PipelineStats | None = None
    ) -> DetectionReport:
        """Run detection over a pre-built application context.

        Errors already quarantined while building the context (parse
        failures, skipped log lines, unreachable sources) are carried onto
        the report, joined by any rule failures quarantined here.
        """
        errors: "list[PipelineError]" = list(context.errors)
        sink = errors if self.config.quarantine else None
        detections = list(self._iter_detections(context, stats=stats, errors=sink))
        report = DetectionReport(
            detections=detections,
            queries_analyzed=len(context.queries),
            tables_analyzed=len(context.profiles) or context.schema.table_count,
            errors=errors,
        )
        if stats is not None:
            stats.errors.extend(errors)
        if self.config.deduplicate:
            report.detections = report.deduplicated()
        return report

    def detect_batch(
        self,
        queries: "Sequence[str]",
        *,
        workers: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        source: str | None = None,
    ) -> "tuple[DetectionReport, PipelineStats]":
        """Corpus-scale detection over a flat statement list.

        The parse + annotate stage fans out over a process pool when enough
        statements and CPUs are available (falling back to the serial,
        cache-accelerated path otherwise); detection then streams through
        the shared context so inter-query rules see the whole workload.
        Returns the report together with per-stage :class:`PipelineStats`.
        """
        requested = workers if workers is not None else self.config.workers
        # stats.workers reports what actually ran; the parallel_mode string
        # explains any downgrade from the requested fan-out.
        stats = PipelineStats(workers=resolve_workers(requested))
        queries = list(queries)
        cache = self.annotation_cache
        cache_hits0 = cache.stats.hits if cache is not None else 0
        cache_miss0 = cache.stats.misses if cache is not None else 0
        metrics = get_metrics()
        tracer = get_tracer()

        # Whole-corpus replay: when a prior clean run of this exact input
        # (ordered exact texts + registry digest + thresholds + flags +
        # source) is in the persistent store, serve its final detections
        # without parsing anything — this is what makes a warm *restart*
        # comparable to the in-memory warm path.
        corpus_key = self._corpus_key(queries, source)
        if corpus_key is not None:
            replayed = self._replay_corpus(corpus_key, stats, metrics, tracer)
            if replayed is not None:
                return replayed, stats

        # Stage boundaries share one timestamp each so every moment between
        # start and t3 lands in exactly one stage: total ≡ sum of stages
        # (the accounting invariant the conformance oracle checks) on the
        # pool path and on every serial fallback alike.
        # A statement the parser rejects fails only its own pool chunk;
        # parallel_annotate re-runs just that chunk through this serial
        # fallback — where the quarantine sink (when enabled) records the
        # failure and keeps the rest — and the remaining chunks keep their
        # pool results (parallel_mode records the partial downgrade).
        parse_errors: "list[PipelineError]" = []
        sink = parse_errors if self.config.quarantine else None
        with tracer.span("detect_batch", statements=len(queries)):
            start = now()
            with tracer.span("stage:parse") as parse_span:
                annotations, chunks, mode, worker_spans = parallel_annotate(
                    queries,
                    workers=requested,
                    source=source,
                    chunk_size=chunk_size,
                    serial_fallback=lambda batch, start_index=0: self._builder._annotate_queries(
                        list(batch), source, errors=sink, start_index=start_index
                    ),
                    trace=tracer.enabled,
                )
                if worker_spans:
                    # Worker chunk timings, re-parented under this parse span
                    # (the workers cannot share this tracer across the pool).
                    tracer.adopt(worker_spans, parent=parse_span)
            t1 = now()
            stats.parse_seconds = t1 - start
            if not mode.startswith(MODE_PROCESS_POOL):
                stats.workers = 1
            with tracer.span("stage:context"):
                context = ApplicationContext(
                    queries=annotations,
                    schema=self._builder._build_schema(annotations, None),
                    profiles={},
                    database=None,
                    dialect=self._builder.dialect,
                    source=source,
                    errors=parse_errors,
                )
            t2 = now()
            stats.context_seconds = t2 - t1
            stats.chunks = chunks
            stats.parallel_mode = mode

            with tracer.span("stage:detect"):
                report = self.detect_in_context(context, stats=stats)
            t3 = now()
            stats.detect_seconds = t3 - t2

        stats.statements = len(context.queries)
        stats.total_seconds = t3 - start
        if corpus_key is not None and not report.errors:
            # Only clean runs are replayable: a quarantined parse or rule
            # failure carries error records a replay could not reproduce.
            # The payload pickles now (pre-rank, pre-render), so downstream
            # mutation of this report cannot leak into the store.
            self.persistent.put_corpus(
                corpus_key,
                {
                    "queries_analyzed": report.queries_analyzed,
                    "tables_analyzed": report.tables_analyzed,
                    "detections": [
                        dataclasses.replace(d, metadata=dict(d.metadata))
                        for d in report.detections
                    ],
                },
            )
            self.persistent.flush()
        if cache is not None:
            delta_hits = cache.stats.hits - cache_hits0
            delta_misses = cache.stats.misses - cache_miss0
            stats.annotation_cache_hits += delta_hits
            stats.annotation_cache_misses += delta_misses
            if metrics.enabled:
                if delta_hits:
                    metrics.annotation_cache_lookups.inc(delta_hits, result="hit")
                if delta_misses:
                    metrics.annotation_cache_lookups.inc(delta_misses, result="miss")
                metrics.annotation_cache_entries.set(len(cache))
        if metrics.enabled:
            metrics.memo_entries.set(len(self._memo))
            observe_stage_seconds(stats)
        return report, stats

    def stream(
        self,
        queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str" = (),
        source: str | None = None,
        *,
        errors: "list[PipelineError] | None" = None,
    ) -> Iterator[Detection]:
        """Stream detections as statements are analysed (no deduplication).

        Honours ``DetectorConfig.quarantine`` exactly like :meth:`detect`:
        malformed statements and failing rules become structured
        :class:`~repro.errors.PipelineError` records instead of aborting
        the stream.  Streaming has no report to carry them, so pass a list
        via ``errors`` to receive every quarantined record (parse errors
        are appended before the first detection is yielded, rule errors as
        they occur).  With quarantine off, failures propagate as before.
        """
        quarantine = self.config.quarantine
        context = self._builder.build(queries, source=source, quarantine=quarantine)
        sink = errors if errors is not None else ([] if quarantine else None)
        if sink is not None:
            sink.extend(context.errors)
        yield from self._iter_detections(context, errors=sink if quarantine else None)

    # ------------------------------------------------------------------
    # detection core (streaming)
    # ------------------------------------------------------------------
    def _iter_detections(
        self,
        context: ApplicationContext,
        stats: PipelineStats | None = None,
        errors: "list[PipelineError] | None" = None,
    ) -> Iterator[Detection]:
        """Yield kept detections statement by statement, then table by table.

        Query-analysis results are replayed from the memo when the same
        statement was already analysed under an identical workload signature,
        registry version, and thresholds.  With an error sink attached
        (quarantine mode), a rule that raises is recorded there and skipped;
        remaining rules, statements, and tables still run.
        """
        # A rule that mutated its statement_types in place would be served
        # stale from the dispatch index (and from the memo keyed on the
        # registry version) — fail loudly once per run instead.
        self.registry.check_integrity()
        rule_context = RuleContext(
            application=context,
            thresholds=self.config.thresholds,
            use_inter_query=self.config.enable_inter_query,
            use_data=self.config.enable_data,
            cache_facts=self.config.fused,
        )
        memo_scope = self._memo_scope(context)
        threshold = self.config.confidence_threshold
        # Query analysis (Algorithm 2): rules chosen by statement type.
        for annotation in context.queries:
            for detection in self._detect_statement(
                annotation, rule_context, memo_scope, stats, errors
            ):
                if detection.confidence >= threshold:
                    yield detection
        # Data analysis (Algorithm 3): rules applied to every profiled table.
        if self.config.enable_data and context.has_data:
            for profile in context.profiles.values():
                for rule in self.registry.data_rules:
                    try:
                        found = list(rule.observed_check_table(profile, rule_context))
                    except SourceUnavailableError as error:
                        # The rows behind this profile are gone (connector
                        # outage mid-scan): the verdict degrades to a
                        # "skipped: source unavailable" record, not a crash.
                        if errors is None:
                            raise
                        errors.append(
                            PipelineError.from_exception(
                                "data",
                                error,
                                code=CODE_SOURCE_UNAVAILABLE,
                                rule=rule.name,
                                source=context.source,
                                detail={
                                    "table": profile.name,
                                    "verdict": "skipped: source unavailable",
                                },
                            )
                        )
                        continue
                    except Exception as error:
                        if errors is None:
                            raise
                        errors.append(
                            PipelineError.from_exception(
                                "data",
                                error,
                                code=CODE_DATA_RULE_ERROR,
                                rule=rule.name,
                                source=context.source,
                                detail={"table": profile.name},
                            )
                        )
                        continue
                    for detection in found:
                        if detection.confidence >= threshold:
                            yield detection
        # One buffered write per detection pass (an abandoned stream() flushes
        # on the next pass or at close()).
        if self.persistent is not None:
            self.persistent.flush()

    def _detect_statement(
        self,
        annotation: QueryAnnotation,
        rule_context: RuleContext,
        memo_scope: "bytes | None",
        stats: PipelineStats | None,
        errors: "list[PipelineError] | None" = None,
    ) -> list[Detection]:
        statement = annotation.statement
        metrics = get_metrics()
        key = None
        if memo_scope is not None and statement is not None:
            key = (memo_scope, statement.fingerprint, annotation.raw)
            cached = self._memo.get(key)
            if cached is None and self.persistent is not None:
                # Read-through: a prior process analysed this statement
                # under the same scope.  Install the stored templates into
                # the in-memory memo and replay through the same path, so
                # persistent hits are byte-identical by construction.
                cached = self.persistent.get_detections(
                    memo_scope, statement.fingerprint, annotation.raw
                )
                if cached is not None:
                    self._memo[key] = cached
                    while len(self._memo) > self.config.cache_size:
                        self._memo.popitem(last=False)
            if cached is not None:
                self._memo.move_to_end(key)
                self._memo_hits += 1
                if stats is not None:
                    stats.memo_hits += 1
                if metrics.enabled:
                    metrics.memo_lookups.inc_single("hit")
                return [self._replay(d, annotation) for d in cached]
            self._memo_misses += 1
            if stats is not None:
                stats.memo_misses += 1
            if metrics.enabled:
                metrics.memo_lookups.inc_single("miss")
        detections: list[Detection] = []
        quarantined = False
        if self.config.fused:
            # One pass over the compiled trigger automaton: rules whose
            # trigger atoms are absent from the statement never execute.
            rules = self.registry.fused_rules_for(
                annotation.statement_type, annotation.raw.upper()
            )
            if metrics.enabled:
                candidates = self._candidate_counts.get(annotation.statement_type)
                if candidates is None:
                    candidates = len(
                        self.registry.rules_for_statement(annotation.statement_type)
                    )
                    self._candidate_counts[annotation.statement_type] = candidates
                skipped = candidates - len(rules)
                if rules:
                    metrics.prefilter_rules.inc_single("selected", len(rules))
                if skipped > 0:
                    metrics.prefilter_rules.inc_single("skipped", skipped)
        else:
            rules = self.registry.rules_for_statement(annotation.statement_type)
        for rule in rules:
            if rule.requires_context and not self.config.enable_inter_query:
                continue
            if not rule.applies_to(annotation):
                continue
            if errors is None:
                detections.extend(rule.observed_check(annotation, rule_context))
                continue
            try:
                detections.extend(rule.observed_check(annotation, rule_context))
            except Exception as error:
                quarantined = True
                errors.append(
                    PipelineError.from_exception(
                        "detect",
                        error,
                        code=CODE_RULE_ERROR,
                        rule=rule.name,
                        source=statement.source if statement is not None else None,
                        statement_fingerprint=(
                            statement.fingerprint if statement is not None else None
                        ),
                        statement_index=statement.index if statement is not None else None,
                        statement_offset=statement.offset if statement is not None else None,
                    )
                )
        if key is not None and not quarantined:
            # Store pristine copies: report detections are mutated downstream
            # (ap-rank fills in scores) and must not pollute the memo.  A
            # statement with a quarantined rule failure is never memoized —
            # a replay could not reproduce its error record.
            templates = [
                dataclasses.replace(d, metadata=dict(d.metadata)) for d in detections
            ]
            self._memo[key] = templates
            while len(self._memo) > self.config.cache_size:
                self._memo.popitem(last=False)
            if self.persistent is not None:
                # Write-through (buffered until the end-of-run flush).
                self.persistent.put_detections(
                    memo_scope, statement.fingerprint, annotation.raw, templates
                )
        return detections

    @staticmethod
    def _replay(template: Detection, annotation: QueryAnnotation) -> Detection:
        """Clone a memoized detection, rebound to the current occurrence.

        The call site only memoizes when ``annotation.statement`` is set, so
        the statement is always available to rebind from.
        """
        statement = annotation.statement
        return dataclasses.replace(
            template,
            query_index=statement.index,
            statement_offset=statement.offset,
            statement_line=statement.line,
            statement_length=statement.length,
            statement_end_line=statement.end_line,
            statement_text_exact=statement.span_matches_raw,
            source=statement.source,
            metadata=dict(template.metadata),
        )

    # ------------------------------------------------------------------
    # whole-corpus replay (persistent store only)
    # ------------------------------------------------------------------
    def _corpus_key(self, queries: "Sequence[str]", source: "str | None") -> "str | None":
        """Digest identifying one ``detect_batch`` input for whole-run replay.

        ``None`` unless a persistent store is attached (or when the input
        is not a flat text list).  Any rule, threshold, flag, dialect,
        source, or input change produces a different key, so stale entries
        are never matched — they just age out of the store.
        """
        if self.persistent is None:
            return None
        cfg = self.config
        digest = hashlib.blake2b(digest_size=16)
        digest.update(b"corpus\x00")
        digest.update(self.registry.content_digest)
        digest.update(repr(dataclasses.astuple(cfg.thresholds)).encode())
        digest.update(
            f"{cfg.enable_inter_query}|{cfg.enable_data}|{cfg.fused}|"
            f"{cfg.confidence_threshold!r}|{cfg.deduplicate}|{cfg.quarantine}|"
            f"{self._dialect_key()}|{source!r}".encode("utf-8", "replace")
        )
        for text in queries:
            if not isinstance(text, str):
                return None
            digest.update(text.encode("utf-8", "replace"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def _replay_corpus(
        self, corpus_key: str, stats: PipelineStats, metrics, tracer
    ) -> "DetectionReport | None":
        """Serve a whole ``detect_batch`` run from the store, or ``None``."""
        with tracer.span("detect_batch:persistent-replay"):
            start = now()
            cached = self.persistent.get_corpus(corpus_key)
            if cached is None:
                return None
            detections = [
                dataclasses.replace(d, metadata=dict(d.metadata))
                for d in cached["detections"]
            ]
            report = DetectionReport(
                detections=detections,
                queries_analyzed=cached["queries_analyzed"],
                tables_analyzed=cached["tables_analyzed"],
                errors=[],
            )
            end = now()
        stats.statements = cached["queries_analyzed"]
        stats.memo_hits = cached["queries_analyzed"]
        stats.workers = 1
        stats.chunks = 1
        stats.parallel_mode = MODE_PERSISTENT_REPLAY
        # Everything that elapsed was the replay lookup; attribute it all to
        # the detect stage so total ≡ sum-of-stages (the stats-accounting
        # oracle) holds on this path too.
        stats.detect_seconds = end - start
        stats.total_seconds = end - start
        if metrics.enabled:
            metrics.memo_entries.set(len(self._memo))
            observe_stage_seconds(stats)
        return report

    # ------------------------------------------------------------------
    # memo scoping
    # ------------------------------------------------------------------
    def _memo_scope(self, context: ApplicationContext) -> "bytes | None":
        """Signature under which per-statement results are reusable.

        Statement-level results depend on the rule set, the thresholds, the
        analysis flags, and — through inter-query rules — on the whole
        workload.  The scope hashes all of these; contexts backed by a live
        database or data profiles are never memoized (data refreshes would
        not be observable in the key).
        """
        if not self.config.enable_cache:
            return None
        if context.database is not None or context.profiles:
            return None
        digest = hashlib.blake2b(digest_size=16)
        # The registry's *content* digest (not the instance-unique
        # cache_token): mutations still re-scope the memo, and the same
        # digest re-derives in a restarted process, which is what lets the
        # persistent store share entries across runs.
        digest.update(self.registry.content_digest)
        digest.update(repr(dataclasses.astuple(self.config.thresholds)).encode())
        digest.update(
            f"{self.config.enable_inter_query}|{self.config.enable_data}|"
            f"{self.config.fused}|"
            f"{getattr(context.dialect, 'name', context.dialect)}".encode()
        )
        # The workload signature only matters when inter-query rules can
        # run: intra-only configurations gate every contextual read
        # (schema_available/data_available are False, context.queries is
        # empty), so per-statement results are workload-independent and the
        # memo replays across workloads and batches.
        if self.config.enable_inter_query:
            for annotation in context.queries:
                digest.update(annotation.raw.encode("utf-8", "replace"))
                digest.update(b"\x00")
        return digest.digest()

    # ------------------------------------------------------------------
    # cache maintenance
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop the detection memo and the annotation cache."""
        self._memo.clear()
        if self.annotation_cache is not None:
            self.annotation_cache.clear()

    @property
    def memo_info(self) -> dict:
        info = {
            "entries": len(self._memo),
            "hits": self._memo_hits,
            "misses": self._memo_misses,
        }
        if self.persistent is not None:
            info["persistent"] = self.persistent.info()
        return info
