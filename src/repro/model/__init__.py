"""Anti-pattern model: the AP taxonomy (Table 1) and detection records."""
from .antipatterns import AntiPattern, APCategory, ImpactProfile, catalog_entry, full_catalog
from .detection import Detection, DetectionReport, Severity

__all__ = [
    "APCategory",
    "AntiPattern",
    "Detection",
    "DetectionReport",
    "ImpactProfile",
    "Severity",
    "catalog_entry",
    "full_catalog",
]
