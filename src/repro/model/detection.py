"""Detection records produced by ap-detect and consumed by ap-rank / ap-fix."""
from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .antipatterns import AntiPattern, APCategory, catalog_entry


class Severity(enum.Enum):
    """Coarse severity level used when no quantitative ranking is requested."""

    LOW = 1
    MEDIUM = 2
    HIGH = 3

    def __lt__(self, other: "Severity") -> bool:
        return self.value < other.value


@dataclass
class Detection:
    """A single anti-pattern occurrence.

    Attributes:
        anti_pattern: the detected anti-pattern type.
        message: human-readable explanation tailored to the occurrence.
        query: the offending SQL statement text (empty for pure data APs).
        query_index: index of the statement in the workload, if applicable.
        statement_offset: character offset of the statement within the
            analysed text (``None`` for data-analysis findings); SARIF and
            the other report emitters use it to anchor annotations.
        statement_line: 1-based line of the statement within the analysed
            text, when known.
        statement_length: character length of the statement's meaningful
            token span starting at ``statement_offset``, when known.
        statement_end_line: 1-based line on which that span ends, when
            known (≥ ``statement_line``).
        statement_text_exact: True when ``query`` is byte-identical to the
            analysed text's span at ``statement_offset`` (lexer
            normalisation can make them differ); emitters only quote
            ``query`` as the span's content when True.
        table: the table involved, when known.
        column: the column involved, when known.
        source: provenance label (file name, application name, database name).
        rule: name of the rule that fired.
        detection_mode: ``intra_query``, ``inter_query``, or ``data``.
        confidence: the rule's confidence in [0, 1]; contextual rules raise or
            lower this, and the detector drops detections whose confidence
            falls below its threshold (this is how inter-query/data analysis
            removes false positives, §4).
        severity: coarse severity; the ranking model computes a finer score.
        score: impact score filled in by ap-rank.
        metadata: free-form extra facts used by ap-fix (e.g. delimiter found).
    """

    anti_pattern: AntiPattern
    message: str = ""
    query: str = ""
    query_index: int | None = None
    statement_offset: int | None = None
    statement_line: int | None = None
    statement_length: int | None = None
    statement_end_line: int | None = None
    statement_text_exact: bool | None = None
    table: str | None = None
    column: str | None = None
    source: str | None = None
    rule: str = ""
    detection_mode: str = "intra_query"
    confidence: float = 1.0
    severity: Severity = Severity.MEDIUM
    score: float | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def category(self) -> APCategory:
        return catalog_entry(self.anti_pattern).category

    @property
    def display_name(self) -> str:
        return self.anti_pattern.display_name

    def key(self) -> tuple:
        """Deduplication key: same AP on the same statement/table/column."""
        return (
            self.anti_pattern,
            self.query_index,
            (self.table or "").lower(),
            (self.column or "").lower(),
        )

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by the REST interface)."""
        return {
            "anti_pattern": self.anti_pattern.value,
            "display_name": self.display_name,
            "category": self.category.value,
            "message": self.message,
            "query": self.query,
            "query_index": self.query_index,
            "statement_offset": self.statement_offset,
            "statement_line": self.statement_line,
            "statement_length": self.statement_length,
            "statement_end_line": self.statement_end_line,
            "statement_text_exact": self.statement_text_exact,
            "table": self.table,
            "column": self.column,
            "source": self.source,
            "rule": self.rule,
            "detection_mode": self.detection_mode,
            "confidence": round(self.confidence, 3),
            "severity": self.severity.name,
            "score": self.score,
            "metadata": dict(self.metadata),
        }


@dataclass
class DetectionReport:
    """The result of running ap-detect over a workload."""

    detections: list[Detection] = field(default_factory=list)
    queries_analyzed: int = 0
    tables_analyzed: int = 0
    #: quarantined :class:`repro.errors.PipelineError` records — failures
    #: isolated to one statement/rule/source instead of aborting the run.
    errors: list = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any pipeline stage quarantined a failure."""
        return bool(self.errors)

    def __iter__(self):
        return iter(self.detections)

    def __len__(self) -> int:
        return len(self.detections)

    def by_type(self) -> dict[AntiPattern, list[Detection]]:
        grouped: dict[AntiPattern, list[Detection]] = {}
        for detection in self.detections:
            grouped.setdefault(detection.anti_pattern, []).append(detection)
        return grouped

    def counts(self) -> dict[AntiPattern, int]:
        return {ap: len(items) for ap, items in self.by_type().items()}

    def types_detected(self) -> set[AntiPattern]:
        return {d.anti_pattern for d in self.detections}

    def filter(self, *anti_patterns: AntiPattern) -> list[Detection]:
        wanted = set(anti_patterns)
        return [d for d in self.detections if d.anti_pattern in wanted]

    def deduplicated(self) -> list[Detection]:
        """Detections with duplicate (AP, query, table, column) keys removed,
        keeping the highest-confidence occurrence."""
        best: dict[tuple, Detection] = {}
        for detection in self.detections:
            key = detection.key()
            if key not in best or detection.confidence > best[key].confidence:
                best[key] = detection
        return list(best.values())

    def to_dict(self) -> dict:
        payload = {
            "queries_analyzed": self.queries_analyzed,
            "tables_analyzed": self.tables_analyzed,
            "detections": [d.to_dict() for d in self.detections],
        }
        # Only degraded runs carry the key, keeping clean-run payloads (and
        # the golden corpus snapshots) byte-identical to previous releases.
        if self.errors:
            payload["degraded"] = True
            payload["errors"] = [e.to_dict() for e in self.errors]
        return payload
