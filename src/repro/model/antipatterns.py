"""The anti-pattern taxonomy (paper Table 1).

Every anti-pattern sqlcheck targets is listed here together with its
category and its qualitative impact profile — which of the five metrics
(Performance, Maintainability, Data Amplification, Data Integrity, Accuracy)
the paper marks as affected.  The ranking model builds on these profiles.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass


class APCategory(enum.Enum):
    """The four anti-pattern categories from §2.2."""

    LOGICAL_DESIGN = "logical_design"
    PHYSICAL_DESIGN = "physical_design"
    QUERY = "query"
    DATA = "data"


class AntiPattern(enum.Enum):
    """The anti-patterns sqlcheck detects (Table 1, plus Readable Password
    which appears in the Table 3 distribution)."""

    # Logical design APs
    MULTI_VALUED_ATTRIBUTE = "multi_valued_attribute"
    NO_PRIMARY_KEY = "no_primary_key"
    NO_FOREIGN_KEY = "no_foreign_key"
    GENERIC_PRIMARY_KEY = "generic_primary_key"
    DATA_IN_METADATA = "data_in_metadata"
    ADJACENCY_LIST = "adjacency_list"
    GOD_TABLE = "god_table"
    # Physical design APs
    ROUNDING_ERRORS = "rounding_errors"
    ENUMERATED_TYPES = "enumerated_types"
    EXTERNAL_DATA_STORAGE = "external_data_storage"
    INDEX_OVERUSE = "index_overuse"
    INDEX_UNDERUSE = "index_underuse"
    CLONE_TABLE = "clone_table"
    # Query APs
    COLUMN_WILDCARD = "column_wildcard"
    CONCATENATE_NULLS = "concatenate_nulls"
    ORDERING_BY_RAND = "ordering_by_rand"
    PATTERN_MATCHING = "pattern_matching"
    IMPLICIT_COLUMNS = "implicit_columns"
    DISTINCT_AND_JOIN = "distinct_and_join"
    TOO_MANY_JOINS = "too_many_joins"
    READABLE_PASSWORD = "readable_password"
    # Data APs
    MISSING_TIMEZONE = "missing_timezone"
    INCORRECT_DATA_TYPE = "incorrect_data_type"
    DENORMALIZED_TABLE = "denormalized_table"
    INFORMATION_DUPLICATION = "information_duplication"
    REDUNDANT_COLUMN = "redundant_column"
    NO_DOMAIN_CONSTRAINT = "no_domain_constraint"

    @property
    def display_name(self) -> str:
        return self.value.replace("_", " ").title()


@dataclass(frozen=True)
class ImpactProfile:
    """Which of the five Table 1 metrics an anti-pattern affects.

    ``data_amplification`` uses +1 when fixing the AP *increases* data size
    (the ↑ in Table 1), -1 when fixing it decreases data size (↓), and 0
    when the AP does not affect data amplification.
    """

    performance: bool = False
    maintainability: bool = False
    data_amplification: int = 0
    data_integrity: bool = False
    accuracy: bool = False


@dataclass(frozen=True)
class CatalogEntry:
    """One row of Table 1."""

    anti_pattern: AntiPattern
    category: APCategory
    description: str
    impact: ImpactProfile


_CATALOG: dict[AntiPattern, CatalogEntry] = {}


def _register(
    anti_pattern: AntiPattern,
    category: APCategory,
    description: str,
    *,
    performance: bool = False,
    maintainability: bool = False,
    data_amplification: int = 0,
    data_integrity: bool = False,
    accuracy: bool = False,
) -> None:
    _CATALOG[anti_pattern] = CatalogEntry(
        anti_pattern=anti_pattern,
        category=category,
        description=description,
        impact=ImpactProfile(
            performance=performance,
            maintainability=maintainability,
            data_amplification=data_amplification,
            data_integrity=data_integrity,
            accuracy=accuracy,
        ),
    )


# --- Logical design APs -------------------------------------------------
_register(
    AntiPattern.MULTI_VALUED_ATTRIBUTE,
    APCategory.LOGICAL_DESIGN,
    "Storing list of values in a delimiter-separated list violating 1-NF.",
    performance=True, maintainability=True, data_amplification=-1, data_integrity=True, accuracy=True,
)
_register(
    AntiPattern.NO_PRIMARY_KEY,
    APCategory.LOGICAL_DESIGN,
    "Lack of data integrity constraints.",
    performance=True, maintainability=True, data_amplification=+1, data_integrity=True,
)
_register(
    AntiPattern.NO_FOREIGN_KEY,
    APCategory.LOGICAL_DESIGN,
    "Lack of referential integrity constraints.",
    performance=True, maintainability=True, data_integrity=True,
)
_register(
    AntiPattern.GENERIC_PRIMARY_KEY,
    APCategory.LOGICAL_DESIGN,
    "Creating a generic primary key column (e.g., id) for each table.",
    maintainability=True,
)
_register(
    AntiPattern.DATA_IN_METADATA,
    APCategory.LOGICAL_DESIGN,
    "Hard-coding application logic in table's meta-data.",
    performance=True, maintainability=True, data_amplification=-1, data_integrity=True, accuracy=True,
)
_register(
    AntiPattern.ADJACENCY_LIST,
    APCategory.LOGICAL_DESIGN,
    "Foreign key constraint referring to an attribute in the same table.",
    performance=True,
)
_register(
    AntiPattern.GOD_TABLE,
    APCategory.LOGICAL_DESIGN,
    "Number of attributes defined in the table cross a threshold (e.g., 10).",
    performance=True, maintainability=True,
)

# --- Physical design APs ------------------------------------------------
_register(
    AntiPattern.ROUNDING_ERRORS,
    APCategory.PHYSICAL_DESIGN,
    "Storing fractional data using a type with finite precision (e.g., FLOAT).",
    accuracy=True,
)
_register(
    AntiPattern.ENUMERATED_TYPES,
    APCategory.PHYSICAL_DESIGN,
    "Using enum to constrain the domain of a column.",
    performance=True, maintainability=True, data_amplification=-1,
)
_register(
    AntiPattern.EXTERNAL_DATA_STORAGE,
    APCategory.PHYSICAL_DESIGN,
    "Storing file paths instead of actual file content in database.",
    maintainability=True, data_integrity=True, accuracy=True,
)
_register(
    AntiPattern.INDEX_OVERUSE,
    APCategory.PHYSICAL_DESIGN,
    "Creating too many infrequently-used indexes.",
    performance=True, maintainability=True, data_amplification=-1,
)
_register(
    AntiPattern.INDEX_UNDERUSE,
    APCategory.PHYSICAL_DESIGN,
    "Lack of performance-critical indexes.",
    performance=True, maintainability=True, data_amplification=+1,
)
_register(
    AntiPattern.CLONE_TABLE,
    APCategory.PHYSICAL_DESIGN,
    "Multiple tables matching the pattern <TableName>_N.",
    performance=True, maintainability=True, data_integrity=True, accuracy=True,
)

# --- Query APs ----------------------------------------------------------
_register(
    AntiPattern.COLUMN_WILDCARD,
    APCategory.QUERY,
    "Selecting all attributes from a table using wildcards to reduce typing.",
    performance=True, accuracy=True,
)
_register(
    AntiPattern.CONCATENATE_NULLS,
    APCategory.QUERY,
    "Concatenating columns that might contain NULL values using ||.",
    accuracy=True,
)
_register(
    AntiPattern.ORDERING_BY_RAND,
    APCategory.QUERY,
    "Using RAND function for random sampling or shuffling.",
    performance=True,
)
_register(
    AntiPattern.PATTERN_MATCHING,
    APCategory.QUERY,
    "Using regular expressions for pattern matching complex strings.",
    performance=True,
)
_register(
    AntiPattern.IMPLICIT_COLUMNS,
    APCategory.QUERY,
    "Not explicitly specifying column names in data modification operations.",
    maintainability=True, data_integrity=True,
)
_register(
    AntiPattern.DISTINCT_AND_JOIN,
    APCategory.QUERY,
    "Using DISTINCT to remove duplicate values generated by a JOIN.",
    performance=True, maintainability=True,
)
_register(
    AntiPattern.TOO_MANY_JOINS,
    APCategory.QUERY,
    "Number of JOINs cross a threshold.",
    performance=True,
)
_register(
    AntiPattern.READABLE_PASSWORD,
    APCategory.QUERY,
    "Storing or comparing plain-text passwords in queries.",
    data_integrity=True, accuracy=True,
)

# --- Data APs -------------------------------------------------------------
_register(
    AntiPattern.MISSING_TIMEZONE,
    APCategory.DATA,
    "Date-time fields stored without timezone.",
    accuracy=True,
)
_register(
    AntiPattern.INCORRECT_DATA_TYPE,
    APCategory.DATA,
    "Actual data does not conform to expected data type.",
    performance=True, data_amplification=-1,
)
_register(
    AntiPattern.DENORMALIZED_TABLE,
    APCategory.DATA,
    "Duplication of values.",
    performance=True, data_amplification=-1,
)
_register(
    AntiPattern.INFORMATION_DUPLICATION,
    APCategory.DATA,
    "Derived columns (e.g., age from date of birth).",
    maintainability=True, data_integrity=True, accuracy=True,
)
_register(
    AntiPattern.REDUNDANT_COLUMN,
    APCategory.DATA,
    "Column with NULLs or same value (e.g., en-us).",
    data_amplification=-1,
)
_register(
    AntiPattern.NO_DOMAIN_CONSTRAINT,
    APCategory.DATA,
    "All values should belong to particular range (e.g., rating).",
    maintainability=True, data_amplification=-1, data_integrity=True,
)


def catalog_entry(anti_pattern: AntiPattern) -> CatalogEntry:
    """Look up the Table 1 entry for an anti-pattern."""
    return _CATALOG[anti_pattern]


def full_catalog() -> dict[AntiPattern, CatalogEntry]:
    """The complete anti-pattern catalog keyed by :class:`AntiPattern`."""
    return dict(_CATALOG)
