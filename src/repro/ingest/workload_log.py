"""The normalized query-workload log.

Every query-log reader (:mod:`repro.ingest.log_readers`) emits a stream of
:class:`LogRecord` objects; :class:`WorkloadLog` folds that stream into one
entry per distinct statement with its observed **frequency** and cumulative
**duration** — the two workload facts the paper's ranking model weighs a
finding by (a wildcard projection executed 40 000 times outranks one that
ran twice).

Aggregation is bounded-memory by construction: folding keeps one entry per
*distinct* statement, never one per log line, so a million-line log of a few
hundred ORM templates stays a few hundred entries.  Statements are
deduplicated by exact text (whitespace-insensitive), **not** by fingerprint:
two literal variants of a template can differ in rule-relevant content
(``LIKE 'INV%'`` vs ``LIKE '%offer%'``), so each distinct text is analysed
on its own.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..obs import get_metrics
from ..sqlparser import split


def statement_key(text: str) -> str:
    """Whitespace-insensitive identity of a statement's exact text.

    Trailing semicolons and runs of whitespace do not distinguish two log
    occurrences of the same statement; literal content does (see module
    docstring), so nothing beyond whitespace is normalised.
    """
    return " ".join(text.strip().rstrip(";").split())


@dataclass(frozen=True)
class LogRecord:
    """One raw query-log event: a statement plus optional timing facts.

    ``count`` is the number of executions the record stands for — 1 for a
    line-per-execution log, ``calls`` for pre-aggregated sources such as a
    ``pg_stat_statements`` snapshot.  ``duration_ms`` is the **total** time
    the record covers (for a single execution that is its duration; for an
    aggregated record, ``mean time × count``).
    """

    statement: str
    duration_ms: float | None = None
    line: int | None = None
    count: int = 1

    @property
    def is_empty(self) -> bool:
        return not self.statement.strip().strip(";").strip()


@dataclass
class WorkloadEntry:
    """One distinct statement with its aggregated workload facts."""

    statement: str
    frequency: int = 0
    total_duration_ms: float = 0.0
    first_line: int | None = None

    @property
    def mean_duration_ms(self) -> float | None:
        if self.frequency == 0 or self.total_duration_ms == 0.0:
            return None
        return self.total_duration_ms / self.frequency

    def to_dict(self) -> dict:
        return {
            "statement": self.statement,
            "frequency": self.frequency,
            "total_duration_ms": round(self.total_duration_ms, 3),
            "first_line": self.first_line,
        }


class WorkloadLog:
    """(statement, frequency, duration) records folded from a query log.

    Entries keep first-seen order, so :meth:`statements` feeds the detector
    the workload in log order and ``frequencies()[i]`` is the observed
    frequency of ``statements()[i]``.
    """

    def __init__(self, source: str | None = None, log_format: str | None = None):
        self.source = source
        self.log_format = log_format
        self.records_read = 0
        #: :class:`repro.errors.PipelineError` records for malformed lines
        #: skipped while reading this log (degraded ingestion).
        self.errors: list = []
        self._entries: "dict[str, WorkloadEntry]" = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, record: LogRecord) -> None:
        """Fold one log record in (multi-statement records are split)."""
        if record.is_empty or record.count <= 0:
            return
        self.records_read += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.ingest_lines.inc(outcome="folded")
        text = record.statement.strip()
        # A record holding several ;-separated statements (SQL dumps, some
        # trace formats) is split so every entry is exactly one statement —
        # frequency/index alignment downstream relies on it.
        parts = [text]
        if ";" in text.rstrip().rstrip(";"):
            parts = split(text) or [text]
        # A record's duration covers the whole record; when it splits into
        # several statements the time is spread across them, so totals never
        # double-count.
        part_duration = (
            record.duration_ms / len(parts) if record.duration_ms is not None else None
        )
        for part in parts:
            cleaned = part.strip().rstrip(";").strip()
            if not cleaned:
                continue
            key = statement_key(cleaned)
            entry = self._entries.get(key)
            if entry is None:
                entry = WorkloadEntry(statement=cleaned, first_line=record.line)
                self._entries[key] = entry
            entry.frequency += record.count
            if part_duration is not None:
                entry.total_duration_ms += part_duration

    def extend(self, records: Iterable[LogRecord]) -> "WorkloadLog":
        for record in records:
            self.add(record)
        return self

    @classmethod
    def from_records(
        cls,
        records: Iterable[LogRecord],
        *,
        source: str | None = None,
        log_format: str | None = None,
    ) -> "WorkloadLog":
        """Fold a (lazily consumed) record stream into a workload log."""
        return cls(source=source, log_format=log_format).extend(records)

    @classmethod
    def from_statements(
        cls, statements: Iterable[str], *, source: str | None = None
    ) -> "WorkloadLog":
        """A workload log from plain statements (each counts once)."""
        return cls(source=source, log_format="sql").extend(
            LogRecord(statement=s) for s in statements
        )

    def merge(self, other: "WorkloadLog") -> "WorkloadLog":
        """Fold another log's entries into this one (frequencies add up)."""
        for entry in other.entries():
            key = statement_key(entry.statement)
            mine = self._entries.get(key)
            if mine is None:
                self._entries[key] = WorkloadEntry(
                    statement=entry.statement,
                    frequency=entry.frequency,
                    total_duration_ms=entry.total_duration_ms,
                    first_line=entry.first_line,
                )
            else:
                mine.frequency += entry.frequency
                mine.total_duration_ms += entry.total_duration_ms
        self.records_read += other.records_read
        self.errors.extend(other.errors)
        return self

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[WorkloadEntry]:
        return iter(self._entries.values())

    def entries(self) -> "list[WorkloadEntry]":
        return list(self._entries.values())

    def entry_for(self, statement: str) -> WorkloadEntry | None:
        return self._entries.get(statement_key(statement))

    def statements(self) -> "list[str]":
        """Distinct statements in first-seen order (the detector's input)."""
        return [entry.statement for entry in self._entries.values()]

    def frequencies(self) -> "dict[str, int]":
        """Observed frequency per :func:`statement_key`."""
        return {key: entry.frequency for key, entry in self._entries.items()}

    def frequency_of(self, statement: str) -> int:
        entry = self.entry_for(statement)
        return entry.frequency if entry is not None else 0

    @property
    def total_statements(self) -> int:
        """Total executions observed (sum of frequencies)."""
        return sum(entry.frequency for entry in self._entries.values())

    @property
    def total_duration_ms(self) -> float:
        return sum(entry.total_duration_ms for entry in self._entries.values())

    def top(self, n: int = 10) -> "list[WorkloadEntry]":
        """The ``n`` most frequently executed statements."""
        return sorted(self._entries.values(), key=lambda e: -e.frequency)[:n]

    def provenance(self) -> dict:
        """The ``workload`` provenance block every report format shares.

        ``degraded``/``lines_skipped`` only appear for degraded ingestion,
        keeping the clean-scan payload shape byte-identical.
        """
        info: dict = {
            "distinct_statements": len(self),
            "total_statements": self.total_statements,
            "total_duration_ms": round(self.total_duration_ms, 3),
            "log_format": self.log_format,
        }
        if self.errors:
            info["degraded"] = True
            info["lines_skipped"] = len(self.errors)
        return info

    def chunks(self, chunk_size: int) -> "Iterator[list[str]]":
        """Distinct statements in bounded-size chunks (streaming detection)."""
        for piece in self.slices(chunk_size):
            yield piece.statements()

    def slices(self, chunk_size: int) -> "Iterator[WorkloadLog]":
        """Split into sub-logs of at most ``chunk_size`` distinct statements
        each (entries are shared, not copied — treat slices as read-only)."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        piece = WorkloadLog(source=self.source, log_format=self.log_format)
        for key, entry in self._entries.items():
            piece._entries[key] = entry
            piece.records_read += entry.frequency
            if len(piece) >= chunk_size:
                yield piece
                piece = WorkloadLog(source=self.source, log_format=self.log_format)
        if piece:
            yield piece

    def to_dict(self) -> dict:
        payload = {
            "source": self.source,
            "log_format": self.log_format,
            "records_read": self.records_read,
            "distinct_statements": len(self._entries),
            "total_statements": self.total_statements,
            "total_duration_ms": round(self.total_duration_ms, 3),
            "entries": [entry.to_dict() for entry in self._entries.values()],
        }
        # Clean reads keep the historical payload shape exactly.
        if self.errors:
            payload["errors"] = [error.to_dict() for error in self.errors]
        return payload
