"""Workload-weighted scanning: live database + query log → ranked report.

This is Algorithm 1 run against the inputs the paper actually evaluates —
a live schema, stored data, and the executed workload — instead of offline
SQL text:

1. the workload log's *distinct* statements are annotated (query analysis);
2. the connector introspects the live catalog and profiles sampled rows
   (schema + data analysis), fully populating the
   :class:`~repro.context.application_context.ApplicationContext`;
3. detection runs over that context, and ap-rank weights every finding by
   the statement's **real execution frequency** from the log.

Equivalence contract: scanning a live database is the same computation as
the offline path over equivalent inputs (the same DDL, rows, and
statements) — the conformance suite's differential oracle holds the two
byte-identical.  :func:`stream_scan` trades whole-workload context for a
bounded memory footprint: the log is folded chunk-by-chunk and each chunk
flows through the cached detection pipeline independently.
"""
from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Iterator

from ..catalog.schema import Schema
from ..context.application_context import ApplicationContext
from ..core.sqlcheck import SQLCheck, SQLCheckOptions, SQLCheckReport
from ..detector.pipeline import PipelineStats
from ..errors import CODE_CIRCUIT_OPEN, CODE_SOURCE_UNAVAILABLE, PipelineError
from ..obs import get_tracer, now, observe_stage_seconds
from .connectors import CircuitOpenError, Connector, ConnectorError, connect
from .log_readers import read_workload_log
from .workload_log import WorkloadLog, statement_key

#: Default distinct-statement chunk size of :func:`stream_scan`.
DEFAULT_STREAM_CHUNK = 512


def assign_frequencies(context: ApplicationContext, log: WorkloadLog) -> ApplicationContext:
    """Attach the log's workload facts to a built context.

    Annotations are matched to log entries by whitespace-insensitive
    statement text (:func:`~repro.ingest.workload_log.statement_key`).
    Execution counts land in ``context.frequencies`` (statements the log
    never saw keep the default frequency of 1) and mean execution times,
    when the log carries timings, in ``context.durations`` — the facts the
    ``frequency``/``duration``/``hybrid`` cost models weight the ranking
    by.
    """
    by_key = {statement_key(entry.statement): entry for entry in log}
    for annotation in context.queries:
        statement = annotation.statement
        if statement is None:
            continue
        entry = by_key.get(statement_key(annotation.raw))
        if entry is None:
            continue
        if entry.frequency > 1:
            context.frequencies[statement.index] = entry.frequency
        mean_duration = entry.mean_duration_ms
        if mean_duration is not None and mean_duration > 0:
            context.durations[statement.index] = mean_duration
    return context


def _coerce_workload(
    workload: Any,
    log_format: "str | None",
    *,
    max_errors: "int | None" = None,
    strict: bool = False,
) -> "WorkloadLog | None":
    """Accept a WorkloadLog, a log-file path, raw SQL text, or statements."""
    if workload is None:
        return None
    if isinstance(workload, WorkloadLog):
        return workload
    if isinstance(workload, Path):
        return read_workload_log(workload, log_format, max_errors=max_errors, strict=strict)
    if isinstance(workload, str):
        candidate = Path(workload)
        if candidate.exists():
            return read_workload_log(
                candidate, log_format, max_errors=max_errors, strict=strict
            )
        return WorkloadLog.from_statements([workload])
    return WorkloadLog.from_statements(workload)


class LiveScanner:
    """Scans live sources through a shared :class:`~repro.core.sqlcheck.SQLCheck`.

    One scanner can serve many scans; the toolchain's annotation cache and
    detection memo stay warm across them (the memo itself is bypassed for
    database-backed contexts, where data refreshes must be observable).
    """

    def __init__(self, toolchain: "SQLCheck | None" = None, *,
                 options: "SQLCheckOptions | None" = None):
        self.toolchain = toolchain or SQLCheck(options)

    def scan(
        self,
        database: "Any | None" = None,
        workload: "WorkloadLog | str | Path | Iterable[str] | None" = None,
        *,
        log_format: "str | None" = None,
        source: "str | None" = None,
        sample_limit: "int | None" = None,
        exclude_tables: "Iterable[str]" = (),
        max_errors: "int | None" = None,
        strict: bool = False,
    ) -> SQLCheckReport:
        """Run the full pipeline over a live database and/or a query log.

        ``database`` is anything :func:`~repro.ingest.connectors.connect`
        accepts (sqlite URL/path/connection, engine database, connector);
        ``workload`` is a :class:`WorkloadLog`, a log-file path (parsed per
        ``log_format``, auto-detected by default), SQL text, or an iterable
        of statements.  At least one of the two must be given.
        ``sample_limit`` caps the rows profiled per table: tables larger
        than the cap are sampled *inside* the database (connector
        push-down, ``ORDER BY random() LIMIT n``) instead of fetched
        whole — the knob for databases too big to pull across the wire.
        ``exclude_tables`` names telemetry tables (a ``pg_stat_statements``
        snapshot, migration bookkeeping) to leave out of the analysed
        schema and profiles.

        Failure semantics: a workload-log file is read degraded (malformed
        lines skipped and recorded; ``max_errors`` caps them, ``strict=True``
        restores fail-fast), and a connector that dies *mid-scan* — after
        the catalog was introspected — degrades profiling and data-rule
        verdicts to "source unavailable" provenance on the report instead
        of aborting.  A database that cannot be opened or introspected at
        all is still a hard :class:`ConnectorError`: there is nothing to
        degrade to.
        """
        connector = connect(database) if database is not None else None
        log = _coerce_workload(workload, log_format, max_errors=max_errors, strict=strict)
        if connector is None and log is None:
            raise ConnectorError("scan needs a database, a workload log, or both")
        if connector is not None:
            # The breaker guards one scan's fetch storm, not the connector's
            # whole lifetime — a later scan gets a fresh chance.
            connector.reset_circuit()
        if connector is not None and sample_limit is not None and sample_limit > 0:
            # The cap must hold for *every* row fetch in this scan — the
            # profiler below and any data rule pulling rows later.
            connector.sample_limit = sample_limit

        toolchain = self.toolchain
        builder = toolchain._builder
        stats = PipelineStats()
        cache = toolchain.detector.annotation_cache
        hits0 = cache.stats.hits if cache is not None else 0
        misses0 = cache.stats.misses if cache is not None else 0
        label = source or (log.source if log is not None else None) or (
            connector.name if connector is not None else None
        )
        quarantine = toolchain.options.detector.quarantine
        tracer = get_tracer()
        with tracer.span("scan", source=label):
            start = now()
            statements = log.statements() if log is not None else []
            context = builder.build(statements, source=label, stats=stats, quarantine=quarantine)
            if log is not None and log.errors:
                # Malformed-line records from the degraded log read travel with
                # the context so every report surface can account for them.
                context.errors.extend(log.errors)
            if connector is not None:
                t_live = now()
                # An unusable database input fails hard here (nothing to
                # degrade to); only *later* source loss degrades the scan.
                live_schema = connector.schema()
                excluded = {name.lower() for name in exclude_tables}
                if excluded and any(name in live_schema.tables for name in excluded):
                    # Copy-on-exclude: the connector's cached schema object must
                    # stay intact for later scans through the same connector.
                    trimmed = Schema()
                    for table in live_schema.tables.values():
                        if table.name.lower() not in excluded:
                            trimmed.add_table(table)
                    live_schema = trimmed
                # The live catalog is authoritative when connected (Algorithm 1
                # prefers it over DDL found in the workload).
                if live_schema.tables or not context.schema.tables:
                    context.schema = live_schema
                try:
                    context.profiles = connector.profiles(
                        builder.profiler, sample_limit=sample_limit, exclude=excluded
                    )
                    context.database = connector
                except ConnectorError as error:
                    if not quarantine or strict:
                        raise
                    # The source died between introspection and profiling: keep
                    # the catalog, skip data analysis, record the loss.
                    context.profiles = {}
                    context.errors.append(
                        PipelineError.from_exception(
                            "ingest",
                            error,
                            code=(
                                CODE_CIRCUIT_OPEN
                                if isinstance(error, CircuitOpenError)
                                else CODE_SOURCE_UNAVAILABLE
                            ),
                            source=connector.name,
                            detail={"verdict": "skipped: source unavailable"},
                        )
                    )
                stats.context_seconds += now() - t_live
            if log is not None:
                assign_frequencies(context, log)
            if cache is not None:
                stats.annotation_cache_hits = cache.stats.hits - hits0
                stats.annotation_cache_misses = cache.stats.misses - misses0
            report = toolchain.check_context(context, stats=stats)
            stats.total_seconds = now() - start
        observe_stage_seconds(stats)
        return report

    def stream(
        self,
        workload: "WorkloadLog | str | Path | Iterable[str]",
        *,
        log_format: "str | None" = None,
        chunk_size: int = DEFAULT_STREAM_CHUNK,
        source: "str | None" = None,
    ) -> "Iterator[SQLCheckReport]":
        """Scan a workload log in bounded-memory chunks.

        At most ``chunk_size`` distinct statements are resident at a time;
        each chunk runs through the cached detection pipeline (via the
        batch path's context assembly) and yields its own report.
        Inter-query context and frequency weights are chunk-local — the
        memory bound is the trade-off, and corpus-scale logs whose
        statements exceed main memory are the only reason to prefer this
        over :meth:`scan`.
        """
        log = _coerce_workload(workload, log_format)
        if log is None:
            raise ConnectorError("stream needs a workload log")
        label = source or log.source
        for piece in log.slices(chunk_size):
            stats = PipelineStats()
            context = self.toolchain._builder.build(
                piece.statements(),
                source=label,
                stats=stats,
                quarantine=self.toolchain.options.detector.quarantine,
            )
            assign_frequencies(context, piece)
            yield self.toolchain.check_context(context, stats=stats)

    def stream_detect(
        self,
        workload: "WorkloadLog | str | Path | Iterable[str]",
        *,
        log_format: "str | None" = None,
        chunk_size: int = DEFAULT_STREAM_CHUNK,
        workers: "int | None" = None,
        source: "str | None" = None,
    ):
        """Detection-only streaming through :meth:`APDetector.detect_batch`.

        Yields ``(DetectionReport, PipelineStats)`` per chunk — the raw
        corpus-scale path (no ranking or fixes), with the batch pipeline's
        process-pool parse fan-out available via ``workers``.
        """
        log = _coerce_workload(workload, log_format)
        if log is None:
            raise ConnectorError("stream_detect needs a workload log")
        label = source or log.source
        for piece in log.slices(chunk_size):
            yield self.toolchain.detector.detect_batch(
                piece.statements(), workers=workers, source=label
            )


def scan(
    database: "Any | None" = None,
    workload: "WorkloadLog | str | Path | Iterable[str] | None" = None,
    *,
    log_format: "str | None" = None,
    options: "SQLCheckOptions | None" = None,
    source: "str | None" = None,
    sample_limit: "int | None" = None,
    max_errors: "int | None" = None,
    strict: bool = False,
) -> SQLCheckReport:
    """One-shot convenience wrapper around :class:`LiveScanner`.

    Example::

        from repro.ingest import scan
        report = scan("sqlite:///app.db", "postgres.csv", log_format="postgres-csv")
    """
    return LiveScanner(options=options).scan(
        database, workload, log_format=log_format, source=source,
        sample_limit=sample_limit, max_errors=max_errors, strict=strict,
    )


def stream_scan(
    workload: "WorkloadLog | str | Path | Iterable[str]",
    *,
    log_format: "str | None" = None,
    options: "SQLCheckOptions | None" = None,
    chunk_size: int = DEFAULT_STREAM_CHUNK,
    source: "str | None" = None,
) -> "Iterator[SQLCheckReport]":
    """Module-level form of :meth:`LiveScanner.stream`."""
    return LiveScanner(options=options).stream(
        workload, log_format=log_format, chunk_size=chunk_size, source=source
    )
