"""Query-log readers: DBMS log files → :class:`~repro.ingest.workload_log.WorkloadLog`.

The paper evaluates sqlcheck over *live applications*, whose workload is
what the DBMS actually executed — not a curated ``.sql`` file.  Each reader
here parses one real log dialect into a stream of
:class:`~repro.ingest.workload_log.LogRecord` objects (statement text plus,
when the log carries it, the execution duration):

========================  ====================================================
format name               source
========================  ====================================================
``postgres-csv``          PostgreSQL ``log_destination = csvlog`` files
``postgres``              PostgreSQL stderr logs (``log_statement = all`` /
                          ``log_min_duration_statement``)
``pg_stat_statements``    CSV export of the ``pg_stat_statements`` view
                          (pre-aggregated: ``calls`` × ``mean_exec_time``
                          per normalized statement); the same snapshot
                          stored as a *table* is read by
                          :func:`read_pg_stat_table`
``mysql``                 MySQL general query log (``general_log = ON``)
``sqlite-trace``          SQLite shell ``.trace`` / ``sqlite3_trace_v2`` output
``sql``                   plain SQL text (one or more ``;``-separated
                          statements, e.g. a dump or migration script)
========================  ====================================================

Readers are generators over a line iterable: a log is consumed in one
forward pass and never materialised, so ingestion memory is bounded by the
longest single statement plus the distinct-statement fold in
:class:`WorkloadLog` — not by the log's line count.
"""
from __future__ import annotations

import csv
import re
from pathlib import Path
from typing import Callable, Iterable, Iterator

from ..errors import CODE_LOG_UNDETECTABLE, ErrorBudget
from .workload_log import LogRecord, WorkloadLog


class LogFormatError(ValueError):
    """Raised for an unknown log format name."""


class LogDetectionError(LogFormatError):
    """No log format could be inferred from the file's name or content.

    ``probed`` lists the formats detection considered, so the caller can
    surface "tried these, none matched" instead of misclassifying an empty
    or binary file as SQL.
    """

    def __init__(self, message: str, *, probed: "tuple[str, ...] | None" = None):
        super().__init__(message)
        self.code = CODE_LOG_UNDETECTABLE
        self.probed: "tuple[str, ...]" = probed if probed is not None else LOG_FORMATS


# ----------------------------------------------------------------------
# degraded ingestion: malformed lines are skipped and counted
# ----------------------------------------------------------------------
def _is_junk_line(line: str) -> bool:
    """A line that cannot be text in any supported log dialect.

    Files are opened with ``errors="replace"``, so undecodable bytes arrive
    as U+FFFD; NULs survive decoding and equally mark binary content.
    """
    return "\x00" in line or "�" in line


def _clean_lines(
    lines: Iterable[str], budget: ErrorBudget, source: "str | None" = None
) -> Iterator[str]:
    """Drop-and-count binary junk lines before a reader parses the stream.

    Only used when a budget is attached (degraded ingestion); without one,
    readers see the raw stream exactly as before.
    """
    for number, raw in enumerate(lines, start=1):
        if _is_junk_line(raw):
            budget.record(
                f"line {number}: undecodable bytes (binary junk), skipped",
                source=source,
                line=number,
            )
            continue
        yield raw


# ----------------------------------------------------------------------
# PostgreSQL — shared message parsing
# ----------------------------------------------------------------------
#: csvlog / stderr message bodies that carry SQL.  ``log_duration`` writes the
#: duration as its own message; ``log_min_duration_statement`` prefixes the
#: statement message with it.
_PG_STATEMENT_RE = re.compile(
    r"^(?:duration:\s*(?P<duration>[\d.]+)\s*ms\s+)?"
    r"(?:statement|execute\s+[^:]*):\s*(?P<sql>.*)$",
    re.DOTALL,
)
_PG_DURATION_ONLY_RE = re.compile(r"^duration:\s*(?P<duration>[\d.]+)\s*ms\s*$")

#: stderr log prefix: anything up to the severity tag (``log_line_prefix`` is
#: site-configurable, so nothing before the tag is assumed).
_PG_STDERR_RE = re.compile(r"^(?P<prefix>.*?)\b(?P<severity>LOG|STATEMENT):\s{1,2}(?P<message>.*)$")

#: csvlog columns (PostgreSQL docs, table "csvlog fields"): the message is
#: field 14 (0-based 13); earlier fields include the command tag at 7.
_PG_CSV_MESSAGE_FIELD = 13


def _pg_message_records(
    messages: "Iterable[tuple[str, int | None]]",
) -> Iterator[LogRecord]:
    """Fold (message, line) pairs into records, attaching trailing
    ``duration:``-only messages (``log_duration = on``) to the statement
    they time."""
    pending: "LogRecord | None" = None
    for message, line in messages:
        match = _PG_STATEMENT_RE.match(message.strip())
        if match and match.group("sql").strip():
            if pending is not None:
                yield pending
            duration = match.group("duration")
            pending = LogRecord(
                statement=match.group("sql").strip(),
                duration_ms=float(duration) if duration else None,
                line=line,
            )
            continue
        duration_only = _PG_DURATION_ONLY_RE.match(message.strip())
        if duration_only and pending is not None:
            yield LogRecord(
                statement=pending.statement,
                duration_ms=float(duration_only.group("duration")),
                line=pending.line,
            )
            pending = None
    if pending is not None:
        yield pending


def read_postgres_csvlog(
    lines: Iterable[str], budget: "ErrorBudget | None" = None
) -> Iterator[LogRecord]:
    """PostgreSQL csvlog.  The csv module handles quoted multi-line
    messages, so statements with embedded newlines arrive intact.

    With a budget attached, rows the csv module rejects and non-empty rows
    too short to carry a message field are recorded and skipped instead of
    aborting (or being silently dropped)."""
    if budget is not None:
        lines = _clean_lines(lines, budget)

    def messages() -> "Iterator[tuple[str, int | None]]":
        reader = csv.reader(lines)
        while True:
            try:
                row = next(reader)
            except StopIteration:
                return
            except csv.Error as error:
                if budget is None:
                    raise
                budget.record(
                    f"line {reader.line_num}: bad CSV row ({error}), skipped",
                    error=error,
                    line=reader.line_num,
                )
                continue
            if len(row) <= _PG_CSV_MESSAGE_FIELD:
                if budget is not None and row:
                    budget.record(
                        f"line {reader.line_num}: csvlog row has {len(row)} "
                        f"field(s), expected > {_PG_CSV_MESSAGE_FIELD}, skipped",
                        line=reader.line_num,
                    )
                continue
            yield row[_PG_CSV_MESSAGE_FIELD], reader.line_num

    return _pg_message_records(messages())


def read_postgres_stderr(
    lines: Iterable[str], budget: "ErrorBudget | None" = None
) -> Iterator[LogRecord]:
    """PostgreSQL stderr log (``log_statement`` / duration messages).

    Continuation lines of a multi-line statement carry no severity tag and
    are appended to the current message.
    """
    if budget is not None:
        lines = _clean_lines(lines, budget)

    def messages() -> "Iterator[tuple[str, int | None]]":
        current: "list[str] | None" = None
        start_line: "int | None" = None
        for number, raw in enumerate(lines, start=1):
            line = raw.rstrip("\n")
            match = _PG_STDERR_RE.match(line)
            if match:
                if current is not None:
                    yield "\n".join(current), start_line
                if match.group("severity") == "LOG":
                    current = [match.group("message")]
                    start_line = number
                else:
                    # STATEMENT: context lines repeat SQL already logged for
                    # an error; counting them would double the frequency.
                    current = None
            elif current is not None and (line.startswith(("\t", " ")) or not line):
                current.append(line.lstrip("\t"))
            elif current is not None:
                yield "\n".join(current), start_line
                current = None
        if current is not None:
            yield "\n".join(current), start_line

    return _pg_message_records(messages())


# ----------------------------------------------------------------------
# pg_stat_statements snapshots (CSV export or stored table)
# ----------------------------------------------------------------------
#: Column aliases across PostgreSQL versions: ``*_exec_time`` since PG 13,
#: ``*_time`` before.
_PG_STAT_TOTAL_COLUMNS = ("total_exec_time", "total_time")
_PG_STAT_MEAN_COLUMNS = ("mean_exec_time", "mean_time")


def _pg_stat_number(value: object) -> "float | None":
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def pg_stat_record(row: "dict[str, object]", line: "int | None" = None) -> "LogRecord | None":
    """One ``pg_stat_statements`` row → one pre-aggregated :class:`LogRecord`.

    ``row`` maps column names (any case) to values; ``calls`` becomes the
    record's execution count and ``total_exec_time`` (or
    ``mean_exec_time × calls``) its total duration.  Rows without readable
    SQL — empty, ``<insufficient privilege>`` — return ``None``.
    """
    lowered = {str(key).strip().lower(): value for key, value in row.items()}
    statement = str(lowered.get("query") or "").strip()
    # The view masks other users' statements as "<insufficient privilege>"
    # and can carry utility noise; nothing "<…>" is parseable SQL.
    if not statement or statement.startswith("<"):
        return None
    calls = _pg_stat_number(lowered.get("calls"))
    count = int(calls) if calls is not None and calls >= 1 else 1
    total = None
    for column in _PG_STAT_TOTAL_COLUMNS:
        total = _pg_stat_number(lowered.get(column))
        if total is not None:
            break
    if total is None:
        for column in _PG_STAT_MEAN_COLUMNS:
            mean = _pg_stat_number(lowered.get(column))
            if mean is not None:
                total = mean * count
                break
    return LogRecord(statement=statement, duration_ms=total, line=line, count=count)


def read_pg_stat_statements(
    lines: Iterable[str], budget: "ErrorBudget | None" = None
) -> Iterator[LogRecord]:
    """CSV export of ``pg_stat_statements`` (``\\copy … TO 'x.csv' CSV HEADER``).

    Unlike the line-per-execution logs, each row is a *pre-aggregated*
    statement: ``calls`` executions totalling ``total_exec_time`` ms (or
    ``mean_exec_time × calls`` on exports that dropped the total).
    """
    if budget is not None:
        lines = _clean_lines(lines, budget)
    reader = csv.DictReader(lines)
    if reader.fieldnames is None:
        return  # empty input: no records, like every other reader
    fields = {name.strip().lower() for name in reader.fieldnames}
    if "query" not in fields or "calls" not in fields:
        # A wrong header is a format-level mistake, not one bad line — it
        # stays fail-fast even under a budget.
        raise LogFormatError(
            "pg_stat_statements CSV needs a header row with at least "
            "'query' and 'calls' columns"
        )
    while True:
        try:
            row = next(reader)
        except StopIteration:
            return
        except csv.Error as error:
            if budget is None:
                raise
            budget.record(
                f"line {reader.line_num}: bad CSV row ({error}), skipped",
                error=error,
                line=reader.line_num,
            )
            continue
        record = pg_stat_record(row, line=reader.line_num)
        if record is not None:
            yield record


def read_pg_stat_table(
    database: object,
    table: str = "pg_stat_statements",
    *,
    source: "str | None" = None,
) -> WorkloadLog:
    """Fold a ``pg_stat_statements`` snapshot stored as a *table* into a
    :class:`WorkloadLog`.

    ``database`` is an open :class:`~repro.ingest.connectors.Connector` or
    anything :func:`~repro.ingest.connectors.connect` accepts (a SQLite
    file holding an exported snapshot, an engine database, …).  Raises
    :class:`~repro.ingest.connectors.ConnectorError` when the table cannot
    be read.
    """
    from .connectors import Connector, connect

    connector = database if isinstance(database, Connector) else connect(database)
    try:
        rows = connector.table_rows(table)
        records = (
            record
            for record in (pg_stat_record(row) for row in rows)
            if record is not None
        )
        return WorkloadLog.from_records(
            records,
            source=source or f"{connector.name}:{table}",
            log_format="pg_stat_statements",
        )
    finally:
        if connector is not database:
            connector.close()


def _looks_like_pg_stat_header(sample: str) -> bool:
    """True when the sample's first non-empty line is a pg_stat CSV header."""
    first = next((line for line in sample.splitlines() if line.strip()), "")
    try:
        fields = next(csv.reader([first]), [])
    except csv.Error:
        return False
    names = {field.strip().lower() for field in fields}
    return "query" in names and "calls" in names


# ----------------------------------------------------------------------
# MySQL general query log
# ----------------------------------------------------------------------
#: Entry line: optional timestamp (ISO-8601 in 5.7+/8.0, ``YYMMDD h:m:s``
#: before), thread id, command, argument.  Continuation lines of a
#: multi-line statement match neither form.
_MYSQL_ENTRY_RE = re.compile(
    r"^(?:\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.?\d*Z?|\d{6}\s+\d{1,2}:\d{2}:\d{2})?"
    r"\s+(?P<thread>\d+)\s(?P<command>[A-Z][a-z]+(?: [A-Za-z]+)?)\t?(?P<argument>.*)$"
)

#: Commands whose argument is executed SQL.
_MYSQL_SQL_COMMANDS = frozenset({"Query", "Execute"})


def read_mysql_general_log(
    lines: Iterable[str], budget: "ErrorBudget | None" = None
) -> Iterator[LogRecord]:
    """MySQL general query log (``general_log = ON``)."""
    if budget is not None:
        lines = _clean_lines(lines, budget)
    current: "list[str] | None" = None
    start_line: "int | None" = None
    for number, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        match = _MYSQL_ENTRY_RE.match(line)
        if match:
            if current is not None:
                yield LogRecord(statement="\n".join(current), line=start_line)
                current = None
            if match.group("command") in _MYSQL_SQL_COMMANDS:
                current = [match.group("argument")]
                start_line = number
        elif current is not None:
            if line.startswith(("Time ", "Tcp port:", "/")) and not current[-1]:
                continue  # header banner mid-file (log rotation)
            current.append(line)
    if current is not None:
        yield LogRecord(statement="\n".join(current), line=start_line)


# ----------------------------------------------------------------------
# SQLite trace output
# ----------------------------------------------------------------------
def read_sqlite_trace(
    lines: Iterable[str], budget: "ErrorBudget | None" = None
) -> Iterator[LogRecord]:
    """SQLite shell ``.trace`` / ``sqlite3_trace_v2`` output: one expanded
    statement per line, with optional ``TRACE:``-style prefixes and ``--``
    comment lines from instrumented applications."""
    if budget is not None:
        lines = _clean_lines(lines, budget)
    for number, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n").strip()
        if not line or line.startswith("--"):
            continue
        if line.upper().startswith("TRACE:"):
            line = line[len("TRACE:"):].strip()
        if line:
            yield LogRecord(statement=line, line=number)


# ----------------------------------------------------------------------
# plain SQL text
# ----------------------------------------------------------------------
def read_plain_sql(
    lines: Iterable[str], budget: "ErrorBudget | None" = None
) -> Iterator[LogRecord]:
    """Plain ``;``-separated SQL (dumps, migrations, query collections).

    Statements are accumulated line-wise and flushed on each line that ends
    a statement, so a multi-gigabyte dump is still read in bounded memory.
    """
    from ..sqlparser import split

    if budget is not None:
        lines = _clean_lines(lines, budget)

    def flush(buffer: "list[str]", start_line: "int | None") -> Iterator[LogRecord]:
        text = "\n".join(buffer)
        # Fast path: one terminator means one statement — the lexer pass is
        # only needed to separate several statements sharing a flush (split
        # would return the same single stripped text).
        if text.count(";") <= 1:
            if text.strip().strip(";").strip():
                yield LogRecord(statement=text.strip(), line=start_line)
            return
        for statement in split(text):
            yield LogRecord(statement=statement, line=start_line)

    buffer: list[str] = []
    start_line: "int | None" = None
    in_string = False
    for number, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if not buffer:
            if not line.strip():
                continue
            start_line = number
        buffer.append(line)
        # Track single-quote parity so a ';' ending a line *inside* a
        # multi-line string literal does not flush mid-statement (escaped
        # '' quotes come in pairs, so parity still works).
        if line.count("'") % 2:
            in_string = not in_string
        if not in_string and line.rstrip().endswith(";"):
            yield from flush(buffer, start_line)
            buffer = []
    if buffer:
        yield from flush(buffer, start_line)


# ----------------------------------------------------------------------
# format registry
# ----------------------------------------------------------------------
LOG_READERS: "dict[str, Callable[..., Iterator[LogRecord]]]" = {
    "postgres-csv": read_postgres_csvlog,
    "postgres": read_postgres_stderr,
    "pg_stat_statements": read_pg_stat_statements,
    "mysql": read_mysql_general_log,
    "sqlite-trace": read_sqlite_trace,
    "sql": read_plain_sql,
}

#: Format names accepted by ``--log-format`` and the REST ``log_format``.
LOG_FORMATS: "tuple[str, ...]" = tuple(LOG_READERS)


def iter_log_records(
    lines: Iterable[str], log_format: str, budget: "ErrorBudget | None" = None
) -> Iterator[LogRecord]:
    """Parse a line stream in the named format into log records.

    ``budget`` (an :class:`~repro.errors.ErrorBudget`) turns on degraded
    ingestion: malformed lines are recorded there and skipped instead of
    aborting the read."""
    reader = LOG_READERS.get(log_format)
    if reader is None:
        raise LogFormatError(
            f"unknown log format {log_format!r} (expected one of {list(LOG_FORMATS)})"
        )
    return reader(lines, budget)


#: First keywords of statements a SQLite trace emits one-per-line.
_SQL_LEADING_KEYWORDS = (
    "SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER",
    "PRAGMA", "BEGIN", "COMMIT", "ROLLBACK", "REPLACE", "WITH", "TRACE:",
)


def _read_sample(path: "str | Path") -> str:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            return handle.read(8192)
    except OSError:
        return ""


def detect_log_format(path: "str | Path", sample: str | None = None) -> str:
    """Format detection from the file name and a content sample.

    A recognised extension (``.csv``/``.sql``/``.trace``) is authoritative.
    Otherwise the content is probed against every known dialect, and a
    sample that cannot be *any* of them — empty, whitespace-only, or
    binary — raises :class:`LogDetectionError` (carrying the probed
    formats) instead of misclassifying the file as SQL.
    """
    name = str(path).lower()
    if name.endswith(".csv"):
        # Both csvlog files and pg_stat_statements exports are ".csv"; only
        # the latter opens with a header row naming query/calls columns.
        if sample is None:
            sample = _read_sample(path)
        if _looks_like_pg_stat_header(sample):
            return "pg_stat_statements"
        return "postgres-csv"
    if name.endswith(".sql"):
        return "sql"
    if name.endswith(".trace"):
        return "sqlite-trace"
    if sample is None:
        sample = _read_sample(path)
    if not sample.strip():
        raise LogDetectionError(
            f"cannot detect the log format of {path}: the file is empty or "
            f"whitespace-only (probed {', '.join(LOG_FORMATS)}); name the "
            "format explicitly with --log-format"
        )
    junk_lines = sum(1 for line in sample.splitlines() if _is_junk_line(line))
    text_lines = max(1, len(sample.splitlines()))
    if junk_lines * 2 > text_lines:
        raise LogDetectionError(
            f"cannot detect the log format of {path}: the content is binary "
            f"(probed {', '.join(LOG_FORMATS)}); name the format explicitly "
            "with --log-format"
        )
    if _looks_like_pg_stat_header(sample):
        return "pg_stat_statements"
    sql_lines = 0
    semicolon_lines = 0
    for line in sample.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if _PG_STDERR_RE.match(stripped) and ("LOG:" in stripped or "STATEMENT:" in stripped):
            return "postgres"
        if _MYSQL_ENTRY_RE.match(line) or "mysqld, Version" in stripped:
            return "mysql"
        if stripped.count(",") >= _PG_CSV_MESSAGE_FIELD and '"' in stripped:
            return "postgres-csv"
        if stripped.upper().startswith(_SQL_LEADING_KEYWORDS):
            sql_lines += 1
        if stripped.endswith(";"):
            semicolon_lines += 1
    # Several statement-per-line entries and not a single ';' terminator
    # anywhere is a trace log, not a SQL script — the plain-sql reader
    # would fold the whole file into one bogus statement.  Scripts (even
    # multi-line ones) terminate their statements somewhere in the sample.
    if sql_lines >= 2 and semicolon_lines == 0:
        return "sqlite-trace"
    return "sql"


def read_workload_log(
    path: "str | Path",
    log_format: str | None = None,
    *,
    source: str | None = None,
    max_errors: "int | None" = None,
    strict: bool = False,
) -> WorkloadLog:
    """Read one log file into a :class:`WorkloadLog` (format auto-detected
    when not named).  The file is streamed, never slurped.

    Ingestion is degraded by default: malformed lines are skipped and
    recorded on ``log.errors``.  ``max_errors`` caps how many before
    :class:`~repro.errors.ErrorBudgetExceeded` aborts the read;
    ``strict=True`` restores fail-fast (the first malformed line raises).
    """
    path = Path(path)
    fmt = log_format or detect_log_format(path)
    if fmt not in LOG_READERS:
        raise LogFormatError(
            f"unknown log format {fmt!r} (expected one of {list(LOG_FORMATS)})"
        )
    budget = ErrorBudget(max_errors, strict=strict)
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        log = WorkloadLog.from_records(
            iter_log_records(handle, fmt, budget),
            source=source or str(path),
            log_format=fmt,
        )
    log.errors = list(budget)
    return log
