"""Live-source ingestion: database connectors, query-log readers, and
workload-weighted scanning.

The paper's pipeline is defined over a *live application* — its schema,
stored data, and executed workload.  This package is that input layer:

* :mod:`~repro.ingest.connectors` — introspect a live database (SQLite via
  the stdlib driver, or the in-repo engine) into the catalog and profile
  its rows;
* :mod:`~repro.ingest.log_readers` — parse real DBMS query logs
  (PostgreSQL csvlog/stderr, MySQL general log, SQLite trace, plain SQL)
  into a normalized :class:`WorkloadLog` of (statement, frequency,
  duration) records;
* :mod:`~repro.ingest.scanner` — assemble both into a fully-populated
  application context and run the toolchain with execution-frequency
  ranking weights (:func:`scan`), or stream a log through the batch
  pipeline in bounded-memory chunks (:func:`stream_scan`).

Surfaces: ``sqlcheck scan --db URL [--log FILE --log-format FMT]`` on the
CLI and ``POST /api/scan`` on the REST interface.
"""
from .connectors import (
    CircuitBreaker,
    CircuitOpenError,
    Connector,
    ConnectorError,
    EngineConnector,
    RetryPolicy,
    SQLiteConnector,
    connect,
)
from .log_readers import (
    LOG_FORMATS,
    LogDetectionError,
    LogFormatError,
    detect_log_format,
    iter_log_records,
    pg_stat_record,
    read_pg_stat_statements,
    read_pg_stat_table,
    read_workload_log,
)
from .scanner import (
    DEFAULT_STREAM_CHUNK,
    LiveScanner,
    assign_frequencies,
    scan,
    stream_scan,
)
from .workload_log import LogRecord, WorkloadEntry, WorkloadLog, statement_key

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Connector",
    "ConnectorError",
    "DEFAULT_STREAM_CHUNK",
    "EngineConnector",
    "LOG_FORMATS",
    "LiveScanner",
    "LogDetectionError",
    "LogFormatError",
    "LogRecord",
    "RetryPolicy",
    "SQLiteConnector",
    "WorkloadEntry",
    "WorkloadLog",
    "assign_frequencies",
    "connect",
    "detect_log_format",
    "iter_log_records",
    "pg_stat_record",
    "read_pg_stat_statements",
    "read_pg_stat_table",
    "read_workload_log",
    "scan",
    "statement_key",
    "stream_scan",
]
