"""Database connectors: introspect a *live* database into the catalog.

The paper's pipeline runs against a live application — Algorithm 1 builds
the application context from the database's catalog and sampled tuples, not
from DDL text.  A :class:`Connector` is that bridge: it introspects a
running database into a :class:`~repro.catalog.schema.Schema` and hands the
data analyser real rows to profile.

Two connectors ship:

* :class:`SQLiteConnector` — any SQLite database file (or open stdlib
  ``sqlite3`` connection).  The catalog is rebuilt by feeding the CREATE
  statements SQLite itself stores in ``sqlite_master`` through the same
  :class:`~repro.catalog.ddl_builder.DDLBuilder` the offline path uses, so
  a live scan and an offline scan of the same DDL agree byte-for-byte;
  tables whose stored DDL the tolerant parser cannot use fall back to
  ``PRAGMA table_info`` introspection.
* :class:`EngineConnector` — the in-repo :class:`~repro.engine.Database`
  (the PostgreSQL stand-in used by the benchmarks), so everything built on
  connectors is exercisable without external files.

Client/server engines (PostgreSQL, MySQL) need driver packages this
offline environment does not ship; :func:`connect` recognises their URLs
and raises a :class:`ConnectorError` that points at the query-log readers
(``--log``) as the supported ingestion path for them.
"""
from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, TypeVar

from ..catalog.ddl_builder import DDLBuilder
from ..catalog.schema import Column, Schema, Table
from ..catalog.types import parse_type
from ..errors import SourceUnavailableError
from ..obs import get_metrics, get_tracer
from ..profiler.profiler import DataProfiler, TableProfile

_T = TypeVar("_T")


class ConnectorError(SourceUnavailableError):
    """Raised when a database URL cannot be served by any connector.

    Subclasses :class:`~repro.errors.SourceUnavailableError`, so the
    detector can degrade a data-rule verdict to "skipped: source
    unavailable" when the rows behind it vanish mid-scan.
    """


class CircuitOpenError(ConnectorError):
    """The connector's circuit breaker is open: the source failed too many
    consecutive times this scan, and further fetches are refused without
    touching it (no retries — the scan degrades immediately)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient connector failures.

    ``attempts`` counts total tries (1 = no retry).  The delay before retry
    ``n`` (0-based) is ``base_delay × 2**n``, capped at ``max_delay`` — with
    the defaults: 50 ms, 100 ms, for 3 attempts ≈ 150 ms worst-case extra
    latency per operation.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (0-based)."""
        return min(self.max_delay, self.base_delay * (2 ** attempt))


#: Retry nothing: the policy of code paths that must observe failures raw.
NO_RETRY = RetryPolicy(attempts=1, base_delay=0.0)

#: Default policy of every connector fetch.
DEFAULT_RETRY_POLICY = RetryPolicy()


class CircuitBreaker:
    """Per-scan consecutive-failure counter that trips open.

    After ``threshold`` consecutive failed operations the breaker opens and
    every further guarded fetch raises :class:`CircuitOpenError` without
    touching the source; one success closes it again.  This bounds the
    worst case of a dead source to ``threshold × retry budget`` instead of
    one retry storm per table × rule.
    """

    def __init__(self, threshold: int = 5):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.failures = 0

    @property
    def is_open(self) -> bool:
        return self.failures >= self.threshold

    def record_success(self) -> None:
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1

    def reset(self) -> None:
        self.failures = 0


class ConnectedTable:
    """Lazy, read-only stand-in for an engine ``StoredTable``.

    Data rules reach the raw rows through
    ``context.application.database.get_table(name).all_rows()``; this shim
    serves that contract for any connector, fetching rows on first use.
    """

    def __init__(self, connector: "Connector", definition: Table):
        self._connector = connector
        self.definition = definition
        self.name = definition.name
        self._rows: "list[dict[str, Any]] | None" = None

    def all_rows(self) -> "list[dict[str, Any]]":
        if self._rows is None:
            # Honour the connector's sampling cap here too: data rules reach
            # rows through this path, and a table too large to fetch whole
            # must stay sampled for them exactly as it is for the profiler.
            limit = self._connector.sample_limit
            if (
                limit is not None
                and limit > 0
                and self._connector.fetch_row_count(self.name) > limit
            ):
                self._rows = self._connector.fetch_rows(self.name, limit=limit)
            else:
                self._rows = self._connector.fetch_rows(self.name)
        return self._rows

    @property
    def row_count(self) -> int:
        return len(self.all_rows())


class Connector:
    """Read-only view of a live database: schema introspection + row access.

    Subclasses implement :meth:`introspect_schema` and :meth:`table_rows`;
    profiling, context assembly, and the engine-compatible ``get_table``
    row access (used by the data rules) are shared.  ``dialect`` is the SQL
    dialect hint handed to the parser for the workload that accompanies the
    database.
    """

    #: provenance label (file path, engine name) used as the scan source.
    name: str = "<database>"
    dialect: "str | None" = None
    #: when set (``LiveScanner.scan(sample_limit=…)`` sets it), every row
    #: fetch through :meth:`get_table` is capped at this many rows — tables
    #: larger than the cap are sampled in-database, never pulled whole.
    sample_limit: "int | None" = None
    #: transient-failure policy of every guarded operation (schema
    #: introspection, row fetches, counts); replace with :data:`NO_RETRY`
    #: to observe failures raw.
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY
    _schema_cache: "Schema | None" = None
    _table_cache: "dict[str, ConnectedTable] | None" = None
    _circuit: "CircuitBreaker | None" = None

    # ------------------------------------------------------------------
    # fault isolation: retry/backoff + circuit breaker
    # ------------------------------------------------------------------
    @property
    def circuit(self) -> CircuitBreaker:
        """This connector's circuit breaker (created on first use)."""
        if self._circuit is None:
            self._circuit = CircuitBreaker()
        return self._circuit

    def reset_circuit(self) -> None:
        """Close the breaker — :class:`~repro.ingest.scanner.LiveScanner`
        calls this at the start of every scan so the breaker is per-scan."""
        self.circuit.reset()

    def _guarded(self, operation: "Callable[..., _T]", *args: Any, **kwargs: Any) -> _T:
        """Run one source operation under the retry policy and breaker.

        Only :class:`ConnectorError` is retried — it marks source
        unavailability; anything else is a bug and propagates immediately.
        """
        circuit = self.circuit
        if circuit.is_open:
            raise CircuitOpenError(
                f"circuit breaker open for {self.name}: "
                f"{circuit.failures} consecutive failure(s), source fetches suspended"
            )
        metrics = get_metrics()
        tracer = get_tracer()
        policy = self.retry_policy
        attempts = max(1, policy.attempts)
        op_name = getattr(operation, "__name__", "operation")
        last: "ConnectorError | None" = None
        for attempt in range(attempts):
            try:
                if tracer.enabled:
                    with tracer.span(
                        f"connector:{op_name}", source=self.name, attempt=attempt
                    ):
                        result = operation(*args, **kwargs)
                else:
                    result = operation(*args, **kwargs)
            except CircuitOpenError:
                raise
            except ConnectorError as error:
                last = error
                if attempt + 1 < attempts:
                    if metrics.enabled:
                        metrics.connector_retries.inc()
                    time.sleep(policy.delay(attempt))
                continue
            circuit.record_success()
            return result
        was_open = circuit.is_open
        circuit.record_failure()
        if metrics.enabled and circuit.is_open and not was_open:
            metrics.connector_breaker_trips.inc()
        assert last is not None
        raise last

    def fetch_rows(self, table: str, limit: "int | None" = None) -> "list[dict[str, Any]]":
        """:meth:`table_rows` under the retry policy and circuit breaker."""
        if limit is None:
            return self._guarded(self.table_rows, table)
        return self._guarded(self.table_rows, table, limit=limit)

    def fetch_row_count(self, table: str) -> int:
        """:meth:`table_row_count` under the retry policy and breaker."""
        return self._guarded(self.table_row_count, table)

    def introspect_schema(self) -> Schema:
        raise NotImplementedError

    def table_rows(self, table: str, limit: "int | None" = None) -> "list[dict[str, Any]]":
        """Rows of ``table`` — all of them, or a sample of ``limit``.

        When ``limit`` is given the connector may push the sampling down
        into the database (``ORDER BY random() LIMIT n``) so a table too
        large to fetch whole never crosses the wire; the base
        implementation falls back to fetching everything and truncating.
        """
        raise NotImplementedError

    def table_row_count(self, table: str) -> int:
        """Row count of ``table`` (pushed down where the engine can count
        without materialising the rows)."""
        return len(self.table_rows(table))

    def schema(self) -> Schema:
        """The introspected catalog (computed once per connector)."""
        if self._schema_cache is None:
            self._schema_cache = self._guarded(self.introspect_schema)
        return self._schema_cache

    def refresh(self) -> Schema:
        """Drop the cached catalog and rows, re-introspect (schema changes)."""
        self._schema_cache = None
        self._table_cache = None
        return self.schema()

    def get_table(self, name: str) -> "ConnectedTable | None":
        """Engine-compatible row access for the data rules.

        Tables are cached per connector so the rows behind one scan are
        fetched at most once — the profiler and the data rules share them.
        """
        if self._table_cache is None:
            self._table_cache = {}
        cached = self._table_cache.get(name.lower())
        if cached is not None:
            return cached
        definition = self.schema().get_table(name)
        if definition is None:
            return None
        table = ConnectedTable(self, definition)
        self._table_cache[name.lower()] = table
        return table

    def profiles(
        self,
        profiler: "DataProfiler | None" = None,
        *,
        sample_limit: "int | None" = None,
        exclude: "Iterable[str]" = (),
    ) -> "dict[str, TableProfile]":
        """Profile every table exactly as the offline data analyser does.

        By default rows go through :meth:`get_table`'s cache, so the data
        rules running later in the same scan reuse them instead of
        re-fetching.  With ``sample_limit`` set, a table larger than the
        limit is profiled from a pushed-down random sample instead
        (:meth:`table_rows` with ``limit``) and the full rows are *not*
        fetched or cached — the bounded-memory path for tables too big to
        pull whole.  ``exclude`` names telemetry tables (e.g. a
        ``pg_stat_statements`` snapshot) that are inputs, not application
        schema.
        """
        profiler = profiler or DataProfiler()
        schema = self.schema()
        excluded = {name.lower() for name in exclude}
        profiles: "dict[str, TableProfile]" = {}
        for table in schema.tables.values():
            if table.name.lower() in excluded:
                continue
            if sample_limit is not None and sample_limit > 0 and (
                self.fetch_row_count(table.name) > sample_limit
            ):
                rows = self.fetch_rows(table.name, limit=sample_limit)
            else:
                stored = self.get_table(table.name)
                rows = stored.all_rows() if stored is not None else []
            profiles[table.name.lower()] = profiler.profile_rows(
                table.name, rows, definition=table
            )
        return profiles

    def close(self) -> None:  # pragma: no cover - default is a no-op
        return

    def __enter__(self) -> "Connector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class EngineConnector(Connector):
    """Adapter over the in-repo :class:`~repro.engine.Database`."""

    dialect = "postgresql"

    def __init__(self, database: Any):
        self.database = database
        self.name = f"engine:{getattr(database, 'name', 'main')}"

    def introspect_schema(self) -> Schema:
        return self.database.schema

    def table_rows(self, table: str, limit: "int | None" = None) -> "list[dict[str, Any]]":
        stored = self.database.get_table(table)
        if stored is None:
            return []
        rows = stored.all_rows()
        return rows[:limit] if limit is not None else rows

    def table_row_count(self, table: str) -> int:
        stored = self.database.get_table(table)
        return stored.row_count if stored is not None else 0

    def get_table(self, name: str):
        # The engine's own stored tables already satisfy the data-rule
        # contract; hand them through so live and offline runs share rows.
        return self.database.get_table(name)


class SQLiteConnector(Connector):
    """Connector over a SQLite database file / stdlib connection.

    SQLite stores every object's original CREATE statement in
    ``sqlite_master``; replaying those through :class:`DDLBuilder` yields a
    catalog identical to parsing the same DDL offline (the round-trip the
    conformance suite locks).  ``PRAGMA table_info`` fills in any table the
    stored DDL did not produce.
    """

    dialect = "sqlite"

    def __init__(
        self, database: "str | Path | sqlite3.Connection", *, timeout: float = 5.0
    ):
        if isinstance(database, sqlite3.Connection):
            self._connection = database
            self.name = "sqlite:<connection>"
            self._owns_connection = False
        else:
            path = Path(database)
            if not path.exists():
                raise ConnectorError(f"SQLite database not found: {path}")
            try:
                # A bounded busy timeout: a scan blocked behind another
                # writer's lock errors out instead of hanging the pipeline.
                self._connection = sqlite3.connect(str(path), timeout=timeout)
            except sqlite3.Error as error:
                # Directories and unreadable files pass the exists() check
                # but fail to open — keep the clean-error contract.
                raise ConnectorError(
                    f"cannot open SQLite database {path}: {error}"
                ) from error
            self.name = str(path)
            self._owns_connection = True
        self._connection.row_factory = sqlite3.Row

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def master_entries(self) -> "list[tuple[str, str, str | None]]":
        """(type, name, sql) rows of every user table and index, in
        creation order."""
        try:
            cursor = self._connection.execute(
                "SELECT type, name, sql FROM sqlite_master "
                "WHERE type IN ('table', 'index') AND name NOT LIKE 'sqlite_%' "
                "ORDER BY rowid"
            )
            return [(row["type"], row["name"], row["sql"]) for row in cursor.fetchall()]
        except sqlite3.Error as error:
            # Any existing path resolves to this connector, so a non-SQLite
            # file lands here ("file is not a database") — surface it as the
            # error type the CLI/REST surfaces report cleanly.
            raise ConnectorError(
                f"cannot read SQLite catalog from {self.name}: {error}"
            ) from error

    def introspect_schema(self) -> Schema:
        builder = DDLBuilder()
        for kind, name, sql in self.master_entries():
            if sql:
                builder.apply(sql)
            if kind == "table" and builder.schema.get_table(name) is None:
                self._pragma_table(builder.schema, name)
        return builder.schema

    def _pragma_table(self, schema: Schema, name: str) -> None:
        """Fallback introspection through ``PRAGMA table_info`` for tables
        whose stored DDL did not make it through the tolerant parser."""
        table = Table(name=name)
        pk: "list[tuple[int, str]]" = []
        try:
            info = self._connection.execute(
                f"PRAGMA table_info({self._quote(name)})"
            ).fetchall()
        except sqlite3.Error as error:
            raise ConnectorError(
                f"cannot introspect table {name!r} in {self.name}: {error}"
            ) from error
        for row in info:
            column = Column(
                name=row["name"],
                sql_type=parse_type(row["type"] or "TEXT"),
                nullable=not row["notnull"],
                default=row["dflt_value"],
                is_primary_key=bool(row["pk"]),
            )
            table.add_column(column)
            if row["pk"]:
                pk.append((row["pk"], row["name"]))
        if pk:
            table.primary_key = tuple(name for _, name in sorted(pk))
        if table.columns:
            schema.add_table(table)

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def table_rows(self, table: str, limit: "int | None" = None) -> "list[dict[str, Any]]":
        # Sampling push-down: with a limit, the database picks the random
        # sample and ships only ``limit`` rows — the whole point for tables
        # too large to fetch over the wire.
        query = f"SELECT * FROM {self._quote(table)}"
        parameters: "tuple[Any, ...]" = ()
        if limit is not None:
            query += " ORDER BY random() LIMIT ?"
            parameters = (int(limit),)
        try:
            cursor = self._connection.execute(query, parameters)
        except sqlite3.Error as error:
            raise ConnectorError(f"cannot read table {table!r}: {error}") from error
        return [dict(row) for row in cursor.fetchall()]

    def table_row_count(self, table: str) -> int:
        try:
            cursor = self._connection.execute(
                f"SELECT COUNT(*) AS n FROM {self._quote(table)}"
            )
        except sqlite3.Error as error:
            raise ConnectorError(f"cannot count table {table!r}: {error}") from error
        return int(cursor.fetchone()["n"])

    @staticmethod
    def _quote(identifier: str) -> str:
        return '"' + identifier.replace('"', '""') + '"'

    def close(self) -> None:
        if self._owns_connection:
            self._connection.close()


#: URL schemes that name client/server engines whose drivers are not
#: available offline — their workloads arrive through the log readers.
_UNSUPPORTED_SCHEMES = ("postgres", "postgresql", "mysql", "mariadb", "mssql", "oracle")

#: File suffixes treated as SQLite databases when no scheme is given.
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3", ".db3")


def connect(target: "str | Path | sqlite3.Connection | Any") -> Connector:
    """Open a connector for a database URL, file path, or live object.

    Accepted targets:

    * ``sqlite:///relative/path.db`` / ``sqlite:////abs/path.db`` URLs,
      bare paths ending in ``.db``/``.sqlite``/``.sqlite3``/``.db3``, or an
      open ``sqlite3.Connection``;
    * an in-repo :class:`~repro.engine.Database` instance (or anything
      already shaped like a :class:`Connector`);
    * PostgreSQL / MySQL URLs raise :class:`ConnectorError` with the
      supported alternative (their query logs via ``--log``).
    """
    if isinstance(target, Connector):
        return target
    if isinstance(target, sqlite3.Connection):
        return SQLiteConnector(target)
    # Duck-typed engine database: catalog schema + stored tables.
    if hasattr(target, "schema") and hasattr(target, "tables") and hasattr(target, "get_table"):
        return EngineConnector(target)
    if isinstance(target, Path):
        return SQLiteConnector(target)
    if not isinstance(target, str):
        raise ConnectorError(f"cannot build a connector for {target!r}")

    url = target.strip()
    scheme, _, rest = url.partition("://")
    scheme = scheme.lower() if rest or url.startswith("sqlite:") else ""
    # SQLAlchemy/Django-style driver qualifiers ("postgresql+psycopg2")
    # still name the engine before the "+".
    if scheme.partition("+")[0] in _UNSUPPORTED_SCHEMES:
        raise ConnectorError(
            f"no {scheme} driver is available in this environment; point "
            "sqlcheck at the server's query log instead (--log FILE "
            "--log-format postgres-csv|postgres|mysql) or export the schema "
            "to a .sql file"
        )
    if scheme == "sqlite" or url.lower().startswith("sqlite:"):
        path = rest if rest else url.split(":", 1)[1]
        path = path.lstrip("/") if not path.startswith("//") else path[1:]
        if path in (":memory:", ""):
            raise ConnectorError(
                "sqlite::memory: has no catalog to introspect; pass an open "
                "sqlite3.Connection instead"
            )
        return SQLiteConnector(path)
    if url.lower().endswith(_SQLITE_SUFFIXES) or Path(url).exists():
        return SQLiteConnector(url)
    raise ConnectorError(
        f"cannot infer a database kind from {url!r} (expected a sqlite:/// "
        f"URL or a path ending in {', '.join(_SQLITE_SUFFIXES)})"
    )
