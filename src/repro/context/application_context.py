"""The application context.

Algorithm 1 builds an application context from (1) query analysis and
(2) data analysis, then every detection rule receives that context.  The
context "exports a queryable interface for applying contextual rules on the
queries, schema, and other application-specific metadata" (§4.1) — the
methods on :class:`ApplicationContext` are that interface.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..catalog.schema import Column, Index, Schema, Table
from ..profiler.profiler import TableProfile
from ..sqlparser import ColumnReference, QueryAnnotation
from ..sqlparser.dialects import Dialect, GENERIC


@dataclass
class ColumnUsage:
    """How a column is used across the whole workload.

    The index-overuse / index-underuse rules need to know which columns
    actually appear in selective predicates, join conditions, GROUP BY
    clauses, and UPDATE SET lists (Example 5 in the paper).
    """

    table: str
    column: str
    where_count: int = 0
    join_count: int = 0
    group_by_count: int = 0
    order_by_count: int = 0
    update_count: int = 0
    insert_count: int = 0
    select_count: int = 0

    @property
    def read_lookups(self) -> int:
        """Uses that an index could accelerate."""
        return self.where_count + self.join_count + self.group_by_count + self.order_by_count

    @property
    def writes(self) -> int:
        return self.update_count + self.insert_count


@dataclass
class ApplicationContext:
    """Everything ap-detect knows about the target application."""

    queries: list[QueryAnnotation] = field(default_factory=list)
    schema: Schema = field(default_factory=Schema)
    profiles: dict[str, TableProfile] = field(default_factory=dict)
    database: Any | None = None
    dialect: Dialect = GENERIC
    source: str | None = None
    #: observed execution frequency per statement index (from a query log);
    #: statements absent from the map count as executed once.  ap-rank
    #: weights detection scores by these when present.
    frequencies: dict[int, int] = field(default_factory=dict)
    #: observed mean execution time in milliseconds per statement index
    #: (from a query log that carries timings); sparse like
    #: ``frequencies``.  The ``duration``/``hybrid`` cost models fold these
    #: into the ranking weights.
    durations: dict[int, float] = field(default_factory=dict)
    #: quarantined :class:`repro.errors.PipelineError` records accumulated
    #: while building the context (parse failures, skipped log lines,
    #: unreachable sources); the detector folds them into its report so
    #: degraded provenance survives to every surface.
    errors: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # schema access
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table | None:
        return self.schema.get_table(name)

    def table_names(self) -> list[str]:
        return self.schema.table_names

    def column(self, table: str, column: str) -> Column | None:
        table_def = self.schema.get_table(table)
        if table_def is None:
            return None
        return table_def.get_column(column)

    def indexes_for(self, table: str) -> list[Index]:
        table_def = self.schema.get_table(table)
        if table_def is None:
            return []
        return list(table_def.indexes.values())

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    @property
    def has_data(self) -> bool:
        return bool(self.profiles)

    def profile(self, table: str) -> TableProfile | None:
        return self.profiles.get(table.lower())

    def column_profile(self, table: str, column: str):
        table_profile = self.profile(table)
        if table_profile is None:
            return None
        return table_profile.column(column)

    # ------------------------------------------------------------------
    # query access
    # ------------------------------------------------------------------
    @property
    def query_count(self) -> int:
        return len(self.queries)

    def frequency_of(self, query_index: int | None) -> int:
        """Observed execution count of a statement (1 when unknown)."""
        if query_index is None:
            return 1
        return max(1, self.frequencies.get(query_index, 1))

    def duration_of(self, query_index: int | None) -> "float | None":
        """Observed mean execution time in ms (``None`` when unknown)."""
        if query_index is None:
            return None
        return self.durations.get(query_index)

    def queries_of_type(self, *statement_types: str) -> list[QueryAnnotation]:
        wanted = set(statement_types)
        return [q for q in self.queries if q.statement_type in wanted]

    def queries_referencing(self, table: str) -> list[QueryAnnotation]:
        lowered = table.lower()
        return [
            q
            for q in self.queries
            if any(t.name.lower() == lowered for t in q.all_tables)
        ]

    def queries_referencing_column(self, table: str, column: str) -> list[QueryAnnotation]:
        """Queries whose predicates, projections, or assignments touch the column."""
        result = []
        lowered_column = column.lower()
        for query in self.queries_referencing(table):
            for reference in query.referenced_columns():
                if reference.name.lower() == lowered_column and self._column_belongs(
                    query, reference, table
                ):
                    result.append(query)
                    break
        return result

    def join_pairs(self) -> list[tuple[str, str]]:
        """Pairs of tables that are joined anywhere in the workload."""
        pairs: list[tuple[str, str]] = []
        for query in self.queries:
            tables = [t.name for t in query.all_tables]
            if len(tables) < 2:
                continue
            base = tables[0]
            for other in tables[1:]:
                pairs.append((base, other))
        return pairs

    def join_columns_between(self, left: str, right: str) -> list[tuple[str, str]]:
        """Column pairs used to join ``left`` and ``right`` across the workload."""
        results: list[tuple[str, str]] = []
        for query in self.queries:
            alias_map = query.alias_map
            for predicate in query.predicates:
                if predicate.clause not in ("on", "where") or not predicate.is_column_comparison:
                    continue
                left_table = alias_map.get((predicate.column.qualifier or "").lower())
                right_table = alias_map.get((predicate.value_column.qualifier or "").lower())
                if left_table is None or right_table is None:
                    continue
                names = {left_table.lower(), right_table.lower()}
                if names == {left.lower(), right.lower()}:
                    if left_table.lower() == left.lower():
                        results.append((predicate.column.name, predicate.value_column.name))
                    else:
                        results.append((predicate.value_column.name, predicate.column.name))
        return results

    # ------------------------------------------------------------------
    # workload statistics
    # ------------------------------------------------------------------
    def column_usage(self) -> dict[tuple[str, str], ColumnUsage]:
        """Aggregate how every (table, column) pair is used across queries."""
        usage: dict[tuple[str, str], ColumnUsage] = {}

        def bump(table: str | None, column: str, attribute: str) -> None:
            if not table:
                return
            key = (table.lower(), column.lower())
            entry = usage.get(key)
            if entry is None:
                entry = ColumnUsage(table=table, column=column)
                usage[key] = entry
            setattr(entry, attribute, getattr(entry, attribute) + 1)

        # Reverse column→tables index, one pass over the catalog instead of
        # a full table scan per bare reference.  Candidate lists preserve
        # schema insertion order, so hint preference and first-candidate
        # fallback below replicate Schema.resolve_column exactly.
        owners: dict[str, list] = {}
        for table_def in self.schema.tables.values():
            for key, col in table_def.columns.items():
                owners.setdefault(key, []).append(table_def)

        for query in self.queries:
            alias_map = query.alias_map
            default_table = query.tables[0].name if query.tables else None
            hint_names = None

            def resolve(reference: ColumnReference) -> str | None:
                nonlocal hint_names
                if reference.qualifier:
                    return alias_map.get(reference.qualifier.lower(), reference.qualifier)
                candidates = owners.get(reference.name.lower())
                if candidates:
                    if hint_names is None:
                        hint_names = {t.name.lower() for t in query.all_tables}
                    for table_def in candidates:
                        if table_def.name.lower() in hint_names:
                            return table_def.name
                    return candidates[0].name
                return default_table

            for predicate in query.predicates:
                if predicate.column is not None:
                    attribute = "join_count" if predicate.is_column_comparison else "where_count"
                    bump(resolve(predicate.column), predicate.column.name, attribute)
                if predicate.value_column is not None:
                    bump(resolve(predicate.value_column), predicate.value_column.name, "join_count")
            for reference in query.group_by_columns:
                bump(resolve(reference), reference.name, "group_by_count")
            for reference in query.order_by_columns:
                bump(resolve(reference), reference.name, "order_by_count")
            for reference in query.select_columns:
                bump(resolve(reference), reference.name, "select_count")
            if query.statement_type == "UPDATE":
                for column, _ in query.update_assignments:
                    bump(default_table, column, "update_count")
            if query.statement_type == "INSERT" and query.insert_columns:
                for column in query.insert_columns:
                    bump(default_table, column, "insert_count")
        return usage

    def _column_belongs(
        self, query: QueryAnnotation, reference: ColumnReference, table: str
    ) -> bool:
        if reference.qualifier:
            resolved = query.alias_map.get(reference.qualifier.lower(), reference.qualifier)
            return resolved.lower() == table.lower()
        table_def = self.schema.get_table(table)
        if table_def is not None and table_def.has_column(reference.name):
            return True
        # Without schema information, a bare column in a single-table query
        # belongs to that table.
        return len(query.all_tables) == 1 and query.all_tables[0].name.lower() == table.lower()
