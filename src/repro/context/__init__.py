"""Application context: the combined query / schema / data view rules consume."""
from .application_context import ApplicationContext, ColumnUsage
from .builder import ContextBuilder, build_context

__all__ = ["ApplicationContext", "ColumnUsage", "ContextBuilder", "build_context"]
