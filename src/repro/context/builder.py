"""ContextBuilder (Algorithm 1, lines 1–7).

Builds the :class:`ApplicationContext` from the application's queries and —
when available — its database.  Query analysis always runs; schema context
comes from the live database's catalog when connected, otherwise from the
DDL statements found in the workload; data context comes from profiling the
database's tables.
"""
from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..catalog.ddl_builder import DDLBuilder
from ..catalog.schema import Schema
from ..profiler.profiler import DataProfiler
from ..profiler.sampler import Sampler
from ..sqlparser import ParsedStatement, QueryAnnotation, annotate, parse
from ..sqlparser.dialects import Dialect, get_dialect
from .application_context import ApplicationContext


class ContextBuilder:
    """Builds and (incrementally) refreshes application contexts."""

    def __init__(
        self,
        *,
        sample_size: int = 1000,
        dialect: "Dialect | str | None" = None,
        profiler: DataProfiler | None = None,
    ):
        self.profiler = profiler or DataProfiler(Sampler(sample_size=sample_size))
        if isinstance(dialect, Dialect):
            self.dialect = dialect
        else:
            self.dialect = get_dialect(dialect)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def build(
        self,
        queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str" = (),
        database: Any | None = None,
        source: str | None = None,
    ) -> ApplicationContext:
        """Build a context from queries and an optional engine database."""
        annotations = self._annotate_queries(queries, source)
        schema = self._build_schema(annotations, database)
        profiles = self.profiler.profile_database(database) if database is not None else {}
        return ApplicationContext(
            queries=annotations,
            schema=schema,
            profiles=profiles,
            database=database,
            dialect=self.dialect,
            source=source,
        )

    def refresh_data(self, context: ApplicationContext) -> ApplicationContext:
        """Re-profile the database (the paper notes the data analyser
        periodically refreshes the context and re-profiles on schema change)."""
        if context.database is not None:
            context.profiles = self.profiler.profile_database(context.database)
        return context

    def extend(
        self,
        context: ApplicationContext,
        queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str",
        source: str | None = None,
    ) -> ApplicationContext:
        """Add more queries to an existing context (incremental analysis)."""
        additional = self._annotate_queries(queries, source)
        context.queries.extend(additional)
        ddl = [a.statement for a in additional if a.statement is not None and a.statement.is_ddl]
        if ddl and context.database is None:
            DDLBuilder(context.schema).build(ddl)
        return context

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _annotate_queries(
        self,
        queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str",
        source: str | None,
    ) -> list[QueryAnnotation]:
        annotations: list[QueryAnnotation] = []
        if isinstance(queries, str):
            statements: list = parse(queries, source=source)
        else:
            statements = []
            for query in queries:
                if isinstance(query, QueryAnnotation):
                    annotations.append(query)
                elif isinstance(query, ParsedStatement):
                    statements.append(query)
                else:
                    statements.extend(parse(query, source=source))
        offset = len(annotations)
        for index, statement in enumerate(statements):
            statement.index = index + offset
            annotations.append(annotate(statement))
        return annotations

    def _build_schema(
        self, annotations: Iterable[QueryAnnotation], database: Any | None
    ) -> Schema:
        if database is not None and getattr(database, "schema", None) is not None:
            return database.schema
        builder = DDLBuilder()
        ddl = [a.statement for a in annotations if a.statement is not None and a.statement.is_ddl]
        return builder.build(ddl)


def build_context(
    queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str" = (),
    database: Any | None = None,
    *,
    dialect: "Dialect | str | None" = None,
    sample_size: int = 1000,
    source: str | None = None,
) -> ApplicationContext:
    """Convenience wrapper around :class:`ContextBuilder`."""
    return ContextBuilder(sample_size=sample_size, dialect=dialect).build(
        queries, database=database, source=source
    )
