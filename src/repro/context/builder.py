"""ContextBuilder (Algorithm 1, lines 1–7).

Builds the :class:`ApplicationContext` from the application's queries and —
when available — its database.  Query analysis always runs; schema context
comes from the live database's catalog when connected, otherwise from the
DDL statements found in the workload; data context comes from profiling the
database's tables.
"""
from __future__ import annotations

import copy
from typing import Any, Iterable, Sequence

from ..catalog.ddl_builder import DDLBuilder
from ..catalog.schema import Schema
from ..errors import CODE_PARSE_ERROR, CODE_PROFILE_ERROR, PipelineError
from ..obs import get_tracer, now
from ..profiler.profiler import DataProfiler
from ..profiler.sampler import Sampler
from ..sqlparser import AnnotationCache, ParsedStatement, QueryAnnotation, annotate, parse
from ..sqlparser.fingerprint import combine_fingerprints
from ..sqlparser.dialects import Dialect, get_dialect
from .application_context import ApplicationContext

#: Multi-statement texts longer than this are parsed but not cached — one
#: cache entry per whole script pins too much memory for too little reuse.
_MAX_CACHED_SCRIPT_STATEMENTS = 16


class ContextBuilder:
    """Builds and (incrementally) refreshes application contexts.

    When an :class:`AnnotationCache` is attached, string inputs are looked up
    by fingerprint (with exact-text verification) before parsing: corpus
    workloads are dominated by repeated statement templates, and a cache hit
    replays the stored parse + annotation through cheap shallow copies whose
    index and source are rebound to the current occurrence — so cached
    output is identical to the cold path.
    """

    def __init__(
        self,
        *,
        sample_size: int = 1000,
        dialect: "Dialect | str | None" = None,
        profiler: DataProfiler | None = None,
        annotation_cache: AnnotationCache | None = None,
    ):
        self.profiler = profiler or DataProfiler(Sampler(sample_size=sample_size))
        self.annotation_cache = annotation_cache
        if isinstance(dialect, Dialect):
            self.dialect = dialect
        else:
            self.dialect = get_dialect(dialect)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def build(
        self,
        queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str" = (),
        database: Any | None = None,
        source: str | None = None,
        stats: Any | None = None,
        *,
        quarantine: bool = False,
    ) -> ApplicationContext:
        """Build a context from queries and an optional engine database.

        ``stats`` (a ``PipelineStats``, duck-typed to avoid an import cycle)
        receives the parse stage separately from schema building and data
        profiling, so database-backed runs don't misattribute profiling I/O
        to the parser.

        With ``quarantine=True`` a statement that fails to parse or annotate
        is recorded as a :class:`~repro.errors.PipelineError` on
        ``context.errors`` and dropped; the remaining statements still build
        normally.  Off (the default), failures propagate as before.
        """
        errors: "list[PipelineError] | None" = [] if quarantine else None
        tracer = get_tracer()
        t0 = now()
        annotations = self._annotate_queries(queries, source, errors=errors)
        t1 = now()
        if tracer.enabled:
            tracer.record("stage:parse", t0, t1, statements=len(annotations))
        if stats is not None:
            # One shared boundary timestamp between the stages keeps
            # parse + context equal to the elapsed wall-clock exactly.
            stats.parse_seconds += t1 - t0
        schema = self._build_schema(annotations, database)
        if database is not None:
            if errors is None:
                profiles = self.profiler.profile_database(database)
            else:
                try:
                    profiles = self.profiler.profile_database(database)
                except Exception as error:
                    profiles = {}
                    errors.append(
                        PipelineError.from_exception(
                            "data", error, code=CODE_PROFILE_ERROR, source=source
                        )
                    )
        else:
            profiles = {}
        context = ApplicationContext(
            queries=annotations,
            schema=schema,
            profiles=profiles,
            database=database,
            dialect=self.dialect,
            source=source,
            errors=list(errors or ()),
        )
        t2 = now()
        if tracer.enabled:
            tracer.record("stage:context", t1, t2, tables=schema.table_count)
        if stats is not None:
            stats.context_seconds += t2 - t1
        return context

    def refresh_data(self, context: ApplicationContext) -> ApplicationContext:
        """Re-profile the database (the paper notes the data analyser
        periodically refreshes the context and re-profiles on schema change)."""
        if context.database is not None:
            context.profiles = self.profiler.profile_database(context.database)
        return context

    def extend(
        self,
        context: ApplicationContext,
        queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str",
        source: str | None = None,
    ) -> ApplicationContext:
        """Add more queries to an existing context (incremental analysis).

        New statements continue the context's numbering, so ``query_index``
        (and the per-statement report labels built from it) stays unique
        across the extended workload.
        """
        additional = self._annotate_queries(
            queries, source, start_index=len(context.queries)
        )
        context.queries.extend(additional)
        ddl = [a.statement for a in additional if a.statement is not None and a.statement.is_ddl]
        if ddl and context.database is None:
            DDLBuilder(context.schema).build(ddl)
        return context

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _annotate_queries(
        self,
        queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str",
        source: str | None,
        *,
        start_index: int = 0,
        errors: "list[PipelineError] | None" = None,
    ) -> list[QueryAnnotation]:
        """Annotate a workload, preserving input order and indexing every
        statement by its workload position (from ``start_index``, so
        :meth:`extend` continues an existing context's numbering).

        Positions (offset/line/length) are cleared only on statements we
        parsed from *list elements* of strings: those were parsed one by
        one, so their offsets are element-relative, not positions in any
        containing file (the pool path clears them the same way in
        ``pipeline._rebind_indexes``).  A single text parsed as one script
        keeps its valid anchors, and caller-supplied ParsedStatement /
        QueryAnnotation objects keep whatever positions the caller parsed.
        """
        # (statement, annotation-or-None, clear-positions) triples in
        # workload order; cache hits and passthrough annotations arrive
        # pre-annotated, everything else is annotated below.
        pending: "list[tuple[ParsedStatement | None, QueryAnnotation | None, bool]]" = []

        def parse_element(text: str, clear_positions: bool) -> None:
            # With an error sink attached (quarantine mode), a text that the
            # parser rejects becomes one structured record and zero
            # statements; the rest of the workload is unaffected.
            if errors is None:
                parsed = self._parse_text(text, source)
            else:
                try:
                    parsed = self._parse_text(text, source)
                except Exception as error:
                    errors.append(
                        PipelineError.from_exception(
                            "parse",
                            error,
                            code=CODE_PARSE_ERROR,
                            source=source,
                            statement_index=start_index + len(pending),
                        )
                    )
                    return
            pending.extend((s, a, clear_positions) for s, a in parsed)

        if isinstance(queries, str):
            parse_element(queries, False)
        else:
            for query in queries:
                if isinstance(query, QueryAnnotation):
                    pending.append((query.statement, query, False))
                elif isinstance(query, ParsedStatement):
                    pending.append((query, None, False))
                else:
                    parse_element(query, True)
        annotations: list[QueryAnnotation] = []
        for statement, annotation, clear_positions in pending:
            if statement is not None:
                statement.index = start_index + len(annotations)
                if clear_positions:
                    statement.clear_position()
            if annotation is None:
                if errors is None:
                    annotation = annotate(statement)
                else:
                    try:
                        annotation = annotate(statement)
                    except Exception as error:
                        errors.append(
                            PipelineError.from_exception(
                                "parse",
                                error,
                                code=CODE_PARSE_ERROR,
                                source=source,
                                statement_fingerprint=getattr(statement, "fingerprint", None),
                                statement_index=start_index + len(annotations),
                            )
                        )
                        continue
            annotations.append(annotation)
        return annotations

    def _parse_text(
        self, text: str, source: str | None
    ) -> "list[tuple[ParsedStatement, QueryAnnotation]]":
        """Parse + annotate one SQL string, through the cache when attached."""
        cache = self.annotation_cache
        if cache is None:
            return [(statement, annotate(statement)) for statement in parse(text, source=source)]
        templates = cache.get(text)
        if templates is None:
            statements = parse(text, source=source)
            templates = [(statement, annotate(statement)) for statement in statements]
            # Large multi-statement scripts are not worth caching whole: one
            # entry would pin an entire corpus parse tree, and any edit to
            # the script misses it anyway.  Per-statement reuse comes from
            # list-of-statements inputs (the batch paths).
            if len(statements) > _MAX_CACHED_SCRIPT_STATEMENTS:
                return templates
            # Derive the text's fingerprint from the already-tokenized
            # statements — a miss must not pay a second lexer pass.
            if len(statements) == 1:
                fp = statements[0].fingerprint
            else:
                fp = combine_fingerprints(s.fingerprint for s in statements)
            cache.put(text, templates, fp=fp)
            # Fall through to the rebind loop: callers mutate the returned
            # statements (index rebinding, position clearing), and cached
            # templates must stay pristine for future occurrences.
        rebound = []
        for template_statement, template_annotation in templates:
            statement = copy.copy(template_statement)
            statement.source = source
            annotation = copy.copy(template_annotation)
            annotation.statement = statement
            rebound.append((statement, annotation))
        return rebound

    def _build_schema(
        self, annotations: Iterable[QueryAnnotation], database: Any | None
    ) -> Schema:
        if database is not None and getattr(database, "schema", None) is not None:
            return database.schema
        builder = DDLBuilder()
        ddl = [a.statement for a in annotations if a.statement is not None and a.statement.is_ddl]
        return builder.build(ddl)


def build_context(
    queries: "Sequence[str | ParsedStatement | QueryAnnotation] | str" = (),
    database: Any | None = None,
    *,
    dialect: "Dialect | str | None" = None,
    sample_size: int = 1000,
    source: str | None = None,
) -> ApplicationContext:
    """Convenience wrapper around :class:`ContextBuilder`."""
    return ContextBuilder(sample_size=sample_size, dialect=dialect).build(
        queries, database=database, source=source
    )
