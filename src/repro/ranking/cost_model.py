"""Workload cost models: how observed workload facts weight a finding.

ap-rank's impact score measures cost *per execution*; the paper ranks
anti-patterns by their impact *on the application*, which also depends on
how much of the workload the offending statement is.  A
:class:`WorkloadCostModel` turns the workload facts a query log carries —
execution **frequency** and observed **duration** per statement — into one
multiplicative ranking weight per statement index:

``frequency``
    the default: ``1 + log2(f)`` for ``f > 1`` executions, 1.0 otherwise.
    Exactly the weight live-source ingestion introduced, so existing
    rankings do not move.

``duration``
    weights by total observed time: ``1 + log2(f · d̄/d̂)`` where ``d̄`` is
    the statement's mean execution time and ``d̂`` the workload's *median*
    mean execution time.  Normalising by the workload median makes the
    weight unit-free (logging in ms vs. s cannot reorder findings) and
    collapses the model to the ``frequency`` weight when every statement
    costs the same — the equivalence the conformance oracle locks
    byte-for-byte.  The median (not the mean) is used because it is exact
    under uniform durations in floating point and robust to stragglers.

``hybrid``
    a configurable blend: ``(1 - s) · frequency + s · duration`` with
    duration share ``s`` (default 0.5).

All models weigh a statement with no workload facts — and every schema- or
data-level finding, which has no statement — at exactly 1.0, so logless
runs rank identically to a toolchain without any cost model at all.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import median
from typing import Mapping


def frequency_weight(frequency: "int | float | None") -> float:
    """Workload weight of a statement executed ``frequency`` times.

    Logarithmic (``1 + log2(f)``): execution counts in real logs span
    orders of magnitude, and a linear weight would let one hot template
    drown out every schema- and data-level finding.  ``f <= 1`` (or
    unknown) weighs 1.0, so workloads without a log rank exactly as
    before.
    """
    if frequency is None or frequency <= 1:
        return 1.0
    return 1.0 + math.log2(float(frequency))


class WorkloadCostModel:
    """Maps per-statement workload facts to per-statement ranking weights.

    Subclasses implement :meth:`weights`; ``frequencies`` maps statement
    index → observed execution count and ``durations`` maps statement
    index → mean execution time in milliseconds (both sparse: unmapped
    statements carry the defaults ``f = 1`` / ``d̄ = unknown``).
    """

    #: registry key and the name reports carry (``--cost-model`` value).
    name: str = "?"

    def weights(
        self,
        frequencies: "Mapping[int, int]",
        durations: "Mapping[int, float]",
    ) -> "dict[int, float]":
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-friendly self-description (carried by report documents)."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class FrequencyCostModel(WorkloadCostModel):
    """The seed model: execution frequency only (durations are ignored)."""

    name = "frequency"

    def weights(
        self,
        frequencies: "Mapping[int, int]",
        durations: "Mapping[int, float]",
    ) -> "dict[int, float]":
        return {index: frequency_weight(count) for index, count in frequencies.items()}


class DurationCostModel(WorkloadCostModel):
    """Total observed time: ``1 + log2(f · d̄/d̂)``, median-normalised."""

    name = "duration"

    @staticmethod
    def reference_duration(durations: "Mapping[int, float]") -> "float | None":
        """The workload's median mean-execution-time (``None`` when no
        statement carries a duration)."""
        known = [value for value in durations.values() if value > 0]
        if not known:
            return None
        return median(known)

    def weights(
        self,
        frequencies: "Mapping[int, int]",
        durations: "Mapping[int, float]",
    ) -> "dict[int, float]":
        reference = self.reference_duration(durations)
        weights: "dict[int, float]" = {}
        for index in frequencies.keys() | durations.keys():
            frequency = max(1, frequencies.get(index, 1))
            mean_duration = durations.get(index)
            if reference is None or mean_duration is None or mean_duration <= 0:
                # No duration evidence for this statement (or the whole
                # workload): fall back to the frequency weight so partially
                # timed logs degrade gracefully instead of zeroing out.
                weights[index] = frequency_weight(frequency)
                continue
            relative = mean_duration / reference
            equivalent_executions = frequency * relative
            if equivalent_executions <= 1.0:
                weights[index] = 1.0
            else:
                weights[index] = 1.0 + math.log2(equivalent_executions)
        return weights


@dataclass(frozen=True)
class HybridCostModel(WorkloadCostModel):
    """Blend of the frequency and duration weights.

    ``duration_share`` is the duration model's share of the blend in
    ``[0, 1]``; 0 degenerates to ``frequency``, 1 to ``duration``.
    """

    duration_share: float = 0.5
    name = "hybrid"

    def __post_init__(self) -> None:
        if not 0.0 <= self.duration_share <= 1.0:
            raise ValueError("duration_share must be in [0, 1]")

    def weights(
        self,
        frequencies: "Mapping[int, int]",
        durations: "Mapping[int, float]",
    ) -> "dict[int, float]":
        share = self.duration_share
        if share == 0.0:
            return FrequencyCostModel().weights(frequencies, durations)
        by_duration = DurationCostModel().weights(frequencies, durations)
        if share == 1.0:
            return by_duration
        # One pass over the duration map's keys (already the union of both
        # fact maps); unmapped statements default to 1.0 downstream anyway.
        return {
            index: (1.0 - share) * frequency_weight(frequencies.get(index))
            + share * weight
            for index, weight in by_duration.items()
        }

    def describe(self) -> dict:
        return {"name": self.name, "duration_share": self.duration_share}


#: Model factories by ``--cost-model`` name (one source of truth for the
#: CLI choices, the REST validation, and :func:`resolve_cost_model`).
COST_MODELS: "dict[str, type[WorkloadCostModel]]" = {
    FrequencyCostModel.name: FrequencyCostModel,
    DurationCostModel.name: DurationCostModel,
    HybridCostModel.name: HybridCostModel,
}

#: Names accepted by ``sqlcheck scan --cost-model`` and REST ``cost_model``.
COST_MODEL_NAMES: "tuple[str, ...]" = tuple(COST_MODELS)

DEFAULT_COST_MODEL = FrequencyCostModel.name


def resolve_cost_model(
    model: "WorkloadCostModel | str | None",
) -> WorkloadCostModel:
    """A model instance from a name, an instance, or ``None`` (default)."""
    if model is None:
        return FrequencyCostModel()
    if isinstance(model, WorkloadCostModel):
        return model
    factory = COST_MODELS.get(str(model).lower())
    if factory is None:
        raise ValueError(
            f"unknown cost model {model!r} (expected one of {list(COST_MODEL_NAMES)})"
        )
    return factory()
